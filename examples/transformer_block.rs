//! End-to-end transformer FFN block under N:M pruning: the three MLP
//! matmuls of a (scaled) Llama block — gate, up, down — pruned with the
//! *layer-wise* allocator, channel-permuted, loaded into a prepared
//! session as reusable layer handles, executed on the CPU and costed on
//! the simulated A100. Demonstrates the full production pipeline:
//!
//! offline:  permute → allocate per-layer N → prune → compress →
//!           serialize → `Session::load` (plan + stage + pack, once)
//! online:   `PreparedLayer::forward` passes, offline work amortized
//!
//! ```sh
//! cargo run --release --example transformer_block
//! ```

use nm_spmm::core::layerwise::{allocate, spec_from_weights};
use nm_spmm::core::permute;
use nm_spmm::core::serialize;
use nm_spmm::core::spmm::gemm_reference;
use nm_spmm::prelude::*;
use std::time::Instant;

fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

fn main() {
    // Scaled Llama-style FFN: hidden 512, intermediate 1376 (11008/8).
    let (m, h, f) = (64usize, 512usize, 1376usize);
    let m_window = 16usize;
    let l = 32usize;
    println!("FFN block: batch {m}, hidden {h}, intermediate {f}\n");

    let w_gate = MatrixF32::random(h, f, 1);
    let w_up = MatrixF32::random(h, f, 2);
    let w_down = MatrixF32::random(f, h, 3);
    let x = MatrixF32::random(m, h, 4);

    // --- offline: layer-wise sparsity allocation under a 40% FLOP budget --
    let specs = vec![
        spec_from_weights("gate", &w_gate, m_window, l, m),
        spec_from_weights("up", &w_up, m_window, l, m),
        spec_from_weights("down", &w_down, m_window, l, m),
    ];
    let alloc = allocate(&specs, m_window, 0.40);
    println!(
        "layer-wise allocation at 40% FLOP budget: N = {:?} (of M = {m_window})",
        alloc.n_per_layer
    );

    // --- offline: channel permutation + prune + load per layer ---
    // One session owns planning and staging for all three matmuls; each
    // `load` is the layer's entire offline cost, paid exactly once.
    let mut session = SessionBuilder::new(a100_80g())
        .backend(BackendKind::Cpu(NmVersion::V3))
        .build()
        .expect("session");
    let mut multipliers = Vec::new();
    for (i, (name, w)) in [("gate", &w_gate), ("up", &w_up), ("down", &w_down)]
        .into_iter()
        .enumerate()
    {
        let cfg = NmConfig::new(alloc.n_per_layer[i], m_window, l).expect("config");
        let perm = permute::search(w, cfg, 2);
        let wp = perm.apply_to_b(w);
        let sb = NmSparseMatrix::prune_magnitude(&wp, cfg).expect("prune");
        // Round-trip through the serialized container, as a deployment would.
        let blob = serialize::to_bytes(&sb);
        let sb = serialize::from_bytes(&blob).expect("load");
        println!(
            "  {name}: {} | permutation kept +{:.2}% magnitude | blob {} KiB",
            cfg,
            100.0 * perm.improvement(),
            blob.len() / 1024
        );
        multipliers.push((session.load(sb, m).expect("load layer"), perm));
    }

    // --- online: the block forward pass ---
    let t0 = Instant::now();
    let (gate_mul, gate_perm) = &multipliers[0];
    let (up_mul, up_perm) = &multipliers[1];
    let (down_mul, down_perm) = &multipliers[2];

    let xg = gate_perm.apply_to_a(&x);
    let xu = up_perm.apply_to_a(&x);
    let g = gate_mul.forward(&xg).expect("gate").c;
    let u = up_mul.forward(&xu).expect("up").c;
    let mut hmid = MatrixF32::zeros(m, f);
    for i in 0..m {
        for j in 0..f {
            hmid.set(i, j, silu(g.get(i, j)) * u.get(i, j));
        }
    }
    let hp = down_perm.apply_to_a(&hmid);
    let y = down_mul.forward(&hp).expect("down").c;
    let sparse_wall = t0.elapsed();

    // Dense reference for error + time.
    let t0 = Instant::now();
    let gd = gemm_reference(&x, &w_gate);
    let ud = gemm_reference(&x, &w_up);
    let mut hd = MatrixF32::zeros(m, f);
    for i in 0..m {
        for j in 0..f {
            hd.set(i, j, silu(gd.get(i, j)) * ud.get(i, j));
        }
    }
    let yd = gemm_reference(&hd, &w_down);
    let dense_wall = t0.elapsed();

    println!(
        "\nCPU block forward: sparse {:.1} ms vs dense {:.1} ms ({:.2}x)",
        sparse_wall.as_secs_f64() * 1e3,
        dense_wall.as_secs_f64() * 1e3,
        dense_wall.as_secs_f64() / sparse_wall.as_secs_f64()
    );
    println!(
        "output error vs dense block: rel. Frobenius {:.3}",
        y.rel_frobenius_error(&yd)
    );

    // --- simulated A100 cost of the three matmuls ---
    // Each loaded layer's plan already carries every family's estimate;
    // no kernel is re-modeled by hand.
    let mut dense_ms = 0.0;
    let mut sparse_ms = 0.0;
    for (layer, _) in &multipliers {
        let est = layer.plan().estimates;
        dense_ms += est.dense.seconds * 1e3;
        sparse_ms += layer
            .plan()
            .best()
            .expect("planned layers carry an estimate")
            .seconds
            * 1e3;
    }
    println!(
        "simulated A100 block matmuls: sparse {:.4} ms vs dense {:.4} ms ({:.2}x)",
        sparse_ms,
        dense_ms,
        dense_ms / sparse_ms
    );
}
