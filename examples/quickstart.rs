//! Quickstart: prune a weight matrix to 2:4 vector-wise sparsity, load it
//! into a prepared session **once**, then run forward passes that amortize
//! all offline work — plus a tour of the analysis model underneath.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nm_spmm::analysis::strategy::Strategy;
use nm_spmm::core::confusion;
use nm_spmm::core::spmm::{gemm_reference, spmm_reference};
use nm_spmm::prelude::*;

fn main() {
    // 1. A dense layer: C[m][n] = A[m][k] · B[k][n].
    let (m, n, k) = (256, 512, 1024);
    let a = MatrixF32::random(m, k, 1);
    let b = MatrixF32::random(k, n, 2);

    // 2. Prune B to 2:4 sparsity with vector length 4 (50% of weights gone).
    let cfg = NmConfig::new(2, 4, 4).expect("valid config");
    // Arc so the per-backend loads below share one compressed copy.
    let sb = std::sync::Arc::new(NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune"));
    println!(
        "pruned B {}x{} at {} -> B' {}x{} + D {}x{} ({:.2}x smaller bit-packed)",
        k,
        n,
        cfg,
        sb.w(),
        sb.cols(),
        sb.w(),
        sb.q(),
        sb.compression_ratio(IndexLayout::BitPacked),
    );

    // 3. Build a session and load the layer ONCE: this is every offline
    //    cost in one place — strategy decision + exhaustive autotune
    //    (memoized in the plan cache), B' layout transformation, col_info
    //    packing, micro-kernel ISA dispatch. The handle owns it all.
    let mut session = SessionBuilder::new(a100_80g())
        .backend(BackendKind::Cpu(NmVersion::V3))
        .build()
        .expect("session");
    let layer = session.load(sb.clone(), m).expect("load layer");

    // 4. Forward passes are the online path: nothing is re-planned or
    //    re-staged, and `wall_seconds` measures exactly the per-call cost.
    let run = layer.forward(&a).expect("forward");
    let oracle = spmm_reference(&a, &sb);
    assert!(
        run.c.allclose(&oracle, 1e-3, 1e-4),
        "prepared layer disagrees with Eq. (1)"
    );
    println!(
        "prepared {} forward: {:.2} ms wall ({} micro-kernel), matches the Eq. (1) oracle ✓",
        layer.backend(),
        run.wall_seconds * 1e3,
        run.isa.map(|i| i.name()).unwrap_or("-"),
    );

    // 5. Batched serving: one prepared layer, many activation batches —
    //    members are validated up front and fanned across the worker pool.
    let batch: Vec<MatrixF32> = (0..4).map(|i| MatrixF32::random(32, k, 10 + i)).collect();
    let batch_run = layer.forward_batch(&batch).expect("batch");
    println!(
        "batched forward: {} members, {:.2} ms aggregate wall ({} routing)",
        batch_run.len(),
        batch_run.wall_seconds * 1e3,
        batch_run.routing,
    );

    // 6. Serving: wrap a prepared layer in a Server — bounded queue,
    //    continuous batching (concurrent decode requests stack into one
    //    skinny kernel call), deadlines, latency stats. `LoadSpec` is the
    //    typed load surface: this layer plans on the decode band even
    //    though the session was sized for prefill.
    let decode_layer = session
        .load_with(
            sb.clone(),
            LoadSpec::rows(m).shape_class(ShapeClass::Decode(4)),
        )
        .expect("decode layer");
    let server = Server::start(decode_layer, ServerConfig::default()).expect("server");
    let tickets: Vec<Ticket> = (0..4)
        .map(|i| {
            let x = MatrixF32::random(1, k, 90 + i);
            server
                .submit_decode(x.row(0).to_vec(), SubmitOptions::default())
                .expect("admitted")
        })
        .collect();
    for t in tickets {
        let done = t.wait().expect("served");
        assert_eq!(done.c.shape(), (1, n));
    }
    let stats = server.stats();
    println!(
        "served {} decode requests: p50 {:.3} ms, mean batch {:.1} ({})",
        stats.completed, stats.p50_ms, stats.mean_batch_size, stats,
    );
    drop(server);

    // 7. How good is the approximation of the dense product?
    let dense_c = gemm_reference(&a, &b);
    let rep = confusion::report(&run.c, &dense_c);
    println!(
        "approximation vs dense GEMM: mean |err| {:.4}, rel. Frobenius {:.3}",
        rep.mean_abs_error, rep.rel_frobenius
    );

    // 8. The same handle API runs every backend — the simulated GPU
    //    kernels (timing model + event counts) and the native CPU ladder —
    //    and repeated loads plan from the cache.
    for backend in BackendKind::all() {
        let layer = session.load_on(sb.clone(), m, backend).expect("load");
        let run = layer.forward(&a).expect("forward");
        assert!(run.c.allclose(&oracle, 1e-3, 1e-4), "{backend} disagrees");
        println!(
            "{backend:>14}: {:.2} ms wall{}",
            run.wall_seconds * 1e3,
            run.estimate
                .map(|e| format!(", {:.3} ms simulated estimate", e.seconds * 1e3))
                .unwrap_or_default(),
        );
    }
    println!("plan cache: {}", session.stats());

    // 9. Ask the analysis model why the plan looks the way it does.
    let plan = session.plan(m, n, k, cfg).expect("plan");
    let d = plan.decision;
    println!(
        "strategy: packing = {} (sparsity {:.1}% vs 70% threshold), AI = {:.1} FLOP/B, {:?}",
        d.packing,
        100.0 * d.sparsity,
        d.ai_flops_per_byte,
        d.predicted_bound,
    );
    let blocking = nm_spmm::kernels::params::derive_blocking(
        session.device(),
        plan.params,
        cfg,
        k,
        true,
        false,
    )
    .expect("blocking");
    let _ = Strategy::transition_sparsity(session.device(), 64, 128, blocking.ks);
}
