//! Quickstart: prune a weight matrix to 2:4 vector-wise sparsity, multiply,
//! verify, and simulate the GPU kernel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nm_spmm::analysis::strategy::Strategy;
use nm_spmm::core::confusion;
use nm_spmm::core::parallel::{spmm_parallel, CpuSpmmOptions};
use nm_spmm::core::spmm::{gemm_reference, spmm_reference};
use nm_spmm::kernels::{BackendKind, DenseGemmKernel, Engine, NmSpmmKernel, NmVersion};
use nm_spmm::prelude::*;

fn main() {
    // 1. A dense layer: C[m][n] = A[m][k] · B[k][n].
    let (m, n, k) = (256, 512, 1024);
    let a = MatrixF32::random(m, k, 1);
    let b = MatrixF32::random(k, n, 2);

    // 2. Prune B to 2:4 sparsity with vector length 4 (50% of weights gone).
    let cfg = NmConfig::new(2, 4, 4).expect("valid config");
    let sb = NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune");
    println!(
        "pruned B {}x{} at {} -> B' {}x{} + D {}x{} ({:.2}x smaller bit-packed)",
        k,
        n,
        cfg,
        sb.w(),
        sb.cols(),
        sb.w(),
        sb.q(),
        sb.compression_ratio(IndexLayout::BitPacked),
    );

    // 3. Multiply with the parallel CPU kernel and verify against Eq. (1).
    let c = spmm_parallel(&a, &sb, &CpuSpmmOptions::default());
    let oracle = spmm_reference(&a, &sb);
    assert!(
        c.allclose(&oracle, 1e-3, 1e-4),
        "CPU kernel disagrees with Eq. (1)"
    );
    println!("CPU kernel matches the Eq. (1) oracle ✓");

    // 4. How good is the approximation of the dense product?
    let dense_c = gemm_reference(&a, &b);
    let rep = confusion::report(&c, &dense_c);
    println!(
        "approximation vs dense GEMM: mean |err| {:.4}, rel. Frobenius {:.3}",
        rep.mean_abs_error, rep.rel_frobenius
    );

    // 5. Simulate the NM-SpMM V3 kernel on an A100 against dense cuBLAS.
    let dev = a100_80g();
    let run = NmSpmmKernel::auto(NmVersion::V3, m, n)
        .run(&dev, &a, &sb)
        .expect("simulated run");
    assert!(run.c.allclose(&oracle, 1e-3, 1e-4), "GPU kernel disagrees");
    let dense = DenseGemmKernel::auto(m, n)
        .estimate(&dev, m, n, k)
        .expect("dense estimate");
    println!(
        "simulated {}: {:.2} TFLOPS ({:.1}% of peak), {:.2}x vs dense GEMM (ideal {:.1}x)",
        dev.name,
        run.report.tflops,
        100.0 * run.report.efficiency,
        dense.seconds / run.report.seconds,
        cfg.ideal_speedup()
    );

    // 6. Ask the analysis model why.
    let plan = NmSpmmKernel::auto(NmVersion::V3, m, n)
        .plan(&dev, m, n, k, cfg)
        .expect("plan");
    let d = plan.decision;
    println!(
        "strategy: packing = {} (sparsity {:.1}% vs 70% threshold), AI = {:.1} FLOP/B, {:?}",
        d.packing,
        100.0 * d.sparsity,
        d.ai_flops_per_byte,
        d.predicted_bound,
    );
    let _ = Strategy::transition_sparsity(&dev, 64, 128, plan.blocking.ks);

    // 7. Or let the engine own everything: plan once (strategy + autotune,
    //    memoized), then run the same plan through any execution backend —
    //    the simulator, or the native CPU V1→V3 ladder with measured wall
    //    clocks.
    let mut engine = Engine::new(a100_80g());
    for backend in BackendKind::all() {
        let run = engine.execute(&a, &sb, backend).expect("execute");
        assert!(run.c.allclose(&oracle, 1e-3, 1e-4), "{backend} disagrees");
        println!(
            "{backend:>14}: {:.2} ms wall{}",
            run.wall_seconds * 1e3,
            run.estimate
                .map(|e| format!(", {:.3} ms simulated estimate", e.seconds * 1e3))
                .unwrap_or_default(),
        );
    }
    println!("plan cache: {}", engine.stats());
}
