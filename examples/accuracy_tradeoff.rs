//! The accuracy ↔ speedup frontier of N:M pruning: for a grid of
//! configurations and pruning policies, measure the approximation error
//! (confusion matrix, Eq. 2) against the simulated speedup — the tradeoff
//! the paper's introduction motivates ("N:M sparsity provides an option for
//! balancing performance and model accuracy").
//!
//! ```sh
//! cargo run --release --example accuracy_tradeoff
//! ```

use nm_spmm::core::confusion::report;
use nm_spmm::core::prune::PrunePolicy;
use nm_spmm::core::spmm::{gemm_reference_f64, spmm_reference};
use nm_spmm::prelude::*;

fn main() {
    let (m, n, k) = (128, 256, 512);
    let a = MatrixF32::random(m, k, 21);
    let b = MatrixF32::random(k, n, 22);
    let dense = gemm_reference_f64(&a, &b);
    // Plans (and their per-family estimates) come from one session; every
    // (N:M, L) pair below is a cached planning call, not a hand-wired
    // kernel instantiation.
    let mut session = SessionBuilder::new(a100_80g()).build().expect("session");

    println!("== accuracy vs speedup (m={m}, n={n}, k={k}, A100) ==\n");
    println!(
        "{:>8} {:>4} {:>10} {:>11} {:>12} {:>10} {:>9}",
        "N:M", "L", "policy", "mean |err|", "rel. Frob.", "speedup", "ideal"
    );

    for (nn, mm) in [(8usize, 16usize), (6, 16), (4, 16), (2, 16), (2, 4), (1, 4)] {
        for l in [4usize, 32] {
            for policy in [PrunePolicy::Magnitude, PrunePolicy::Random { seed: 99 }] {
                let cfg = NmConfig::new(nn, mm, l).expect("config");
                let sb = NmSparseMatrix::prune(&b, cfg, policy).expect("prune");
                let c = spmm_reference(&a, &sb);
                let rep = report(&c, &dense);
                // The plan carries the tuned V3 estimate (ns % L == 0 by
                // construction for these L) and the dense baseline.
                let plan = session.plan(m, n, k, cfg).expect("plan");
                let sim = plan
                    .estimates
                    .nm_v3
                    .unwrap_or_else(|| plan.best().expect("planned layers carry an estimate"));
                let dense_sim = plan.estimates.dense;
                let policy_name = match policy {
                    PrunePolicy::Magnitude => "magnitude",
                    PrunePolicy::Random { .. } => "random",
                    PrunePolicy::Strided => "strided",
                    PrunePolicy::FirstN => "first-n",
                };
                println!(
                    "{:>8} {:>4} {:>10} {:>11.5} {:>12.4} {:>9.2}x {:>8.1}x",
                    format!("{nn}:{mm}"),
                    l,
                    policy_name,
                    rep.mean_abs_error,
                    rep.rel_frobenius,
                    dense_sim.seconds / sim.seconds,
                    cfg.ideal_speedup()
                );
            }
        }
    }
    println!("\nobservations (match the N:M literature):");
    println!(
        " * magnitude pruning beats random at every level — structure-aware selection matters"
    );
    println!(" * error grows with sparsity while speedup approaches M/N — the tunable frontier");
    println!(" * smaller L gives finer selection granularity (lower error), at some kernel cost");
}
