//! Prune one Llama-7B linear layer and compare serving cost across sparsity
//! levels — the paper's motivating workload (§IV-A).
//!
//! Per sparsity level, the layer is loaded into the session **once**
//! (offline: plan + stage + pack) and the printed CPU wall time is the
//! online `forward` cost only — the amortized per-call number a serving
//! system actually pays. Alongside: simulated A100 latency, speedups
//! against the dense baselines, and the accuracy cost of the
//! approximation.
//!
//! ```sh
//! cargo run --release --example llama_layer
//! ```

use nm_spmm::core::confusion::total_confusion;
use nm_spmm::core::parallel::gemm_parallel;
use nm_spmm::core::spmm::gemm_reference_f64;
use nm_spmm::prelude::*;
use nm_spmm::workloads::levels::{benchmark_levels, label};
use nm_spmm::workloads::llama::layer_shapes;
use std::time::Instant;

fn main() {
    // Llama-7B mlp.gate: n = 11008, k = 4096 — scaled down 4x per axis so
    // the example finishes in seconds on a laptop while keeping the aspect
    // ratio; pass --full for the real layer.
    let full = std::env::args().any(|a| a == "--full");
    let shape = layer_shapes()
        .into_iter()
        .find(|s| s.model == "Llama-7B" && s.layer == "mlp.gate")
        .expect("known layer");
    let scale = if full { 1 } else { 4 };
    let (m, n, k) = (512 / scale * scale.min(2), shape.n / scale, shape.k / scale);
    println!(
        "layer {} {} -> m={m}, n={n}, k={k} {}",
        shape.model,
        shape.layer,
        if full {
            "(full size)"
        } else {
            "(scaled 1/4, use --full for the real layer)"
        }
    );

    let a = MatrixF32::random(m, k, 7);
    let b = MatrixF32::random(k, n, 8);
    // The session owns kernel selection and execution: one plan per
    // (shape class, N:M) carries the tuned blocking and every family's
    // estimate; one prepared layer per level owns the staged weights.
    let mut session = SessionBuilder::new(a100_80g())
        .backend(BackendKind::Cpu(NmVersion::V3))
        .build()
        .expect("session");

    // Dense baselines.
    let t0 = Instant::now();
    let dense_cpu = gemm_parallel(&a, &b);
    let dense_wall = t0.elapsed();
    let dense_sim = session
        .plan(m, n, k, benchmark_levels()[0])
        .expect("plan")
        .estimates
        .dense;
    println!(
        "dense: CPU {:.1} ms, simulated A100 {:.3} ms ({:.1}% of peak)\n",
        dense_wall.as_secs_f64() * 1e3,
        dense_sim.seconds * 1e3,
        100.0 * dense_sim.efficiency
    );

    let oracle = gemm_reference_f64(&a, &b);
    println!(
        "{:>9} {:>7} {:>12} {:>12} {:>10} {:>10} {:>12}  kernel",
        "sparsity", "ideal", "CPU ms", "CPU speedup", "A100 ms", "A100 spd", "mean |err|"
    );
    for cfg in benchmark_levels() {
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune");
        // Offline, once per level: plan (cached), stage, pack, dispatch.
        let layer = session.load(sb, m).expect("load layer");
        // Online: the amortized forward pass the wall clock measures.
        let run = layer.forward(&a).expect("forward");
        let plan = layer.plan();
        let sim = plan.best().expect("planned layers carry an estimate");
        let err = total_confusion(&run.c, &oracle);
        println!(
            "{:>9} {:>6.1}x {:>11.1}m {:>11.2}x {:>9.3}m {:>9.2}x {:>12.5}  {}",
            label(&cfg),
            cfg.ideal_speedup(),
            run.wall_seconds * 1e3,
            dense_wall.as_secs_f64() / run.wall_seconds,
            sim.seconds * 1e3,
            plan.speedup_vs_dense()
                .expect("planned layers carry an estimate"),
            err,
            plan.choice,
        );
        // The sparse result must agree with dense wherever B survived:
        // cheap structural sanity check on one run.
        assert_eq!(run.c.shape(), dense_cpu.shape());
    }
    println!("\n(accuracy degrades as sparsity rises — the tradeoff the N:M literature tunes)");
    println!("plan cache after the sweep: {}", session.stats());
}
