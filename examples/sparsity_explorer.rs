//! The top-down performance analysis model as an interactive tool:
//! for a problem shape and every feasible `N:16` configuration, print the
//! Eq. (3) arithmetic intensity, the roofline classification, the strategy
//! decision (packing? which pipeline?), and the simulated outcome — the
//! workflow of paper §III-A.
//!
//! ```sh
//! cargo run --release --example sparsity_explorer [m n k]
//! ```

use nm_spmm::analysis::ai::BlockAi;
use nm_spmm::analysis::strategy::{PipelineHint, Strategy};
use nm_spmm::kernels::params::{derive_blocking, BlockingParams};
use nm_spmm::prelude::*;
use nm_spmm::sim::device::paper_devices;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (m, n, k) = match args.as_slice() {
        [m, n, k] => (*m, *n, *k),
        _ => (4096, 4096, 4096),
    };
    println!("== sparsity explorer: m={m}, n={n}, k={k} ==\n");

    for dev in paper_devices() {
        // One session per device: every plan below comes from its cache.
        let mut session = SessionBuilder::new(dev.clone()).build().expect("session");
        let trans = Strategy::transition_sparsity(&dev, 64, 128, 256);
        println!(
            "-- {} (ridge {:.1} FLOP/B, modeled bound transition at ~{:.0}% for a 64x128 block) --",
            dev.name,
            dev.ridge_flops_per_byte(),
            100.0 * trans
        );
        println!(
            "{:>6} {:>9} {:>8} {:>9} {:>22} {:>10} {:>9} {:>9}",
            "N:M", "sparsity", "AI eq3", "bound", "pipeline", "packing ρ", "eff", "speedup"
        );
        for nn in [16usize, 12, 8, 6, 4, 2, 1] {
            let cfg = NmConfig::new(nn, 16, 32).expect("config");
            let plan = match session.plan(m, n, k, cfg) {
                Ok(p) => p,
                Err(e) => {
                    println!("{:>6} unplannable: {e}", format!("{nn}:16"));
                    continue;
                }
            };
            let d = plan.decision;
            // The V3 estimate when the family could launch, else the
            // plan's winner (e.g. dense at N = M).
            let rep = plan
                .estimates
                .nm_v3
                .unwrap_or_else(|| plan.best().expect("planned layers carry an estimate"));
            let b = derive_blocking(&dev, plan.params, cfg, k, true, false).expect("blocking");
            let ai = BlockAi {
                ms: b.params.ms,
                ns: b.params.ns,
                ks: b.ks,
                ws: b.ws,
            }
            .elements();
            println!(
                "{:>6} {:>8.1}% {:>8.1} {:>9} {:>22} {:>10.3} {:>8.1}% {:>8.2}x",
                format!("{nn}:16"),
                100.0 * cfg.sparsity(),
                ai,
                format!("{:?}", d.predicted_bound),
                match d.pipeline {
                    PipelineHint::ComputeHidesLoad => "compute hides load",
                    PipelineHint::LoadHidesCompute => "load hides compute",
                },
                d.packing_ratio,
                100.0 * rep.efficiency,
                plan.estimates.dense.seconds / rep.seconds,
            );
        }
        println!("  plan cache: {}", session.stats());
        println!();
    }
    println!("(Fig. 2's mechanism: sparsity up -> AI down -> strategy flips to packing +");
    println!(" load-hides-compute at the 70% threshold; Table I parameters via Para_Init_Table)");
    let p = BlockingParams::para_init_table(m, n);
    println!("selected blocking class for this shape: {p:?}");
}
