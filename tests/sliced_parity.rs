//! Sliced-storage parity: the SELL-C-σ staged format must be an
//! *invisible* rearrangement. Three claims are enforced end to end:
//!
//! 1. **Numerics** — a sliced-staged layer produces bit-for-bit the same
//!    output as its row-major twin (same version, same tiling, same
//!    micro-kernel), and both sit within oracle tolerance of the f64
//!    reference, across every ISA this host can execute, every ladder
//!    version, every paper sparsity level and ragged shapes.
//! 2. **Permutation bookkeeping** — the window permutation and its
//!    inverse compose to the identity, and the per-window write-back
//!    spans tile the output columns exactly once.
//! 3. **Persistence** — the v4 plan-cache format round-trips the storage
//!    lane through disk, and a v3-era document (no `storage` field)
//!    still loads, as row-major.

use nm_spmm::core::spmm::gemm_reference_f64;
use nm_spmm::kernels::cpu::{spmm_cpu_prepared, CpuPrepared, CpuTiling};
use nm_spmm::kernels::plan::Planner;
use nm_spmm::kernels::simd::MicroKernel;
use nm_spmm::kernels::{BackendKind, LoadSpec, NmVersion, PlanCache, SessionBuilder, ShapeClass};
use nm_spmm::prelude::*;
use nm_spmm::sim::device::a100_80g;
use proptest::prelude::*;

const VERSIONS: [NmVersion; 3] = [NmVersion::V1, NmVersion::V2, NmVersion::V3];

/// Ragged (k, n) pairs: k off the window depth, n off the pruning-window
/// width, plus an exact multiple as the control.
const RAGGED: [(usize, usize); 3] = [(90, 49), (70, 64), (128, 96)];

/// The sliced grid the autotuner enumerates, plus a degenerate C = 1.
fn layouts() -> Vec<SlicedLayout> {
    [(1, 1), (4, 4), (8, 32), (32, 128)]
        .into_iter()
        .map(|(c, s)| SlicedLayout::new(c, s).unwrap())
        .collect()
}

#[test]
fn sliced_matches_row_major_bitwise_and_the_oracle_across_isas_versions_and_levels() {
    for mk in MicroKernel::available() {
        for (li, cfg) in NmConfig::paper_levels(16).into_iter().enumerate() {
            for (si, (k, n)) in RAGGED.into_iter().enumerate() {
                let m = 1 + si; // skinny rows: the band sliced staging serves
                let seed = 7000 + (li * 16 + si) as u64;
                let a = MatrixF32::random(m, k, seed);
                let b = MatrixF32::random(k, n, seed ^ 0x5e11);
                let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
                let oracle = gemm_reference_f64(&a, &sb.decompress());
                let tiling = CpuTiling::auto(cfg, m, n, k).unwrap();
                for version in VERSIONS {
                    let rm = CpuPrepared::with_kernel(version, &sb, tiling, mk).unwrap();
                    let want = spmm_cpu_prepared(&a, &sb, &rm).unwrap();
                    assert!(
                        want.allclose(&oracle, 1e-3, 1e-4),
                        "{mk} {cfg} {version:?} k={k} n={n}: row-major vs f64 oracle diff {}",
                        want.max_abs_diff(&oracle)
                    );
                    for layout in layouts() {
                        let sl = CpuPrepared::with_format(
                            version,
                            &sb,
                            tiling,
                            mk,
                            StorageFormat::Sliced(layout),
                        )
                        .unwrap();
                        let got = spmm_cpu_prepared(&a, &sb, &sl).unwrap();
                        assert_eq!(
                            got.as_slice(),
                            want.as_slice(),
                            "{mk} {cfg} {version:?} k={k} n={n} C={} σ={}: sliced must be \
                             bit-identical to row-major",
                            layout.slice_height,
                            layout.sort_window,
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn permutation_and_inverse_round_trip_and_spans_tile_the_columns() {
    let cfg = NmConfig::new(2, 8, 16).unwrap();
    let b = MatrixF32::random(96, 49, 11);
    let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
    for layout in layouts() {
        let sm = SlicedMatrix::build(&sb, layout).unwrap();
        let perm = &sm.perm().perm;
        let inv = sm.inverse();
        assert_eq!(perm.len(), sm.windows());
        for old in 0..sm.windows() {
            assert_eq!(
                perm[inv[old]], old,
                "C={} σ={}: inverse must undo the window permutation",
                layout.slice_height, layout.sort_window
            );
        }
        // Every output column is written exactly once: the spans at
        // permuted positions partition [0, n).
        let mut covered = vec![false; sm.cols()];
        for pos in 0..sm.windows() {
            let (col, width) = sm.span(pos);
            for (c, slot) in covered.iter_mut().enumerate().skip(col).take(width) {
                assert!(!*slot, "column {c} written twice");
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "write-back spans leave a gap");
    }
}

#[test]
fn plan_cache_v4_round_trips_the_storage_lane_and_loads_v3_documents() {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "nm-spmm-sliced-parity-cache-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let cfg = NmConfig::new(2, 8, 32).unwrap();
    let layout = SlicedLayout::new(4, 16).unwrap();
    let mut planner = Planner::new(a100_80g());
    let auto = planner.plan(4, 96, 128, cfg).unwrap();
    let pinned = planner
        .plan_stored(
            ShapeClass::Decode(4),
            StorageFormat::Sliced(layout),
            4,
            96,
            128,
            cfg,
        )
        .unwrap();
    assert_eq!(auto.key.storage, StorageFormat::RowMajor);
    assert_eq!(pinned.key.storage, StorageFormat::Sliced(layout));

    planner.cache().save(&path).unwrap();
    let reloaded = PlanCache::load(&path).unwrap();
    assert_eq!(
        reloaded.len(),
        2,
        "both storage lanes survive the disk trip"
    );
    assert_eq!(reloaded.peek(&auto.key), Some(&auto));
    assert_eq!(reloaded.peek(&pinned.key), Some(&pinned));

    // A v3-era document knows no storage lanes: strip the field and the
    // version stamp, and the same plans must come back as row-major.
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"storage\":\"sliced:4:16\""));
    let old = text
        .replace("\"storage\":\"rowmajor\",", "")
        .replace("\"storage\":\"sliced:4:16\",", "")
        .replace("\"version\":4", "\"version\":3");
    assert!(!old.contains("storage"));
    std::fs::write(&path, old).unwrap();
    let legacy = PlanCache::load(&path).unwrap();
    // Without the storage field the two lanes share one key, so the v3
    // reload collapses them onto the row-major lane — exactly how a
    // pre-sliced build would have cached this shape.
    assert_eq!(legacy.len(), 1);
    assert!(
        legacy.peek(&auto.key).is_some(),
        "a v3 document must load with every plan on the row-major lane"
    );
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: a session layer pinned to any sliced layout serves
    /// `forward_vec` bit-for-bit identically to the auto (row-major)
    /// layer, for every ladder version, arbitrary ragged (k, n), every
    /// paper level and both pruning-window widths.
    #[test]
    fn forward_vec_is_bit_identical_across_storage_formats(
        k in 1usize..160,
        n in 1usize..96,
        level in 0usize..4,
        wide in 0usize..2,
        c_pick in 0usize..3,
        seed in 0u64..1000,
    ) {
        let l = if wide == 1 { 32 } else { 16 };
        let cfg = NmConfig::paper_levels(l)[level];
        let c = [2usize, 4, 8][c_pick];
        let layout = SlicedLayout::new(c, 4 * c).unwrap();
        let b = MatrixF32::random(k, n, seed ^ 0x51ed);
        let sb = std::sync::Arc::new(NmSparseMatrix::prune_magnitude(&b, cfg).unwrap());
        let x: Vec<f32> = MatrixF32::random(1, k, seed).into_vec();
        let mut session = SessionBuilder::new(a100_80g()).build().unwrap();
        for version in VERSIONS {
            let auto = session
                .load_with(sb.clone(), LoadSpec::rows(1).backend(BackendKind::Cpu(version)))
                .unwrap();
            let sliced = session
                .load_with(
                    sb.clone(),
                    LoadSpec::rows(1)
                        .backend(BackendKind::Cpu(version))
                        .storage(StorageFormat::Sliced(layout)),
                )
                .unwrap();
            prop_assert_eq!(
                sliced.storage(),
                Some(StorageFormat::Sliced(layout)),
                "the pin must reach the staged state"
            );
            let want = auto.forward_vec(&x).unwrap();
            let got = sliced.forward_vec(&x).unwrap();
            prop_assert_eq!(got.c.as_slice(), want.c.as_slice());
        }
    }
}
