//! The codegen backend's acceptance matrix, end to end: for **every
//! kernel family × storage format × {prefill, decode(m=1)}** on ragged
//! shapes, the generated WGSL must pass the in-repo validator, the
//! shader interpreter must reproduce `cpu_v3` **bit for bit**, and the
//! interpreter's phase structure must equal the simulator's
//! [`ExecutionTrace`](nm_spmm::sim::ExecutionTrace) phase counts.
//!
//! Families V1–V3 are exercised by pinning the plan's kernel choice (the
//! family a non-decode plan lowers to); the skinny decode family comes
//! from decode-class plans, where the shape — not the choice — decides.

use nm_spmm::gpu::{validate_wgsl, KernelFamily, ValidateOptions};
use nm_spmm::kernels::codegen::{family_for_plan, CodegenBackend, CodegenPrepared};
use nm_spmm::kernels::plan::{KernelChoice, Plan, Planner, ShapeClass};
use nm_spmm::kernels::{BackendKind, CpuBackend, ExecBackend, NmVersion};
use nm_spmm::prelude::*;
use nm_spmm::sim::device::a100_80g;

/// Ragged `(k, n)` pairs: every dimension off the window depth, the
/// pruning-window width and the tile sizes.
const RAGGED: [(usize, usize); 3] = [(80, 100), (112, 72), (200, 144)];

/// Prefill row counts, one per shape — all above the decode band.
const PREFILL_ROWS: [usize; 3] = [9, 13, 33];

fn operand(cfg: NmConfig, k: usize, n: usize, seed: u64) -> NmSparseMatrix {
    let b = MatrixF32::random(k, n, seed);
    NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune")
}

/// The full three-part acceptance check for one `(plan, operand, rows)`
/// cell: validator, bit-identity against `cpu_v3`, phase parity against
/// the simulated trace.
fn check_cell(plan: &Plan, sb: &NmSparseMatrix, m: usize, family: KernelFamily, seed: u64) {
    let dev = a100_80g();
    let a = MatrixF32::random(m, sb.k(), seed);
    let tag = format!(
        "{family} {} m={m} k={} n={}",
        plan.key.storage,
        sb.k(),
        sb.cols()
    );

    let backend = CodegenBackend::new();
    let state = backend.prepare(&dev, plan, sb).expect("prepare");
    let prep = state
        .as_any()
        .downcast_ref::<CodegenPrepared>()
        .expect("codegen state");
    assert_eq!(prep.spec().family, family, "{tag}: family");
    assert_eq!(prep.spec().storage, plan.key.storage, "{tag}: storage");

    // 1. The emitted shader is well-formed under the in-repo validator.
    validate_wgsl(prep.wgsl(), &ValidateOptions::default())
        .unwrap_or_else(|e| panic!("{tag}: generated WGSL failed validation: {e}"));

    // 2. The interpreter reproduces the V3 CPU oracle bit for bit.
    let cpu = CpuBackend::new(NmVersion::V3)
        .run(&dev, plan, &a, sb)
        .expect("cpu_v3");
    let (c, trace) = prep.execute(&a, sb).expect("interpret");
    assert_eq!(
        c.as_slice(),
        cpu.c.as_slice(),
        "{tag}: interpreter must be bit-identical to cpu_v3"
    );

    // 3. The interpreter's phase structure equals the simulator's.
    let (ours, sim) = prep.phase_parity(&dev, &trace, m).expect("phase parity");
    assert!(
        ours.matches(&sim),
        "{tag}: interpreter phases {ours} vs simulated {sim}"
    );

    // And the backend's own run path reports the same numerics with the
    // simulated launch report attached.
    let run = backend
        .run_prepared(&dev, plan, &*state, &a, sb)
        .expect("run_prepared");
    assert_eq!(run.c.as_slice(), c.as_slice(), "{tag}: run path");
    assert_eq!(run.backend, BackendKind::Codegen);
    assert!(
        run.stats.is_some() && run.report.is_some(),
        "{tag}: telemetry"
    );
}

/// A prefill plan whose kernel choice is pinned so the lowering takes a
/// specific ladder family.
fn prefill_plan_for(
    planner: &mut Planner,
    storage: StorageFormat,
    choice: KernelChoice,
    m: usize,
    n: usize,
    k: usize,
    cfg: NmConfig,
) -> Plan {
    let mut plan = planner
        .plan_stored(ShapeClass::Prefill, storage, m, n, k, cfg)
        .expect("plan");
    plan.choice = choice;
    plan
}

fn storages() -> [StorageFormat; 2] {
    [
        StorageFormat::RowMajor,
        StorageFormat::Sliced(SlicedLayout::new(4, 16).expect("layout")),
    ]
}

#[test]
fn ladder_families_pass_the_matrix_on_prefill_shapes() {
    let ladder = [
        (KernelChoice::NmV1, KernelFamily::V1),
        (KernelChoice::NmV2, KernelFamily::V2),
        (KernelChoice::NmV3, KernelFamily::V3),
    ];
    // One high-sparsity config (packed path) and one moderate (direct).
    let cfgs = [
        NmConfig::new(2, 8, 16).expect("2:8:16"),
        NmConfig::new(6, 16, 8).expect("6:16:8"),
    ];
    for (ci, cfg) in cfgs.into_iter().enumerate() {
        for storage in storages() {
            for (choice, family) in ladder {
                for (si, (k, n)) in RAGGED.into_iter().enumerate() {
                    let m = PREFILL_ROWS[si];
                    let seed = 9000 + (ci * 100 + si * 10) as u64;
                    let sb = operand(cfg, k, n, seed);
                    let mut planner = Planner::new(a100_80g());
                    let plan = prefill_plan_for(&mut planner, storage, choice, m, n, k, cfg);
                    assert_eq!(family_for_plan(&plan), family);
                    check_cell(&plan, &sb, m, family, seed ^ 0xa11);
                }
            }
        }
    }
}

#[test]
fn skinny_decode_family_passes_the_matrix_at_one_row() {
    let cfg = NmConfig::new(2, 8, 16).expect("2:8:16");
    for storage in storages() {
        for (si, (k, n)) in RAGGED.into_iter().enumerate() {
            let seed = 9500 + si as u64;
            let sb = operand(cfg, k, n, seed);
            let plan = Planner::new(a100_80g())
                .plan_stored(ShapeClass::Decode(1), storage, 1, n, k, cfg)
                .expect("decode plan");
            assert_eq!(family_for_plan(&plan), KernelFamily::SkinnyDecode);
            check_cell(&plan, &sb, 1, KernelFamily::SkinnyDecode, seed ^ 0xdec);
        }
    }
}
