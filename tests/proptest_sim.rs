//! Property-based tests on the simulator substrate: occupancy, the L2
//! split, and the timing model must obey their structural invariants for
//! arbitrary inputs.

use gpu_sim::device::{a100_80g, paper_devices};
use gpu_sim::l2::{split_traffic, BlockTraffic};
use gpu_sim::occupancy::{occupancy, BlockResources};
use gpu_sim::roofline::Roofline;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Occupancy never improves when a block demands more of any resource.
    #[test]
    fn occupancy_is_monotone_in_resources(
        threads in 32usize..=1024,
        regs in 16usize..=255,
        smem_kb in 0usize..=160,
    ) {
        let dev = a100_80g();
        let base = BlockResources { threads, regs_per_thread: regs, smem_bytes: smem_kb * 1024 };
        let occ0 = occupancy(&dev, &base);
        for bump in [
            BlockResources { threads: (threads + 32).min(1024), ..base },
            BlockResources { regs_per_thread: (regs + 16).min(255), ..base },
            BlockResources { smem_bytes: (smem_kb + 8) * 1024, ..base },
        ] {
            let occ1 = occupancy(&dev, &bump);
            prop_assert!(
                occ1.blocks_per_sm <= occ0.blocks_per_sm,
                "more demand cannot raise residency: {:?} -> {:?}",
                occ0.blocks_per_sm,
                occ1.blocks_per_sm
            );
        }
    }

    /// Resident warps never exceed the architectural slots.
    #[test]
    fn occupancy_respects_warp_slots(
        threads in 1usize..=1024,
        regs in 1usize..=255,
        smem_kb in 0usize..=164,
    ) {
        for dev in paper_devices() {
            let occ = occupancy(&dev, &BlockResources {
                threads,
                regs_per_thread: regs,
                smem_bytes: smem_kb * 1024,
            });
            prop_assert!(occ.warps_per_sm <= dev.max_warps_per_sm);
            prop_assert!(occ.occupancy <= 1.0 + 1e-12);
        }
    }

    /// The L2 split conserves bytes and keeps the miss fraction in [0, 1].
    #[test]
    fn l2_split_conserves_bytes(
        gy in 1usize..64,
        gx in 1usize..64,
        wave in 1usize..512,
        a_kb in 0usize..256,
        b_kb in 0usize..256,
        p_kb in 0usize..64,
    ) {
        let dev = a100_80g();
        let t = BlockTraffic {
            a_bytes: (a_kb * 1024) as f64,
            bcol_bytes: (b_kb * 1024) as f64,
            private_bytes: (p_kb * 1024) as f64,
        };
        let s = split_traffic(&dev, gy, gx, wave, &t, 8);
        let raw = (gy * gx) as f64 * t.total();
        prop_assert!((0.0..=1.0).contains(&s.miss_fraction));
        prop_assert!((s.dram_bytes + s.l2_hit_bytes - raw).abs() <= raw * 1e-9 + 1e-9);
        prop_assert!(s.dram_bytes >= -1e-9 && s.l2_hit_bytes >= -1e-9);
    }

    /// The roofline is monotone in AI and clamps at peak.
    #[test]
    fn roofline_monotone(ai1 in 0.01f64..1000.0, ai2 in 0.01f64..1000.0) {
        for dev in paper_devices() {
            let r = Roofline::from_device(&dev);
            let (lo, hi) = if ai1 < ai2 { (ai1, ai2) } else { (ai2, ai1) };
            prop_assert!(r.attainable(lo) <= r.attainable(hi) + 1e-6);
            prop_assert!(r.attainable(hi) <= r.peak_flops + 1e-6);
        }
    }
}

mod timing_properties {
    use super::*;
    use gpu_sim::l2::BlockTraffic;
    use gpu_sim::occupancy::BlockResources;
    use gpu_sim::timing::{estimate, KernelProfile, PipelineMode};

    fn profile(
        grid: (usize, usize),
        iters: usize,
        comp: f64,
        bytes: f64,
        pipeline: PipelineMode,
    ) -> KernelProfile {
        KernelProfile {
            name: "prop".into(),
            grid,
            resources: BlockResources {
                threads: 128,
                regs_per_thread: 64,
                smem_bytes: 32 * 1024,
            },
            iters_per_block: iters,
            comp_cycles_per_iter: comp,
            lds_cycles_per_iter: comp / 8.0,
            g2s_per_iter: BlockTraffic {
                a_bytes: bytes / 2.0,
                bcol_bytes: bytes / 2.0,
                private_bytes: 0.0,
            },
            dependent_load_chains: 0.0,
            pipeline,
            inner_double_buffer: pipeline == PipelineMode::DoubleBuffered,
            stg_bytes_per_block: 4096.0,
            useful_flops: 1e9,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// More work (iterations) never takes less time.
        #[test]
        fn time_monotone_in_iterations(
            iters in 1usize..64,
            comp in 256.0f64..8192.0,
            bytes in 1024.0f64..262144.0,
        ) {
            let dev = a100_80g();
            for pipe in [PipelineMode::Serial, PipelineMode::DoubleBuffered] {
                let t1 = estimate(&dev, &profile((16, 16), iters, comp, bytes, pipe))
                    .unwrap()
                    .seconds;
                let t2 = estimate(&dev, &profile((16, 16), iters + 1, comp, bytes, pipe))
                    .unwrap()
                    .seconds;
                prop_assert!(t2 >= t1, "{pipe:?}: {t2} < {t1}");
            }
        }

        /// Double buffering never loses to the serial pipeline with
        /// otherwise identical per-iteration quantities and resources.
        #[test]
        fn double_buffering_never_hurts_at_fixed_resources(
            iters in 1usize..64,
            comp in 256.0f64..8192.0,
            bytes in 1024.0f64..262144.0,
        ) {
            let dev = a100_80g();
            let ts = estimate(&dev, &profile((16, 16), iters, comp, bytes, PipelineMode::Serial))
                .unwrap()
                .seconds;
            let td = estimate(
                &dev,
                &profile((16, 16), iters, comp, bytes, PipelineMode::DoubleBuffered),
            )
            .unwrap()
            .seconds;
            prop_assert!(td <= ts * 1.0001, "double buffered {td} slower than serial {ts}");
        }

        /// Reports are well-formed for arbitrary inputs.
        #[test]
        fn reports_are_well_formed(
            gy in 1usize..128,
            gx in 1usize..128,
            iters in 1usize..128,
            comp in 1.0f64..100000.0,
            bytes in 0.0f64..1e7,
        ) {
            let dev = a100_80g();
            let rep = estimate(
                &dev,
                &profile((gy, gx), iters, comp, bytes, PipelineMode::DoubleBuffered),
            )
            .unwrap();
            prop_assert!(rep.seconds > 0.0 && rep.seconds.is_finite());
            prop_assert!(rep.cycles > 0.0 && rep.cycles.is_finite());
            prop_assert!(rep.waves >= 1);
            prop_assert!(rep.blocks_per_sm >= 1);
            prop_assert!((0.0..=1.0).contains(&rep.traffic.miss_fraction));
        }
    }
}
