//! Cross-crate performance-model invariants: the simulated timing must
//! reproduce the paper's qualitative claims on every device, and the
//! analysis model's predictions must be consistent with the simulator.

use nm_spmm::analysis::ai::BlockAi;
use nm_spmm::analysis::packing::expected_ratio;
use nm_spmm::kernels::params::BlockingParams;
use nm_spmm::kernels::{DenseGemmKernel, NmSparseKernel, NmSpmmKernel, NmVersion, SputnikKernel};
use nm_spmm::prelude::*;
use nm_spmm::sim::device::{a100_80g, paper_devices};
use nm_spmm::workloads::levels::benchmark_levels;

#[test]
fn speedup_grows_with_sparsity_and_stays_below_ideal() {
    // Fig. 9's green dashed line: the computation-reduction bound M/N.
    for dev in paper_devices() {
        let dense = DenseGemmKernel::new(BlockingParams::large())
            .estimate(&dev, 4096, 4096, 4096)
            .expect("dense");
        let mut last = 0.0;
        for cfg in benchmark_levels() {
            let rep = NmSpmmKernel::new(NmVersion::V3, BlockingParams::large())
                .estimate(&dev, 4096, 4096, 4096, cfg, None)
                .expect("estimate");
            let speedup = dense.seconds / rep.seconds;
            assert!(
                speedup > last,
                "{}: speedup must grow with sparsity ({speedup} !> {last} at {cfg})",
                dev.name
            );
            assert!(
                speedup <= cfg.ideal_speedup() * 1.001,
                "{}: speedup {speedup} exceeds the ideal {} at {cfg}",
                dev.name,
                cfg.ideal_speedup()
            );
            last = speedup;
        }
    }
}

#[test]
fn step_wise_versions_are_ordered_everywhere() {
    // Fig. 7: V3 ≤ V2 ≤ V1 in time, at every sparsity level on every GPU
    // (small tolerance for wave-quantization noise).
    for dev in paper_devices() {
        for cfg in benchmark_levels() {
            let t = |v| {
                NmSpmmKernel::new(v, BlockingParams::large())
                    .estimate(&dev, 4096, 4096, 4096, cfg, None)
                    .expect("estimate")
                    .seconds
            };
            let (t1, t2, t3) = (t(NmVersion::V1), t(NmVersion::V2), t(NmVersion::V3));
            assert!(t2 <= t1 * 1.001, "{}@{cfg}: V2 {t2} > V1 {t1}", dev.name);
            assert!(t3 <= t2 * 1.02, "{}@{cfg}: V3 {t3} > V2 {t2}", dev.name);
        }
    }
}

#[test]
fn sparsity_aware_gains_concentrate_at_high_sparsity() {
    // §IV-B: at 50%/62.5% V1 is already strong (V3 gains small); at
    // 75%/87.5% the V2+V3 optimizations matter more on every device.
    for dev in paper_devices() {
        let gain = |cfg: NmConfig| {
            let t1 = NmSpmmKernel::new(NmVersion::V1, BlockingParams::large())
                .estimate(&dev, 4096, 4096, 4096, cfg, None)
                .expect("v1")
                .seconds;
            let t3 = NmSpmmKernel::new(NmVersion::V3, BlockingParams::large())
                .estimate(&dev, 4096, 4096, 4096, cfg, None)
                .expect("v3")
                .seconds;
            t1 / t3
        };
        let levels = benchmark_levels();
        let moderate = gain(levels[0]);
        let high = gain(levels[3]);
        assert!(
            high > moderate,
            "{}: V1->V3 gain at 87.5% ({high}) must exceed the gain at 50% ({moderate})",
            dev.name
        );
    }
}

#[test]
fn nm_spmm_beats_both_baselines_on_the_dataset_sample() {
    let dev = a100_80g();
    for cfg in benchmark_levels() {
        for (m, n, k) in [(512usize, 4096usize, 4096usize), (2048, 11008, 4096)] {
            let ours = NmSpmmKernel::auto(NmVersion::V3, m, n)
                .estimate(&dev, m, n, k, cfg, None)
                .expect("ours")
                .seconds;
            let nmsp = NmSparseKernel
                .estimate(&dev, m, n, k, cfg)
                .expect("nmsparse")
                .seconds;
            let sput = SputnikKernel.estimate(&dev, m, n, k, cfg).seconds;
            assert!(
                ours < nmsp,
                "{cfg} {m}x{n}x{k}: NM-SpMM {ours} !< nmSPARSE {nmsp}"
            );
            assert!(
                ours < sput,
                "{cfg} {m}x{n}x{k}: NM-SpMM {ours} !< Sputnik {sput}"
            );
        }
    }
}

#[test]
fn a100_gains_more_from_sparsity_than_consumer_cards() {
    // §IV-D: "On the 3090 and 4090 … NM-SpMM shows smaller performance
    // gains from N:M sparsity".
    let cfg = benchmark_levels()[3]; // 87.5%
    let mut speedups = Vec::new();
    for dev in paper_devices() {
        let dense = DenseGemmKernel::new(BlockingParams::large())
            .estimate(&dev, 4096, 4096, 4096)
            .expect("dense");
        let rep = NmSpmmKernel::new(NmVersion::V3, BlockingParams::large())
            .estimate(&dev, 4096, 4096, 4096, cfg, None)
            .expect("ours");
        speedups.push(dense.seconds / rep.seconds);
    }
    assert!(
        speedups[0] > speedups[1] && speedups[0] > speedups[2],
        "A100 speedup {} must exceed 3090 {} and 4090 {}",
        speedups[0],
        speedups[1],
        speedups[2]
    );
}

#[test]
fn packed_ai_prediction_is_consistent_with_measured_ratio() {
    // The expected-union model and the measured col_info ratio agree for
    // random patterns (the basis of the analytic estimates).
    let cfg = NmConfig::new(2, 16, 32).expect("config");
    let b = MatrixF32::random(1024, 512, 3);
    let sb = NmSparseMatrix::prune(
        &b,
        cfg,
        nm_spmm::core::prune::PrunePolicy::Random { seed: 17 },
    )
    .expect("prune");
    let layout = nm_spmm::core::colinfo::preprocess(&sb, 256, 128).expect("preprocess");
    let measured = layout.col_info.mean_packing_ratio();
    let predicted = expected_ratio(cfg, 128 / 32);
    assert!(
        (measured - predicted).abs() < 0.05,
        "measured ρ {measured} vs predicted {predicted}"
    );
}

#[test]
fn block_ai_decreases_with_sparsity_at_fixed_blocking() {
    // Eq. (3) through the actual planner: at fixed Table I parameters, the
    // *unpacked* block AI falls as sparsity rises even though ks adapts.
    let dev = a100_80g();
    let mut last = f64::INFINITY;
    for cfg in benchmark_levels() {
        let plan = NmSpmmKernel::new(NmVersion::V1, BlockingParams::large())
            .plan(&dev, 4096, 4096, 4096, cfg)
            .expect("plan");
        let b = plan.blocking;
        let ai = BlockAi {
            ms: b.params.ms,
            ns: b.params.ns,
            ks: b.ks,
            ws: b.ws,
        }
        .flops_per_byte();
        assert!(
            ai < last,
            "unpacked AI must fall with sparsity: {ai} !< {last}"
        );
        last = ai;
    }
}

#[test]
fn efficiency_reports_are_well_formed() {
    let dev = a100_80g();
    for cfg in benchmark_levels() {
        for (m, n, k) in [(256usize, 512usize, 512usize), (4096, 4096, 4096)] {
            let rep = NmSpmmKernel::auto(NmVersion::V3, m, n)
                .estimate(&dev, m, n, k, cfg, None)
                .expect("estimate");
            assert!(rep.seconds > 0.0 && rep.seconds.is_finite());
            assert!(rep.cycles > 0.0);
            assert!(
                (0.0..=1.0).contains(&rep.efficiency),
                "eff {}",
                rep.efficiency
            );
            assert!(rep.waves >= 1);
            assert!(rep.blocks_per_sm >= 1);
            assert!((0.0..=1.0).contains(&rep.traffic.miss_fraction));
        }
    }
}
