//! Property-based tests on the core data structures and the end-to-end
//! numeric path: for arbitrary shapes, configurations and seeds, the
//! format's invariants and the equivalence of all execution paths must
//! hold.

use nm_spmm::core::colinfo::preprocess;
use nm_spmm::core::parallel::{spmm_parallel, CpuSpmmOptions, Strategy as CpuStrategy};
use nm_spmm::core::prune::{select, PrunePolicy};
use nm_spmm::core::spmm::{gemm_reference, spmm_reference};
use nm_spmm::kernels::{NmSpmmKernel, NmVersion};
use nm_spmm::prelude::*;
use proptest::prelude::*;

/// Arbitrary valid (N, M, L) with M ∈ {2,4,8,16,32}, N ≤ M.
fn arb_config() -> impl Strategy<Value = NmConfig> {
    (
        0usize..5,
        1usize..=32,
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16)],
    )
        .prop_map(|(mi, nraw, l)| {
            let m = 2usize << mi; // 2,4,8,16,32
            let n = 1 + (nraw - 1) % m;
            NmConfig::new(n, m, l).expect("constructed valid")
        })
}

fn arb_policy() -> impl Strategy<Value = PrunePolicy> {
    prop_oneof![
        Just(PrunePolicy::Magnitude),
        any::<u64>().prop_map(|seed| PrunePolicy::Random { seed }),
        Just(PrunePolicy::Strided),
        Just(PrunePolicy::FirstN),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compression is lossless on the kept entries and zero elsewhere.
    #[test]
    fn compress_decompress_roundtrip(
        cfg in arb_config(),
        policy in arb_policy(),
        k in 1usize..96,
        n in 1usize..64,
        seed in 0u64..1000,
    ) {
        let b = MatrixF32::random(k, n, seed);
        let sb = NmSparseMatrix::prune(&b, cfg, policy).expect("prune");
        sb.validate().expect("canonical");
        let dec = sb.decompress();
        prop_assert_eq!(dec.shape(), (k, n));
        let mask = sb.dense_mask();
        for i in 0..k {
            for j in 0..n {
                if mask.get(i, j) == 1.0 {
                    prop_assert_eq!(dec.get(i, j), b.get(i, j));
                } else {
                    prop_assert_eq!(dec.get(i, j), 0.0);
                }
            }
        }
    }

    /// Exactly N entries survive per fully-interior pruning window column.
    #[test]
    fn selection_counts_per_window(
        cfg in arb_config(),
        policy in arb_policy(),
        windows in 1usize..4,
        seed in 0u64..1000,
    ) {
        let k = windows * cfg.m;
        let n = 2 * cfg.l;
        let b = MatrixF32::random(k, n, seed);
        let d = select(&b, cfg, policy);
        d.validate(cfg).expect("canonical selection");
        prop_assert_eq!(d.w(), windows * cfg.n);
        prop_assert_eq!(d.q(), 2);
        let sb = NmSparseMatrix::compress(&b, cfg, d).expect("compress");
        let mask = sb.dense_mask();
        for wi in 0..windows {
            for wj in 0..2 {
                let mut kept = 0usize;
                for t in 0..cfg.m {
                    // A vector is kept iff its first element survives.
                    if mask.get(wi * cfg.m + t, wj * cfg.l) == 1.0 {
                        kept += 1;
                    }
                }
                prop_assert_eq!(kept, cfg.n, "window ({}, {})", wi, wj);
            }
        }
    }

    /// Eq. (1) on the compressed form equals dense GEMM on the decompressed
    /// matrix, for arbitrary shapes (including ones that need padding).
    #[test]
    fn spmm_equals_dense_on_decompressed(
        cfg in arb_config(),
        m in 1usize..24,
        k in 1usize..64,
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let a = MatrixF32::random(m, k, seed);
        let b = MatrixF32::random(k, n, seed + 1);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Magnitude).expect("prune");
        let via_sparse = spmm_reference(&a, &sb);
        let via_dense = gemm_reference(&a, &sb.decompress());
        prop_assert!(
            via_sparse.allclose(&via_dense, 1e-3, 1e-4),
            "max diff {}",
            via_sparse.max_abs_diff(&via_dense)
        );
    }

    /// The packing and non-packing CPU paths agree with the oracle.
    #[test]
    fn cpu_paths_agree(
        cfg in arb_config(),
        m in 1usize..20,
        kw in 1usize..4,
        nw in 1usize..4,
        seed in 0u64..1000,
    ) {
        let k = kw * cfg.m * 2;
        let n = nw * cfg.l * 2;
        let a = MatrixF32::random(m, k, seed);
        let b = MatrixF32::random(k, n, seed + 1);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed }).expect("prune");
        let oracle = spmm_reference(&a, &sb);
        for strategy in [CpuStrategy::Packing, CpuStrategy::NonPacking] {
            let opts = CpuSpmmOptions { strategy, row_block: 1 + (m % 7), ..Default::default() };
            let got = spmm_parallel(&a, &sb, &opts);
            prop_assert!(
                got.allclose(&oracle, 1e-3, 1e-4),
                "{:?}: max diff {}",
                strategy,
                got.max_abs_diff(&oracle)
            );
        }
    }

    /// Offline pre-processing invariants: packed positions round-trip and
    /// the mean ratio is within the analytic bounds.
    #[test]
    fn packing_preprocess_invariants(
        nw in 1usize..5,
        seed in 0u64..1000,
    ) {
        let cfg = NmConfig::new(2, 16, 8).expect("config");
        let k = 64;
        let n = nw * 16;
        let b = MatrixF32::random(k, n, seed);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed }).expect("prune");
        let layout = preprocess(&sb, 32, 16).expect("preprocess");
        let ci = &layout.col_info;
        let lower = cfg.n as f64 / cfg.m as f64;
        let upper = 1.0;
        let ratio = ci.mean_packing_ratio();
        prop_assert!(ratio >= lower - 1e-12 && ratio <= upper + 1e-12, "ratio {}", ratio);
        for bk in 0..ci.kblocks {
            for bj in 0..ci.cblocks {
                let list = ci.block(bk, bj);
                prop_assert!(list.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    /// Bit-packed index storage round-trips for every legal M.
    #[test]
    fn bitpack_roundtrip(
        cfg in arb_config(),
        w in 1usize..16,
        q in 1usize..16,
        seed in 0u64..1000,
    ) {
        use nm_spmm::core::index::IndexMatrix;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..w * q).map(|_| rng.gen_range(0..cfg.m) as u8).collect();
        let d = IndexMatrix::from_vec(w, q, data);
        let packed = d.bit_pack(cfg);
        let back = IndexMatrix::bit_unpack(&packed, w, q, cfg).expect("unpack");
        prop_assert_eq!(d, back);
    }
}

proptest! {
    // The simulated kernel is expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The simulated V3 kernel agrees with the oracle on arbitrary problems.
    #[test]
    fn simulated_kernel_matches_oracle(
        m in 1usize..80,
        n in 1usize..90,
        k in 1usize..160,
        nn in prop_oneof![Just(2usize), Just(4), Just(6), Just(8)],
        seed in 0u64..100,
    ) {
        let cfg = NmConfig::new(nn, 16, 32).expect("config");
        let a = MatrixF32::random(m, k, seed);
        let b = MatrixF32::random(k, n, seed + 1);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed }).expect("prune");
        let oracle = spmm_reference(&a, &sb);
        let dev = a100_80g();
        let run = NmSpmmKernel::auto(NmVersion::V3, m, n).run(&dev, &a, &sb).expect("run");
        prop_assert!(
            run.c.allclose(&oracle, 1e-3, 1e-4),
            "max diff {}",
            run.c.max_abs_diff(&oracle)
        );
    }
}
