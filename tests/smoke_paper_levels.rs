//! Smoke test: every paper sparsity level survives the full
//! prune → compress → `spmm_reference` path on ragged shapes, agreeing
//! with the `f64` dense oracle on the decompressed matrix.

use nm_spmm::core::spmm::{gemm_reference_f64, spmm_reference};
use nm_spmm::prelude::*;

/// Ragged shapes: neither `k` a multiple of `M = 16` nor `n` a multiple of
/// the vector length, so both axes need padding windows.
const RAGGED_SHAPES: [(usize, usize, usize); 3] = [
    (13, 37, 29), // (m, k, n) — everything coprime to the window sizes
    (1, 17, 1),   // degenerate single-row / single-column
    (21, 100, 50),
];

#[test]
fn paper_levels_round_trip_on_ragged_shapes() {
    for cfg in NmConfig::paper_levels(8) {
        for (mi, (m, k, n)) in RAGGED_SHAPES.iter().copied().enumerate() {
            assert_ne!(k % cfg.m, 0, "shape {mi} must be ragged along k");
            let a = MatrixF32::random(m, k, 11 + mi as u64);
            let b = MatrixF32::random(k, n, 23 + mi as u64);

            let sb = NmSparseMatrix::prune_magnitude(&b, cfg)
                .unwrap_or_else(|e| panic!("{}: prune failed on shape {mi}: {e}", cfg.label()));
            sb.validate()
                .unwrap_or_else(|e| panic!("{}: invalid compressed form: {e}", cfg.label()));

            // The compressed form keeps exactly the advertised density on
            // the kept entries (ragged tail windows may keep fewer).
            let kept = k * n - sb.decompress().count_zeros();
            let upper = (cfg.density() * (k * n) as f64 * 1.05) as usize + cfg.m * cfg.l;
            assert!(
                kept <= upper,
                "{}: kept {kept} > bound {upper}",
                cfg.label()
            );

            let via_sparse = spmm_reference(&a, &sb);
            let oracle = gemm_reference_f64(&a, &sb.decompress());
            assert_eq!(via_sparse.shape(), (m, n));
            assert!(
                via_sparse.allclose(&oracle, 1e-3, 1e-4),
                "{}: shape {mi} ({m}x{k}x{n}) diverges from f64 oracle: max diff {}",
                cfg.label(),
                via_sparse.max_abs_diff(&oracle)
            );
        }
    }
}
