//! Backend parity: the native CPU V1→V3 ladder, the scalar reference and
//! the f64 oracle must agree on the same compressed operands — across
//! ragged shapes, all four paper sparsity levels, and on both sides of
//! (and exactly at) the 70% packing threshold.

use nm_spmm::core::spmm::{gemm_reference_f64, spmm_reference};
use nm_spmm::kernels::cpu::{spmm_cpu, uses_packing, CpuTiling};
use nm_spmm::kernels::plan::Planner;
use nm_spmm::kernels::{BackendKind, CpuBackend, ExecBackend, NmVersion};
use nm_spmm::prelude::*;
use nm_spmm::sim::device::a100_80g;
use proptest::prelude::*;

const VERSIONS: [NmVersion; 3] = [NmVersion::V1, NmVersion::V2, NmVersion::V3];

/// Assert V1 == V2 == V3 == reference against the f64 oracle.
fn assert_parity(m: usize, k: usize, n: usize, cfg: NmConfig, seed: u64) {
    let a = MatrixF32::random(m, k, seed);
    let b = MatrixF32::random(k, n, seed ^ 0xabcd);
    let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
    let oracle = gemm_reference_f64(&a, &sb.decompress());
    let reference = spmm_reference(&a, &sb);
    assert!(
        reference.allclose(&oracle, 1e-3, 1e-4),
        "{cfg}: reference vs f64 oracle diff {}",
        reference.max_abs_diff(&oracle)
    );
    let tiling = CpuTiling::auto(cfg, m, n, k).unwrap();
    for version in VERSIONS {
        let got = spmm_cpu(version, &a, &sb, tiling).unwrap();
        assert!(
            got.allclose(&oracle, 1e-3, 1e-4),
            "{cfg} {version:?} ({m}x{n}x{k}): vs f64 oracle diff {}",
            got.max_abs_diff(&oracle)
        );
        assert!(
            got.allclose(&reference, 1e-3, 1e-4),
            "{cfg} {version:?} ({m}x{n}x{k}): vs reference diff {}",
            got.max_abs_diff(&reference)
        );
    }
}

#[test]
fn parity_across_all_four_paper_levels() {
    for (i, cfg) in NmConfig::paper_levels(32).into_iter().enumerate() {
        assert_parity(96, 160, 128, cfg, 100 + i as u64);
    }
    // Same levels at a small vector length (exercises narrow windows).
    for (i, cfg) in NmConfig::paper_levels(4).into_iter().enumerate() {
        assert_parity(33, 96, 52, cfg, 200 + i as u64);
    }
}

#[test]
fn parity_on_ragged_shapes() {
    // Every dimension deliberately misaligned with M, L and the tile sizes.
    let shapes = [(37, 67, 45), (1, 129, 31), (63, 250, 100), (130, 70, 7)];
    for (i, (m, k, n)) in shapes.into_iter().enumerate() {
        assert_parity(m, k, n, NmConfig::new(2, 16, 4).unwrap(), 300 + i as u64);
        assert_parity(m, k, n, NmConfig::new(6, 16, 8).unwrap(), 400 + i as u64);
    }
}

#[test]
fn parity_at_the_exact_seventy_percent_boundary() {
    // 3:10 is exactly 70% sparse — the packed path engages (>= threshold);
    // 4:10 (60%) sits just below — the direct path stays. Both must agree
    // with the oracle, so the strategy flip is invisible in the numerics.
    let at = NmConfig::new(3, 10, 5).unwrap();
    let below = NmConfig::new(4, 10, 5).unwrap();
    assert!((at.sparsity() - 0.70).abs() < 1e-12, "3:10 is the boundary");
    assert!(uses_packing(at), "exactly 70% must take the packed path");
    assert!(!uses_packing(below), "60% must stay on the direct path");
    assert_parity(41, 60, 55, at, 500);
    assert_parity(41, 60, 55, below, 501);
}

#[test]
fn cpu_backend_runs_plans_and_rejects_unalignable_blocking() {
    let dev = a100_80g();
    // A plannable config: every backend executes the same plan.
    let cfg = NmConfig::new(2, 8, 32).unwrap();
    let plan = Planner::new(dev.clone()).plan(64, 128, 96, cfg).unwrap();
    let a = MatrixF32::random(64, 96, 7);
    let b = MatrixF32::random(96, 128, 8);
    let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
    let expect = spmm_reference(&a, &sb);
    for version in VERSIONS {
        let run = CpuBackend::new(version).run(&dev, &plan, &a, &sb).unwrap();
        assert!(run.c.allclose(&expect, 1e-3, 1e-4), "{version:?}");
        assert_eq!(run.backend, BackendKind::Cpu(version));
    }

    // L = 48 divides no autotune candidate: the plan falls back to the
    // preset, whose ns cannot drive the CPU tiles — structured error, not
    // a panic.
    let cfg48 = NmConfig::new(2, 16, 48).unwrap();
    let plan48 = Planner::new(dev.clone()).plan(64, 96, 96, cfg48).unwrap();
    let b48 = MatrixF32::random(96, 96, 9);
    let sb48 = NmSparseMatrix::prune_magnitude(&b48, cfg48).unwrap();
    let err = CpuBackend::new(NmVersion::V3)
        .run(&dev, &plan48, &a, &sb48)
        .unwrap_err();
    assert!(
        matches!(err, NmError::InvalidBlocking { .. }),
        "expected InvalidBlocking, got: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: the whole ladder agrees with the f64 oracle on arbitrary
    /// shapes at every paper level.
    #[test]
    fn ladder_parity_holds_for_arbitrary_shapes(
        m in 1usize..80,
        k in 1usize..200,
        n in 1usize..120,
        level in 0usize..4,
        seed in 0u64..1000,
    ) {
        let cfg = NmConfig::paper_levels(8)[level];
        let a = MatrixF32::random(m, k, seed);
        let b = MatrixF32::random(k, n, seed ^ 0x77);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let oracle = gemm_reference_f64(&a, &sb.decompress());
        let tiling = CpuTiling::auto(cfg, m, n, k).unwrap();
        for version in VERSIONS {
            let got = spmm_cpu(version, &a, &sb, tiling).unwrap();
            prop_assert!(
                got.allclose(&oracle, 1e-3, 1e-4),
                "{} {:?} ({}x{}x{}): max diff {}",
                cfg, version, m, n, k, got.max_abs_diff(&oracle)
            );
        }
    }
}
