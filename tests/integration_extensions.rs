//! End-to-end tests of the extension features working together: the full
//! deployment pipeline (permute → layer-wise allocate → prune → serialize →
//! load into a prepared session → forward → simulate → energy), the
//! auto-tuner, and the sparse-tensor-core comparison.

use nm_spmm::analysis::packing::expected_ratio;
use nm_spmm::core::batched::spmv;
use nm_spmm::core::inspect::{measured_packing_ratio, pattern_stats};
use nm_spmm::core::layerwise::{allocate, spec_from_weights};
use nm_spmm::core::permute;
use nm_spmm::core::prune::PrunePolicy;
use nm_spmm::core::serialize;
use nm_spmm::core::spmm::spmm_reference;
use nm_spmm::kernels::{autotune, NmSpmmKernel, NmVersion, SessionBuilder, SparseTensorCoreKernel};
use nm_spmm::prelude::*;
use nm_spmm::sim::energy;

#[test]
fn full_deployment_pipeline() {
    let (m, k, n) = (32usize, 128usize, 96usize);
    let weights = MatrixF32::random(k, n, 11);
    let activations = MatrixF32::random(m, k, 12);
    let m_window = 16;
    let l = 8;

    // 1. Layer-wise allocation picks an N for this (single) layer.
    let specs = vec![spec_from_weights("layer", &weights, m_window, l, m)];
    let alloc = allocate(&specs, m_window, 0.3);
    let cfg = NmConfig::new(alloc.n_per_layer[0], m_window, l).expect("config");

    // 2. Channel permutation improves retained magnitude (or is a no-op).
    let perm = permute::search(&weights, cfg, 2);
    assert!(perm.retained_after >= perm.retained_before - 1e-9);
    let wp = perm.apply_to_b(&weights);
    let ap = perm.apply_to_a(&activations);

    // 3. Prune, serialize, reload.
    let sb = NmSparseMatrix::prune_magnitude(&wp, cfg).expect("prune");
    let blob = serialize::to_bytes(&sb);
    let sb = serialize::from_bytes(&blob).expect("reload");

    // 4. Prepared-session CPU execution matches the oracle — and a
    //    second forward against the same handle agrees, proving the
    //    staged state is reusable.
    let mut session = SessionBuilder::new(a100_80g()).build().expect("session");
    let layer = session.load(sb.clone(), m).expect("load layer");
    let c = layer.forward(&ap).expect("forward").c;
    let oracle = spmm_reference(&ap, &sb);
    assert!(c.allclose(&oracle, 1e-3, 1e-4));
    let again = layer.forward(&ap).expect("forward again").c;
    assert!(again.allclose(&oracle, 1e-3, 1e-4));

    // 5. Simulated GPU execution agrees, and energy is accounted.
    let dev = a100_80g();
    let run = NmSpmmKernel::auto(NmVersion::V3, m, n)
        .run(&dev, &ap, &sb)
        .expect("simulate");
    assert!(run.c.allclose(&oracle, 1e-3, 1e-4));
    let e = energy::estimate(&dev, &run.stats, &run.report);
    assert!(e.total_j() > 0.0 && e.total_j().is_finite());

    // 6. The decode-shape path agrees too.
    let x: Vec<f32> = ap.row(0).to_vec();
    let y = spmv(&x, &sb).expect("spmv");
    for (a, b) in y.iter().zip(oracle.row(0)) {
        assert!((a - b).abs() <= 1e-4 + 1e-3 * b.abs());
    }
}

#[test]
fn inspection_predicts_packing_behavior() {
    let cfg = NmConfig::new(2, 16, 8).expect("config");
    let b = MatrixF32::random(128, 64, 21);

    let random = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 2 }).expect("prune");
    let strided = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Strided).expect("prune");

    let s_rand = pattern_stats(&random);
    let s_strided = pattern_stats(&strided);
    assert!(s_strided.adjacent_window_jaccard > s_rand.adjacent_window_jaccard);

    // Measured ratio for random patterns tracks the analytic expectation.
    let measured = measured_packing_ratio(&random, 32, 32).expect("ratio");
    let predicted = expected_ratio(cfg, 32 / cfg.l);
    assert!(
        (measured - predicted).abs() < 0.08,
        "measured {measured} vs predicted {predicted}"
    );
    // And strided packs to the floor.
    let floor = measured_packing_ratio(&strided, 32, 32).expect("ratio");
    assert!((floor - 0.125).abs() < 1e-9);
}

#[test]
fn autotuner_beats_or_matches_every_table_i_preset() {
    let dev = a100_80g();
    let cfg = NmConfig::new(2, 16, 32).expect("config");
    let (m, n, k) = (1024usize, 2048usize, 2048usize);
    let tuned = autotune::tune(&dev, m, n, k, cfg).expect("tune");
    for (label, p) in nm_spmm::kernels::BlockingParams::table_i() {
        if let Ok(rep) = NmSpmmKernel::new(NmVersion::V3, p).estimate(&dev, m, n, k, cfg, None) {
            assert!(
                tuned.report.seconds <= rep.seconds * 1.0001,
                "tuned {} loses to preset {label} {}",
                tuned.report.seconds,
                rep.seconds
            );
        }
    }
}

#[test]
fn sparse_tensor_core_comparison_is_scoped_to_2_4() {
    let dev = a100_80g();
    // NM-SpMM handles every level; the hardware path only 2:4.
    for cfg in [
        NmConfig::new(2, 16, 32).expect("config"),
        NmConfig::new(6, 16, 32).expect("config"),
    ] {
        assert!(SparseTensorCoreKernel
            .estimate(&dev, 1024, 1024, 1024, cfg)
            .is_err());
        assert!(NmSpmmKernel::auto(NmVersion::V3, 1024, 1024)
            .estimate(&dev, 1024, 1024, 1024, cfg, None)
            .is_ok());
    }
}

#[test]
fn serialized_blob_survives_simulated_execution() {
    // Serialize -> corrupt a value byte -> reload still structurally valid
    // (values are not validated, only structure) -> execution still runs.
    let cfg = NmConfig::new(4, 16, 8).expect("config");
    let b = MatrixF32::random(64, 64, 31);
    let sb = NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune");
    let blob = serialize::to_bytes(&sb).to_vec();
    let back = serialize::from_bytes(&blob).expect("reload");
    let a = MatrixF32::random(16, 64, 32);
    let dev = a100_80g();
    let run = NmSpmmKernel::auto(NmVersion::V3, 16, 64)
        .run(&dev, &a, &back)
        .expect("run");
    assert!(run.c.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
}
