//! End-to-end tests of the planner / engine / session subsystem: cache
//! hits on identical keys, JSON persistence round trips, planning
//! determinism (as a property over arbitrary shapes), and the batched
//! layer-sweep driver tying the planner to both execution paths through
//! the session API.

use nm_spmm::core::spmm::spmm_reference;
use nm_spmm::kernels::plan::{PlanCache, PlanKey, Planner};
use nm_spmm::kernels::{BackendKind, Engine, SessionBuilder};
use nm_spmm::prelude::*;
use nm_spmm::sim::device::{a100_80g, paper_devices, rtx3090};
use nm_spmm::workloads::llama::LLAMA_FAMILY;
use nm_spmm::workloads::sweep::{sweep_model, ExecutePolicy, SweepOptions};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nm-spmm-integration-{}-{name}", std::process::id()));
    p
}

#[test]
fn replanning_identical_key_is_a_counted_cache_hit() {
    let cfg = NmConfig::new(4, 16, 32).unwrap();
    let mut planner = Planner::new(a100_80g());
    let first = planner.plan(1024, 4096, 4096, cfg).unwrap();
    assert_eq!(planner.cache().misses(), 1);
    assert_eq!(planner.cache().hits(), 0);
    let second = planner.plan(1024, 4096, 4096, cfg).unwrap();
    assert_eq!(planner.cache().misses(), 1, "no re-tune on a warm key");
    assert_eq!(planner.cache().hits(), 1, "the hit must be counted");
    assert_eq!(first, second);
}

#[test]
fn plan_cache_json_save_load_round_trip() {
    let path = tmp_path("cache-roundtrip.json");
    let _ = std::fs::remove_file(&path);

    // Populate across devices and levels through the public API.
    let mut expected = Vec::new();
    let mut merged = PlanCache::new();
    for dev in paper_devices() {
        let mut planner = Planner::new(dev);
        for cfg in [
            NmConfig::new(8, 16, 32).unwrap(),
            NmConfig::new(2, 16, 32).unwrap(),
            NmConfig::new(2, 4, 32).unwrap(), // exercises the sparse-TC estimate
        ] {
            expected.push(planner.plan(512, 1024, 2048, cfg).unwrap());
        }
        for plan in planner.into_cache().plans() {
            merged.insert(plan.clone());
        }
    }
    merged.save(&path).unwrap();

    let reloaded = PlanCache::load(&path).unwrap();
    assert_eq!(reloaded.len(), expected.len());
    for plan in &expected {
        assert_eq!(
            reloaded.peek(&plan.key),
            Some(plan),
            "{}: loaded plan must be identical to the saved one",
            plan.key
        );
    }
    // Saving the reloaded cache reproduces the file byte for byte.
    assert_eq!(
        merged.to_json().unwrap(),
        reloaded.to_json().unwrap(),
        "serialization must be canonical"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn engine_reload_serves_plans_without_recomputation() {
    let path = tmp_path("engine-reload.json");
    let _ = std::fs::remove_file(&path);
    let cfg = NmConfig::new(2, 16, 32).unwrap();

    let mut cold = Engine::with_cache_file(rtx3090(), &path).unwrap();
    let plan = cold.plan(2048, 4096, 4096, cfg).unwrap();
    assert!(cold.save().unwrap());

    let mut warm = Engine::with_cache_file(rtx3090(), &path).unwrap();
    let replay = warm.plan(2048, 4096, 4096, cfg).unwrap();
    let stats = warm.stats();
    assert_eq!(stats.hits, 1, "plan must come from the reloaded cache");
    assert_eq!(stats.misses, 0);
    assert_eq!(plan, replay);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sweep_through_session_executes_and_caches() {
    let mut session = SessionBuilder::new(a100_80g()).build().unwrap();
    let cfg = NmConfig::new(2, 16, 32).unwrap();
    let opts = SweepOptions {
        seq_len: 256,
        execute: ExecutePolicy::Scaled(64),
        seed: 11,
        decode: true,
    };
    let report = sweep_model(&mut session, &LLAMA_FAMILY[0], cfg, &opts).unwrap();
    assert_eq!(report.layers.len(), 5);
    for layer in &report.layers {
        assert!(layer.speedup() > 1.0, "{}", layer.layer);
        let exec = layer.exec.expect("execution requested");
        assert!(
            exec.sim_vs_cpu_max_diff < 1e-2,
            "{}: sim and CPU disagree by {}",
            layer.layer,
            exec.sim_vs_cpu_max_diff
        );
        // The decode lane planned every batch size and ran one real
        // m=1 step through the prepared SpMV path.
        assert_eq!(layer.decode.len(), 4, "{}", layer.layer);
        assert!(layer.decode.iter().all(|d| d.plan.key.shape.is_decode()));
        let diff = exec.decode_vs_cpu_max_diff.expect("decode step ran");
        assert!(
            diff < 1e-2,
            "{}: decode step and CPU disagree by {diff}",
            layer.layer
        );
    }
    // Second identical sweep: every plan is a cache hit.
    let again = sweep_model(&mut session, &LLAMA_FAMILY[0], cfg, &opts).unwrap();
    assert_eq!(again.cache_hits, 5);
    assert_eq!(again.cache_misses, 0);
}

#[test]
fn session_execution_matches_reference_on_every_backend() {
    let mut session = SessionBuilder::new(a100_80g()).build().unwrap();
    for cfg in [
        NmConfig::new(8, 16, 32).unwrap(),
        NmConfig::new(2, 16, 32).unwrap(),
    ] {
        let a = MatrixF32::random(64, 192, 41);
        let b = MatrixF32::random(192, 96, 42);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let expect = spmm_reference(&a, &sb);
        for backend in BackendKind::all() {
            let layer = session.load_on(sb.clone(), 64, backend).unwrap();
            let run = layer.forward(&a).unwrap();
            assert!(
                run.c.allclose(&expect, 1e-3, 1e-4),
                "{cfg} via {backend}: max diff {}",
                run.c.max_abs_diff(&expect)
            );
            assert!(run.wall_seconds > 0.0, "{backend} must report wall time");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `Planner::plan` is a pure function of its key: two fresh planners
    /// (no shared state) must produce identical plans for any valid
    /// problem, and any two shapes in the same padded class share one.
    #[test]
    fn planner_is_deterministic_for_a_fixed_key(
        m in 1usize..1500,
        n in 32usize..2048,
        k in 32usize..2048,
        level in 0usize..4,
        jitter in 0usize..32,
    ) {
        let cfg = NmConfig::paper_levels(32)[level];
        let dev = a100_80g();
        let a = Planner::new(dev.clone()).plan(m, n, k, cfg).unwrap();
        let b = Planner::new(dev.clone()).plan(m, n, k, cfg).unwrap();
        prop_assert_eq!(&a, &b, "fresh planners must agree");

        // A jittered shape that pads to the same class must share the key
        // (and therefore, by purity, the plan).
        let m2 = (m + jitter).min(m.div_ceil(32) * 32);
        let key_a = PlanKey::new(&dev, m, n, k, cfg);
        let key_b = PlanKey::new(&dev, m2, n, k, cfg);
        prop_assert_eq!(&key_a, &key_b, "same padded class, same key");
        let c = Planner::new(dev).plan(m2, n, k, cfg).unwrap();
        prop_assert_eq!(&a, &c);
    }
}
