//! Serving × sliced storage: a decode-pinned layer staged as SELL-C-σ
//! must be invisible through the whole serving stack. A burst of decode
//! requests coalesced by the continuous batcher against the **sliced**
//! layer returns bit-for-bit the rows the **row-major** twin produces
//! serving each request alone — the storage format never leaks into the
//! numerics, even through batch coalescing.

use nm_spmm::prelude::*;
use nm_spmm::sim::device::a100_80g;
use std::sync::Arc;
use std::time::Duration;

/// Two prepared layers over the same weights and the same decode-band
/// plan path: one auto (row-major), one pinned to a sliced layout.
fn twin_layers(
    k: usize,
    n: usize,
    layout: SlicedLayout,
    seed: u64,
) -> (Arc<PreparedLayer>, Arc<PreparedLayer>) {
    let cfg = NmConfig::new(2, 8, 16).expect("config");
    let b = MatrixF32::random(k, n, seed);
    let sb = Arc::new(NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune"));
    let mut session = SessionBuilder::new(a100_80g()).build().expect("session");
    let spec = LoadSpec::rows(DECODE_MAX_ROWS).backend(BackendKind::Cpu(NmVersion::V3));
    let rowmajor = session.load_with(sb.clone(), spec.clone()).expect("load");
    let sliced = session
        .load_with(sb, spec.storage(StorageFormat::Sliced(layout)))
        .expect("load sliced");
    assert_eq!(sliced.storage(), Some(StorageFormat::Sliced(layout)));
    (Arc::new(rowmajor), Arc::new(sliced))
}

#[test]
fn batched_decode_on_a_sliced_layer_is_bit_identical_to_the_row_major_twin() {
    let (k, n) = (90, 49); // both ragged against L = 16 and the window depth
    for (li, layout) in [
        SlicedLayout::new(1, 1).expect("C=1"),
        SlicedLayout::new(4, 16).expect("C=4"),
        SlicedLayout::DEFAULT,
    ]
    .into_iter()
    .enumerate()
    {
        let (rowmajor, sliced) = twin_layers(k, n, layout, 7100 + li as u64);
        let xs: Vec<Vec<f32>> = (0..DECODE_MAX_ROWS)
            .map(|i| MatrixF32::random(1, k, 7200 + (li * 16 + i) as u64).into_vec())
            .collect();

        // Sequential oracle: every request alone on the row-major twin.
        let want: Vec<Vec<f32>> = xs
            .iter()
            .map(|x| rowmajor.forward_vec(x).expect("row-major").c.into_vec())
            .collect();

        // The sliced layer serves the same burst through the batcher;
        // pause/resume forces maximal coalescing (deterministically).
        let server = Server::start(
            sliced,
            ServerConfig {
                queue_capacity: 2 * DECODE_MAX_ROWS,
                linger: Duration::from_micros(50),
                ..Default::default()
            },
        )
        .expect("server");
        server.pause();
        let tickets: Vec<Ticket> = xs
            .iter()
            .map(|x| {
                server
                    .submit_decode(x.clone(), SubmitOptions::default())
                    .expect("admitted")
            })
            .collect();
        server.resume();

        for (i, t) in tickets.into_iter().enumerate() {
            let done = t.wait().expect("served");
            assert_eq!(done.c.shape(), (1, n));
            assert_eq!(done.dispatch.kind, BatchKind::Decode);
            assert!(done.dispatch.batch_size >= 1);
            assert_eq!(
                done.c.as_slice(),
                &want[i][..],
                "C={} σ={} request {i}: sliced serving must be bit-identical \
                 to the row-major twin",
                layout.slice_height,
                layout.sort_window,
            );
        }
        let stats = server.stats();
        assert_eq!(stats.completed, DECODE_MAX_ROWS as u64);
        assert_eq!(stats.shed + stats.rejected, 0);
    }
}
