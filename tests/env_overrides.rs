//! The `NM_SPMM_*` override precedence contract, pinned end to end:
//!
//! 1. **Explicit beats environment** — a builder call always wins over
//!    the corresponding environment variable.
//! 2. **Environment beats default** — with the builder silent, a set
//!    variable decides; unset (or empty) falls back to the built-in
//!    default.
//! 3. **Strict validation** — an unrecognized value is a structured
//!    build error, never a silent fallback to the default.
//!
//! Environment variables are process-global, so every claim lives in
//! ONE `#[test]` — the test binary is its own process, and a single
//! function cannot race itself.

use nm_spmm::core::sliced::STORAGE_ENV;
use nm_spmm::kernels::measure::{AutotuneMode, AUTOTUNE_ENV};
use nm_spmm::kernels::{BackendKind, Session, SessionBuilder, BACKEND_ENV};
use nm_spmm::prelude::*;
use nm_spmm::sim::device::a100_80g;

/// Set a variable for one scope; restore "unset" on drop even when an
/// assertion inside the scope panics.
struct EnvGuard(&'static str);

impl EnvGuard {
    fn set(name: &'static str, value: &str) -> Self {
        std::env::set_var(name, value);
        EnvGuard(name)
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        std::env::remove_var(self.0);
    }
}

fn build() -> Session {
    SessionBuilder::new(a100_80g()).build().expect("session")
}

#[test]
fn explicit_builder_calls_beat_env_vars_beat_defaults_and_typos_fail_loudly() {
    for var in [BACKEND_ENV, STORAGE_ENV, AUTOTUNE_ENV] {
        assert!(
            std::env::var(var).is_err(),
            "{var} must be unset when this test starts"
        );
    }

    // --- Defaults: nothing set, builder silent. ---
    let session = build();
    assert_eq!(session.backend(), BackendKind::Cpu(NmVersion::V3));
    assert_eq!(session.storage(), None, "storage stays planned by default");
    assert_eq!(session.autotune(), AutotuneMode::Off);

    // --- NM_SPMM_BACKEND ---
    {
        let _g = EnvGuard::set(BACKEND_ENV, "codegen");
        // Environment beats the built-in default...
        assert_eq!(build().backend(), BackendKind::Codegen);
        // ...but an explicit builder call beats the environment.
        let explicit = SessionBuilder::new(a100_80g())
            .backend(BackendKind::Cpu(NmVersion::V1))
            .build()
            .expect("explicit backend builds with the env var set");
        assert_eq!(explicit.backend(), BackendKind::Cpu(NmVersion::V1));
    }
    {
        let _g = EnvGuard::set(BACKEND_ENV, "warp_speed");
        let err = SessionBuilder::new(a100_80g()).build().unwrap_err();
        assert!(
            matches!(err, NmError::Persist { .. }),
            "a typo'd backend must be a structured error, got: {err}"
        );
        // The explicit call never consults the variable, so the same
        // garbage value is invisible to it.
        let explicit = SessionBuilder::new(a100_80g())
            .backend(BackendKind::Sim)
            .build()
            .expect("explicit backend must not validate the unused env var");
        assert_eq!(explicit.backend(), BackendKind::Sim);
    }
    {
        let _g = EnvGuard::set(BACKEND_ENV, "");
        assert_eq!(
            build().backend(),
            BackendKind::Cpu(NmVersion::V3),
            "an empty variable means unset, not an error"
        );
    }

    // --- NM_SPMM_STORAGE ---
    let layout = SlicedLayout::new(4, 16).expect("layout");
    {
        let _g = EnvGuard::set(STORAGE_ENV, "sliced:4:16");
        assert_eq!(build().storage(), Some(StorageFormat::Sliced(layout)));
        let explicit = SessionBuilder::new(a100_80g())
            .storage(StorageFormat::RowMajor)
            .build()
            .expect("explicit storage builds with the env var set");
        assert_eq!(explicit.storage(), Some(StorageFormat::RowMajor));
    }
    {
        let _g = EnvGuard::set(STORAGE_ENV, "diagonal");
        let err = SessionBuilder::new(a100_80g()).build().unwrap_err();
        assert!(
            matches!(err, NmError::Unsupported { .. }),
            "a typo'd storage format must be a structured error, got: {err}"
        );
    }

    // --- NM_SPMM_AUTOTUNE ---
    {
        let _g = EnvGuard::set(AUTOTUNE_ENV, "quick");
        assert_eq!(build().autotune(), AutotuneMode::Quick);
        let explicit = SessionBuilder::new(a100_80g())
            .autotune(AutotuneMode::Off)
            .build()
            .expect("explicit autotune builds with the env var set");
        assert_eq!(explicit.autotune(), AutotuneMode::Off);
    }
    {
        let _g = EnvGuard::set(AUTOTUNE_ENV, "overnight");
        let err = SessionBuilder::new(a100_80g()).build().unwrap_err();
        assert!(
            matches!(err, NmError::Unsupported { .. }),
            "a typo'd autotune mode must be a structured error, got: {err}"
        );
    }

    // --- Every guard dropped: the defaults are back. ---
    let session = build();
    assert_eq!(session.backend(), BackendKind::Cpu(NmVersion::V3));
    assert_eq!(session.storage(), None);
    assert_eq!(session.autotune(), AutotuneMode::Off);
}
