//! Decode-path parity: the skinny row rungs (1–3 activation rows,
//! including the `m = 1` SpMV shape) must produce oracle-grade numerics
//! through every micro-kernel ISA this host can execute, every ladder
//! version, and every paper sparsity level — and the decode entry points
//! must be *free*: a prefill-prepared layer serves `forward_vec` with
//! zero additional offline staging, returning bit-for-bit the same
//! numbers as the matrix path on a one-row operand.

use nm_spmm::core::spmm::gemm_reference_f64;
use nm_spmm::kernels::cpu::{
    offline_staging_passes, spmm_cpu_prepared, spmv_cpu_prepared, CpuPrepared, CpuTiling,
};
use nm_spmm::kernels::simd::MicroKernel;
use nm_spmm::kernels::{BackendKind, NmVersion, SessionBuilder, ShapeClass};
use nm_spmm::prelude::*;
use nm_spmm::sim::device::a100_80g;
use proptest::prelude::*;

const VERSIONS: [NmVersion; 3] = [NmVersion::V1, NmVersion::V2, NmVersion::V3];

/// Decode-band row counts: the SpMV shape plus the 2-row and 1-row rungs
/// of the 4→2→1 ladder (3 rows takes the 2-rung *and* the 1-rung).
const SKINNY_ROWS: [usize; 3] = [1, 2, 3];

#[test]
fn skinny_rows_match_the_f64_oracle_across_isas_versions_and_levels() {
    // Ragged k (not a multiple of the window depth M) exercises the
    // padded-tail gather; ragged n exercises the partial column window.
    for mk in MicroKernel::available() {
        for (li, cfg) in NmConfig::paper_levels(16).into_iter().enumerate() {
            for (mi, m) in SKINNY_ROWS.into_iter().enumerate() {
                let (k, n) = (90, 49);
                let seed = 4000 + (li * 8 + mi) as u64;
                let a = MatrixF32::random(m, k, seed);
                let b = MatrixF32::random(k, n, seed ^ 0x77);
                let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
                let oracle = gemm_reference_f64(&a, &sb.decompress());
                let tiling = CpuTiling::auto(cfg, m, n, k).unwrap();
                for version in VERSIONS {
                    let prep = CpuPrepared::with_kernel(version, &sb, tiling, mk).unwrap();
                    let got = spmm_cpu_prepared(&a, &sb, &prep).unwrap();
                    assert!(
                        got.allclose(&oracle, 1e-3, 1e-4),
                        "{mk} {cfg} {version:?} m={m}: vs f64 oracle diff {}",
                        got.max_abs_diff(&oracle)
                    );
                }
            }
        }
        // L = 32 drives the dual-accumulator (×32) skinny tiles.
        for (li, cfg) in NmConfig::paper_levels(32).into_iter().enumerate() {
            let (m, k, n) = (1, 70, 64);
            let seed = 4800 + li as u64;
            let a = MatrixF32::random(m, k, seed);
            let b = MatrixF32::random(k, n, seed ^ 0x77);
            let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
            let oracle = gemm_reference_f64(&a, &sb.decompress());
            let tiling = CpuTiling::auto(cfg, m, n, k).unwrap();
            for version in VERSIONS {
                let prep = CpuPrepared::with_kernel(version, &sb, tiling, mk).unwrap();
                let got = spmm_cpu_prepared(&a, &sb, &prep).unwrap();
                assert!(
                    got.allclose(&oracle, 1e-3, 1e-4),
                    "{mk} {cfg} {version:?} wide m=1: vs f64 oracle diff {}",
                    got.max_abs_diff(&oracle)
                );
            }
        }
    }
}

#[test]
fn spmv_prepared_matches_the_oracle_through_every_isa() {
    let cfg = NmConfig::new(2, 8, 16).unwrap();
    let (k, n) = (96, 48);
    let x: Vec<f32> = MatrixF32::random(1, k, 51).into_vec();
    let b = MatrixF32::random(k, n, 52);
    let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
    let a = MatrixF32::from_vec(1, k, x.clone());
    let oracle = gemm_reference_f64(&a, &sb.decompress());
    let tiling = CpuTiling::auto(cfg, 1, n, k).unwrap();
    for mk in MicroKernel::available() {
        for version in VERSIONS {
            let prep = CpuPrepared::with_kernel(version, &sb, tiling, mk).unwrap();
            let y = spmv_cpu_prepared(&x, &sb, &prep).unwrap();
            let got = MatrixF32::from_vec(1, n, y);
            assert!(
                got.allclose(&oracle, 1e-3, 1e-4),
                "{mk} {version:?}: prepared SpMV vs f64 oracle diff {}",
                got.max_abs_diff(&oracle)
            );
        }
    }
}

#[test]
fn decode_steps_reuse_prefill_staging_with_zero_extra_passes() {
    // The load-bearing invariant of the decode refactor: a layer prepared
    // once (at prefill batch size) serves decode steps from the same
    // staged state. The staging counter proves it — across every ladder
    // version, many decode calls, not one additional offline pass.
    let cfg = NmConfig::new(2, 8, 32).unwrap();
    let (k, n) = (128, 96);
    let b = MatrixF32::random(k, n, 61);
    let sb = std::sync::Arc::new(NmSparseMatrix::prune_magnitude(&b, cfg).unwrap());
    let mut session = SessionBuilder::new(a100_80g()).build().unwrap();
    for version in VERSIONS {
        let layer = session
            .load_on(sb.clone(), 128, BackendKind::Cpu(version))
            .unwrap();
        let before = offline_staging_passes();
        let x: Vec<f32> = MatrixF32::random(1, k, 62).into_vec();
        let first = layer.forward_vec(&x).unwrap();
        for _ in 0..4 {
            let again = layer.forward_vec(&x).unwrap();
            assert_eq!(
                again.c.as_slice(),
                first.c.as_slice(),
                "{version:?}: decode steps must be deterministic"
            );
        }
        // The matrix path at m = 1 shares the same staged state too.
        let a = MatrixF32::from_vec(1, k, x.clone());
        let mat = layer.forward(&a).unwrap();
        assert_eq!(
            mat.c.as_slice(),
            first.c.as_slice(),
            "{version:?}: forward_vec and the 1-row matrix path must agree bit-for-bit"
        );
        assert_eq!(
            offline_staging_passes() - before,
            0,
            "{version:?}: decode required additional offline staging"
        );
    }
}

#[test]
fn decode_plans_carry_the_decode_shape_class() {
    // Planning the same weights at prefill and decode batch sizes must
    // produce distinct cache keys; the decode key carries the row count.
    let cfg = NmConfig::new(2, 8, 32).unwrap();
    let mut session = SessionBuilder::new(a100_80g()).build().unwrap();
    let prefill = session.plan(512, 96, 128, cfg).unwrap();
    assert_eq!(prefill.key.shape, ShapeClass::Prefill);
    for m in [1usize, 2, 4, 8] {
        let plan = session.plan(m, 96, 128, cfg).unwrap();
        assert_eq!(plan.key.shape, ShapeClass::Decode(m));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: `forward_vec(x)` is exactly `forward` of the 1×k dense
    /// operand — same staged state, same rung, bit-for-bit — for every
    /// ladder version, arbitrary (k, n), and every paper level.
    #[test]
    fn forward_vec_equals_the_one_row_matrix_path(
        k in 1usize..160,
        n in 1usize..96,
        level in 0usize..4,
        wide in 0usize..2,
        seed in 0u64..1000,
    ) {
        let l = if wide == 1 { 32 } else { 16 };
        let cfg = NmConfig::paper_levels(l)[level];
        let b = MatrixF32::random(k, n, seed ^ 0xdec0);
        let sb = std::sync::Arc::new(NmSparseMatrix::prune_magnitude(&b, cfg).unwrap());
        let x: Vec<f32> = MatrixF32::random(1, k, seed).into_vec();
        let a = MatrixF32::from_vec(1, k, x.clone());
        let mut session = SessionBuilder::new(a100_80g()).build().unwrap();
        for version in VERSIONS {
            let layer = session.load_on(sb.clone(), 64, BackendKind::Cpu(version)).unwrap();
            let vec_run = layer.forward_vec(&x).unwrap();
            let mat_run = layer.forward(&a).unwrap();
            prop_assert_eq!(vec_run.c.shape(), (1, n));
            prop_assert_eq!(vec_run.c.as_slice(), mat_run.c.as_slice());
        }
    }
}
