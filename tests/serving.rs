//! Serving-layer concurrency contracts: the bounded queue rejects (never
//! blocks) at exactly its bound, dispatch is FIFO within a priority and
//! interactive-before-bulk across priorities, every admitted request
//! resolves with a result or a structured error — no silent drops — and
//! continuous batching is **bit-identical** to serving each request
//! sequentially through the same prepared layer.
//!
//! The tests use the server's pause/resume harness hook to make batching
//! deterministic: while paused the batcher admits and pools requests but
//! forms no batches, so "submit a burst, then resume" forces exactly the
//! coalescing a concurrent burst would get, without racing the worker.

use nm_spmm::prelude::*;
use nm_spmm::sim::device::a100_80g;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A decode-band prepared layer on the explicit V3 CPU backend (the
/// backend override pins the plan path — no measured autotune, so each
/// proptest case stays cheap).
fn decode_layer(k: usize, n: usize, seed: u64) -> Arc<PreparedLayer> {
    let cfg = NmConfig::new(2, 8, 16).expect("config");
    let b = MatrixF32::random(k, n, seed);
    let sb = Arc::new(NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune"));
    let mut session = SessionBuilder::new(a100_80g()).build().expect("session");
    let layer = session
        .load_with(
            sb,
            LoadSpec::rows(DECODE_MAX_ROWS).backend(BackendKind::Cpu(NmVersion::V3)),
        )
        .expect("load");
    Arc::new(layer)
}

/// Submit `count` decode requests at one priority and return the tickets.
fn submit_burst(server: &Server, k: usize, count: usize, prio: Priority, seed: u64) -> Vec<Ticket> {
    (0..count)
        .map(|i| {
            let x = MatrixF32::random(1, k, seed + i as u64).into_vec();
            server
                .submit_decode(x, SubmitOptions::priority(prio))
                .expect("admitted")
        })
        .collect()
}

#[test]
fn interactive_dispatches_before_bulk_and_fifo_within_each() {
    let (k, n) = (64, 48);
    let layer = decode_layer(k, n, 11);
    // A batch cap of 2 splits each 4-burst into two batches, so the
    // dispatch counter exposes the order batches formed in.
    let server = Server::start(
        layer,
        ServerConfig {
            queue_capacity: 16,
            max_decode_batch: 2,
            linger: Duration::from_micros(50),
            ..Default::default()
        },
    )
    .expect("server");

    // Bulk submitted FIRST — if it still dispatches last, priority won.
    server.pause();
    let bulk = submit_burst(&server, k, 4, Priority::Bulk, 100);
    let inter = submit_burst(&server, k, 4, Priority::Interactive, 200);
    server.resume();

    let inter_orders: Vec<u64> = inter
        .into_iter()
        .map(|t| {
            let done = t.wait().expect("served");
            assert_eq!(done.c.shape(), (1, n));
            assert_eq!(done.dispatch.kind, BatchKind::Decode);
            assert!(done.dispatch.batch_size <= 2);
            done.dispatch.order
        })
        .collect();
    let bulk_orders: Vec<u64> = bulk
        .into_iter()
        .map(|t| t.wait().expect("served").dispatch.order)
        .collect();

    // Every interactive batch dispatched before any bulk batch.
    let max_inter = *inter_orders.iter().max().unwrap();
    let min_bulk = *bulk_orders.iter().min().unwrap();
    assert!(
        max_inter < min_bulk,
        "interactive orders {inter_orders:?} must all precede bulk orders {bulk_orders:?}"
    );
    // FIFO within each priority: dispatch order is non-decreasing in
    // submission order, and neighbours coalesced under the cap of 2.
    for orders in [&inter_orders, &bulk_orders] {
        assert!(
            orders.windows(2).all(|w| w[0] <= w[1]),
            "dispatch order must follow submission order: {orders:?}"
        );
        assert_eq!(orders[0], orders[1], "first pair shares a batch");
        assert_eq!(orders[2], orders[3], "second pair shares a batch");
        assert!(orders[1] < orders[2], "pairs are distinct batches");
    }
}

#[test]
fn backpressure_rejects_at_exactly_the_bound_and_recovers() {
    let (k, n) = (64, 32);
    let layer = decode_layer(k, n, 22);
    let capacity = 3;
    let server = Server::start(
        layer,
        ServerConfig {
            queue_capacity: capacity,
            ..Default::default()
        },
    )
    .expect("server");

    // Freeze dispatch so the queue genuinely fills.
    server.pause();
    let admitted = submit_burst(&server, k, capacity, Priority::Interactive, 300);
    assert_eq!(server.queue_depth(), capacity);

    // Submission `capacity + 1` fails fast with the structured error —
    // it does not block, and it does not evict anyone.
    for extra in 0..2 {
        let x = MatrixF32::random(1, k, 400 + extra).into_vec();
        match server.submit_decode(x, SubmitOptions::default()) {
            Err(NmError::Overloaded { capacity: cap }) => assert_eq!(cap, capacity),
            other => panic!("expected Overloaded at the bound, got {other:?}"),
        }
    }
    assert_eq!(server.queue_depth(), capacity, "rejects must not evict");

    // Recovery: drain, then the same queue admits again.
    server.resume();
    for t in admitted {
        let done = t.wait().expect("served after resume");
        assert_eq!(done.c.shape(), (1, n));
    }
    let t = submit_burst(&server, k, 1, Priority::Interactive, 500).remove(0);
    t.wait().expect("admitted after drain");

    let stats = server.stats();
    assert_eq!(stats.submitted, capacity as u64 + 1);
    assert_eq!(stats.completed, capacity as u64 + 1);
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.shed, 0);
}

#[test]
fn every_admitted_request_resolves_with_a_result_or_a_structured_error() {
    let (k, n) = (64, 32);
    let layer = decode_layer(k, n, 33);
    let server = Server::start(
        layer,
        ServerConfig {
            queue_capacity: 16,
            ..Default::default()
        },
    )
    .expect("server");

    // Six requests: even indices carry a 1 ms deadline and are held past
    // it while the server is paused, odd indices have no deadline.
    server.pause();
    let tickets: Vec<(usize, Ticket)> = (0..6)
        .map(|i| {
            let x = MatrixF32::random(1, k, 600 + i as u64).into_vec();
            let opts = if i % 2 == 0 {
                SubmitOptions::default().with_deadline(Duration::from_millis(1))
            } else {
                SubmitOptions::default()
            };
            (i, server.submit_decode(x, opts).expect("admitted"))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    server.resume();

    let (mut served, mut shed) = (0u64, 0u64);
    for (i, t) in tickets {
        // `wait` itself is the no-silent-drop proof: a dropped reply
        // channel would surface as Canceled, not hang.
        match t.wait() {
            Ok(done) => {
                assert_eq!(i % 2, 1, "deadline-free request {i} must be served");
                assert_eq!(done.c.shape(), (1, n));
                served += 1;
            }
            Err(NmError::DeadlineExceeded {
                deadline_ms,
                queued_ms,
            }) => {
                assert_eq!(i % 2, 0, "only deadlined requests may be shed");
                assert_eq!(deadline_ms, 1);
                assert!(queued_ms >= deadline_ms, "shed before the budget ran out");
                shed += 1;
            }
            Err(e) => panic!("request {i}: unexpected error {e:?}"),
        }
    }
    assert_eq!((served, shed), (3, 3));

    // The ledger balances: everything submitted is accounted for.
    let stats = server.stats();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.completed + stats.shed, stats.submitted);
    assert_eq!(stats.queue_depth, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Continuous batching must be invisible in the numbers: a burst of
    /// decode requests coalesced into one skinny kernel call — plus a
    /// prefill rider through `forward_batch` — returns bit-for-bit the
    /// rows the same prepared layer produces serving each request alone.
    #[test]
    fn batched_serving_is_bit_identical_to_sequential(
        k in 16usize..80,
        n in 8usize..48,
        reqs in 1usize..=DECODE_MAX_ROWS,
        seed in 0u64..1000,
    ) {
        let layer = decode_layer(k, n, seed);
        let xs: Vec<Vec<f32>> = (0..reqs)
            .map(|i| MatrixF32::random(1, k, seed ^ (7000 + i as u64)).into_vec())
            .collect();
        let a = MatrixF32::random(3, k, seed ^ 0x5afe);

        // Sequential oracle: one request per kernel call.
        let seq: Vec<Vec<f32>> = xs
            .iter()
            .map(|x| layer.forward_vec(x).expect("sequential").c.into_vec())
            .collect();
        let seq_prefill = layer.forward(&a).expect("sequential prefill").c;

        // Batched: the paused burst coalesces maximally on resume.
        let server = Server::start(layer.clone(), ServerConfig::default()).expect("server");
        server.pause();
        let tickets: Vec<Ticket> = xs
            .iter()
            .map(|x| server.submit_decode(x.clone(), SubmitOptions::default()).expect("admitted"))
            .collect();
        let prefill_ticket = server.submit(a, SubmitOptions::default()).expect("admitted");
        server.resume();

        for (i, t) in tickets.into_iter().enumerate() {
            let done = t.wait().expect("served");
            prop_assert_eq!(done.c.shape(), (1, n));
            // Bit-identity, not allclose: stacking rows into one fused
            // call must not perturb a single mantissa bit.
            prop_assert_eq!(done.c.as_slice(), &seq[i][..], "decode request {}", i);
            prop_assert!(done.dispatch.batch_size >= 1);
        }
        let done = prefill_ticket.wait().expect("served");
        prop_assert_eq!(done.dispatch.kind, BatchKind::Prefill);
        prop_assert_eq!(done.c.as_slice(), seq_prefill.as_slice());
    }
}
