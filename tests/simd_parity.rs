//! Micro-kernel ISA parity: every micro-kernel this host can execute
//! (scalar, plus AVX2 / AVX-512 on x86_64 or NEON on aarch64) must produce
//! the same ladder results as the f64 oracle — across ragged shapes, all
//! four paper sparsity levels, and both tile widths (`L = 16` exercises
//! the 4×16 tile, `L = 32` the 4×32 dual-accumulator tile).
//!
//! Runtime dispatch must also be *provably safe*: kernels for ISAs the
//! host does not support are unconstructible, so no test (and no caller)
//! can ever reach an illegal instruction.

use nm_spmm::core::spmm::gemm_reference_f64;
use nm_spmm::kernels::cpu::{spmm_cpu_prepared, CpuPrepared, CpuTiling};
use nm_spmm::kernels::simd::{Isa, MicroKernel};
use nm_spmm::kernels::NmVersion;
use nm_spmm::prelude::*;
use proptest::prelude::*;

const VERSIONS: [NmVersion; 3] = [NmVersion::V1, NmVersion::V2, NmVersion::V3];

/// Run the whole ladder under one explicit micro-kernel and compare to the
/// f64 oracle.
fn assert_kernel_parity(mk: MicroKernel, m: usize, k: usize, n: usize, cfg: NmConfig, seed: u64) {
    let a = MatrixF32::random(m, k, seed);
    let b = MatrixF32::random(k, n, seed ^ 0x51d);
    let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
    let oracle = gemm_reference_f64(&a, &sb.decompress());
    let tiling = CpuTiling::auto(cfg, m, n, k).unwrap();
    for version in VERSIONS {
        let prep = CpuPrepared::with_kernel(version, &sb, tiling, mk).unwrap();
        assert_eq!(prep.isa(), mk.isa());
        let got = spmm_cpu_prepared(&a, &sb, &prep).unwrap();
        assert!(
            got.allclose(&oracle, 1e-3, 1e-4),
            "{mk} {cfg} {version:?} ({m}x{n}x{k}): vs f64 oracle diff {}",
            got.max_abs_diff(&oracle)
        );
    }
}

#[test]
fn every_available_kernel_matches_the_oracle_across_paper_levels() {
    for mk in MicroKernel::available() {
        // L = 32: the 4×32 dual-accumulator tile carries the fast path.
        for (i, cfg) in NmConfig::paper_levels(32).into_iter().enumerate() {
            assert_kernel_parity(mk, 48, 96, 64, cfg, 600 + i as u64);
        }
        // L = 16: the 4×16 tile.
        for (i, cfg) in NmConfig::paper_levels(16).into_iter().enumerate() {
            assert_kernel_parity(mk, 33, 80, 48, cfg, 700 + i as u64);
        }
    }
}

#[test]
fn every_available_kernel_matches_on_ragged_shapes() {
    // Dimensions misaligned with M, L and every tile size, including a
    // k that is not a multiple of the k-block (the tail-block fast path)
    // and a k that is not a multiple of M (the padded-tail fallback).
    let shapes = [(37, 67, 45), (5, 129, 31), (63, 100, 70), (9, 40, 33)];
    for mk in MicroKernel::available() {
        for (i, (m, k, n)) in shapes.into_iter().enumerate() {
            assert_kernel_parity(
                mk,
                m,
                k,
                n,
                NmConfig::new(2, 16, 16).unwrap(),
                800 + i as u64,
            );
            assert_kernel_parity(
                mk,
                m,
                k,
                n,
                NmConfig::new(3, 10, 5).unwrap(),
                900 + i as u64,
            );
        }
    }
}

#[test]
fn dispatch_never_constructs_an_unsupported_kernel() {
    // Everything `available()` advertises is constructible and reports a
    // supported ISA; everything else is a structured error.
    let available: Vec<Isa> = MicroKernel::available().iter().map(|m| m.isa()).collect();
    assert!(available.contains(&Isa::Scalar));
    for isa in Isa::ALL {
        if available.contains(&isa) {
            assert!(isa.supported());
            assert_eq!(MicroKernel::for_isa(isa).unwrap().isa(), isa);
        } else {
            assert!(!isa.supported());
            assert!(
                MicroKernel::for_isa(isa).is_err(),
                "{isa}: unsupported ISAs must be unconstructible"
            );
        }
    }
    // The default selection is always one of the advertised kernels.
    assert!(available.contains(&MicroKernel::native().isa()));
}

#[test]
fn scalar_kernel_is_always_available_for_the_forced_fallback() {
    // CI forces this path on SIMD hosts via NM_SPMM_FORCE_SCALAR=1; the
    // kernel itself must exist everywhere unconditionally.
    assert_eq!(
        MicroKernel::for_name("scalar").unwrap(),
        MicroKernel::scalar()
    );
    assert!(Isa::Scalar.supported());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: every compiled micro-kernel agrees with the f64 oracle on
    /// arbitrary shapes at every paper level. (On an AVX2/AVX-512 host this
    /// sweeps the SIMD kernels; on aarch64 the NEON kernel; everywhere at
    /// least the scalar fallback.)
    #[test]
    fn kernel_parity_holds_for_arbitrary_shapes(
        m in 1usize..64,
        k in 1usize..160,
        n in 1usize..96,
        level in 0usize..4,
        wide in 0usize..2,
        seed in 0u64..1000,
    ) {
        let l = if wide == 1 { 32 } else { 16 };
        let cfg = NmConfig::paper_levels(l)[level];
        let a = MatrixF32::random(m, k, seed);
        let b = MatrixF32::random(k, n, seed ^ 0x99);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let oracle = gemm_reference_f64(&a, &sb.decompress());
        let tiling = CpuTiling::auto(cfg, m, n, k).unwrap();
        for mk in MicroKernel::available() {
            for version in VERSIONS {
                let prep = CpuPrepared::with_kernel(version, &sb, tiling, mk).unwrap();
                let got = spmm_cpu_prepared(&a, &sb, &prep).unwrap();
                prop_assert!(
                    got.allclose(&oracle, 1e-3, 1e-4),
                    "{} {} {:?} ({}x{}x{}): max diff {}",
                    mk, cfg, version, m, n, k, got.max_abs_diff(&oracle)
                );
            }
        }
    }
}
