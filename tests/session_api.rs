//! The prepared-session API's contract, proven end to end:
//!
//! * **prepare-once** — the offline staging probe shows that repeated
//!   `forward` calls on one [`PreparedLayer`] perform zero re-preparation,
//! * **plan-cache accounting** — loads through one [`Session`] share
//!   plans per shape class and the counters prove it,
//! * **concurrency** — `PreparedLayer: Send + Sync`, so one prepared
//!   handle serves concurrent callers producing identical results.

use nm_spmm::core::spmm::spmm_reference;
use nm_spmm::kernels::cpu::offline_staging_passes;
use nm_spmm::kernels::{BackendKind, NmVersion, PreparedLayer, Session, SessionBuilder};
use nm_spmm::prelude::*;

fn session() -> Session {
    SessionBuilder::new(a100_80g()).build().unwrap()
}

fn prune(k: usize, n: usize, cfg: NmConfig, seed: u64) -> NmSparseMatrix {
    NmSparseMatrix::prune_magnitude(&MatrixF32::random(k, n, seed), cfg).unwrap()
}

/// The acceptance-criterion proof: after `load`, the staging counter on
/// this thread never moves again, however many forwards run — for every
/// ladder step, including the packed (V2/V3, high-sparsity) path whose
/// `col_info` pre-processing is the paper's headline offline cost.
#[test]
fn repeated_forward_performs_zero_re_preparation() {
    let mut s = session();
    let cfg = NmConfig::new(2, 8, 32).unwrap(); // 75%: the packed path
    let sb = prune(256, 128, cfg, 1);
    let a0 = MatrixF32::random(64, 256, 2);
    let expect = spmm_reference(&a0, &sb);

    for version in [NmVersion::V1, NmVersion::V2, NmVersion::V3] {
        let before_load = offline_staging_passes();
        let layer = s
            .load_on(sb.clone(), 64, BackendKind::Cpu(version))
            .unwrap();
        assert_eq!(
            offline_staging_passes(),
            before_load + 1,
            "{version:?}: load must stage exactly once"
        );

        let staged = offline_staging_passes();
        for round in 0..4 {
            // Varying operands, same handle: the online path only.
            let a = if round == 0 {
                a0.clone()
            } else {
                MatrixF32::random(64, 256, 10 + round)
            };
            let run = layer.forward(&a).unwrap();
            if round == 0 {
                assert!(
                    run.c.allclose(&expect, 1e-3, 1e-4),
                    "{version:?}: max diff {}",
                    run.c.max_abs_diff(&expect)
                );
            }
        }
        assert_eq!(
            offline_staging_passes(),
            staged,
            "{version:?}: four forwards must not re-stage anything"
        );
    }
}

#[test]
fn session_counts_plan_cache_hits_across_loads() {
    let mut s = session();
    let cfg = NmConfig::new(2, 16, 32).unwrap();
    // Same shape class three times (the third via load_model), one
    // distinct shape: 2 misses, 3 hits in total.
    s.load(prune(128, 96, cfg, 1), 64).unwrap();
    s.load(prune(128, 96, cfg, 2), 64).unwrap();
    let st = s.stats();
    assert_eq!((st.entries, st.hits, st.misses), (1, 1, 1));

    let model = s
        .load_model(vec![prune(128, 96, cfg, 3), prune(96, 64, cfg, 4)], 64)
        .unwrap();
    assert_eq!((model.cache_hits(), model.cache_misses()), (1, 1));
    let st = s.stats();
    assert_eq!((st.entries, st.hits, st.misses), (2, 2, 2));

    // Planning directly shares the same cache the loads populated.
    s.plan(64, 96, 128, cfg).unwrap();
    assert_eq!(s.stats().hits, 3);
}

/// `PreparedLayer: Send + Sync` — one prepared layer serves concurrent
/// callers from plain `&` references, each computing the right answer.
#[test]
fn one_prepared_layer_serves_concurrent_callers() {
    fn assert_send_sync<T: Send + Sync>(_: &T) {}

    let mut s = session();
    let cfg = NmConfig::new(2, 8, 32).unwrap();
    let sb = prune(192, 96, cfg, 5);
    let layer = s
        .load_on(sb.clone(), 32, BackendKind::Cpu(NmVersion::V3))
        .unwrap();
    assert_send_sync(&layer);

    let layer_ref: &PreparedLayer = &layer;
    let results: Vec<(u64, MatrixF32)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|seed| {
                scope.spawn(move || {
                    let a = MatrixF32::random(32, 192, 100 + seed);
                    let run = layer_ref.forward(&a).unwrap();
                    (seed, run.c)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(results.len(), 4);
    for (seed, c) in results {
        let a = MatrixF32::random(32, 192, 100 + seed);
        let expect = spmm_reference(&a, &sb);
        assert!(
            c.allclose(&expect, 1e-3, 1e-4),
            "thread with seed {seed} disagrees: max diff {}",
            c.max_abs_diff(&expect)
        );
    }
}

/// `forward_batch` validates the whole batch before spending any compute
/// and returns per-member runs in batch order when everything agrees.
#[test]
fn forward_batch_is_validated_up_front_and_ordered() {
    let mut s = session();
    let cfg = NmConfig::new(2, 8, 16).unwrap();
    let sb = prune(128, 64, cfg, 7);
    let layer = s.load(sb.clone(), 16).unwrap();

    // Distinct row counts per member prove result ordering.
    let batch: Vec<MatrixF32> = (1..=3)
        .map(|i| MatrixF32::random(8 * i, 128, 200 + i as u64))
        .collect();
    let batch_run = layer.forward_batch(&batch).unwrap();
    assert_eq!(batch_run.len(), 3);
    for (a, run) in batch.iter().zip(&batch_run.runs) {
        assert_eq!(run.c.rows(), a.rows(), "results must stay in batch order");
        assert!(run.c.allclose(&spmm_reference(a, &sb), 1e-3, 1e-4));
    }
    // The aggregate the serving batcher consumes: one wall clock around
    // the whole fan-out plus the routing decision that produced it.
    assert!(batch_run.wall_seconds > 0.0);
    assert!(batch_run.member_seconds() > 0.0);
    assert!(!batch_run.routing.name().is_empty());

    // A mismatched member anywhere in the batch fails the whole call
    // before any work starts, naming the offender.
    let mut bad = batch.clone();
    bad.push(MatrixF32::random(8, 96, 9));
    let err = layer.forward_batch(&bad).unwrap_err();
    assert!(err.to_string().contains("batch[3]"), "{err}");
}

/// The Sim backend fits the same prepared contract: handles are reusable
/// and carry the event counts and timing report each call.
#[test]
fn sim_backend_layers_are_prepared_handles_too() {
    let mut s = session();
    let cfg = NmConfig::new(4, 16, 32).unwrap();
    let sb = prune(128, 96, cfg, 11);
    let layer = s.load_on(sb.clone(), 32, BackendKind::Sim).unwrap();
    for seed in 0..2u64 {
        let a = MatrixF32::random(32, 128, 300 + seed);
        let run = layer.forward(&a).unwrap();
        assert!(run.c.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
        assert!(run.stats.is_some() && run.report.is_some());
        assert_eq!(run.isa, None);
    }
}
