//! Golden-file snapshots of the generated WGSL: one checked-in shader
//! per kernel family × storage format at a representative blocking, so
//! any drift in the emitter shows up as a reviewable text diff.
//!
//! On mismatch the test fails with the differing line; to accept an
//! intentional emitter change, regenerate with
//!
//! ```text
//! NM_SPMM_BLESS=1 cargo test --test wgsl_snapshots
//! ```
//!
//! and commit the rewritten files under `tests/snapshots/`.

use nm_spmm::gpu::{emit_wgsl, lower, validate_wgsl, KernelFamily, KernelSpec, ValidateOptions};
use nm_spmm::prelude::*;
use std::path::PathBuf;

/// The representative blocking every snapshot uses: the 2:8:16 paper
/// level (packed band) on a 64×128 layer, prefill tiles for the ladder
/// families and the single-row tile for the decode specialization.
fn spec_for(family: KernelFamily, storage: StorageFormat) -> KernelSpec {
    let cfg = NmConfig::new(2, 8, 16).expect("2:8:16");
    let (n, k) = (64usize, 128usize);
    let w = k / cfg.m * cfg.n;
    let q = n.div_ceil(cfg.l);
    let groups = match storage {
        // Column blocks of nb = 32 → n / nb groups.
        StorageFormat::RowMajor => n / 32,
        // SELL-C-σ slices of C windows.
        StorageFormat::Sliced(layout) => q.div_ceil(layout.slice_height),
    };
    KernelSpec {
        family,
        storage,
        cfg,
        n,
        k,
        w,
        mb: if family == KernelFamily::SkinnyDecode {
            1
        } else {
            8
        },
        nb: 32,
        kb: 32,
        groups,
        packed: family.packs(),
        fma: true,
    }
}

fn snapshot_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("snapshots")
}

#[test]
fn generated_wgsl_matches_the_checked_in_snapshots() {
    let bless = std::env::var("NM_SPMM_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    let dir = snapshot_dir();
    if bless {
        std::fs::create_dir_all(&dir).expect("create snapshot dir");
    }

    let layout = SlicedLayout::new(4, 16).expect("layout");
    for family in KernelFamily::all() {
        for storage in [StorageFormat::RowMajor, StorageFormat::Sliced(layout)] {
            let spec = spec_for(family, storage);
            let ir = lower(&spec).expect("lower");
            let wgsl = emit_wgsl(&ir);
            validate_wgsl(&wgsl, &ValidateOptions::default())
                .unwrap_or_else(|e| panic!("{}: emitted WGSL failed validation: {e}", spec.name()));

            let path = dir.join(format!("{}.wgsl", spec.name()));
            if bless {
                std::fs::write(&path, &wgsl).expect("bless snapshot");
                continue;
            }
            let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing snapshot {} ({e}); run with NM_SPMM_BLESS=1 to generate",
                    path.display()
                )
            });
            if wgsl != golden {
                let diff_line = wgsl
                    .lines()
                    .zip(golden.lines())
                    .position(|(a, b)| a != b)
                    .map(|i| i + 1)
                    .unwrap_or_else(|| wgsl.lines().count().min(golden.lines().count()) + 1);
                panic!(
                    "{}: generated WGSL drifted from its snapshot (first difference at \
                     line {diff_line}); if intentional, regenerate with NM_SPMM_BLESS=1",
                    spec.name()
                );
            }
        }
    }
}

#[test]
fn snapshot_names_are_stable_and_collision_free() {
    let layout = SlicedLayout::new(4, 16).expect("layout");
    let mut names = std::collections::BTreeSet::new();
    for family in KernelFamily::all() {
        for storage in [StorageFormat::RowMajor, StorageFormat::Sliced(layout)] {
            let name = spec_for(family, storage).name();
            assert!(
                !name.contains([':', '/', ' ']),
                "{name}: snapshot file names must be path-safe"
            );
            assert!(names.insert(name.clone()), "{name}: duplicate snapshot key");
        }
    }
    assert_eq!(names.len(), 8, "one snapshot per family × storage");
}
