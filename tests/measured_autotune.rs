//! The measured-autotune contract, proven end to end through the public
//! session API:
//!
//! * **measure-once** — the measurement-pass probe shows that a second
//!   `Session::load` of the same shape re-measures nothing (the evidence
//!   is a counted plan-cache hit), both within one session and across
//!   file-backed sessions sharing a cache path,
//! * **evidence-carrying plans** — the prepared layer's plan records
//!   `Measured` provenance and the winning ladder version/tiling,
//! * **numerics** — as a property over arbitrary shapes, configurations
//!   and seeds, a measured plan's forward pass agrees with the scalar
//!   reference exactly as tightly as the cost-model plan's does.

use nm_spmm::core::spmm::spmm_reference;
use nm_spmm::kernels::measure::measurement_passes;
use nm_spmm::kernels::plan::Provenance;
use nm_spmm::kernels::{AutotuneMode, Session, SessionBuilder};
use nm_spmm::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nm-spmm-measured-{}-{name}", std::process::id()));
    p
}

fn quick_session() -> Session {
    SessionBuilder::new(a100_80g())
        .autotune(AutotuneMode::Quick)
        .build()
        .unwrap()
}

fn prune(k: usize, n: usize, cfg: NmConfig, seed: u64) -> NmSparseMatrix {
    NmSparseMatrix::prune_magnitude(&MatrixF32::random(k, n, seed), cfg).unwrap()
}

/// The acceptance-criterion proof: loading the same shape twice measures
/// once. The second load is a plan-cache hit on the host-scoped key, and
/// the measurement-pass counter — not just the cache accounting — shows
/// zero re-measurement.
#[test]
fn second_load_of_the_same_shape_re_measures_nothing() {
    let mut s = quick_session();
    let cfg = NmConfig::new(2, 8, 32).unwrap();
    let sb = prune(256, 128, cfg, 11);
    let a = MatrixF32::random(64, 256, 12);
    let expect = spmm_reference(&a, &sb);

    let before = measurement_passes();
    let first = s.load(sb.clone(), 64).unwrap();
    assert_eq!(
        measurement_passes(),
        before + 1,
        "a cold measured load runs exactly one measurement pass"
    );
    assert_eq!(first.plan().provenance, Provenance::Measured);
    let evidence = first
        .plan()
        .measured
        .expect("measured plan carries evidence");
    assert!(evidence.samples > 0);
    assert!(evidence.gflops > 0.0);
    assert!(
        first.plan().key.host.is_some(),
        "measured plans must be keyed to the host that produced the evidence"
    );

    let after_first = measurement_passes();
    let second = s.load(sb.clone(), 64).unwrap();
    assert_eq!(
        measurement_passes(),
        after_first,
        "a warm measured load must re-measure nothing"
    );
    assert_eq!(first.plan(), second.plan(), "both loads share one plan");

    // Both handles compute the same (correct) result.
    for layer in [&first, &second] {
        let run = layer.forward(&a).unwrap();
        assert!(
            run.c.allclose(&expect, 1e-3, 1e-4),
            "max diff {}",
            run.c.max_abs_diff(&expect)
        );
    }
}

/// Measured evidence survives the process boundary: a second session
/// opened on the same cache file replays the persisted winner instead of
/// re-benchmarking, and a session with autotuning off never measures.
#[test]
fn measured_evidence_persists_across_file_backed_sessions() {
    let path = tmp_path("evidence.json");
    let _ = std::fs::remove_file(&path);
    let cfg = NmConfig::new(2, 16, 32).unwrap();
    let sb = prune(256, 96, cfg, 21);

    let chosen = {
        let mut s = SessionBuilder::new(a100_80g())
            .autotune(AutotuneMode::Quick)
            .plan_cache(&path)
            .build()
            .unwrap();
        let before = measurement_passes();
        let layer = s.load(sb.clone(), 32).unwrap();
        assert_eq!(measurement_passes(), before + 1);
        layer.plan().measured.expect("evidence").ladder_version
    };

    // Same host, same cache file: the evidence replays, nothing re-runs.
    let mut s2 = SessionBuilder::new(a100_80g())
        .autotune(AutotuneMode::Quick)
        .plan_cache(&path)
        .build()
        .unwrap();
    let before = measurement_passes();
    let layer = s2.load(sb.clone(), 32).unwrap();
    assert_eq!(
        measurement_passes(),
        before,
        "persisted evidence must be replayed, not re-measured"
    );
    assert_eq!(layer.plan().provenance, Provenance::Measured);
    assert_eq!(
        layer.plan().measured.expect("evidence").ladder_version,
        chosen,
        "the replayed winner is the persisted one"
    );

    // Autotune off on the same cache: the measured path never engages —
    // `load` prepares the cost-model default and measures nothing.
    let mut s3 = SessionBuilder::new(a100_80g())
        .autotune(AutotuneMode::Off)
        .plan_cache(&path)
        .build()
        .unwrap();
    let before = measurement_passes();
    let layer = s3.load(sb, 32).unwrap();
    assert_eq!(measurement_passes(), before);
    assert_eq!(layer.plan().provenance, Provenance::CostModel);

    let _ = std::fs::remove_file(&path);
}

/// Small valid (N, M, L=32) configurations the CPU ladder's packed and
/// unpacked paths both see.
fn arb_cfg() -> impl Strategy<Value = NmConfig> {
    prop_oneof![
        Just(NmConfig::new(8, 16, 32).unwrap()), // 50%: unpacked path
        Just(NmConfig::new(2, 8, 32).unwrap()),  // 75%: packed path
        Just(NmConfig::new(2, 16, 32).unwrap()), // 87.5%: packed path
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary shapes and seeds, the plan the measurement picks —
    /// whatever ladder version and tiling wins on this host — computes
    /// the same matrix as the scalar reference.
    #[test]
    fn measured_plans_match_the_reference(
        cfg in arb_cfg(),
        rows in 1usize..40,
        n_blocks in 1usize..4,
        k_blocks in 2usize..5,
        seed in 0u64..1000,
    ) {
        let n = n_blocks * 32;
        let k = k_blocks * 32;
        let sb = prune(k, n, cfg, seed);
        let a = MatrixF32::random(rows, k, seed ^ 0xab);
        let expect = spmm_reference(&a, &sb);

        let mut s = quick_session();
        let layer = s.load(sb, rows).unwrap();
        prop_assert_eq!(layer.plan().provenance, Provenance::Measured);
        let run = layer.forward(&a).unwrap();
        prop_assert!(
            run.c.allclose(&expect, 1e-3, 1e-4),
            "measured plan diverges from reference: max diff {}",
            run.c.max_abs_diff(&expect)
        );
    }
}
