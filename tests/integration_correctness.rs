//! Cross-crate correctness: every execution engine in the workspace —
//! reference Eq. (1), parallel CPU (both data paths), simulated GPU kernels
//! (all versions and baselines) — must agree on the same problems,
//! including ragged shapes, every paper sparsity level, and every pruning
//! policy.

use nm_spmm::core::parallel::{gemm_parallel, spmm_parallel, CpuSpmmOptions, Strategy};
use nm_spmm::core::prune::PrunePolicy;
use nm_spmm::core::spmm::{gemm_reference, spmm_reference};
use nm_spmm::kernels::{DenseGemmKernel, NmSparseKernel, NmSpmmKernel, NmVersion, SputnikKernel};
use nm_spmm::prelude::*;

struct Problem {
    a: MatrixF32,
    b: MatrixF32,
    sb: NmSparseMatrix,
    oracle: MatrixF32,
}

fn problem(m: usize, n: usize, k: usize, cfg: NmConfig, policy: PrunePolicy, seed: u64) -> Problem {
    let a = MatrixF32::random(m, k, seed);
    let b = MatrixF32::random(k, n, seed + 1000);
    let sb = NmSparseMatrix::prune(&b, cfg, policy).expect("prune");
    let oracle = spmm_reference(&a, &sb);
    Problem { a, b, sb, oracle }
}

fn assert_close(got: &MatrixF32, want: &MatrixF32, who: &str) {
    assert!(
        got.allclose(want, 1e-3, 1e-4),
        "{who}: max abs diff {}",
        got.max_abs_diff(want)
    );
}

#[test]
fn every_engine_agrees_on_every_paper_level() {
    let dev = a100_80g();
    for cfg in NmConfig::paper_levels(32) {
        let p = problem(96, 128, 256, cfg, PrunePolicy::Magnitude, 42);
        // CPU engines.
        for strategy in [Strategy::NonPacking, Strategy::Packing, Strategy::Auto] {
            let opts = CpuSpmmOptions {
                strategy,
                ..Default::default()
            };
            assert_close(
                &spmm_parallel(&p.a, &p.sb, &opts),
                &p.oracle,
                &format!("cpu/{strategy:?}@{cfg}"),
            );
        }
        // Simulated GPU engines.
        for v in [NmVersion::V1, NmVersion::V2, NmVersion::V3] {
            let run = NmSpmmKernel::auto(v, 96, 128)
                .run(&dev, &p.a, &p.sb)
                .expect("run");
            assert_close(&run.c, &p.oracle, &format!("sim/{v:?}@{cfg}"));
        }
        assert_close(
            &NmSparseKernel.run(&dev, &p.a, &p.sb).expect("nmsparse").c,
            &p.oracle,
            &format!("nmsparse@{cfg}"),
        );
        assert_close(
            &SputnikKernel.run(&dev, &p.a, &p.sb).expect("sputnik").c,
            &p.oracle,
            &format!("sputnik@{cfg}"),
        );
    }
}

#[test]
fn every_engine_agrees_on_ragged_shapes() {
    let dev = a100_80g();
    let cfg = NmConfig::new(4, 16, 8).expect("config");
    for (m, n, k, seed) in [
        (33usize, 41usize, 57usize, 1u64),
        (130, 70, 250, 2),
        (65, 257, 129, 3),
    ] {
        let p = problem(m, n, k, cfg, PrunePolicy::Random { seed }, seed);
        assert_close(
            &spmm_parallel(&p.a, &p.sb, &CpuSpmmOptions::default()),
            &p.oracle,
            "cpu ragged",
        );
        let run = NmSpmmKernel::auto(NmVersion::V3, m, n)
            .run(&dev, &p.a, &p.sb)
            .expect("run");
        assert_close(&run.c, &p.oracle, "sim ragged");
        assert_close(
            &SputnikKernel.run(&dev, &p.a, &p.sb).expect("sputnik").c,
            &p.oracle,
            "sputnik ragged",
        );
    }
}

#[test]
fn all_pruning_policies_flow_through_the_stack() {
    let dev = a100_80g();
    let cfg = NmConfig::new(2, 16, 32).expect("config");
    for policy in [
        PrunePolicy::Magnitude,
        PrunePolicy::Random { seed: 5 },
        PrunePolicy::Strided,
        PrunePolicy::FirstN,
    ] {
        let p = problem(64, 96, 192, cfg, policy, 7);
        // Strided/FirstN produce identical window patterns — the packing
        // path's best case — and must still be numerically exact.
        let run = NmSpmmKernel::auto(NmVersion::V3, 64, 96)
            .run(&dev, &p.a, &p.sb)
            .expect("run");
        assert_close(&run.c, &p.oracle, &format!("{policy:?}"));
    }
}

#[test]
fn dense_control_equals_dense_gemm_everywhere() {
    let dev = a100_80g();
    let cfg = NmConfig::new(32, 32, 32).expect("dense control");
    let p = problem(64, 64, 128, cfg, PrunePolicy::Magnitude, 9);
    let dense_oracle = gemm_reference(&p.a, &p.b);
    assert_close(&p.oracle, &dense_oracle, "eq1 at 0% sparsity");
    let run = NmSpmmKernel::auto(NmVersion::V3, 64, 64)
        .run(&dev, &p.a, &p.sb)
        .expect("run");
    assert_close(&run.c, &dense_oracle, "sim at 0% sparsity");
    let gemm = DenseGemmKernel::auto(64, 64)
        .run(&dev, &p.a, &p.b)
        .expect("gemm");
    assert_close(&gemm.c, &dense_oracle, "dense kernel");
    assert_close(&gemm_parallel(&p.a, &p.b), &dense_oracle, "cpu gemm");
}

#[test]
fn kernels_work_on_all_three_devices() {
    let cfg = NmConfig::new(4, 16, 32).expect("config");
    let p = problem(64, 128, 256, cfg, PrunePolicy::Magnitude, 11);
    for dev in nm_spmm::sim::device::paper_devices() {
        let run = NmSpmmKernel::auto(NmVersion::V3, 64, 128)
            .run(&dev, &p.a, &p.sb)
            .unwrap_or_else(|e| panic!("{}: {e}", dev.name));
        assert_close(&run.c, &p.oracle, &dev.name);
        assert!(run.report.seconds > 0.0);
        assert!(run.report.efficiency > 0.0 && run.report.efficiency <= 1.0);
    }
}

#[test]
fn functional_stats_match_analytic_profile() {
    // The run() stats and the estimate() report must be built from the same
    // per-iteration quantities: cross-check the invariant end to end.
    let dev = a100_80g();
    let cfg = NmConfig::new(2, 16, 32).expect("config");
    let p = problem(128, 128, 512, cfg, PrunePolicy::Random { seed: 13 }, 13);
    let kern = NmSpmmKernel::auto(NmVersion::V3, 128, 128);
    let run = kern.run(&dev, &p.a, &p.sb).expect("run");
    // FFMA count is geometry-exact: blocks * iters * ms*ns*ws.
    let plan = kern.plan(&dev, 128, 128, 512, cfg).expect("plan");
    let (gy, gx) = plan.grid;
    let expect_ffma = (gy * gx * plan.iters) as u64
        * (plan.blocking.params.ms * plan.blocking.params.ns * plan.blocking.ws) as u64;
    assert_eq!(run.stats.ffma, expect_ffma);
    assert_eq!(run.stats.blocks, (gy * gx) as u64);
    assert_eq!(run.stats.main_loop_iters, (gy * gx * plan.iters) as u64);
}
