//! # nm-spmm — meta crate
//!
//! Re-exports the whole NM-SpMM workspace behind one dependency:
//!
//! * [`core`] — N:M vector-wise format, pruning, compression,
//!   offline pre-processing and the parallel CPU kernels,
//! * [`sim`] — the GPGPU simulator substrate,
//! * [`gpu`] — the WGSL code-generation subsystem: typed shader IR,
//!   emitter + validator, and the deterministic host interpreter the
//!   `codegen` backend executes through,
//! * [`kernels`] — simulated GPU kernels (dense GEMM, NM-SpMM
//!   V1/V2/V3, nmSPARSE, Sputnik) and the **prepared-session API**
//!   (`SessionBuilder` → `Session::load_with` → `PreparedLayer::forward`),
//!   the single public execution surface,
//! * [`serve`] — the serving front-end: bounded request queue,
//!   continuous batching over the prepared entry points, deadlines and
//!   latency-distribution stats,
//! * [`analysis`] — arithmetic intensity, CMAR, roofline and
//!   the strategy advisor,
//! * [`workloads`] — the Llama 100-point dataset and Table II
//!   shapes.
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use gpu_sim as sim;
pub use nm_analysis as analysis;
pub use nm_core as core;
pub use nm_gpu as gpu;
pub use nm_kernels as kernels;
pub use nm_serve as serve;
pub use nm_workloads as workloads;

/// One-stop prelude: the full public execution + serving surface.
///
/// Covers the data types (`MatrixF32`, `NmConfig`, `NmSparseMatrix`,
/// errors), the device constructors, the prepared-session API
/// (`SessionBuilder`/`Session`/`LoadSpec`/`PreparedLayer` and the run
/// types), and the serving front-end (`Server` and friends) — everything
/// the examples and a downstream serving binary need from one import.
pub mod prelude {
    pub use gpu_sim::prelude::*;
    pub use nm_core::prelude::*;
    pub use nm_kernels::{
        BackendKind, BatchRouting, BatchRun, ExecRun, LoadSpec, NmVersion, Plan, PreparedLayer,
        PreparedModel, Session, SessionBuilder, ShapeClass, DECODE_MAX_ROWS,
    };
    pub use nm_serve::{
        BatchKind, Completion, DispatchInfo, Priority, RequestTiming, Server, ServerConfig,
        ServerStats, SubmitOptions, Ticket,
    };
}
