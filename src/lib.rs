//! # nm-spmm — meta crate
//!
//! Re-exports the whole NM-SpMM workspace behind one dependency:
//!
//! * [`core`] — N:M vector-wise format, pruning, compression,
//!   offline pre-processing and the parallel CPU kernels,
//! * [`sim`] — the GPGPU simulator substrate,
//! * [`kernels`] — simulated GPU kernels (dense GEMM, NM-SpMM
//!   V1/V2/V3, nmSPARSE, Sputnik) and the **prepared-session API**
//!   (`SessionBuilder` → `Session::load` → `PreparedLayer::forward`),
//!   the single public execution surface,
//! * [`analysis`] — arithmetic intensity, CMAR, roofline and
//!   the strategy advisor,
//! * [`workloads`] — the Llama 100-point dataset and Table II
//!   shapes.
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use gpu_sim as sim;
pub use nm_analysis as analysis;
pub use nm_core as core;
pub use nm_kernels as kernels;
pub use nm_workloads as workloads;

/// One-stop prelude for examples and downstream users.
pub mod prelude {
    pub use gpu_sim::prelude::*;
    pub use nm_core::prelude::*;
}
