//! Inner-kernel computing-to-memory-access ratio — paper Eq. (6).
//!
//! A thread tile of `mt × nt` accumulators performs `mt·nt` FMAs per `k`
//! step while loading `mt + nt` values from shared memory; with LDS width
//! factor `α` (4 for `LDS.32`, 2 for `LDS.64`, 1 for `LDS.128`):
//!
//! ```text
//! CMAR = (1/α) · mt·nt / (mt + nt)                  (Eq. 6)
//! ```
//!
//! subject to the register budget `mt + nt + mt·nt ≤ 255`.

use serde::{Deserialize, Serialize};

/// Shared-memory load instruction width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LdsWidth {
    /// 32-bit loads (α = 4).
    Lds32,
    /// 64-bit loads (α = 2).
    Lds64,
    /// 128-bit loads (α = 1).
    Lds128,
}

impl LdsWidth {
    /// The paper's proportionality constant α.
    pub fn alpha(&self) -> f64 {
        match self {
            LdsWidth::Lds32 => 4.0,
            LdsWidth::Lds64 => 2.0,
            LdsWidth::Lds128 => 1.0,
        }
    }

    /// Bytes moved per instruction per lane.
    pub fn bytes(&self) -> usize {
        match self {
            LdsWidth::Lds32 => 4,
            LdsWidth::Lds64 => 8,
            LdsWidth::Lds128 => 16,
        }
    }
}

/// Eq. (6): FMA instructions per LDS instruction for an `mt × nt` tile.
pub fn cmar(mt: usize, nt: usize, width: LdsWidth) -> f64 {
    (mt * nt) as f64 / (mt + nt) as f64 / width.alpha()
}

/// The architectural register budget of Eq. (6)'s constraint.
pub const REGISTER_BUDGET: usize = 255;

/// Registers a thread tile needs: accumulators + `At` + `Bt` fragments.
pub fn tile_registers(mt: usize, nt: usize) -> usize {
    mt * nt + mt + nt
}

/// Registers with the V3 inner double buffer (two `At`/`Bt` fragments).
pub fn tile_registers_double_buffered(mt: usize, nt: usize) -> usize {
    mt * nt + 2 * (mt + nt)
}

/// `true` when the tile satisfies `mt + nt + mt·nt ≤ 255`.
pub fn tile_fits_registers(mt: usize, nt: usize) -> bool {
    tile_registers(mt, nt) <= REGISTER_BUDGET
}

/// Enumerate the register-feasible power-of-two tiles and return the one
/// with the highest CMAR (ties broken toward square tiles, which balance
/// the `At`/`Bt` fragment loads).
pub fn best_tile(width: LdsWidth) -> (usize, usize) {
    let mut best: (usize, usize) = (1, 1);
    let mut best_cmar = 0.0f64;
    for log_mt in 0..6 {
        for log_nt in 0..6 {
            let (mt, nt) = (1usize << log_mt, 1usize << log_nt);
            if !tile_fits_registers(mt, nt) {
                continue;
            }
            let c = cmar(mt, nt, width);
            let better = c > best_cmar + 1e-12
                || ((c - best_cmar).abs() < 1e-12 && mt.abs_diff(nt) < best.0.abs_diff(best.1));
            if better {
                best = (mt, nt);
                best_cmar = c;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_hand_computed() {
        // 8x8 tile with LDS.128: 64/16 = 4 FMAs per LDS.
        assert!((cmar(8, 8, LdsWidth::Lds128) - 4.0).abs() < 1e-12);
        // Same tile with LDS.32: 1 FMA per LDS.
        assert!((cmar(8, 8, LdsWidth::Lds32) - 1.0).abs() < 1e-12);
        // Paper's 8x16 option: 128/24 ≈ 5.33 with LDS.128.
        assert!((cmar(8, 16, LdsWidth::Lds128) - 128.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn larger_tiles_have_higher_cmar() {
        // "the larger mt and nt are, the higher the CMAR is".
        assert!(cmar(8, 8, LdsWidth::Lds128) > cmar(4, 4, LdsWidth::Lds128));
        assert!(cmar(16, 8, LdsWidth::Lds128) > cmar(8, 8, LdsWidth::Lds128));
    }

    #[test]
    fn register_budget() {
        assert!(tile_fits_registers(8, 8)); // 80 regs
        assert!(tile_fits_registers(8, 16)); // 152 regs
        assert!(!tile_fits_registers(16, 16)); // 288 regs > 255
        assert_eq!(tile_registers(8, 8), 80);
        assert_eq!(tile_registers_double_buffered(8, 8), 96);
    }

    #[test]
    fn best_tile_is_a_paper_configuration() {
        // On A100 "mt and nt are typically set to 8x8 or 8x16"; the CMAR
        // argmax under the register budget is the 8x16-class tile.
        let (mt, nt) = best_tile(LdsWidth::Lds128);
        assert_eq!(mt * nt, 128, "expected an 8x16-class tile, got {mt}x{nt}");
        assert!(tile_fits_registers(mt, nt));
    }

    #[test]
    fn alpha_and_bytes_agree() {
        for w in [LdsWidth::Lds32, LdsWidth::Lds64, LdsWidth::Lds128] {
            assert!((w.alpha() - 16.0 / w.bytes() as f64).abs() < 1e-12);
        }
    }
}
