//! Arithmetic intensity of the N:M block computation — paper Eq. (3).
//!
//! For a shared-memory block `Cs[ms][ns] = As[ms][ks] ⊛ (Bs[ws][ns], Ds)`:
//!
//! ```text
//! AI = 2·ms·ns·ws / (ms·ks + ws·ns + 2·ms·ns)        (elements, Eq. 3)
//! ```
//!
//! The denominator counts `f32` *elements* moved (`As` + `Bs` + `C`
//! read/write); dividing by 4 gives FLOPs per byte for roofline use. With
//! `ws = ks·(1 − sparsity)` the numerator shrinks with sparsity while the
//! `ms·ks` term does not — the mechanism behind the compute→memory bound
//! transition. The packing path replaces `ks` with the packed footprint
//! `ks·ρ` (`ρ` = packing ratio), recovering intensity at high sparsity.

use serde::{Deserialize, Serialize};

/// Block-level arithmetic-intensity calculator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockAi {
    /// Block rows of `C` (`ms`).
    pub ms: usize,
    /// Block columns of `C` (`ns`).
    pub ns: usize,
    /// Dense k-depth of the block (`ks`).
    pub ks: usize,
    /// Compressed k-depth (`ws = ks·N/M`).
    pub ws: usize,
}

impl BlockAi {
    /// Paper Eq. (3) verbatim: FLOPs per `f32` element moved.
    pub fn elements(&self) -> f64 {
        self.with_a_footprint(self.ks)
    }

    /// Eq. (3) with the `As` footprint replaced by the packed footprint
    /// `a_elems` (= `ks·ρ` for packing ratio `ρ`).
    pub fn with_a_footprint(&self, a_elems: usize) -> f64 {
        let num = 2.0 * (self.ms * self.ns * self.ws) as f64;
        let den = (self.ms * a_elems + self.ws * self.ns + 2 * self.ms * self.ns) as f64;
        num / den
    }

    /// FLOPs per **byte** (Eq. 3 divided by `sizeof(f32)`).
    pub fn flops_per_byte(&self) -> f64 {
        self.elements() / 4.0
    }

    /// Packed-footprint FLOPs per byte.
    pub fn flops_per_byte_packed(&self, packing_ratio: f64) -> f64 {
        let a_elems = (self.ks as f64 * packing_ratio).round() as usize;
        self.with_a_footprint(a_elems) / 4.0
    }
}

/// AI of the *whole problem* (device-level): `2·m·n·w` FLOPs over the
/// minimum global traffic (each operand read once, `C` written once) —
/// the upper roofline bound no blocking scheme can beat.
pub fn problem_ai_flops_per_byte(m: usize, n: usize, k: usize, w: usize) -> f64 {
    let flops = 2.0 * (m * n * w) as f64;
    let bytes = 4.0 * (m * k + w * n + m * n) as f64;
    flops / bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The large-kernel block at 87.5% sparsity used in the paper's
    /// Fig. 10 discussion: ms=64, ns=128, ks=256, ws=32.
    fn fig10_block() -> BlockAi {
        BlockAi {
            ms: 64,
            ns: 128,
            ks: 256,
            ws: 32,
        }
    }

    #[test]
    fn eq3_hand_computed() {
        let b = fig10_block();
        // 2*64*128*32 / (64*256 + 32*128 + 2*64*128) = 524288/36864.
        assert!((b.elements() - 524288.0 / 36864.0).abs() < 1e-12);
    }

    #[test]
    fn ai_decreases_with_sparsity_at_fixed_ks() {
        // Paper: "as sparsity increases, the arithmetic intensity decreases".
        let mut last = f64::INFINITY;
        for ws in [256usize, 128, 96, 64, 32] {
            let ai = BlockAi {
                ms: 64,
                ns: 128,
                ks: 256,
                ws,
            }
            .elements();
            assert!(ai < last, "AI must fall as ws shrinks: {ai} !< {last}");
            last = ai;
        }
    }

    #[test]
    fn packing_recovers_intensity() {
        let b = fig10_block();
        let unpacked = b.flops_per_byte();
        let packed = b.flops_per_byte_packed(0.41); // expected union at 87.5%, qs=4
        assert!(packed > unpacked);
        // Ideal packing (identical windows) gives the largest AI.
        let ideal = b.flops_per_byte_packed(b.ws as f64 / b.ks as f64);
        assert!(ideal > packed);
    }

    #[test]
    fn dense_block_matches_classic_gemm_ai() {
        // ws == ks: AI = 2·ms·ns·ks/(ms·ks + ks·ns + 2·ms·ns) — the classic
        // blocked-GEMM intensity.
        let b = BlockAi {
            ms: 64,
            ns: 64,
            ks: 64,
            ws: 64,
        };
        assert!((b.elements() - 2.0 * 64.0 / 4.0).abs() < 1e-12); // = 32
    }

    #[test]
    fn bytes_form_is_quarter_of_elements() {
        let b = fig10_block();
        assert!((b.flops_per_byte() - b.elements() / 4.0).abs() < 1e-12);
    }

    #[test]
    fn larger_ks_raises_ai_at_fixed_sparsity() {
        // Paper §IV-E: "larger ks and ws could lead to higher arithmetic
        // intensity" (the 50%/62.5% levels are smem-capacity limited).
        let density = 0.25;
        let ai_small = BlockAi {
            ms: 64,
            ns: 128,
            ks: 128,
            ws: (128.0 * density) as usize,
        }
        .elements();
        let ai_large = BlockAi {
            ms: 64,
            ns: 128,
            ks: 512,
            ws: (512.0 * density) as usize,
        }
        .elements();
        assert!(ai_large > ai_small);
    }

    #[test]
    fn problem_ai_sanity() {
        // Dense 4096^3: 2*4096^3 / (4*3*4096^2) = 4096/6 ≈ 682 FLOPs/byte.
        let ai = problem_ai_flops_per_byte(4096, 4096, 4096, 4096);
        assert!((ai - 4096.0 / 6.0).abs() < 1e-9);
        // 87.5% sparsity divides the FLOPs by 8 but A traffic stays.
        let ai_sparse = problem_ai_flops_per_byte(4096, 4096, 4096, 512);
        assert!(ai_sparse < ai);
    }
}
