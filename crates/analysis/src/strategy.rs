//! The sparsity-aware decision procedure (paper §III-A, last two
//! paragraphs; §III-C).
//!
//! Given a device, a sparsity configuration and a blocking plan, decide:
//!
//! * **packing or non-packing** — packing exactly when
//!   `sparsity ≥ SPARSITY_THRESHOLD` (the paper's 70% moderate/high
//!   boundary, owned by [`nm_core::pattern::SPARSITY_THRESHOLD`] and
//!   re-exported here; the `≥` convention means exactly 70% packs), where
//!   the `As` working set is mostly dead,
//! * **which pipeline hides which** — at moderate sparsity computation
//!   instructions mask the global→shared loads (Fig. 5); at high sparsity
//!   the loads mask computation (Fig. 6),
//!
//! and report the roofline position that justifies the choice.

use crate::ai::BlockAi;
use crate::packing::expected_ratio;
use gpu_sim::device::DeviceConfig;
use gpu_sim::roofline::Roofline;
use nm_core::pattern::{NmConfig, SparsityClass};
use serde::{Deserialize, Serialize};

/// The moderate/high boundary this module decides against. This is the
/// *same constant* `nm_core::pattern` uses for [`NmConfig::class`] — the
/// decision procedure consumes it through `cfg.class()`, so the two crates
/// cannot disagree on the convention (`≥` ⇒ high ⇒ packing).
pub use nm_core::pattern::SPARSITY_THRESHOLD;

/// Which instruction class covers the other in the software pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineHint {
    /// Fig. 5: FMA instructions hide `Lg2s` latency (moderate sparsity).
    ComputeHidesLoad,
    /// Fig. 6: `Lg2s` instructions hide FMA latency (high sparsity).
    LoadHidesCompute,
}

/// Roofline-side classification of the block computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictedBound {
    /// Block AI above the machine ridge.
    Compute,
    /// Block AI below the machine ridge.
    Memory,
}

/// Output of the decision procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyDecision {
    /// Load `As` through `col_info` (true) or directly (false).
    pub packing: bool,
    /// Pipeline orientation for the V3 kernel.
    pub pipeline: PipelineHint,
    /// Roofline classification using the *effective* footprint
    /// (packed when `packing` is chosen).
    pub predicted_bound: PredictedBound,
    /// Effective block arithmetic intensity in FLOPs/byte.
    pub ai_flops_per_byte: f64,
    /// Expected packing ratio ρ (1.0 when non-packing).
    pub packing_ratio: f64,
    /// Sparsity that drove the decision.
    pub sparsity: f64,
}

/// The paper's decision procedure.
#[derive(Debug, Clone, Copy, Default)]
pub struct Strategy;

impl Strategy {
    /// Decide for a block of shape `block` on `dev`, with `qs = ns/L`
    /// pruning windows per block column.
    pub fn decide(
        dev: &DeviceConfig,
        cfg: NmConfig,
        block: BlockAi,
        qs: usize,
    ) -> StrategyDecision {
        let sparsity = cfg.sparsity();
        // `class()` compares against SPARSITY_THRESHOLD with `≥`; packing
        // and the pipeline orientation both key off that one comparison.
        let packing = cfg.class() == SparsityClass::High;
        let packing_ratio = if packing {
            expected_ratio(cfg, qs)
        } else {
            1.0
        };
        let ai = if packing {
            block.flops_per_byte_packed(packing_ratio)
        } else {
            block.flops_per_byte()
        };
        let roof = Roofline::from_device(dev);
        let predicted_bound = if roof.is_memory_bound(ai) {
            PredictedBound::Memory
        } else {
            PredictedBound::Compute
        };
        let pipeline = match cfg.class() {
            SparsityClass::Moderate => PipelineHint::ComputeHidesLoad,
            SparsityClass::High => PipelineHint::LoadHidesCompute,
        };
        StrategyDecision {
            packing,
            pipeline,
            predicted_bound,
            ai_flops_per_byte: ai,
            packing_ratio,
            sparsity,
        }
    }

    /// The sparsity at which the *unpacked* block computation crosses the
    /// machine ridge — the paper's "transition point varies depending on
    /// the arithmetic intensity of the hardware" (§III-A). Returns a value
    /// in `[0, 1]`, found by bisection on `ws = ks·(1−s)`.
    ///
    /// Block refills are mostly served by L2 (inter-block panel reuse), so
    /// the relevant ridge uses the L2-amplified bandwidth, not raw DRAM —
    /// with raw DRAM bandwidth the 3090 would be "memory bound" even dense,
    /// which contradicts its measured GEMM efficiency.
    pub fn transition_sparsity(dev: &DeviceConfig, ms: usize, ns: usize, ks: usize) -> f64 {
        let roof = Roofline {
            peak_flops: dev.peak_fp32_flops(),
            bandwidth: dev.dram_bw * dev.l2_bw_ratio,
        };
        let ridge = roof.ridge();
        let ai_at = |s: f64| {
            let ws = ((ks as f64) * (1.0 - s)).max(1.0) as usize;
            BlockAi { ms, ns, ks, ws }.flops_per_byte()
        };
        if ai_at(0.0) < ridge {
            return 0.0; // memory bound even dense
        }
        if ai_at(0.999) >= ridge {
            return 1.0; // never transitions
        }
        let (mut lo, mut hi) = (0.0f64, 0.999f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if ai_at(mid) >= ridge {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::{a100_80g, rtx3090, rtx4090};

    fn block(ks: usize, ws: usize) -> BlockAi {
        BlockAi {
            ms: 64,
            ns: 128,
            ks,
            ws,
        }
    }

    #[test]
    fn moderate_sparsity_chooses_nonpacking_compute_pipeline() {
        let dev = a100_80g();
        let cfg = NmConfig::new(8, 16, 32).unwrap(); // 50%
        let d = Strategy::decide(&dev, cfg, block(128, 64), 4);
        assert!(!d.packing);
        assert_eq!(d.pipeline, PipelineHint::ComputeHidesLoad);
        assert_eq!(d.packing_ratio, 1.0);
    }

    #[test]
    fn high_sparsity_chooses_packing_load_pipeline() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 16, 32).unwrap(); // 87.5%
        let d = Strategy::decide(&dev, cfg, block(256, 32), 4);
        assert!(d.packing);
        assert_eq!(d.pipeline, PipelineHint::LoadHidesCompute);
        assert!(d.packing_ratio < 0.5, "ρ = {}", d.packing_ratio);
    }

    #[test]
    fn packing_improves_predicted_ai() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 16, 32).unwrap();
        let b = block(256, 32);
        let with = Strategy::decide(&dev, cfg, b, 4).ai_flops_per_byte;
        assert!(with > b.flops_per_byte());
    }

    #[test]
    fn transition_point_is_in_the_paper_band() {
        // The paper pegs the transition near 70% on the A100 for its
        // blocking; the model must land in a plausible band there. The
        // 3090/4090 transition earlier (possibly at 0: memory bound from the
        // start at this tile size) — exactly the paper's "smaller
        // performance gains from N:M sparsity" on those parts.
        let a100 = Strategy::transition_sparsity(&a100_80g(), 64, 128, 256);
        assert!(
            (0.5..1.0).contains(&a100),
            "A100 transition {a100} out of band"
        );
        for dev in [rtx3090(), rtx4090()] {
            let t = Strategy::transition_sparsity(&dev, 64, 128, 256);
            assert!(
                (0.0..=a100).contains(&t),
                "{}: transition {t} must not exceed A100's {a100}",
                dev.name
            );
        }
    }

    #[test]
    fn higher_compute_to_bw_ratio_transitions_earlier() {
        // 3090/4090 have more FLOPs per byte of bandwidth than A100, so the
        // memory-bound regime starts at *lower* sparsity there.
        let a100 = Strategy::transition_sparsity(&a100_80g(), 64, 128, 256);
        let r4090 = Strategy::transition_sparsity(&rtx4090(), 64, 128, 256);
        assert!(
            r4090 <= a100,
            "4090 transition {r4090} must not exceed A100 {a100}"
        );
    }

    #[test]
    fn exact_threshold_is_high() {
        let dev = a100_80g();
        let cfg = NmConfig::new(3, 10, 32).unwrap(); // exactly 70%
        let d = Strategy::decide(&dev, cfg, block(160, 48), 4);
        assert!(d.packing);
    }

    #[test]
    fn boundary_agrees_with_core_at_exactly_70_percent() {
        // The 1 − N/M = 0.70 boundary, checked against BOTH crates at once:
        // nm_core's `≥` classification and this module's packing decision
        // must flip at the same configuration, and the constant they share
        // is SPARSITY_THRESHOLD itself.
        let dev = a100_80g();
        for (n, m, expect_high) in [
            (3usize, 10usize, true), // exactly 1 − 3/10 = 0.70 → high, packs
            (6, 20, true),           // same ratio, different window depth
            (31, 100, false),        // 0.69 → moderate, does not pack
            (7, 10, false),          // 0.30 → moderate
        ] {
            let cfg = NmConfig::new(n, m, 32).unwrap();
            let core_high = cfg.class() == SparsityClass::High;
            assert_eq!(
                core_high,
                cfg.sparsity() >= SPARSITY_THRESHOLD,
                "{cfg}: core classification must be the ≥ comparison"
            );
            assert_eq!(core_high, expect_high, "{cfg}: unexpected class");
            let d = Strategy::decide(&dev, cfg, block(160, 48), 4);
            assert_eq!(
                d.packing, core_high,
                "{cfg}: strategy packing must agree with nm_core's class"
            );
            let expect_pipeline = if core_high {
                PipelineHint::LoadHidesCompute
            } else {
                PipelineHint::ComputeHidesLoad
            };
            assert_eq!(d.pipeline, expect_pipeline, "{cfg}");
        }
    }

    #[test]
    fn decision_is_deterministic() {
        let dev = rtx3090();
        let cfg = NmConfig::new(4, 16, 32).unwrap();
        let a = Strategy::decide(&dev, cfg, block(256, 64), 8);
        let b = Strategy::decide(&dev, cfg, block(256, 64), 8);
        assert_eq!(a, b);
    }
}
