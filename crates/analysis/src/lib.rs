//! # nm-analysis — the paper's top-down performance analysis model
//!
//! Implements §III-A of the NM-SpMM paper as executable, testable code:
//!
//! * [`ai`] — Eq. (3), the block-level arithmetic intensity of N:M sparsity
//!   computation, in the paper's element form and in FLOPs/byte, with the
//!   packed-footprint variant used by the high-sparsity path,
//! * [`cmar`] — Eq. (6), the inner kernel's computing-to-memory-access
//!   ratio and the 255-register thread-tile constraint,
//! * [`packing`] — the expected packed-footprint model (union of pruning
//!   windows) that predicts the paper's "7/8 vs 3/8 working set" numbers,
//! * [`strategy`] — the sparsity-aware decision procedure: packing or not,
//!   which pipeline hides which (Figs. 5/6), derived from the roofline
//!   position exactly as the paper prescribes.

#![warn(missing_docs)]

pub mod ai;
pub mod cmar;
pub mod packing;
pub mod strategy;

pub use ai::BlockAi;
pub use strategy::{PipelineHint, Strategy, StrategyDecision, SPARSITY_THRESHOLD};
