//! Expected packed-footprint model.
//!
//! The packing path loads only the union of the `A` columns referenced by a
//! block's `qs = ns/L` pruning windows. For windows selecting independent
//! uniform `N`-subsets of `M`, the probability a given row survives in none
//! of them is `(1 − N/M)^qs`, so the expected footprint fraction is
//!
//! ```text
//! ρ(qs) = 1 − (1 − N/M)^qs
//! ```
//!
//! This reproduces the paper's Fig. 2 working-set fractions: at 50%
//! sparsity with 4 windows `ρ ≈ 0.94 ≈ 7/8…15/16` (non-packing chosen), at
//! 87.5% `ρ ≈ 0.41 ≈ 3/8` (packing pays). The identical-pattern lower bound
//! is `N/M` ("the memory access minimize to N/M", §III-C1).

use nm_core::pattern::NmConfig;

/// Expected packed-footprint fraction of `As` for `qs` independent windows.
pub fn expected_ratio(cfg: NmConfig, qs: usize) -> f64 {
    let density = cfg.n as f64 / cfg.m as f64;
    1.0 - (1.0 - density).powi(qs as i32)
}

/// Lower bound on the packed footprint (identical patterns): `N/M`.
pub fn best_case_ratio(cfg: NmConfig) -> f64 {
    cfg.n as f64 / cfg.m as f64
}

/// Upper bound: `min(1, qs·N/M)` — distinct rows can never exceed the sum
/// of per-window selections nor the window depth.
pub fn worst_case_ratio(cfg: NmConfig, qs: usize) -> f64 {
    ((qs * cfg.n) as f64 / cfg.m as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, m: usize) -> NmConfig {
        NmConfig::new(n, m, 32).unwrap()
    }

    #[test]
    fn fig2_working_set_fractions() {
        // Paper Fig. 2 with 4 windows: moderate ≈ 7/8, high ≈ 3/8.
        let moderate = expected_ratio(cfg(8, 16), 4); // 50%
        let high = expected_ratio(cfg(2, 16), 4); // 87.5%
        assert!(
            moderate > 0.87 && moderate < 0.97,
            "moderate working set {moderate} should be ≈ 7/8"
        );
        assert!(
            (high - 0.375).abs() < 0.05,
            "high-sparsity working set {high} should be ≈ 3/8"
        );
    }

    #[test]
    fn bounds_bracket_expectation() {
        for (n, m) in [(2usize, 16usize), (4, 16), (6, 16), (8, 16), (2, 4)] {
            for qs in [1usize, 2, 4, 8, 16] {
                let c = cfg(n, m);
                let e = expected_ratio(c, qs);
                assert!(e >= best_case_ratio(c) - 1e-12, "{n}:{m} qs={qs}");
                assert!(e <= worst_case_ratio(c, qs) + 1e-12, "{n}:{m} qs={qs}");
            }
        }
    }

    #[test]
    fn one_window_is_exactly_density() {
        let c = cfg(4, 16);
        assert!((expected_ratio(c, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn many_windows_approach_full_footprint() {
        let c = cfg(2, 16);
        assert!(expected_ratio(c, 64) > 0.99);
    }

    #[test]
    fn monotone_in_window_count() {
        let c = cfg(2, 16);
        let mut last = 0.0;
        for qs in 1..=32 {
            let e = expected_ratio(c, qs);
            assert!(e > last);
            last = e;
        }
    }

    #[test]
    fn dense_config_has_full_footprint() {
        let c = NmConfig::new(16, 16, 32).unwrap();
        assert!((expected_ratio(c, 1) - 1.0).abs() < 1e-12);
        assert!((best_case_ratio(c) - 1.0).abs() < 1e-12);
    }
}
