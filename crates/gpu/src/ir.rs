//! The typed shader IR: what a generated NM-SpMM kernel *is*, before it
//! is rendered to WGSL text.
//!
//! A [`KernelSpec`] captures the blocking decision a plan made (tile
//! geometry, storage format, kernel family); [`crate::lower()`] turns it
//! into a [`KernelIr`] — a small tree of [`Node`]s mirroring the phase
//! structure the simulator's timing model assumes (prologue, k-block main
//! loop, epilogue). The IR is the single source of truth: the WGSL
//! emitter renders it, the host interpreter executes it, and the trace
//! comparison counts its phases.

use nm_core::error::{NmError, Result};
use nm_core::pattern::NmConfig;
use nm_core::sliced::StorageFormat;

/// The kernel families the generator can lower — the paper's V1→V3
/// optimization ladder plus the skinny decode specialization.
///
/// Every family computes the identical matrix; they differ in data
/// movement (staging, packing, pipelining) — which is exactly what the
/// IR structure encodes. Numerics follow the V3 semantics for all
/// families so the interpreter stays bit-identical to the `cpu_v3`
/// oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelFamily {
    /// Hierarchical blocking only: serial stage → sync → compute.
    V1,
    /// V1 + sparsity-aware `col_info` packing (dependent index loads).
    V2,
    /// V2 + double-buffered staging: prefetch next k-block's tile while
    /// computing the current one.
    V3,
    /// The decode specialization: one activation row per workgroup
    /// (`m ≤ DECODE_MAX_ROWS`), V3 pipeline structure.
    SkinnyDecode,
}

impl KernelFamily {
    /// Every family, ladder order then the decode specialization.
    pub fn all() -> [KernelFamily; 4] {
        [
            KernelFamily::V1,
            KernelFamily::V2,
            KernelFamily::V3,
            KernelFamily::SkinnyDecode,
        ]
    }

    /// Stable identifier (used in shader names and snapshot file names).
    pub fn name(&self) -> &'static str {
        match self {
            KernelFamily::V1 => "v1",
            KernelFamily::V2 => "v2",
            KernelFamily::V3 => "v3",
            KernelFamily::SkinnyDecode => "skinny_decode",
        }
    }

    /// Whether the family's staging pipeline alternates two shared
    /// buffers (the paper's V3 load/compute overlap).
    pub fn double_buffered(&self) -> bool {
        matches!(self, KernelFamily::V3 | KernelFamily::SkinnyDecode)
    }

    /// Whether the family stages a packed `A` panel through `col_info`
    /// (a dependent index load chain) at high sparsity. V1 always
    /// gathers directly.
    pub fn packs(&self) -> bool {
        !matches!(self, KernelFamily::V1)
    }
}

impl std::fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a generated kernel's multiply-accumulate chain rounds.
///
/// The two flavors are *not* interchangeable bit-wise: fused
/// multiply-add rounds once per step, separate multiply/add rounds
/// twice. The lowering picks the flavor the CPU oracle's micro-kernel
/// ISA uses so the interpreter reproduces its results exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluMode {
    /// Single-rounding fused multiply-add (`fma()` in WGSL) — what the
    /// vectorized SIMD micro-kernels execute.
    Fma,
    /// Separate multiply then add — the scalar micro-kernel's chain.
    MulAdd,
}

impl AluMode {
    /// Stable identifier.
    pub fn name(&self) -> &'static str {
        match self {
            AluMode::Fma => "fma",
            AluMode::MulAdd => "mul_add",
        }
    }
}

/// Which loop a [`Node::TileLoop`] walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopDim {
    /// The main loop over k-blocks (the simulator's `MainLoop` phase).
    KBlocks,
    /// Pruning windows (column spans) inside one column group.
    Windows,
    /// The 4→2→1 output-row ladder inside one window.
    RowLadder,
    /// SIMD lanes across one window's columns.
    Lanes,
}

impl LoopDim {
    /// Stable identifier.
    pub fn name(&self) -> &'static str {
        match self {
            LoopDim::KBlocks => "k_blocks",
            LoopDim::Windows => "windows",
            LoopDim::RowLadder => "row_ladder",
            LoopDim::Lanes => "lanes",
        }
    }
}

/// Where a [`Node::GatherLoad`] resolves its `A` operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherSource {
    /// Row-major staging: window-contiguous gather indices.
    RowMajor,
    /// SELL-C-σ staging: slice-contiguous pre-resolved indices.
    Sliced,
}

/// One node of the shader IR tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A counted loop over `dim`, executing `body` each iteration.
    TileLoop {
        /// Which dimension the loop walks.
        dim: LoopDim,
        /// Iteration count (static for the lowered spec).
        count: usize,
        /// Nodes executed per iteration.
        body: Vec<Node>,
    },
    /// Fill one shared-memory tile (`floats` f32 slots) from global
    /// memory — the `transformLayout` panel fill.
    SharedStage {
        /// The workgroup-memory buffer name (`bs0` / `bs1`).
        buffer: &'static str,
        /// f32 slots filled.
        floats: usize,
        /// Whether the fill targets the *next* iteration's buffer while
        /// the current one is consumed (V3 pipelining).
        prefetch: bool,
    },
    /// Resolve gather indices for one k-block's windows and load the
    /// `A` operands they name.
    GatherLoad {
        /// Which staging layout the indices come from.
        source: GatherSource,
        /// Whether the load chain goes through the packed `col_info`
        /// indirection (a dependent load) rather than direct dense
        /// offsets.
        packed: bool,
    },
    /// The multiply-accumulate chain for one window span.
    Compute {
        /// Rounding flavor of the fast-path chain.
        alu: AluMode,
        /// Whether the general path skips zero `A` operands (it always
        /// does; the fast path never does).
        zero_skip: bool,
        /// Output rows per register tile.
        rows: usize,
        /// SIMD lanes per tile (16 or 32).
        lanes: usize,
    },
    /// A workgroup barrier.
    Sync,
    /// Write the accumulated tile back to `C`.
    Epilogue {
        /// `true`: `C += acc` (the ladder's per-k-block contract);
        /// `false` would overwrite.
        accumulate: bool,
    },
}

impl Node {
    /// Total nodes in this subtree (self included).
    pub fn count(&self) -> usize {
        match self {
            Node::TileLoop { body, .. } => 1 + body.iter().map(Node::count).sum::<usize>(),
            _ => 1,
        }
    }
}

/// Everything the lowering needs to know about one kernel instance:
/// the problem geometry, the plan's (clamped) tile decision, and the
/// execution flavor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSpec {
    /// The kernel family to lower.
    pub family: KernelFamily,
    /// The `B′` storage layout the gathers walk.
    pub storage: StorageFormat,
    /// The N:M(:L) sparsity configuration.
    pub cfg: NmConfig,
    /// Output columns.
    pub n: usize,
    /// Dense depth of `A`.
    pub k: usize,
    /// Compressed rows of `B′` (`k_pad · N / M`).
    pub w: usize,
    /// Output rows per workgroup (grid-y tile).
    pub mb: usize,
    /// Columns per column group (multiple of `L`) — the clamped CPU
    /// `nb`.
    pub nb: usize,
    /// Dense depth per k-block (multiple of `M`) — the clamped CPU
    /// `kb`.
    pub kb: usize,
    /// Grid-x extent: column blocks (row-major) or slices (SELL-C-σ).
    pub groups: usize,
    /// Whether the family's data path stages a packed `A` panel (V2/V3
    /// at high sparsity).
    pub packed: bool,
    /// Whether the multiply-accumulate chain fuses (SIMD micro-kernel)
    /// or rounds twice (scalar).
    pub fma: bool,
}

impl KernelSpec {
    /// Compressed rows per k-block (`kb · N / M`).
    pub fn ub(&self) -> usize {
        self.kb * self.cfg.n / self.cfg.m
    }

    /// Main-loop iterations: k-blocks covering the compressed rows.
    pub fn kblocks(&self) -> usize {
        self.w.div_ceil(self.ub().max(1)).max(1)
    }

    /// Pruning windows across the output width.
    pub fn windows(&self) -> usize {
        self.n.div_ceil(self.cfg.l)
    }

    /// The generated kernel's name: family, storage tag, and geometry —
    /// stable, so snapshots and traces can be keyed by it.
    pub fn name(&self) -> String {
        format!(
            "nm_{}_{}_{}x{}x{}",
            self.family,
            // `:`-free so the name can key snapshot files directly.
            self.storage.tag().replace(':', "_"),
            self.mb,
            self.nb,
            self.kb
        )
    }

    /// Reject geometry the kernel families cannot execute.
    ///
    /// # Errors
    /// [`NmError::InvalidBlocking`] for zero or misaligned tiles.
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 || self.k == 0 || self.w == 0 {
            return Err(NmError::InvalidBlocking {
                reason: format!(
                    "codegen needs a non-empty problem (n={}, k={}, w={})",
                    self.n, self.k, self.w
                ),
            });
        }
        if self.mb == 0 || self.groups == 0 {
            return Err(NmError::InvalidBlocking {
                reason: format!(
                    "codegen needs a positive grid (mb={}, groups={})",
                    self.mb, self.groups
                ),
            });
        }
        if self.nb == 0 || !self.nb.is_multiple_of(self.cfg.l) {
            return Err(NmError::InvalidBlocking {
                reason: format!(
                    "nb={} must be a positive multiple of L={}",
                    self.nb, self.cfg.l
                ),
            });
        }
        if self.kb == 0 || !self.kb.is_multiple_of(self.cfg.m) {
            return Err(NmError::InvalidBlocking {
                reason: format!(
                    "kb={} must be a positive multiple of M={}",
                    self.kb, self.cfg.m
                ),
            });
        }
        Ok(())
    }
}

/// A lowered kernel: the IR tree plus the launch-shape facts the
/// emitter, interpreter, and trace comparison all share.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelIr {
    /// The spec this was lowered from.
    pub spec: KernelSpec,
    /// Workgroup shape `(x lanes, y rows)`; `x · y ≤ 256`.
    pub workgroup: (u32, u32),
    /// f32 slots per shared staging buffer.
    pub shared_floats: usize,
    /// Shared staging buffers (2 when double-buffered).
    pub buffers: usize,
    /// Columns staged per shared strip (a multiple of `L`, shrunk from
    /// `nb` until the buffers fit the workgroup-memory budget).
    pub strip_cols: usize,
    /// Nodes executed once before the main loop (first tile fill for
    /// pipelined families).
    pub prologue: Vec<Node>,
    /// The main loop — always a [`Node::TileLoop`] over
    /// [`LoopDim::KBlocks`].
    pub main_loop: Node,
    /// Nodes executed once after the main loop (the `C` write-back).
    pub epilogue: Vec<Node>,
}

impl KernelIr {
    /// Total IR nodes across prologue, main loop, and epilogue.
    pub fn node_count(&self) -> usize {
        self.prologue.iter().map(Node::count).sum::<usize>()
            + self.main_loop.count()
            + self.epilogue.iter().map(Node::count).sum::<usize>()
    }

    /// Main-loop iteration count.
    pub fn main_iters(&self) -> usize {
        match &self.main_loop {
            Node::TileLoop { count, .. } => *count,
            _ => 0,
        }
    }

    /// Workgroup-memory footprint in bytes (all staging buffers).
    pub fn shared_bytes(&self) -> usize {
        self.shared_floats * 4 * self.buffers
    }

    /// Threads per workgroup.
    pub fn threads(&self) -> u32 {
        self.workgroup.0 * self.workgroup.1
    }
}
