//! A minimal in-repo WGSL validator.
//!
//! The build environment is offline (see `shims/`), so there is no
//! `naga`/`tint` to call; this module implements exactly the checks the
//! emitter's output must survive before any runtime would accept it:
//!
//! 1. lexical well-formedness (comments terminate, brackets balance);
//! 2. attribute sanity — known attribute names, exactly one `@compute`
//!    entry point, a `@workgroup_size` within the invocation limit,
//!    unique `@binding` slots per `@group`;
//! 3. workgroup-memory accounting — every `var<workgroup>` array is
//!    parsed and the total footprint checked against the device budget;
//! 4. identifier resolution — every identifier must be a keyword, a
//!    WGSL builtin, or declared somewhere in the module, so a typo'd
//!    emission fails validation instead of reaching a driver.
//!
//! This is deliberately not a full WGSL grammar: it accepts a superset
//! of valid WGSL, but it *rejects* every malformation class the test
//! suite injects (and that a template-splicing emitter can realistically
//! produce).

/// Tunable limits, defaulting to WebGPU's defaults where they exist.
#[derive(Debug, Clone, Copy)]
pub struct ValidateOptions {
    /// Maximum total `var<workgroup>` bytes
    /// (`maxComputeWorkgroupStorageSize`; WebGPU default 16 KiB, set to
    /// 64 KiB here — the limit a wgpu runtime would request on the
    /// discrete devices the simulator models).
    pub max_workgroup_bytes: usize,
    /// Maximum `@workgroup_size` product
    /// (`maxComputeInvocationsPerWorkgroup`).
    pub max_workgroup_invocations: u64,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        Self {
            max_workgroup_bytes: 64 * 1024,
            max_workgroup_invocations: 256,
        }
    }
}

/// What validation learned about a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShaderInfo {
    /// The entry point's `@workgroup_size` (missing axes default to 1).
    pub workgroup_size: (u64, u64, u64),
    /// Total `var<workgroup>` bytes.
    pub workgroup_bytes: usize,
    /// Distinct `@binding` declarations.
    pub bindings: usize,
    /// `fn` declarations (entry point included).
    pub functions: usize,
}

/// Validation failure: every problem found, not just the first.
#[derive(Debug, Clone)]
pub struct WgslError {
    /// Human-readable problems, each with a line number.
    pub messages: Vec<String>,
}

impl std::fmt::Display for WgslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid WGSL: {}", self.messages.join("; "))
    }
}

impl std::error::Error for WgslError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    Punct(char),
}

/// Lex into tokens with 1-based line numbers. Comments (`//`, `/* */`)
/// are stripped here.
fn lex(src: &str) -> Result<Vec<(Tok, usize)>, WgslError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && bytes.get(i + 1) == Some(&'/') {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
            let start = line;
            i += 2;
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(WgslError {
                            messages: vec![format!("unterminated block comment (line {start})")],
                        })
                    }
                    Some('\n') => line += 1,
                    Some('*') if bytes.get(i + 1) == Some(&'/') => {
                        i += 2;
                        break;
                    }
                    Some(_) => {}
                }
                i += 1;
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            toks.push((Tok::Ident(bytes[start..i].iter().collect()), line));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'u'
                    || bytes[i] == 'i'
                    || bytes[i] == 'f'
                    || bytes[i] == 'e')
            {
                i += 1;
            }
            toks.push((Tok::Number(bytes[start..i].iter().collect()), line));
        } else {
            toks.push((Tok::Punct(c), line));
            i += 1;
        }
    }
    Ok(toks)
}

const KEYWORDS: &[&str] = &[
    "fn",
    "let",
    "var",
    "const",
    "struct",
    "return",
    "if",
    "else",
    "loop",
    "break",
    "continue",
    "continuing",
    "for",
    "while",
    "switch",
    "case",
    "default",
    "true",
    "false",
    "discard",
    "u32",
    "i32",
    "f32",
    "f16",
    "bool",
    "vec2",
    "vec3",
    "vec4",
    "mat2x2",
    "mat3x3",
    "mat4x4",
    "array",
    "atomic",
    "ptr",
    "uniform",
    "storage",
    "read",
    "read_write",
    "write",
    "workgroup",
    "function",
    "private",
];

const BUILTIN_FNS: &[&str] = &[
    "fma",
    "min",
    "max",
    "abs",
    "clamp",
    "select",
    "workgroupBarrier",
    "storageBarrier",
    "textureBarrier",
    "dot",
    "floor",
    "ceil",
    "sqrt",
];

const ATTRIBUTES: &[&str] = &[
    "group",
    "binding",
    "compute",
    "workgroup_size",
    "builtin",
    "location",
    "vertex",
    "fragment",
    "align",
    "size",
];

/// Validate a WGSL module against `opts`.
///
/// # Errors
/// [`WgslError`] collecting every problem found: lexical errors,
/// unbalanced brackets, attribute misuse, duplicate bindings, an
/// oversized workgroup, over-budget workgroup memory, or unresolved
/// identifiers.
pub fn validate_wgsl(src: &str, opts: &ValidateOptions) -> Result<ShaderInfo, WgslError> {
    let toks = lex(src)?;
    let mut errors: Vec<String> = Vec::new();

    // --- bracket balance ------------------------------------------------
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (t, line) in &toks {
        if let Tok::Punct(c) = t {
            match c {
                '(' | '{' | '[' => stack.push((*c, *line)),
                ')' | '}' | ']' => {
                    let open = match c {
                        ')' => '(',
                        ']' => '[',
                        _ => '{',
                    };
                    match stack.pop() {
                        Some((o, _)) if o == open => {}
                        Some((o, l)) => errors.push(format!(
                            "mismatched `{c}` (line {line}) closing `{o}` (line {l})"
                        )),
                        None => errors.push(format!("unmatched `{c}` (line {line})")),
                    }
                }
                _ => {}
            }
        }
    }
    for (o, l) in &stack {
        errors.push(format!("unclosed `{o}` (line {l})"));
    }

    // --- attributes, bindings, workgroup size ---------------------------
    let mut compute_count = 0usize;
    let mut workgroup_size: Option<(u64, u64, u64)> = None;
    let mut bindings: Vec<(u64, u64)> = Vec::new();
    let mut current_group: Option<u64> = None;
    // Token indices that sit inside attribute parentheses (exempt from
    // identifier resolution: `@builtin(workgroup_id)` names a slot, not
    // a declaration).
    let mut attr_arg_idx: Vec<bool> = vec![false; toks.len()];

    let number = |t: &Tok| -> Option<u64> {
        match t {
            Tok::Number(n) => n.trim_end_matches(['u', 'i']).parse::<u64>().ok(),
            _ => None,
        }
    };

    let mut i = 0;
    while i < toks.len() {
        if toks[i].0 == Tok::Punct('@') {
            let line = toks[i].1;
            let Some((Tok::Ident(name), _)) = toks.get(i + 1) else {
                errors.push(format!("`@` without an attribute name (line {line})"));
                i += 1;
                continue;
            };
            if !ATTRIBUTES.contains(&name.as_str()) {
                errors.push(format!("unknown attribute `@{name}` (line {line})"));
            }
            // Collect parenthesized arguments, if any.
            let mut args: Vec<u64> = Vec::new();
            let mut j = i + 2;
            if toks.get(j).map(|t| &t.0) == Some(&Tok::Punct('(')) {
                let mut depth = 1;
                j += 1;
                while j < toks.len() && depth > 0 {
                    match &toks[j].0 {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => depth -= 1,
                        t => {
                            attr_arg_idx[j] = true;
                            if let Some(v) = number(t) {
                                args.push(v);
                            }
                        }
                    }
                    j += 1;
                }
            }
            match name.as_str() {
                "compute" => compute_count += 1,
                "group" => current_group = args.first().copied(),
                "binding" => {
                    let group = current_group.unwrap_or(0);
                    let Some(slot) = args.first().copied() else {
                        errors.push(format!("`@binding` without a slot (line {line})"));
                        i = j;
                        continue;
                    };
                    if bindings.contains(&(group, slot)) {
                        errors.push(format!(
                            "duplicate @binding({slot}) in @group({group}) (line {line})"
                        ));
                    } else {
                        bindings.push((group, slot));
                    }
                }
                "workgroup_size" => {
                    if args.is_empty() || args.len() > 3 {
                        errors.push(format!(
                            "`@workgroup_size` needs 1–3 literal axes (line {line})"
                        ));
                    } else {
                        let x = args.first().copied().unwrap_or(1).max(1);
                        let y = args.get(1).copied().unwrap_or(1).max(1);
                        let z = args.get(2).copied().unwrap_or(1).max(1);
                        if x * y * z > opts.max_workgroup_invocations {
                            errors.push(format!(
                                "workgroup size {x}x{y}x{z} exceeds the \
                                 {}-invocation limit (line {line})",
                                opts.max_workgroup_invocations
                            ));
                        }
                        workgroup_size = Some((x, y, z));
                    }
                }
                _ => {}
            }
            i = j.max(i + 2);
        } else {
            i += 1;
        }
    }
    if compute_count != 1 {
        errors.push(format!(
            "expected exactly one @compute entry point, found {compute_count}"
        ));
    }
    if compute_count == 1 && workgroup_size.is_none() {
        errors.push("the @compute entry point has no @workgroup_size".to_string());
    }

    // --- workgroup memory accounting ------------------------------------
    let mut workgroup_bytes = 0usize;
    let mut i = 0;
    while i + 3 < toks.len() {
        let is_wg_var = toks[i].0 == Tok::Ident("var".to_string())
            && toks[i + 1].0 == Tok::Punct('<')
            && toks[i + 2].0 == Tok::Ident("workgroup".to_string())
            && toks[i + 3].0 == Tok::Punct('>');
        if is_wg_var {
            let line = toks[i].1;
            // var<workgroup> NAME : array<ELEM, COUNT>
            let parsed = (|| {
                let mut j = i + 4;
                let Tok::Ident(_) = &toks.get(j)?.0 else {
                    return None;
                };
                j += 1;
                if toks.get(j)?.0 != Tok::Punct(':') {
                    return None;
                }
                j += 1;
                if toks.get(j)?.0 != Tok::Ident("array".to_string()) {
                    return None;
                }
                j += 1;
                if toks.get(j)?.0 != Tok::Punct('<') {
                    return None;
                }
                j += 1;
                let elem_bytes = match &toks.get(j)?.0 {
                    Tok::Ident(t) if t == "f32" || t == "u32" || t == "i32" => 4usize,
                    _ => return None,
                };
                j += 1;
                if toks.get(j)?.0 != Tok::Punct(',') {
                    return None;
                }
                j += 1;
                let count = number(&toks.get(j)?.0)?;
                Some(elem_bytes * count as usize)
            })();
            match parsed {
                Some(bytes) => workgroup_bytes += bytes,
                None => errors.push(format!(
                    "unparsable var<workgroup> declaration (line {line}); \
                     expected `var<workgroup> name : array<f32, N>`"
                )),
            }
        }
        i += 1;
    }
    if workgroup_bytes > opts.max_workgroup_bytes {
        errors.push(format!(
            "workgroup memory {workgroup_bytes} B exceeds the {} B budget",
            opts.max_workgroup_bytes
        ));
    }

    // --- identifier resolution ------------------------------------------
    let mut declared: Vec<String> = Vec::new();
    let mut functions = 0usize;
    for (i, (t, _)) in toks.iter().enumerate() {
        let Tok::Ident(name) = t else { continue };
        if name == "fn" {
            functions += 1;
        }
        if KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        let declares = toks.get(i + 1).map(|t| &t.0) == Some(&Tok::Punct(':'))
            || matches!(
                toks.get(i.wrapping_sub(1)).map(|t| &t.0),
                Some(Tok::Ident(prev))
                    if prev == "fn" || prev == "struct" || prev == "let" || prev == "const"
            );
        if declares && !declared.contains(name) {
            declared.push(name.clone());
        }
    }
    for (i, (t, line)) in toks.iter().enumerate() {
        let Tok::Ident(name) = t else { continue };
        if KEYWORDS.contains(&name.as_str())
            || BUILTIN_FNS.contains(&name.as_str())
            || ATTRIBUTES.contains(&name.as_str())
            || attr_arg_idx[i]
            || declared.contains(name)
        {
            continue;
        }
        // Member access: `expr.field` — fields are declared by their
        // struct anyway, but stay permissive for builtin vector members
        // (`lid.x`).
        if i > 0 && toks[i - 1].0 == Tok::Punct('.') {
            continue;
        }
        errors.push(format!("unresolved identifier `{name}` (line {line})"));
    }

    if errors.is_empty() {
        Ok(ShaderInfo {
            workgroup_size: workgroup_size.unwrap_or((1, 1, 1)),
            workgroup_bytes,
            bindings: bindings.len(),
            functions,
        })
    } else {
        Err(WgslError { messages: errors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{KernelFamily, KernelSpec};
    use crate::lower::lower;
    use crate::wgsl::emit_wgsl;
    use nm_core::pattern::NmConfig;
    use nm_core::sliced::StorageFormat;

    fn good_shader() -> String {
        let ir = lower(&KernelSpec {
            family: KernelFamily::V3,
            storage: StorageFormat::RowMajor,
            cfg: NmConfig::new(2, 8, 32).unwrap(),
            n: 96,
            k: 100,
            w: 26,
            mb: 16,
            nb: 64,
            kb: 104,
            groups: 2,
            packed: true,
            fma: true,
        })
        .unwrap();
        emit_wgsl(&ir)
    }

    #[test]
    fn emitted_shader_validates() {
        let info = validate_wgsl(&good_shader(), &ValidateOptions::default()).unwrap();
        assert_eq!(info.workgroup_size, (32, 4, 1));
        assert_eq!(info.bindings, 7);
        assert_eq!(info.functions, 2);
        assert!(info.workgroup_bytes > 0);
    }

    #[test]
    fn unbalanced_braces_are_rejected() {
        let src = good_shader();
        let broken = src.replacen("}\n", "\n", 1);
        let err = validate_wgsl(&broken, &ValidateOptions::default()).unwrap_err();
        assert!(err.to_string().contains("unclosed"), "{err}");
    }

    #[test]
    fn unresolved_identifiers_are_rejected() {
        let src = good_shader().replacen("gather_idx[", "gather_idxx[", 1);
        let err = validate_wgsl(&src, &ValidateOptions::default()).unwrap_err();
        assert!(err.to_string().contains("gather_idxx"), "{err}");
    }

    #[test]
    fn duplicate_bindings_are_rejected() {
        let src = good_shader().replacen("@binding(2)", "@binding(1)", 1);
        let err = validate_wgsl(&src, &ValidateOptions::default()).unwrap_err();
        assert!(err.to_string().contains("duplicate @binding"), "{err}");
    }

    #[test]
    fn missing_entry_point_is_rejected() {
        let src = good_shader().replacen("@compute ", "", 1);
        let err = validate_wgsl(&src, &ValidateOptions::default()).unwrap_err();
        assert!(err.to_string().contains("@compute"), "{err}");
    }

    #[test]
    fn oversized_workgroups_are_rejected() {
        let src = good_shader().replacen("@workgroup_size(32, 4, 1)", "@workgroup_size(512)", 1);
        let err = validate_wgsl(&src, &ValidateOptions::default()).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn workgroup_memory_budget_is_enforced() {
        let tight = ValidateOptions {
            max_workgroup_bytes: 16,
            ..Default::default()
        };
        let err = validate_wgsl(&good_shader(), &tight).unwrap_err();
        assert!(err.to_string().contains("workgroup memory"), "{err}");
    }

    #[test]
    fn unterminated_comment_is_rejected() {
        let src = format!("{}\n/* dangling", good_shader());
        let err = validate_wgsl(&src, &ValidateOptions::default()).unwrap_err();
        assert!(err.to_string().contains("unterminated"), "{err}");
    }
}
