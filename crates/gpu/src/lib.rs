//! # nm-gpu — WGSL code generation with trace-level parity
//!
//! `gpu-sim` answers *how fast* an NM-SpMM kernel would run on the
//! paper's hardware; this crate answers *what that kernel is*. It is a
//! three-layer code-generation and validation subsystem:
//!
//! 1. **Shader IR** ([`ir`], [`mod@lower`]): a typed kernel description —
//!    [`TileLoop`](ir::Node::TileLoop), [`SharedStage`](ir::Node::SharedStage),
//!    [`GatherLoad`](ir::Node::GatherLoad), [`Epilogue`](ir::Node::Epilogue)
//!    nodes — lowered from the planner's blocking parameters, the N:M
//!    pattern config, and the storage format. Every kernel family the
//!    CPU ladder knows (V1 → V3 blocking, the skinny decode row path)
//!    and both gather layouts (row-major column blocks, SELL-C-σ
//!    slices) lower through the same path.
//! 2. **WGSL emission + validation** ([`wgsl`], [`validate`]): the IR
//!    pretty-prints to a complete WGSL compute shader, and a minimal
//!    in-repo parser/validator (no external toolchain, no network)
//!    checks bracket balance, entry-point shape, binding uniqueness,
//!    workgroup limits and identifier resolution — so malformed
//!    emission fails in unit tests and CI, not on a user's GPU.
//! 3. **Deterministic interpretation** ([`interp`], [`trace`]): a host
//!    interpreter executes the generated kernel's tile walk workgroup
//!    by workgroup, reproducing the CPU oracle's floating-point chains
//!    bit for bit and counting phase events that must match the
//!    simulator's [`gpu_sim::ExecutionTrace`] launch shape.
//!
//! The `nm-kernels` crate wires all three in as the `codegen` execution
//! backend; a real `wgpu` runtime would replace layer 3 with a device
//! queue and keep layers 1–2 unchanged.

#![warn(missing_docs)]

pub mod interp;
pub mod ir;
pub mod lower;
pub mod stats;
pub mod trace;
pub mod validate;
pub mod wgsl;

pub use interp::{interpret, ColumnGroup, KernelBindings, WindowSpan};
pub use ir::{AluMode, KernelFamily, KernelIr, KernelSpec, Node};
pub use lower::{lower, SHARED_BUDGET_BYTES};
pub use stats::ShaderStats;
pub use trace::InterpTrace;
pub use validate::{validate_wgsl, ShaderInfo, ValidateOptions, WgslError};
pub use wgsl::emit_wgsl;

/// Glob-import of the subsystem's most used types.
pub mod prelude {
    pub use crate::interp::{interpret, ColumnGroup, KernelBindings, WindowSpan};
    pub use crate::ir::{AluMode, KernelFamily, KernelIr, KernelSpec, Node};
    pub use crate::lower::lower;
    pub use crate::stats::ShaderStats;
    pub use crate::trace::InterpTrace;
    pub use crate::validate::{validate_wgsl, ValidateOptions};
    pub use crate::wgsl::emit_wgsl;
}
