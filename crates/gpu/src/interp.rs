//! The deterministic shader interpreter: execute a generated kernel's
//! tile walk on the host, workgroup by workgroup.
//!
//! This is layer 3 of the subsystem — the proof that the generated
//! shader *means* what the CPU oracle computes. The interpreter walks
//! exactly the loop structure the emitted WGSL encodes (grid → k-blocks
//! → window spans → rows → lanes) over exactly the tables the shader
//! binds (the gather-index matrix, the span records, the per-`(span,
//! k-block)` fast flags), and reproduces the oracle's floating-point
//! chains bit for bit:
//!
//! * **fast spans** run the micro-kernel chain — fused multiply-add
//!   ([`AluMode::Fma`]) or twice-rounded multiply/add
//!   ([`AluMode::MulAdd`]) depending on the prepared ISA — with **no**
//!   zero skip, padded-tail operands loaded as `0.0`;
//! * **general spans** skip zero `A` operands and round twice — the
//!   scalar general path's exact semantics;
//! * every output element receives exactly one accumulation per
//!   k-block, k-blocks ascending — the `+=` ordering both CPU stagings
//!   share, which is what makes the whole chain order-identical.

use nm_core::error::{NmError, Result};

use crate::ir::{AluMode, KernelIr};
use crate::trace::InterpTrace;

/// One window span of a column group: `width` output columns starting
/// at `col`, gathered through pruning window `window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpan {
    /// The original pruning-window index (row into the gather table).
    pub window: u32,
    /// First output column the span writes.
    pub col: u32,
    /// Columns in the span (`≤ L`).
    pub width: u32,
    /// Offset of the span's columns inside the staged shared strip.
    pub strip_off: u32,
}

/// One grid-x workgroup's column work: a column block (row-major) or a
/// SELL-C-σ slice (sliced), as an ordered span list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnGroup {
    /// Spans in execution order.
    pub spans: Vec<WindowSpan>,
}

/// The host-side buffers a generated kernel binds — the same tables the
/// WGSL declares as storage bindings.
#[derive(Debug, Clone, Copy)]
pub struct KernelBindings<'a> {
    /// Compressed `B′` values, `w × n` row-major.
    pub b: &'a [f32],
    /// Absolute dense-k gather indices, `w × q` row-major.
    pub gather: &'a [u32],
    /// Column groups in grid-x order.
    pub groups: &'a [ColumnGroup],
    /// Fast/general selector per `(flat span, k-block)`:
    /// `fast[span * kblocks + bk]`, spans flattened in group order.
    pub fast: &'a [bool],
    /// Pruning windows (`q`): the gather table's row width.
    pub q: usize,
}

/// Execute the kernel over `a` (`m × k` row-major), returning the
/// output (`m × n` row-major) and the execution trace.
///
/// # Errors
/// [`NmError::DimensionMismatch`] when the bindings disagree with the
/// IR's geometry (wrong table sizes, group count, or span/flag counts).
pub fn interpret(
    ir: &KernelIr,
    bind: &KernelBindings<'_>,
    a: &[f32],
    m: usize,
) -> Result<(Vec<f32>, InterpTrace)> {
    let spec = &ir.spec;
    let (n, k, w, q) = (spec.n, spec.k, spec.w, bind.q);
    let ub = spec.ub();
    let kblocks = spec.kblocks();

    let mismatch = |expected: String, found: String| NmError::DimensionMismatch { expected, found };
    if a.len() != m * k {
        return Err(mismatch(
            format!("A with {m} x {k} = {} elements", m * k),
            format!("{} elements", a.len()),
        ));
    }
    if bind.b.len() != w * n {
        return Err(mismatch(
            format!("B' values with {w} x {n} elements"),
            format!("{} elements", bind.b.len()),
        ));
    }
    if bind.gather.len() != w * q {
        return Err(mismatch(
            format!("a {w} x {q} gather table"),
            format!("{} entries", bind.gather.len()),
        ));
    }
    if bind.groups.len() != spec.groups {
        return Err(mismatch(
            format!("{} column groups", spec.groups),
            format!("{}", bind.groups.len()),
        ));
    }
    let total_spans: usize = bind.groups.iter().map(|g| g.spans.len()).sum();
    if bind.fast.len() != total_spans * kblocks {
        return Err(mismatch(
            format!("{total_spans} x {kblocks} fast flags"),
            format!("{}", bind.fast.len()),
        ));
    }

    let alu = if spec.fma {
        AluMode::Fma
    } else {
        AluMode::MulAdd
    };
    let row_tiles = m.div_ceil(spec.mb).max(1);
    let mut c = vec![0f32; m * n];
    let mut trace = InterpTrace {
        grid: (bind.groups.len(), row_tiles),
        workgroups: 0,
        main_iters_per_workgroup: kblocks,
        prologue_fills: 0,
        shared_stages: 0,
        gather_loads: 0,
        flops: 0,
        writebacks: 0,
        epilogues: 0,
    };

    // Workgroup-by-workgroup walk: grid-y row tiles × grid-x groups.
    // Workgroups touch disjoint C elements, so the walk order between
    // them is irrelevant; *within* one element the chain is fixed:
    // k-blocks ascending, one `+=` each.
    for by in 0..row_tiles {
        let r_lo = by * spec.mb;
        let r_hi = (r_lo + spec.mb).min(m);
        let mut group_span_base = 0usize;
        for group in bind.groups {
            trace.workgroups += 1;
            if ir.buffers == 2 {
                // Pipelined families pre-fill the first tile.
                trace.prologue_fills += 1;
            }
            for bk in 0..kblocks {
                trace.shared_stages += 1;
                let u_lo = bk * ub;
                let u_hi = ((bk + 1) * ub).min(w);
                for (si, span) in group.spans.iter().enumerate() {
                    let fast = bind.fast[(group_span_base + si) * kblocks + bk];
                    let jw = span.window as usize;
                    for r in r_lo..r_hi {
                        let a_row = &a[r * k..(r + 1) * k];
                        for ci in 0..span.width as usize {
                            let j = span.col as usize + ci;
                            let mut acc = 0f32;
                            for u in u_lo..u_hi {
                                let s = bind.gather[u * q + jw] as usize;
                                trace.gather_loads += 1;
                                // The padded tail of the final window
                                // reads 0.0 — the value every staged
                                // path puts there.
                                let av = if s < k { a_row[s] } else { 0.0 };
                                let bv = bind.b[u * n + j];
                                if fast {
                                    trace.flops += 2;
                                    match alu {
                                        AluMode::Fma => acc = av.mul_add(bv, acc),
                                        AluMode::MulAdd => acc += av * bv,
                                    }
                                } else if av != 0.0 {
                                    trace.flops += 2;
                                    acc += av * bv;
                                }
                            }
                            c[r * n + j] += acc;
                            trace.writebacks += 1;
                        }
                    }
                }
            }
            trace.epilogues += 1;
            group_span_base += group.spans.len();
        }
    }
    Ok((c, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{KernelFamily, KernelSpec};
    use crate::lower::lower;
    use nm_core::pattern::NmConfig;
    use nm_core::sliced::StorageFormat;

    /// A tiny hand-checkable kernel: 1 group, 1 window, no padding.
    fn tiny() -> (KernelIr, Vec<ColumnGroup>) {
        let ir = lower(&KernelSpec {
            family: KernelFamily::V1,
            storage: StorageFormat::RowMajor,
            cfg: NmConfig::new(1, 2, 4).unwrap(),
            n: 4,
            k: 4,
            w: 2,
            mb: 2,
            nb: 4,
            kb: 4,
            groups: 1,
            packed: false,
            fma: true,
        })
        .unwrap();
        let groups = vec![ColumnGroup {
            spans: vec![WindowSpan {
                window: 0,
                col: 0,
                width: 4,
                strip_off: 0,
            }],
        }];
        (ir, groups)
    }

    #[test]
    fn tiny_kernel_computes_the_expected_product() {
        let (ir, groups) = tiny();
        // w=2 compressed rows; gather picks dense k-indices 1 and 2.
        let b = vec![
            1.0, 2.0, 3.0, 4.0, // u=0
            5.0, 6.0, 7.0, 8.0, // u=1
        ];
        let gather = vec![1u32, 2u32];
        // One span × kblocks fast flags.
        let fast = vec![true; ir.spec.kblocks()];
        let bind = KernelBindings {
            b: &b,
            gather: &gather,
            groups: &groups,
            fast: &fast,
            q: 1,
        };
        let a = vec![10.0, 20.0, 30.0, 40.0];
        let (c, trace) = interpret(&ir, &bind, &a, 1).unwrap();
        // c[j] = a[1]*b[0][j] + a[2]*b[1][j]
        assert_eq!(
            c,
            vec![
                20.0 + 30.0 * 5.0,
                40.0 + 30.0 * 6.0,
                60.0 + 30.0 * 7.0,
                80.0 + 30.0 * 8.0
            ]
        );
        assert_eq!(trace.workgroups, 1);
        assert_eq!(trace.writebacks, 4);
        assert_eq!(trace.gather_loads, 8);
    }

    #[test]
    fn binding_mismatches_are_structured_errors() {
        let (ir, groups) = tiny();
        let b = vec![0.0; 8];
        let gather = vec![0u32; 2];
        let fast = vec![true; ir.spec.kblocks()];
        let short_a = vec![0.0; 3];
        let bind = KernelBindings {
            b: &b,
            gather: &gather,
            groups: &groups,
            fast: &fast,
            q: 1,
        };
        assert!(interpret(&ir, &bind, &short_a, 1).is_err());
        let bad_fast = KernelBindings { fast: &[], ..bind };
        assert!(interpret(&ir, &bad_fast, &[0.0; 4], 1).is_err());
    }
}
