//! Lowering: [`KernelSpec`] → [`KernelIr`].
//!
//! The structure each family gets is the structure the simulator's
//! timing model (and the CUDA original) assumes:
//!
//! * **V1** — serial pipeline: stage tile → barrier → gather + compute →
//!   barrier, twice-synchronized per k-block.
//! * **V2** — V1 plus the packed `col_info` staging: the gather becomes
//!   a dependent load chain through the reordered indices.
//! * **V3 / skinny decode** — double-buffered: the prologue fills the
//!   first tile; each main-loop iteration prefetches the *next* tile
//!   into the alternate buffer before computing the current one, so a
//!   single barrier per iteration suffices.
//!
//! Shared staging is strip-mined: the staged column strip shrinks from
//! `nb` in multiples of `L` until the buffers fit
//! [`SHARED_BUDGET_BYTES`], mirroring how a real kernel would bound its
//! `var<workgroup>` footprint rather than assume the whole column block
//! fits.

use nm_core::error::Result;

use crate::ir::{AluMode, GatherSource, KernelFamily, KernelIr, KernelSpec, LoopDim, Node};

/// Workgroup-memory budget for all staging buffers of one kernel: 32 KiB
/// keeps two double-buffered strips under WebGPU's default
/// `maxComputeWorkgroupStorageSize` with headroom for future operand
/// tiles.
pub const SHARED_BUDGET_BYTES: usize = 32 * 1024;

/// Output rows per workgroup-y thread tile (matches the CPU register
/// micro-tile's 4-row rung).
const TILE_ROWS: u32 = 4;

/// Lower a kernel spec to IR.
///
/// # Errors
/// [`nm_core::error::NmError::InvalidBlocking`] when the spec's geometry
/// is degenerate or misaligned (see [`KernelSpec::validate`]).
pub fn lower(spec: &KernelSpec) -> Result<KernelIr> {
    spec.validate()?;
    let cfg = spec.cfg;
    let lanes: u32 = if cfg.l.is_multiple_of(32) { 32 } else { 16 };
    let rows_y: u32 = if spec.family == KernelFamily::SkinnyDecode {
        1
    } else {
        TILE_ROWS
    };
    let buffers = if spec.family.double_buffered() { 2 } else { 1 };
    let ub = spec.ub();

    // Strip-mine the staged columns to the shared-memory budget.
    let mut strip_cols = spec.nb;
    while ub * strip_cols * 4 * buffers > SHARED_BUDGET_BYTES && strip_cols > cfg.l {
        strip_cols -= cfg.l;
    }
    let shared_floats = ub * strip_cols;

    let source = if spec.storage.is_sliced() {
        GatherSource::Sliced
    } else {
        GatherSource::RowMajor
    };
    // Windows walked per column group: the group's column extent in
    // L-wide spans (slices stage the same spans, just permuted).
    let windows = match spec.storage {
        nm_core::sliced::StorageFormat::RowMajor => spec.nb.div_ceil(cfg.l),
        nm_core::sliced::StorageFormat::Sliced(layout) => layout.slice_height,
    };
    let alu = if spec.fma {
        AluMode::Fma
    } else {
        AluMode::MulAdd
    };
    let compute = Node::TileLoop {
        dim: LoopDim::Windows,
        count: windows,
        body: vec![Node::TileLoop {
            dim: LoopDim::RowLadder,
            count: rows_y as usize,
            body: vec![Node::Compute {
                alu,
                zero_skip: true,
                rows: rows_y as usize,
                lanes: lanes as usize,
            }],
        }],
    };
    let gather = Node::GatherLoad {
        source,
        packed: spec.packed && spec.family.packs(),
    };

    let (prologue, main_body) = if spec.family.double_buffered() {
        // Pipelined: first tile filled up front; each iteration
        // prefetches the next tile, computes the current, then syncs
        // once to retire the buffer swap.
        let prologue = vec![
            Node::SharedStage {
                buffer: "bs0",
                floats: shared_floats,
                prefetch: false,
            },
            gather.clone(),
            Node::Sync,
        ];
        let body = vec![
            Node::SharedStage {
                buffer: "bs1",
                floats: shared_floats,
                prefetch: true,
            },
            gather,
            compute,
            Node::Sync,
        ];
        (prologue, body)
    } else {
        // Serial: stage, sync, compute, sync — every k-block.
        let body = vec![
            Node::SharedStage {
                buffer: "bs0",
                floats: shared_floats,
                prefetch: false,
            },
            Node::Sync,
            gather,
            compute,
            Node::Sync,
        ];
        (Vec::new(), body)
    };

    Ok(KernelIr {
        spec: *spec,
        workgroup: (lanes, rows_y),
        shared_floats,
        buffers,
        strip_cols,
        prologue,
        main_loop: Node::TileLoop {
            dim: LoopDim::KBlocks,
            count: spec.kblocks(),
            body: main_body,
        },
        epilogue: vec![Node::Epilogue { accumulate: true }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_core::pattern::NmConfig;
    use nm_core::sliced::{SlicedLayout, StorageFormat};

    fn spec(family: KernelFamily, storage: StorageFormat) -> KernelSpec {
        KernelSpec {
            family,
            storage,
            cfg: NmConfig::new(2, 8, 32).unwrap(),
            n: 96,
            k: 100,
            w: 26,
            mb: 16,
            nb: 64,
            kb: 104,
            groups: 2,
            packed: true,
            fma: true,
        }
    }

    #[test]
    fn families_lower_to_their_pipeline_shapes() {
        for family in KernelFamily::all() {
            let ir = lower(&spec(family, StorageFormat::RowMajor)).unwrap();
            assert_eq!(ir.buffers, if family.double_buffered() { 2 } else { 1 });
            assert_eq!(
                ir.prologue.is_empty(),
                !family.double_buffered(),
                "{family}: pipelined families pre-fill the first tile"
            );
            assert_eq!(ir.main_iters(), ir.spec.kblocks());
            assert!(ir.threads() <= 256, "{family}: WebGPU workgroup cap");
            assert!(
                ir.shared_bytes() <= SHARED_BUDGET_BYTES,
                "{family}: {} bytes over budget",
                ir.shared_bytes()
            );
            assert!(ir.node_count() >= 5);
        }
    }

    #[test]
    fn skinny_decode_runs_one_row_per_workgroup() {
        let ir = lower(&spec(KernelFamily::SkinnyDecode, StorageFormat::RowMajor)).unwrap();
        assert_eq!(ir.workgroup.1, 1);
    }

    #[test]
    fn sliced_specs_walk_slice_height_windows() {
        let layout = SlicedLayout::new(4, 8).unwrap();
        let ir = lower(&spec(KernelFamily::V3, StorageFormat::Sliced(layout))).unwrap();
        let Node::TileLoop { body, .. } = &ir.main_loop else {
            panic!("main loop must be a TileLoop");
        };
        let windows = body.iter().find_map(|n| match n {
            Node::TileLoop {
                dim: LoopDim::Windows,
                count,
                ..
            } => Some(*count),
            _ => None,
        });
        assert_eq!(windows, Some(4));
    }

    #[test]
    fn degenerate_specs_are_structured_errors() {
        let mut s = spec(KernelFamily::V1, StorageFormat::RowMajor);
        s.kb = 13; // not a multiple of M=8
        assert!(lower(&s).is_err());
        let mut s = spec(KernelFamily::V1, StorageFormat::RowMajor);
        s.n = 0;
        assert!(lower(&s).is_err());
    }
}
