//! Interpreter execution traces and the phase-structure bridge to the
//! simulator's launch timeline.
//!
//! The interpreter counts what it *actually did* — workgroups walked,
//! shared-memory stages, gather loads, writebacks. [`InterpTrace`]
//! turns those raw counters into a [`gpu_sim::PhaseCounts`] fingerprint
//! via the simulator's own occupancy model, so a parity test can assert
//! the generated kernel's launch shape equals the shape
//! `gpu_sim::ExecutionTrace` predicts for the same profile.

use gpu_sim::occupancy::{occupancy, BlockResources};
use gpu_sim::{DeviceConfig, PhaseCounts};

/// What the shader interpreter observed while executing one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpTrace {
    /// Launch grid as `(grid_x, grid_y)` = (column groups, row tiles).
    pub grid: (usize, usize),
    /// Total workgroups executed (`grid_x * grid_y`).
    pub workgroups: usize,
    /// Main-loop iterations (k-blocks) each workgroup ran.
    pub main_iters_per_workgroup: usize,
    /// Prologue tile fills (one per workgroup for pipelined families,
    /// zero for serial ones — the serial loop stages inline).
    pub prologue_fills: usize,
    /// Shared-memory staging events (one per k-block per workgroup).
    pub shared_stages: usize,
    /// Gather-table reads performed.
    pub gather_loads: usize,
    /// Floating-point operations actually issued (2 per multiply-add;
    /// general spans that skip a zero issue none for it).
    pub flops: usize,
    /// `C` element writebacks.
    pub writebacks: usize,
    /// Epilogue events (one per workgroup).
    pub epilogues: usize,
}

impl InterpTrace {
    /// The launch's phase-structure fingerprint on `dev`, computed with
    /// the **same** occupancy arithmetic the timing model uses: the
    /// workgroups the interpreter actually walked, folded into waves by
    /// the device's resident-block capacity for `res`.
    ///
    /// Parity contract: for a kernel lowered from the same plan, this
    /// must equal `ExecutionTrace::phase_counts()` of the simulated
    /// launch.
    pub fn phase_counts(&self, dev: &DeviceConfig, res: &BlockResources) -> PhaseCounts {
        let occ = occupancy(dev, res);
        let capacity = (occ.blocks_per_sm * dev.sm_count).max(1);
        let waves = self.workgroups.max(1).div_ceil(capacity);
        PhaseCounts {
            waves,
            prologue: waves,
            main_loop: waves,
            epilogue: waves,
        }
    }
}

impl std::fmt::Display for InterpTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} grid, {} workgroup(s) x {} iter(s): {} stage(s), {} gather(s), {} flop(s), {} writeback(s)",
            self.grid.0,
            self.grid.1,
            self.workgroups,
            self.main_iters_per_workgroup,
            self.shared_stages,
            self.gather_loads,
            self.flops,
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::a100_80g;

    fn trace(workgroups: usize) -> InterpTrace {
        InterpTrace {
            grid: (workgroups, 1),
            workgroups,
            main_iters_per_workgroup: 4,
            prologue_fills: workgroups,
            shared_stages: workgroups * 4,
            gather_loads: 0,
            flops: 0,
            writebacks: 0,
            epilogues: workgroups,
        }
    }

    #[test]
    fn small_grids_are_one_wave() {
        let dev = a100_80g();
        let res = BlockResources {
            threads: 128,
            regs_per_thread: 64,
            smem_bytes: 32 * 1024,
        };
        let pc = trace(4).phase_counts(&dev, &res);
        assert_eq!(pc.waves, 1);
        assert_eq!(pc.prologue, 1);
        assert_eq!(pc.main_loop, 1);
        assert_eq!(pc.epilogue, 1);
    }

    #[test]
    fn huge_grids_take_multiple_waves() {
        let dev = a100_80g();
        let res = BlockResources {
            threads: 128,
            regs_per_thread: 64,
            smem_bytes: 32 * 1024,
        };
        let occ = occupancy(&dev, &res);
        let capacity = occ.blocks_per_sm * dev.sm_count;
        let pc = trace(capacity * 3 + 1).phase_counts(&dev, &res);
        assert_eq!(pc.waves, 4);
    }

    #[test]
    fn display_is_informative() {
        let s = trace(2).to_string();
        assert!(s.contains("2 workgroup(s)"));
        assert!(s.contains("8 stage(s)"));
    }
}
