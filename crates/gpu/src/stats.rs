//! Static shader statistics: what a generated kernel *is*, independent
//! of any launch — line counts, IR size, shared-memory footprint.
//!
//! These feed the `bench_codegen` lane's JSON artifact and give CI a
//! cheap drift signal: a refactor that silently doubles a kernel's
//! shared-memory budget or loses its double buffer shows up here
//! before any perf lane notices.

use crate::ir::KernelIr;
use crate::validate::{validate_wgsl, ShaderInfo, ValidateOptions};

/// Summary of one generated shader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShaderStats {
    /// Kernel name (from the spec).
    pub name: String,
    /// Kernel family name (`v1` … `skinny_decode`).
    pub family: &'static str,
    /// Storage tag the kernel gathers from.
    pub storage: String,
    /// Non-empty WGSL source lines.
    pub lines: usize,
    /// IR nodes lowered.
    pub nodes: usize,
    /// Main-loop iterations per workgroup (k-blocks).
    pub main_iters: usize,
    /// Workgroup threads (`x * y`).
    pub threads: u32,
    /// `var<workgroup>` bytes the shader declares.
    pub shared_bytes: usize,
    /// Resource bindings declared.
    pub bindings: usize,
    /// Whether the main loop is double-buffered.
    pub double_buffered: bool,
}

impl ShaderStats {
    /// Compute stats for `ir` and its emitted `wgsl` source, using the
    /// validator's parse of the source for the binding/size facts so the
    /// numbers describe the *emission*, not the IR's intent.
    ///
    /// # Errors
    /// Propagates validation failure — stats for an invalid shader are
    /// meaningless.
    pub fn collect(ir: &KernelIr, wgsl: &str) -> Result<ShaderStats, crate::validate::WgslError> {
        let info: ShaderInfo = validate_wgsl(wgsl, &ValidateOptions::default())?;
        Ok(ShaderStats {
            name: ir.spec.name(),
            family: ir.spec.family.name(),
            storage: ir.spec.storage.tag(),
            lines: wgsl.lines().filter(|l| !l.trim().is_empty()).count(),
            nodes: ir.node_count(),
            main_iters: ir.main_iters(),
            threads: (info.workgroup_size.0 * info.workgroup_size.1 * info.workgroup_size.2) as u32,
            shared_bytes: info.workgroup_bytes,
            bindings: info.bindings,
            double_buffered: ir.buffers == 2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{KernelFamily, KernelSpec};
    use crate::lower::lower;
    use crate::wgsl::emit_wgsl;
    use nm_core::pattern::NmConfig;
    use nm_core::sliced::StorageFormat;

    #[test]
    fn stats_reflect_the_emission() {
        let spec = KernelSpec {
            family: KernelFamily::V3,
            storage: StorageFormat::RowMajor,
            cfg: NmConfig::new(2, 8, 16).unwrap(),
            n: 128,
            k: 256,
            w: 64,
            mb: 4,
            nb: 64,
            kb: 64,
            groups: 2,
            packed: true,
            fma: true,
        };
        let ir = lower(&spec).unwrap();
        let wgsl = emit_wgsl(&ir);
        let stats = ShaderStats::collect(&ir, &wgsl).unwrap();
        assert_eq!(stats.family, "v3");
        assert_eq!(stats.bindings, 7);
        assert!(stats.double_buffered);
        assert!(stats.lines > 50, "real shader, not a stub: {}", stats.lines);
        assert_eq!(stats.shared_bytes, ir.shared_bytes());
        assert_eq!(stats.threads, ir.threads());
    }
}
