//! Linear-layer shapes of additional public transformer families.
//!
//! The paper's dataset is Llama-only ([`crate::llama`]); serving stacks
//! prune other families too, and their layer geometries stress different
//! corners of the kernel space (BERT's small hidden sizes → small-kernel
//! territory; GPT-2-XL's fused QKV → wide `n`; Mistral's grouped-query
//! attention → tall-skinny projections). These shapes extend the sweep
//! surface for tests and user benchmarks.

use crate::llama::LayerShape;

/// Decode batch sizes swept by the skinny lane: one generating sequence
/// up to the planner's decode band ceiling
/// ([`nm_kernels::DECODE_MAX_ROWS`]). Every entry classifies as
/// `ShapeClass::Decode`, so a sweep over these sizes exercises the
/// prepared SpMV path rather than the GEMM ladder.
pub const DECODE_BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];

/// BERT-base and BERT-large encoder layers.
pub fn bert_shapes() -> Vec<LayerShape> {
    let mut out = Vec::new();
    for (model, h) in [("BERT-base", 768usize), ("BERT-large", 1024usize)] {
        let f = 4 * h;
        out.push(LayerShape {
            model,
            layer: "attn.qkv_fused",
            n: 3 * h,
            k: h,
        });
        out.push(LayerShape {
            model,
            layer: "attn.out",
            n: h,
            k: h,
        });
        out.push(LayerShape {
            model,
            layer: "mlp.in",
            n: f,
            k: h,
        });
        out.push(LayerShape {
            model,
            layer: "mlp.out",
            n: h,
            k: f,
        });
    }
    out
}

/// GPT-2 XL decoder layers.
pub fn gpt2_xl_shapes() -> Vec<LayerShape> {
    let h = 1600usize;
    let f = 4 * h;
    vec![
        LayerShape {
            model: "GPT2-XL",
            layer: "attn.qkv_fused",
            n: 3 * h,
            k: h,
        },
        LayerShape {
            model: "GPT2-XL",
            layer: "attn.out",
            n: h,
            k: h,
        },
        LayerShape {
            model: "GPT2-XL",
            layer: "mlp.in",
            n: f,
            k: h,
        },
        LayerShape {
            model: "GPT2-XL",
            layer: "mlp.out",
            n: h,
            k: f,
        },
    ]
}

/// Mistral-7B layers (grouped-query attention: 8 KV heads of 32).
pub fn mistral_7b_shapes() -> Vec<LayerShape> {
    let h = 4096usize;
    let kv = 1024usize; // 8 kv-heads × 128
    let f = 14336usize;
    vec![
        LayerShape {
            model: "Mistral-7B",
            layer: "attn.q",
            n: h,
            k: h,
        },
        LayerShape {
            model: "Mistral-7B",
            layer: "attn.kv_fused",
            n: 2 * kv,
            k: h,
        },
        LayerShape {
            model: "Mistral-7B",
            layer: "attn.out",
            n: h,
            k: h,
        },
        LayerShape {
            model: "Mistral-7B",
            layer: "mlp.gate_up_fused",
            n: 2 * f,
            k: h,
        },
        LayerShape {
            model: "Mistral-7B",
            layer: "mlp.down",
            n: h,
            k: f,
        },
    ]
}

/// Every extended shape, across families.
pub fn all_extended_shapes() -> Vec<LayerShape> {
    let mut out = bert_shapes();
    out.extend(gpt2_xl_shapes());
    out.extend(mistral_7b_shapes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_family() {
        assert_eq!(bert_shapes().len(), 8);
        assert_eq!(gpt2_xl_shapes().len(), 4);
        assert_eq!(mistral_7b_shapes().len(), 5);
        assert_eq!(all_extended_shapes().len(), 17);
    }

    #[test]
    fn dimensions_are_prunable_at_m16() {
        // Every k must be divisible by the window depth M = 16; every n by
        // the benchmark vector length 32 (no padding waste on real models).
        for s in all_extended_shapes() {
            assert_eq!(s.k % 16, 0, "{s:?}");
            assert_eq!(s.n % 32, 0, "{s:?}");
        }
    }

    #[test]
    fn known_geometries() {
        assert!(bert_shapes().iter().any(|s| s.n == 2304 && s.k == 768));
        assert!(gpt2_xl_shapes().iter().any(|s| s.n == 6400 && s.k == 1600));
        assert!(mistral_7b_shapes()
            .iter()
            .any(|s| s.n == 28672 && s.k == 4096));
    }

    #[test]
    fn decode_batch_sizes_sit_inside_the_planner_band() {
        use nm_kernels::{ShapeClass, DECODE_MAX_ROWS};
        for b in DECODE_BATCH_SIZES {
            assert!(b <= DECODE_MAX_ROWS, "batch {b} escapes the decode band");
            assert!(ShapeClass::of_rows(b).is_decode());
        }
        assert!(DECODE_BATCH_SIZES.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn covers_small_and_large_kernel_classes() {
        use crate::llama::LayerShape;
        let spans = |s: &LayerShape| s.n * 512; // footprint at m = 512
        let shapes = all_extended_shapes();
        assert!(
            shapes.iter().any(|s| spans(s) <= 512 * 1024),
            "small-class shape present"
        );
        assert!(
            shapes.iter().any(|s| spans(s) > 1024 * 2048),
            "large-class shape present"
        );
    }
}
