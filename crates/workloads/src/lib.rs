//! # nm-workloads — the paper's evaluation workloads
//!
//! * [`llama`] — the 100-point dataset of §IV-A: `(n, k)` tuples extracted
//!   from the linear layers of the public Llama model family, crossed with
//!   input sequence lengths `m ∈ {2⁸ … 2¹²}`,
//! * [`shapes`] — Table II's small/medium/large test matrices A–F,
//! * [`levels`] — the four benchmark sparsity levels (50%, 62.5%, 75%,
//!   87.5%) plus the 0% control, at the vector length used throughout the
//!   GPU experiments,
//! * [`models`] — extended layer shapes (BERT, GPT-2-XL, Mistral-7B),
//! * [`gen`] — seeded problem-instance generators shared by tests,
//!   examples and the bench harness,
//! * [`sweep`] — the batched layer-sweep driver: a whole model's layers
//!   through the `nm-kernels` planner/engine, with per-layer reports and
//!   plan-cache accounting.

#![warn(missing_docs)]

pub mod gen;
pub mod levels;
pub mod llama;
pub mod models;
pub mod shapes;
pub mod sweep;

pub use gen::{ProblemInstance, ProblemSpec};
pub use models::DECODE_BATCH_SIZES;
pub use shapes::TableIiShape;
pub use sweep::{sweep_model, DecodeLane, ExecutePolicy, LayerReport, SweepOptions, SweepReport};
