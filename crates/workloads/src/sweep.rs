//! Batched layer sweep: drive a whole model's linear layers through the
//! prepared-session API.
//!
//! This is the serving-shaped loop the ROADMAP asks for: given a
//! [`Session`] (device + plan cache + backend configuration) and one
//! Llama model, plan every linear layer at a fixed sequence length,
//! optionally execute each layer functionally — through the *simulated*
//! kernel the plan chose (a [`PreparedLayer`](nm_kernels::PreparedLayer)
//! on the Sim backend) **and** through the real multi-threaded CPU path
//! (`nm_core::parallel`), cross checking the numerics — and emit a
//! per-layer report: chosen kernel, tuned blocking, estimated seconds and
//! speedup over the dense baseline.
//!
//! Because the planner memoizes by `(device, shape class, N:M)`, sweeping
//! a model exercises the cache naturally — Llama's `mlp.gate` and `mlp.up`
//! share one weight shape, and repeated sweeps (more sequence lengths,
//! more sparsity levels, a reloaded cache file) hit without re-tuning.
//! [`SweepReport`] carries the hit/miss delta so callers can prove it.
//!
//! With [`SweepOptions::decode`] set, every layer also gets a **decode
//! lane** per [`DECODE_BATCH_SIZES`] batch — the skinny shapes a
//! generating server runs between prefills, planned under
//! `ShapeClass::Decode` keys (no GEMM autotune) — and, when execution is
//! requested, one real `m = 1` step through the prepared SpMV path.

use nm_core::error::Result;
use nm_core::matrix::MatrixF32;
use nm_core::parallel::{gemm_parallel, spmm_parallel, CpuSpmmOptions, Strategy};
use nm_core::pattern::NmConfig;
use nm_core::sliced::StorageFormat;
use nm_core::sparse::NmSparseMatrix;
use nm_kernels::backend::BackendKind;
use nm_kernels::measure::AutotuneMode;
use nm_kernels::nm::NmVersion;
use nm_kernels::plan::Plan;
use nm_kernels::session::Session;
use std::time::Instant;

use crate::llama::{layer_shapes, LayerShape, LlamaModel};
use crate::models::DECODE_BATCH_SIZES;

/// Whether (and at what size) the sweep runs layers functionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutePolicy {
    /// Analytic estimates only — plans every layer, executes nothing.
    EstimateOnly,
    /// Execute each layer with every dimension divided by the given factor
    /// (clamped to a sane floor), keeping the sweep interactive while still
    /// running real numerics end to end.
    Scaled(usize),
    /// Execute at full layer size (minutes of CPU time for big models).
    Full,
}

impl ExecutePolicy {
    fn divisor(&self) -> Option<usize> {
        match self {
            ExecutePolicy::EstimateOnly => None,
            ExecutePolicy::Scaled(d) => Some((*d).max(1)),
            ExecutePolicy::Full => Some(1),
        }
    }
}

/// Knobs for [`sweep_model`].
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Input sequence length `m` shared by every layer (the prefill lane).
    pub seq_len: usize,
    /// Functional-execution policy.
    pub execute: ExecutePolicy,
    /// Seed for the generated operands (execution only).
    pub seed: u64,
    /// Also plan every layer at each [`DECODE_BATCH_SIZES`] batch — the
    /// skinny lane a generating server runs between prefills. Decode
    /// plans skip the GEMM autotuner, so this lane is cheap; when
    /// execution is requested, the `m = 1` step additionally runs
    /// `forward_vec` through the native CPU ladder for real.
    pub decode: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            seq_len: 512,
            execute: ExecutePolicy::EstimateOnly,
            seed: 0x5eed,
            decode: false,
        }
    }
}

/// Functional-execution measurements for one layer.
#[derive(Debug, Clone, Copy)]
pub struct ExecReport {
    /// Executed dimensions (scaled per [`ExecutePolicy`]).
    pub m: usize,
    /// Executed output columns.
    pub n: usize,
    /// Executed reduction depth.
    pub k: usize,
    /// Wall time of the CPU sparse path, milliseconds.
    pub cpu_ms: f64,
    /// Wall time of the CPU dense GEMM baseline, milliseconds.
    pub cpu_dense_ms: f64,
    /// Max |sim − cpu| over the output — the cross-check that the chosen
    /// simulated kernel and the CPU path compute the same matrix.
    pub sim_vs_cpu_max_diff: f32,
    /// Wall time of the measured-autotuned native CPU ladder, milliseconds
    /// — the evidence-based lane. `None` when the session's
    /// [`AutotuneMode`] is `Off`.
    pub measured_ms: Option<f64>,
    /// The ladder step the measured plan picked for this host (`None`
    /// when autotuning is off).
    pub measured_version: Option<NmVersion>,
    /// Wall milliseconds of one prepared decode step (`m = 1`,
    /// `forward_vec` on the native CPU ladder) against the scaled
    /// weights; `None` unless [`SweepOptions::decode`] was set.
    pub decode_ms: Option<f64>,
    /// Max |decode − cpu row 0| — the cross-check that the prepared SpMV
    /// path and the parallel CPU path agree on the first activation row.
    pub decode_vs_cpu_max_diff: Option<f32>,
}

/// One decode batch size's planning row in a [`LayerReport`].
#[derive(Debug, Clone)]
pub struct DecodeLane {
    /// Activation rows (the decode batch size).
    pub batch: usize,
    /// The resolved decode plan — keyed `ShapeClass::Decode`, planned
    /// without the GEMM autotuner.
    pub plan: Plan,
    /// Whether the plan came out of the cache.
    pub cache_hit: bool,
    /// Estimated milliseconds of the chosen kernel at this batch.
    pub est_ms: f64,
    /// The storage format this lane would stage under — measured
    /// evidence when the plan carries it, else the plan key's lane
    /// (mirroring how the CPU backend resolves the staged format).
    pub format: StorageFormat,
}

/// One layer's row in the sweep report.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Which layer (e.g. `"mlp.gate"`).
    pub layer: &'static str,
    /// Full-size output rows (the sequence length).
    pub m: usize,
    /// Full-size output columns.
    pub n: usize,
    /// Full-size reduction depth.
    pub k: usize,
    /// The resolved plan (chosen kernel, tuned blocking, decision).
    pub plan: Plan,
    /// Whether the plan came out of the cache.
    pub cache_hit: bool,
    /// Estimated milliseconds of the chosen kernel at full size.
    pub est_ms: f64,
    /// Estimated milliseconds of the dense baseline at full size.
    pub dense_ms: f64,
    /// The decode lanes ([`DECODE_BATCH_SIZES`] batches); empty unless
    /// [`SweepOptions::decode`] was set.
    pub decode: Vec<DecodeLane>,
    /// Functional measurements, when execution was requested.
    pub exec: Option<ExecReport>,
}

impl LayerReport {
    /// Estimated speedup of the chosen kernel over dense.
    pub fn speedup(&self) -> f64 {
        self.dense_ms / self.est_ms
    }
}

/// Result of sweeping one model at one sparsity level.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Device the engine planned for.
    pub device: String,
    /// Model name.
    pub model: &'static str,
    /// Sparsity configuration.
    pub cfg: NmConfig,
    /// Sequence length.
    pub seq_len: usize,
    /// Per-layer rows, in [`layer_shapes`] order.
    pub layers: Vec<LayerReport>,
    /// Plan-cache hits attributable to this sweep's planning pass.
    pub cache_hits: u64,
    /// Plan-cache misses attributable to this sweep's planning pass.
    pub cache_misses: u64,
}

impl SweepReport {
    /// Sum of estimated chosen-kernel milliseconds across layers.
    pub fn total_est_ms(&self) -> f64 {
        self.layers.iter().map(|l| l.est_ms).sum()
    }

    /// Sum of estimated dense milliseconds across layers.
    pub fn total_dense_ms(&self) -> f64 {
        self.layers.iter().map(|l| l.dense_ms).sum()
    }

    /// Whole-model estimated speedup over dense.
    pub fn total_speedup(&self) -> f64 {
        self.total_dense_ms() / self.total_est_ms()
    }
}

/// The linear layers of one model, in dataset order.
pub fn model_layers(model: &LlamaModel) -> Vec<LayerShape> {
    layer_shapes()
        .into_iter()
        .filter(|s| s.model == model.name)
        .collect()
}

/// Scale a dimension down by `div`, keeping the 32-element kernel granule
/// and a floor large enough for every Table I blocking. `div == 1`
/// ([`ExecutePolicy::Full`]) returns the dimension untouched; the scaled
/// result never exceeds the original rounded up to the granule.
fn scaled_dim(d: usize, div: usize) -> usize {
    if div <= 1 {
        return d;
    }
    let padded = d.max(1).div_ceil(32) * 32;
    ((d / div).max(64).div_ceil(32) * 32).min(padded)
}

/// Plan (and per [`SweepOptions::execute`], run) every linear layer of
/// `model` through the session at one sparsity level.
pub fn sweep_model(
    session: &mut Session,
    model: &LlamaModel,
    cfg: NmConfig,
    opts: &SweepOptions,
) -> Result<SweepReport> {
    let shapes = model_layers(model);
    let before = session.stats();

    // Planning pass: full-size shapes, O(1) on cache hits.
    let mut layers = Vec::with_capacity(shapes.len());
    for shape in &shapes {
        let hits_before = session.stats().hits;
        let plan = session.plan(opts.seq_len, shape.n, shape.k, cfg)?;
        let cache_hit = session.stats().hits > hits_before;
        let est_ms = plan.best()?.seconds * 1e3;
        let dense_ms = plan.estimates.dense.seconds * 1e3;
        layers.push(LayerReport {
            layer: shape.layer,
            m: opts.seq_len,
            n: shape.n,
            k: shape.k,
            plan,
            cache_hit,
            est_ms,
            dense_ms,
            decode: Vec::new(),
            exec: None,
        });
    }
    let after = session.stats();

    // Decode lanes: the same layers at generation batch sizes. Planned
    // after the snapshot above so the prefill hit/miss accounting stays
    // untouched; decode plans skip the GEMM autotuner, so this pass is
    // cheap even for big models.
    if opts.decode {
        for (row, shape) in layers.iter_mut().zip(&shapes) {
            for batch in DECODE_BATCH_SIZES {
                let hits_before = session.stats().hits;
                let plan = session.plan(batch, shape.n, shape.k, cfg)?;
                let cache_hit = session.stats().hits > hits_before;
                let est_ms = plan.best()?.seconds * 1e3;
                let format = plan
                    .measured
                    .as_ref()
                    .map(|m| m.storage)
                    .unwrap_or(plan.key.storage);
                row.decode.push(DecodeLane {
                    batch,
                    plan,
                    cache_hit,
                    est_ms,
                    format,
                });
            }
        }
    }

    // Execution pass: real numerics through the chosen simulated kernel
    // and the CPU path, at (possibly scaled) dimensions. Each layer is
    // prepared against the full-size plan via `Session::load_planned`, so
    // the pass does not touch the cache counters above.
    if let Some(div) = opts.execute.divisor() {
        for (row, shape) in layers.iter_mut().zip(&shapes) {
            let (me, ne, ke) = (
                scaled_dim(opts.seq_len, div),
                scaled_dim(shape.n, div),
                scaled_dim(shape.k, div),
            );
            let a = MatrixF32::random(me, ke, opts.seed);
            let bd = MatrixF32::random(ke, ne, opts.seed ^ 1);
            let sb = NmSparseMatrix::prune_magnitude(&bd, cfg)?;

            // CPU sparse path, steered by the plan's packing decision.
            let cpu_opts = CpuSpmmOptions {
                strategy: if row.plan.decision.packing {
                    Strategy::Packing
                } else {
                    Strategy::NonPacking
                },
                ..Default::default()
            };
            let t0 = Instant::now();
            let c_cpu = spmm_parallel(&a, &sb, &cpu_opts);
            let cpu_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t0 = Instant::now();
            let _ = gemm_parallel(&a, &bd);
            let cpu_dense_ms = t0.elapsed().as_secs_f64() * 1e3;

            // Measured-autotune lane: when the session measures, load the
            // scaled layer through the evidence-based CPU path and record
            // what the measurement picked. Plans (and the measured cache
            // entries) for the scaled shapes are separate keys, so the
            // full-size planning accounting above stays untouched.
            let (measured_ms, measured_version) = if session.autotune() != AutotuneMode::Off {
                let measured = session.load(sb.clone(), me)?;
                let run = measured.forward(&a)?;
                (
                    Some(run.wall_seconds * 1e3),
                    measured.plan().measured.map(|m| m.ladder_version),
                )
            } else {
                (None, None)
            };

            // One decode step for real: the first activation row through
            // the prepared SpMV path (`forward_vec` on the native CPU
            // ladder), cross-checked against row 0 of the parallel CPU
            // result. The decode plan is a separate `ShapeClass::Decode`
            // cache key, outside the prefill accounting.
            let (decode_ms, decode_vs_cpu_max_diff) = if opts.decode {
                let dplan = session.plan(1, ne, ke, cfg)?;
                let dlayer =
                    session.load_planned(dplan, sb.clone(), BackendKind::Cpu(NmVersion::V3))?;
                let drun = dlayer.forward_vec(a.row(0))?;
                let diff = drun
                    .c
                    .row(0)
                    .iter()
                    .zip(c_cpu.row(0))
                    .map(|(x, y)| (x - y).abs())
                    .fold(0f32, f32::max);
                (Some(drun.wall_seconds * 1e3), Some(diff))
            } else {
                (None, None)
            };

            // Simulated kernel, functional face, through a prepared
            // handle carrying the full-size plan.
            let layer = session.load_planned(row.plan.clone(), sb, BackendKind::Sim)?;
            let run = layer.forward(&a)?;
            row.exec = Some(ExecReport {
                m: me,
                n: ne,
                k: ke,
                cpu_ms,
                cpu_dense_ms,
                sim_vs_cpu_max_diff: run.c.max_abs_diff(&c_cpu),
                measured_ms,
                measured_version,
                decode_ms,
                decode_vs_cpu_max_diff,
            });
        }
    }

    Ok(SweepReport {
        device: session.device().name.clone(),
        model: model.name,
        cfg,
        seq_len: opts.seq_len,
        layers,
        cache_hits: after.hits - before.hits,
        cache_misses: after.misses - before.misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llama::LLAMA_FAMILY;
    use gpu_sim::device::a100_80g;
    use nm_kernels::session::SessionBuilder;

    fn small_opts(execute: ExecutePolicy) -> SweepOptions {
        SweepOptions {
            seq_len: 256,
            execute,
            seed: 7,
            decode: false,
        }
    }

    fn session() -> Session {
        SessionBuilder::new(a100_80g()).build().unwrap()
    }

    #[test]
    fn sweep_reports_every_layer_with_dense_speedup() {
        let mut eng = session();
        let cfg = NmConfig::new(2, 16, 32).unwrap();
        let report = sweep_model(
            &mut eng,
            &LLAMA_FAMILY[0],
            cfg,
            &small_opts(ExecutePolicy::EstimateOnly),
        )
        .unwrap();
        assert_eq!(report.layers.len(), 5, "five linear shapes per model");
        for l in &report.layers {
            assert!(l.est_ms > 0.0 && l.dense_ms > 0.0, "{}", l.layer);
            assert!(
                l.speedup() > 1.0,
                "{} at 87.5% must beat dense, got {:.2}x",
                l.layer,
                l.speedup()
            );
        }
        assert!(report.total_speedup() > 1.0);
        assert_eq!(report.model, "Llama-7B");
        assert_eq!(report.device, "A100 80G PCIe");
    }

    #[test]
    fn gate_and_up_share_a_plan_cache_entry() {
        let mut eng = session();
        let cfg = NmConfig::new(4, 16, 32).unwrap();
        let report = sweep_model(
            &mut eng,
            &LLAMA_FAMILY[0],
            cfg,
            &small_opts(ExecutePolicy::EstimateOnly),
        )
        .unwrap();
        // mlp.gate and mlp.up have identical (n, k): exactly one hit.
        assert_eq!(report.cache_hits, 1, "gate/up must share a shape class");
        assert_eq!(report.cache_misses, 4);
        let hit_layers: Vec<&str> = report
            .layers
            .iter()
            .filter(|l| l.cache_hit)
            .map(|l| l.layer)
            .collect();
        assert_eq!(hit_layers, vec!["mlp.up"]);

        // A second sweep of the same model is all hits.
        let again = sweep_model(
            &mut eng,
            &LLAMA_FAMILY[0],
            cfg,
            &small_opts(ExecutePolicy::EstimateOnly),
        )
        .unwrap();
        assert_eq!(again.cache_hits, 5);
        assert_eq!(again.cache_misses, 0);
    }

    #[test]
    fn scaled_execution_cross_checks_sim_against_cpu() {
        let mut eng = session();
        let cfg = NmConfig::new(2, 16, 32).unwrap();
        let report = sweep_model(
            &mut eng,
            &LLAMA_FAMILY[0],
            cfg,
            &small_opts(ExecutePolicy::Scaled(64)),
        )
        .unwrap();
        for l in &report.layers {
            let e = l.exec.expect("execution requested");
            assert!(e.m >= 64 && e.n >= 64 && e.k >= 64);
            assert!(e.m % 32 == 0 && e.n % 32 == 0 && e.k % 32 == 0);
            assert!(e.cpu_ms > 0.0 && e.cpu_dense_ms > 0.0);
            assert!(
                e.sim_vs_cpu_max_diff < 1e-2,
                "{}: simulated kernel and CPU path disagree by {}",
                l.layer,
                e.sim_vs_cpu_max_diff
            );
        }
        // Execution must not have perturbed the planning-pass accounting.
        assert_eq!(report.cache_misses as usize + report.cache_hits as usize, 5);
    }

    #[test]
    fn decode_lanes_plan_every_batch_without_touching_prefill_accounting() {
        let mut eng = session();
        let cfg = NmConfig::new(4, 16, 32).unwrap();
        let mut opts = small_opts(ExecutePolicy::EstimateOnly);
        opts.decode = true;
        let report = sweep_model(&mut eng, &LLAMA_FAMILY[0], cfg, &opts).unwrap();
        // The pinned prefill arithmetic is unchanged by the decode pass.
        assert_eq!(report.cache_hits, 1, "gate/up still share one entry");
        assert_eq!(report.cache_misses, 4);
        for l in &report.layers {
            let batches: Vec<usize> = l.decode.iter().map(|d| d.batch).collect();
            assert_eq!(batches, DECODE_BATCH_SIZES.to_vec(), "{}", l.layer);
            for d in &l.decode {
                assert!(d.plan.key.shape.is_decode(), "{} m={}", l.layer, d.batch);
                assert!(d.est_ms > 0.0);
                // Estimate-only decode plans carry no measured evidence,
                // so the reported format is the plan key's auto lane.
                assert_eq!(d.format, StorageFormat::RowMajor, "{}", l.layer);
            }
        }
        // mlp.up's decode lanes replay mlp.gate's keys: all cache hits.
        let up = report.layers.iter().find(|l| l.layer == "mlp.up").unwrap();
        assert!(up.decode.iter().all(|d| d.cache_hit));
    }

    #[test]
    fn decode_execution_runs_forward_vec_and_agrees_with_the_cpu_row() {
        let mut eng = session();
        let cfg = NmConfig::new(2, 16, 32).unwrap();
        let mut opts = small_opts(ExecutePolicy::Scaled(64));
        opts.decode = true;
        let report = sweep_model(&mut eng, &LLAMA_FAMILY[0], cfg, &opts).unwrap();
        for l in &report.layers {
            let e = l.exec.expect("execution requested");
            let ms = e.decode_ms.expect("decode step ran");
            assert!(ms > 0.0);
            let diff = e.decode_vs_cpu_max_diff.expect("cross-checked");
            assert!(
                diff < 1e-2,
                "{}: prepared SpMV and the CPU path disagree by {diff}",
                l.layer
            );
        }
    }

    #[test]
    fn scaled_dim_full_is_exact_and_scaled_is_bounded() {
        // Full (div = 1) must not inflate ragged dims.
        assert_eq!(scaled_dim(100, 1), 100);
        assert_eq!(scaled_dim(31, 1), 31);
        // Scaled keeps the floor/granule but never exceeds the padded
        // original.
        assert_eq!(scaled_dim(4096, 64), 64);
        assert_eq!(scaled_dim(100, 2), 64);
        assert_eq!(scaled_dim(32, 8), 32);
        assert_eq!(scaled_dim(11008, 8), 1376);
    }

    #[test]
    fn model_layers_filters_by_model() {
        for m in &LLAMA_FAMILY {
            let layers = model_layers(m);
            assert_eq!(layers.len(), 5);
            assert!(layers.iter().all(|s| s.model == m.name));
        }
    }
}
