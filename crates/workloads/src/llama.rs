//! The Llama linear-layer dataset of paper §IV-A.
//!
//! "Our dataset consists of 100 data points … extracted from linear layers
//! in Llama models. The input sequence `m` ranges from 2⁸ to 2¹², yielding
//! five distinct values. Each value is associated with 20 data points,
//! where the tuples `(n, k)` are extracted from the Llama model."
//!
//! The Llama family's public architecture gives the layer shapes: for
//! hidden size `h` and FFN intermediate size `f`, each transformer block
//! contains Q/K/V/O projections (`h×h`) and the gate/up (`h×f`) and down
//! (`f×h`) MLP weights. Across Llama-1 7B/13B/30B/65B this yields exactly
//! 20 distinct `(n, k)` weight shapes (5 per model).

use serde::Serialize;

/// One Llama model's dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LlamaModel {
    /// Human name, e.g. `"Llama-7B"`.
    pub name: &'static str,
    /// Hidden size `h`.
    pub hidden: usize,
    /// FFN intermediate size `f`.
    pub intermediate: usize,
}

/// The four public Llama-1 models the paper draws layers from.
pub const LLAMA_FAMILY: [LlamaModel; 4] = [
    LlamaModel {
        name: "Llama-7B",
        hidden: 4096,
        intermediate: 11008,
    },
    LlamaModel {
        name: "Llama-13B",
        hidden: 5120,
        intermediate: 13824,
    },
    LlamaModel {
        name: "Llama-30B",
        hidden: 6656,
        intermediate: 17920,
    },
    LlamaModel {
        name: "Llama-65B",
        hidden: 8192,
        intermediate: 22016,
    },
];

/// A linear layer's weight shape: `C[m][n] = A[m][k] · B[k][n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct LayerShape {
    /// Which model the layer comes from.
    pub model: &'static str,
    /// Layer role, e.g. `"attn.qkvo"`.
    pub layer: &'static str,
    /// Output features `n`.
    pub n: usize,
    /// Input features `k` (reduction dimension).
    pub k: usize,
}

/// The 20 distinct `(n, k)` weight shapes of the Llama family
/// (5 per model: attention projection, gate, up, down, and the LM-head
/// slice at `h × h` folded with QKVO which shares its shape).
pub fn layer_shapes() -> Vec<LayerShape> {
    let mut out = Vec::with_capacity(20);
    for m in LLAMA_FAMILY {
        let (h, f) = (m.hidden, m.intermediate);
        out.push(LayerShape {
            model: m.name,
            layer: "attn.q/k/v/o",
            n: h,
            k: h,
        });
        out.push(LayerShape {
            model: m.name,
            layer: "mlp.gate",
            n: f,
            k: h,
        });
        out.push(LayerShape {
            model: m.name,
            layer: "mlp.up",
            n: f,
            k: h,
        });
        out.push(LayerShape {
            model: m.name,
            layer: "mlp.down",
            n: h,
            k: f,
        });
        // Fused QKV as used by inference engines: n = 3h for one GEMM.
        out.push(LayerShape {
            model: m.name,
            layer: "attn.qkv_fused",
            n: 3 * h,
            k: h,
        });
    }
    out
}

/// The five sequence lengths: `m ∈ {256, 512, 1024, 2048, 4096}`.
pub const SEQUENCE_LENGTHS: [usize; 5] = [256, 512, 1024, 2048, 4096];

/// One data point of the 100-point dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct DataPoint {
    /// Index 0..100 (the x-axis of Fig. 9).
    pub index: usize,
    /// Sequence length `m`.
    pub m: usize,
    /// The layer shape providing `(n, k)`.
    pub shape: LayerShape,
}

/// The full 100-point dataset, ordered by sequence length then layer —
/// the x-axis ordering of Fig. 9.
pub fn dataset() -> Vec<DataPoint> {
    let shapes = layer_shapes();
    let mut out = Vec::with_capacity(100);
    let mut index = 0;
    for &m in &SEQUENCE_LENGTHS {
        for &shape in &shapes {
            out.push(DataPoint { index, m, shape });
            index += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_100_points() {
        let d = dataset();
        assert_eq!(d.len(), 100);
        // Indices are 0..100 in order.
        for (i, p) in d.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn twenty_layer_shapes() {
        let shapes = layer_shapes();
        assert_eq!(shapes.len(), 20);
        // All distinct as layer entries (gate/up legitimately share (n, k)).
        let mut seen = std::collections::HashSet::new();
        for s in &shapes {
            assert!(
                seen.insert((s.n, s.k, s.model, s.layer)),
                "duplicate shape {s:?}"
            );
        }
    }

    #[test]
    fn m_values_are_powers_of_two_2e8_to_2e12() {
        assert_eq!(
            SEQUENCE_LENGTHS,
            [1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12]
        );
        let d = dataset();
        for &m in &SEQUENCE_LENGTHS {
            assert_eq!(d.iter().filter(|p| p.m == m).count(), 20);
        }
    }

    #[test]
    fn known_llama7b_shapes_present() {
        let shapes = layer_shapes();
        assert!(shapes.iter().any(|s| s.n == 4096 && s.k == 4096));
        assert!(shapes.iter().any(|s| s.n == 11008 && s.k == 4096));
        assert!(shapes.iter().any(|s| s.n == 4096 && s.k == 11008));
    }

    #[test]
    fn dimensions_are_multiples_of_32() {
        // All Llama layer dims are multiples of 32 — no padding needed for
        // the paper's M=16/32, L≤32 configurations.
        for s in layer_shapes() {
            assert_eq!(s.n % 32, 0, "{s:?}");
            assert_eq!(s.k % 32, 0, "{s:?}");
        }
    }
}
