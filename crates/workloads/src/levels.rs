//! The benchmark sparsity levels (§IV-A) at the vector length used for the
//! GPU experiments.
//!
//! The paper benchmarks 50%, 62.5%, 75% and 87.5%, plus a 0% control where
//! `N = M = 32`. The vector length is not stated explicitly in the paper;
//! Fig. 2 depicts four pruning windows per block column (`qs = 4`), which
//! for the large kernel (`ns = 128`) implies `L = 32`. We adopt `L = 32`
//! as the default and expose it as a constant so ablations can vary it.

use nm_core::pattern::NmConfig;

/// Default vector length for GPU-kernel experiments (see module docs).
pub const DEFAULT_L: usize = 32;

/// The 0% control: `N = M = 32` ("our code sets M = N = 32", §IV-B).
pub fn dense_control() -> NmConfig {
    NmConfig::new(32, 32, DEFAULT_L).expect("static config")
}

/// The four benchmarked sparsity levels at window depth `M = 16`.
pub fn benchmark_levels() -> [NmConfig; 4] {
    [
        NmConfig::new(8, 16, DEFAULT_L).expect("static"), // 50.0%
        NmConfig::new(6, 16, DEFAULT_L).expect("static"), // 62.5%
        NmConfig::new(4, 16, DEFAULT_L).expect("static"), // 75.0%
        NmConfig::new(2, 16, DEFAULT_L).expect("static"), // 87.5%
    ]
}

/// The 0% control followed by the four levels — the Fig. 7/8 x-axis.
pub fn with_dense_control() -> [NmConfig; 5] {
    let b = benchmark_levels();
    [dense_control(), b[0], b[1], b[2], b[3]]
}

/// Pretty label for a level, e.g. `"87.5%"`.
pub fn label(cfg: &NmConfig) -> String {
    format!("{:.1}%", cfg.sparsity() * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_paper() {
        let got: Vec<f64> = benchmark_levels().iter().map(|c| c.sparsity()).collect();
        assert_eq!(got, vec![0.5, 0.625, 0.75, 0.875]);
    }

    #[test]
    fn control_is_dense() {
        assert_eq!(dense_control().sparsity(), 0.0);
        assert_eq!(dense_control().m, 32);
    }

    #[test]
    fn labels_render() {
        let l: Vec<String> = with_dense_control().iter().map(label).collect();
        assert_eq!(l, vec!["0.0%", "50.0%", "62.5%", "75.0%", "87.5%"]);
    }

    #[test]
    fn qs_of_large_kernel_is_four() {
        // ns = 128 with L = 32 gives the Fig. 2 depiction of 4 windows.
        assert_eq!(128 / DEFAULT_L, 4);
    }
}
