//! Table II: the small/medium/large test matrices A–F.

use serde::{Deserialize, Serialize};

/// One labeled test shape from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableIiShape {
    /// Label `A`–`F`.
    pub label: char,
    /// Rows of `A` / `C`.
    pub m: usize,
    /// Columns of `B` / `C`.
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
}

impl TableIiShape {
    /// The size class Table II assigns the shape.
    pub fn size_class(&self) -> &'static str {
        match self.label {
            'A' | 'B' => "small",
            'C' | 'D' => "medium",
            _ => "large",
        }
    }
}

/// Table II verbatim.
pub fn table_ii() -> [TableIiShape; 6] {
    [
        TableIiShape {
            label: 'A',
            m: 512,
            n: 512,
            k: 512,
        },
        TableIiShape {
            label: 'B',
            m: 512,
            n: 1024,
            k: 1024,
        },
        TableIiShape {
            label: 'C',
            m: 512,
            n: 2048,
            k: 2048,
        },
        TableIiShape {
            label: 'D',
            m: 1024,
            n: 2048,
            k: 2048,
        },
        TableIiShape {
            label: 'E',
            m: 2048,
            n: 4096,
            k: 4096,
        },
        TableIiShape {
            label: 'F',
            m: 4096,
            n: 4096,
            k: 4096,
        },
    ]
}

/// The square shape (`m = n = k = 4096`) used by Fig. 7 and Fig. 10.
pub fn square_4096() -> TableIiShape {
    TableIiShape {
        label: 'F',
        m: 4096,
        n: 4096,
        k: 4096,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper() {
        let t = table_ii();
        assert_eq!(t.len(), 6);
        assert_eq!((t[0].m, t[0].n, t[0].k), (512, 512, 512));
        assert_eq!((t[3].m, t[3].n, t[3].k), (1024, 2048, 2048));
        assert_eq!((t[5].m, t[5].n, t[5].k), (4096, 4096, 4096));
        let labels: Vec<char> = t.iter().map(|s| s.label).collect();
        assert_eq!(labels, vec!['A', 'B', 'C', 'D', 'E', 'F']);
    }

    #[test]
    fn size_classes() {
        let t = table_ii();
        assert_eq!(t[0].size_class(), "small");
        assert_eq!(t[1].size_class(), "small");
        assert_eq!(t[2].size_class(), "medium");
        assert_eq!(t[3].size_class(), "medium");
        assert_eq!(t[4].size_class(), "large");
        assert_eq!(t[5].size_class(), "large");
    }
}
