//! Seeded problem-instance generators shared by tests, examples and the
//! bench harness.

use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::prune::PrunePolicy;
use nm_core::sparse::NmSparseMatrix;
use serde::{Deserialize, Serialize};

/// A problem description: shapes plus sparsity configuration
/// (no data — cheap to copy around the harness).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Rows of `A`/`C`.
    pub m: usize,
    /// Columns of `B`/`C`.
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Sparsity configuration for `B`.
    pub cfg: NmConfig,
}

impl ProblemSpec {
    /// Compressed row count `w`.
    pub fn w(&self) -> usize {
        self.cfg.compressed_rows(self.k)
    }

    /// Useful FLOPs: `2·m·n·w`.
    pub fn useful_flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.w() as f64
    }

    /// Dense-problem FLOPs: `2·m·n·k` (the cuBLAS workload).
    pub fn dense_flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }
}

/// A materialized problem: `A` dense, `B` pruned and compressed.
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    /// The spec this instance realizes.
    pub spec: ProblemSpec,
    /// Dense input activations `A[m][k]`.
    pub a: MatrixF32,
    /// The original dense weights `B[k][n]` (kept for baselines/oracles).
    pub b_dense: MatrixF32,
    /// The compressed N:M weights.
    pub b_sparse: NmSparseMatrix,
}

impl ProblemInstance {
    /// Generate with the magnitude pruner (the realistic policy).
    pub fn generate(spec: ProblemSpec, seed: u64) -> Self {
        Self::generate_with_policy(spec, seed, PrunePolicy::Magnitude)
    }

    /// Generate with an explicit pruning policy.
    pub fn generate_with_policy(spec: ProblemSpec, seed: u64, policy: PrunePolicy) -> Self {
        let a = MatrixF32::random(spec.m, spec.k, seed);
        let b_dense = MatrixF32::random(spec.k, spec.n, seed.wrapping_add(0x9E37_79B9));
        let b_sparse =
            NmSparseMatrix::prune(&b_dense, spec.cfg, policy).expect("spec produces valid config");
        Self {
            spec,
            a,
            b_dense,
            b_sparse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProblemSpec {
        ProblemSpec {
            m: 64,
            n: 96,
            k: 128,
            cfg: NmConfig::new(4, 16, 8).unwrap(),
        }
    }

    #[test]
    fn flops_accounting() {
        let s = spec();
        assert_eq!(s.w(), 32);
        assert_eq!(s.useful_flops(), 2.0 * 64.0 * 96.0 * 32.0);
        assert_eq!(s.dense_flops(), 2.0 * 64.0 * 96.0 * 128.0);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = ProblemInstance::generate(spec(), 7);
        let b = ProblemInstance::generate(spec(), 7);
        assert_eq!(a.a, b.a);
        assert_eq!(a.b_sparse.values(), b.b_sparse.values());
        let c = ProblemInstance::generate(spec(), 8);
        assert_ne!(a.a, c.a);
    }

    #[test]
    fn sparse_matches_dense_support() {
        let p = ProblemInstance::generate(spec(), 3);
        let dec = p.b_sparse.decompress();
        for i in 0..p.spec.k {
            for j in 0..p.spec.n {
                let v = dec.get(i, j);
                if v != 0.0 {
                    assert_eq!(v, p.b_dense.get(i, j));
                }
            }
        }
    }
}
