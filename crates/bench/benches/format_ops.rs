//! Criterion benches of the format operations: pruning/compression,
//! decompression, the offline packing pre-processing (Fig. 4) and index
//! bit-packing — the deployment-time costs the paper's §III-C1 calls
//! "offline" and therefore amortized.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nm_core::colinfo::preprocess;
use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::prune::PrunePolicy;
use nm_core::sparse::NmSparseMatrix;

const K: usize = 2048;
const N: usize = 2048;

fn bench_format(c: &mut Criterion) {
    let b = MatrixF32::random(K, N, 3);
    let cfg = NmConfig::new(2, 16, 32).expect("config");

    let mut group = c.benchmark_group("format_ops");
    group.sample_size(10);
    group.throughput(Throughput::Bytes((K * N * 4) as u64));

    for (label, policy) in [
        ("magnitude", PrunePolicy::Magnitude),
        ("random", PrunePolicy::Random { seed: 1 }),
        ("strided", PrunePolicy::Strided),
    ] {
        group.bench_with_input(
            BenchmarkId::new("prune_compress", label),
            &policy,
            |bench, p| bench.iter(|| NmSparseMatrix::prune(&b, cfg, *p).expect("prune")),
        );
    }

    let sb = NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune");
    group.bench_function("decompress", |bench| bench.iter(|| sb.decompress()));
    group.bench_function("offline_preprocess_colinfo", |bench| {
        bench.iter(|| preprocess(&sb, 256, 128).expect("preprocess"))
    });
    group.bench_function("index_bit_pack", |bench| {
        bench.iter(|| sb.indices().bit_pack(cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_format);
criterion_main!(benches);
