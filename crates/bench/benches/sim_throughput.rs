//! Criterion benches of the simulator itself: how fast are analytic
//! estimates (they drive the 100-point × 3-device × 4-level Fig. 9 sweep)
//! and functional block execution (which drives the correctness suites).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::device::a100_80g;
use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::sparse::NmSparseMatrix;
use nm_kernels::{DenseGemmKernel, NmSpmmKernel, NmVersion};

fn bench_sim(c: &mut Criterion) {
    let dev = a100_80g();
    let cfg = NmConfig::new(2, 16, 32).expect("config");

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(20);

    group.bench_function("estimate_nm_v3_4096", |bench| {
        bench.iter(|| {
            NmSpmmKernel::auto(NmVersion::V3, 4096, 4096)
                .estimate(&dev, 4096, 4096, 4096, cfg, None)
                .expect("estimate")
        })
    });
    group.bench_function("estimate_dense_4096", |bench| {
        bench.iter(|| {
            DenseGemmKernel::auto(4096, 4096)
                .estimate(&dev, 4096, 4096, 4096)
                .expect("estimate")
        })
    });

    let a = MatrixF32::random(128, 256, 1);
    let b = MatrixF32::random(256, 128, 2);
    let sb = NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune");
    group.bench_function("functional_run_128x128x256", |bench| {
        bench.iter(|| {
            NmSpmmKernel::auto(NmVersion::V3, 128, 128)
                .run(&dev, &a, &sb)
                .expect("run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
