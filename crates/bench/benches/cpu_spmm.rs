//! Wall-clock criterion benches of the real (multi-threaded CPU) NM-SpMM
//! against the dense parallel GEMM — the honest-hardware counterpart of the
//! paper's Fig. 9 speedup claim: time falls as sparsity rises, approaching
//! the `M/N` bound.
//!
//! Shape: a quarter-scale Llama-7B attention projection (m=256, n=1024,
//! k=1024) so a full criterion run finishes in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nm_core::matrix::MatrixF32;
use nm_core::parallel::{gemm_parallel, spmm_parallel, CpuSpmmOptions, Strategy};
use nm_core::pattern::NmConfig;
use nm_core::sparse::NmSparseMatrix;

const M: usize = 256;
const N: usize = 1024;
const K: usize = 1024;

fn bench_cpu_spmm(c: &mut Criterion) {
    let a = MatrixF32::random(M, K, 1);
    let b = MatrixF32::random(K, N, 2);

    let mut group = c.benchmark_group("cpu_spmm");
    group.sample_size(10);
    group.throughput(Throughput::Elements((M * N * K) as u64));

    group.bench_function("dense_gemm_parallel", |bench| {
        bench.iter(|| gemm_parallel(&a, &b))
    });

    for (label, n_keep) in [("50.0%", 8usize), ("62.5%", 6), ("75.0%", 4), ("87.5%", 2)] {
        let cfg = NmConfig::new(n_keep, 16, 32).expect("config");
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune");
        group.bench_with_input(BenchmarkId::new("nm_spmm_auto", label), &sb, |bench, sb| {
            bench.iter(|| spmm_parallel(&a, sb, &CpuSpmmOptions::default()))
        });
    }

    // Packing vs non-packing at high sparsity — the ablation on real iron.
    let cfg = NmConfig::new(2, 16, 32).expect("config");
    let sb = NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune");
    for (label, strategy) in [
        ("packing", Strategy::Packing),
        ("non-packing", Strategy::NonPacking),
    ] {
        let opts = CpuSpmmOptions {
            strategy,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("nm_spmm_87.5%", label),
            &sb,
            |bench, sb| bench.iter(|| spmm_parallel(&a, sb, &opts)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cpu_spmm);
criterion_main!(benches);
