//! # nm-bench — harness regenerating every table and figure of the paper
//!
//! One binary per experiment (see `src/bin/`):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1_params`   | Table I + Table II |
//! | `table3_hardware` | Table III |
//! | `fig7_stepwise`   | Fig. 7 (V1/V2/V3 vs cuBLAS, 3 GPUs) |
//! | `fig8_blocking`   | Fig. 8 (kernel size classes on shapes A–F) |
//! | `fig9_comparison` | Fig. 9 (100-point Llama dataset, 4 baselines) |
//! | `fig10_roofline`  | Fig. 10 (roofline on the NCU-locked A100) |
//! | `ablations`       | DESIGN.md ablation studies |
//!
//! plus criterion wall-clock benches of the real CPU implementation
//! (`benches/`).

#![warn(missing_docs)]

use std::fmt::Display;

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Nearest-rank percentile (`q` in `(0, 1]`) of an **unsorted** slice;
/// the latency-distribution helper `bench_serving` reports p50/p95/p99
/// with. Returns 0 for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Minimal fixed-width table printer for harness output.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new<S: Display>(headers: &[S]) -> Self {
        Self {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Display>(&mut self, cells: &[S]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:>w$}", c, w = widths[i]));
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format a speedup with two decimals and an `x`.
pub fn spd(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_known() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_known() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1"]);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.875), "87.5%");
        assert_eq!(spd(1.5), "1.50x");
    }
}
