//! Codegen lane: generate, validate and execute the WGSL kernels for
//! the acceptance matrix (kernel family × storage format × shape band),
//! recording shader statistics, interpreter wall clocks against the V3
//! CPU oracle, and the three parity verdicts per cell.
//!
//! ```sh
//! # Full sweep (~seconds):
//! cargo run --release -p nm-bench --bin bench_codegen
//!
//! # CI gate: fail (exit 1) unless every cell validates, is
//! # bit-identical to cpu_v3, and phase-matches the simulated trace:
//! cargo run --release -p nm-bench --bin bench_codegen -- \
//!     --quick --assert-parity --out BENCH_codegen.json
//! ```
//!
//! Exit codes: `0` success, `1` an `--assert-parity` gate failure,
//! `2` usage / I/O failure.

use gpu_sim::device::a100_80g;
use nm_bench::TextTable;
use nm_core::json::JsonValue;
use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::sliced::{SlicedLayout, StorageFormat};
use nm_core::sparse::NmSparseMatrix;
use nm_gpu::ShaderStats;
use nm_kernels::backend::ExecBackend;
use nm_kernels::codegen::{CodegenBackend, CodegenPrepared};
use nm_kernels::plan::{KernelChoice, Plan, Planner, ShapeClass};
use nm_kernels::{CpuBackend, NmVersion};
use std::time::Instant;

/// One matrix cell's outcome.
struct Cell {
    name: String,
    family: &'static str,
    storage: String,
    m: usize,
    k: usize,
    n: usize,
    stats: ShaderStats,
    validated: bool,
    bit_identical: bool,
    phase_match: bool,
    interp_ms: f64,
    cpu_ms: f64,
}

impl Cell {
    fn passed(&self) -> bool {
        self.validated && self.bit_identical && self.phase_match
    }

    fn json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", JsonValue::from_str_value(&self.name)),
            ("family", JsonValue::from_str_value(self.family)),
            ("storage", JsonValue::from_str_value(&self.storage)),
            ("m", JsonValue::from_usize(self.m)),
            ("k", JsonValue::from_usize(self.k)),
            ("n", JsonValue::from_usize(self.n)),
            ("wgsl_lines", JsonValue::from_usize(self.stats.lines)),
            ("ir_nodes", JsonValue::from_usize(self.stats.nodes)),
            (
                "threads",
                JsonValue::from_usize(self.stats.threads as usize),
            ),
            (
                "shared_bytes",
                JsonValue::from_usize(self.stats.shared_bytes),
            ),
            (
                "double_buffered",
                JsonValue::Bool(self.stats.double_buffered),
            ),
            ("validated", JsonValue::Bool(self.validated)),
            ("bit_identical", JsonValue::Bool(self.bit_identical)),
            ("phase_match", JsonValue::Bool(self.phase_match)),
            ("interp_ms", JsonValue::Number(self.interp_ms)),
            ("cpu_ms", JsonValue::Number(self.cpu_ms)),
        ])
    }
}

/// Run one `(plan, operand, rows)` cell: prepare (lower + emit +
/// validate), execute through the interpreter, compare with `cpu_v3`,
/// compare phase structures.
fn run_cell(plan: &Plan, sb: &NmSparseMatrix, m: usize, seed: u64) -> Cell {
    let dev = a100_80g();
    let a = MatrixF32::random(m, sb.k(), seed);
    let backend = CodegenBackend::new();
    let state = backend
        .prepare(&dev, plan, sb)
        .expect("codegen preparation (lower/emit/validate)");
    let prep = state
        .as_any()
        .downcast_ref::<CodegenPrepared>()
        .expect("codegen state");
    // `prepare` already gates on the validator; collecting stats re-runs
    // it on the emitted text, so `validated` reports the emission.
    let stats = ShaderStats::collect(prep.ir(), prep.wgsl());
    let validated = stats.is_ok();
    let stats = stats.unwrap_or_else(|e| panic!("{}: {e}", prep.spec().name()));

    let t0 = Instant::now();
    let (c, trace) = prep.execute(&a, sb).expect("interpret");
    let interp_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let cpu = CpuBackend::new(NmVersion::V3)
        .run(&dev, plan, &a, sb)
        .expect("cpu_v3");
    let cpu_ms = t1.elapsed().as_secs_f64() * 1e3;

    let bit_identical = c.as_slice() == cpu.c.as_slice();
    let (ours, sim) = prep.phase_parity(&dev, &trace, m).expect("phase parity");
    Cell {
        name: prep.spec().name(),
        family: prep.spec().family.name(),
        storage: prep.spec().storage.tag(),
        m,
        k: sb.k(),
        n: sb.cols(),
        stats,
        validated,
        bit_identical,
        phase_match: ours.matches(&sim),
        interp_ms,
        cpu_ms,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_codegen [--quick] [--assert-parity] [--out FILE] [--seed N]\n\
         \x20  --quick          smaller shapes (CI smoke)\n\
         \x20  --assert-parity  exit 1 unless every cell validates, matches cpu_v3\n\
         \x20                   bit for bit, and phase-matches the simulator\n\
         \x20  --out FILE       artifact path (default BENCH_codegen.json)\n\
         \x20  --seed N         operand seed (default 42)"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut assert_parity = false;
    let mut out = String::from("BENCH_codegen.json");
    let mut seed = 42u64;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--assert-parity" => assert_parity = true,
            "--out" => {
                i += 1;
                out = argv.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    let cfg = NmConfig::new(2, 8, 16).expect("2:8:16");
    let layout = SlicedLayout::new(4, 16).expect("layout");
    let storages = [StorageFormat::RowMajor, StorageFormat::Sliced(layout)];
    // Ragged prefill shapes plus the one-row decode band.
    let prefill: &[(usize, usize, usize)] = if quick {
        &[(13, 112, 72)]
    } else {
        &[(9, 80, 100), (13, 112, 72), (33, 200, 144)]
    };
    let ladder = [
        (KernelChoice::NmV1, "v1"),
        (KernelChoice::NmV2, "v2"),
        (KernelChoice::NmV3, "v3"),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for storage in storages {
        for (choice, _) in ladder {
            for (ci, &(m, k, n)) in prefill.iter().enumerate() {
                let sb = NmSparseMatrix::prune_magnitude(
                    &MatrixF32::random(k, n, seed ^ (0x100 + ci as u64)),
                    cfg,
                )
                .expect("prune");
                let mut plan = Planner::new(a100_80g())
                    .plan_stored(ShapeClass::Prefill, storage, m, n, k, cfg)
                    .expect("plan");
                plan.choice = choice;
                cells.push(run_cell(&plan, &sb, m, seed ^ (0x200 + ci as u64)));
            }
        }
        // The skinny decode family at m = 1, on the largest shape.
        let &(_, k, n) = prefill.last().expect("shapes");
        let sb = NmSparseMatrix::prune_magnitude(&MatrixF32::random(k, n, seed ^ 0x300), cfg)
            .expect("prune");
        let plan = Planner::new(a100_80g())
            .plan_stored(ShapeClass::Decode(1), storage, 1, n, k, cfg)
            .expect("decode plan");
        cells.push(run_cell(&plan, &sb, 1, seed ^ 0x400));
    }

    let mut table = TextTable::new(&[
        "kernel",
        "shape",
        "lines",
        "smem B",
        "interp ms",
        "cpu ms",
        "verdict",
    ]);
    for c in &cells {
        table.row(&[
            format!("{}/{}", c.family, c.storage),
            format!("{}x{}x{}", c.m, c.k, c.n),
            c.stats.lines.to_string(),
            c.stats.shared_bytes.to_string(),
            format!("{:.3}", c.interp_ms),
            format!("{:.3}", c.cpu_ms),
            if c.passed() {
                "ok".into()
            } else {
                format!(
                    "FAIL(valid={} bits={} phase={})",
                    c.validated, c.bit_identical, c.phase_match
                )
            },
        ]);
    }
    table.print();

    let failures = cells.iter().filter(|c| !c.passed()).count();
    println!(
        "{} cells, {} passed, {} failed",
        cells.len(),
        cells.len() - failures,
        failures
    );

    let doc = JsonValue::object(vec![
        ("schema", JsonValue::from_str_value("codegen-v1")),
        ("quick", JsonValue::Bool(quick)),
        ("seed", JsonValue::from_usize(seed as usize)),
        (
            "cells",
            JsonValue::Array(cells.iter().map(Cell::json).collect()),
        ),
        (
            "gate",
            JsonValue::object(vec![
                ("total", JsonValue::from_usize(cells.len())),
                ("failed", JsonValue::from_usize(failures)),
            ]),
        ),
    ]);
    let json = doc.dump().expect("artifact serializes");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("writing {out}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out}");

    if assert_parity {
        if failures > 0 {
            eprintln!("GATE FAIL: {failures} cell(s) broke the parity contract");
            std::process::exit(1);
        }
        println!("parity gate passed ({} cells)", cells.len());
    }
}
