//! Regenerates **Fig. 8**: efficiency of the small/medium/large kernels on
//! the Table II shapes A–F across the five sparsity levels, on the A100,
//! with cuBLAS shown at 0%.
//!
//! The claim under test: "kernels optimized for matrices with specific
//! characteristics consistently achieve the best performance for those
//! cases" — small shapes prefer the small kernel, large shapes the large
//! kernel.

use gpu_sim::device::a100_80g;
use nm_bench::{pct, TextTable};
use nm_kernels::params::BlockingParams;
use nm_kernels::{DenseGemmKernel, NmSpmmKernel, NmVersion};
use nm_workloads::levels::{label, with_dense_control};
use nm_workloads::shapes::table_ii;

fn main() {
    let dev = a100_80g();
    println!(
        "== Fig. 8: blocking-parameter kernels on Table II shapes ({}) ==\n",
        dev.name
    );

    let mut mismatches = 0usize;
    for cfg in with_dense_control() {
        println!("-- sparsity {} --", label(&cfg));
        let mut t = TextTable::new(&[
            "shape", "m", "n", "k", "small", "medium", "large", "best", "expected", "cuBLAS",
        ]);
        for shape in table_ii() {
            let mut effs = Vec::new();
            for (_, params) in BlockingParams::table_i() {
                let rep = NmSpmmKernel::new(NmVersion::V3, params)
                    .estimate(&dev, shape.m, shape.n, shape.k, cfg, None)
                    .expect("estimate");
                effs.push(rep.efficiency);
            }
            let best = ["small", "medium", "large"][effs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0];
            let expected = shape.size_class();
            if best != expected {
                mismatches += 1;
            }
            let cublas = if cfg.sparsity() == 0.0 {
                pct(DenseGemmKernel::auto(shape.m, shape.n)
                    .estimate(&dev, shape.m, shape.n, shape.k)
                    .expect("dense")
                    .efficiency)
            } else {
                "-".to_string()
            };
            t.row(&[
                shape.label.to_string(),
                shape.m.to_string(),
                shape.n.to_string(),
                shape.k.to_string(),
                pct(effs[0]),
                pct(effs[1]),
                pct(effs[2]),
                best.to_string(),
                expected.to_string(),
                cublas,
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "size-class matches: {}/{} (paper claim: the matching kernel consistently wins)",
        5 * 6 - mismatches,
        5 * 6
    );
}
