//! Regenerates **Table I** (recommended blocking parameters, with the
//! quantities the paper derives from them) and **Table II** (the A–F test
//! shapes with their size classes and `Para_Init_Table` assignments).

use gpu_sim::device::a100_80g;
use nm_analysis::cmar::{cmar, tile_registers, LdsWidth};
use nm_bench::spd;
use nm_bench::TextTable;
use nm_kernels::params::{derive_blocking, BlockingParams};
use nm_workloads::levels::benchmark_levels;
use nm_workloads::shapes::table_ii;

fn main() {
    println!("== Table I: recommended blocking parameters ==\n");
    let mut t = TextTable::new(&[
        "class",
        "ms",
        "ns",
        "mr",
        "nr",
        "mt",
        "nt",
        "threads",
        "warps",
        "CMAR(LDS.128)",
        "regs(tile)",
    ]);
    for (label, p) in BlockingParams::table_i() {
        t.row(&[
            label.to_string(),
            p.ms.to_string(),
            p.ns.to_string(),
            p.mr.to_string(),
            p.nr.to_string(),
            p.mt.to_string(),
            p.nt.to_string(),
            p.threads().to_string(),
            p.warps().to_string(),
            spd(cmar(p.mt, p.nt, LdsWidth::Lds128)),
            tile_registers(p.mt, p.nt).to_string(),
        ]);
    }
    t.print();

    println!("\n== derived ks/ws on the A100 (Eq. 4/5), k = 4096 ==\n");
    let dev = a100_80g();
    let mut t = TextTable::new(&["class", "sparsity", "ks", "ws", "qs", "smem(V3)"]);
    for (label, p) in BlockingParams::table_i() {
        for cfg in benchmark_levels() {
            let b = derive_blocking(&dev, p, cfg, 4096, true, true).expect("blocking");
            t.row(&[
                label.to_string(),
                format!("{:.1}%", cfg.sparsity() * 100.0),
                b.ks.to_string(),
                b.ws.to_string(),
                b.qs.to_string(),
                format!("{} B", b.smem_bytes),
            ]);
        }
    }
    t.print();

    println!("\n== Table II: evaluation shapes ==\n");
    let mut t = TextTable::new(&["label", "m", "n", "k", "class", "Para_Init_Table"]);
    for s in table_ii() {
        let assigned = BlockingParams::para_init_table(s.m, s.n);
        let name = BlockingParams::table_i()
            .iter()
            .find(|(_, p)| *p == assigned)
            .map(|(n, _)| *n)
            .unwrap_or("?");
        t.row(&[
            s.label.to_string(),
            s.m.to_string(),
            s.n.to_string(),
            s.k.to_string(),
            s.size_class().to_string(),
            name.to_string(),
        ]);
    }
    t.print();
}
