//! Regenerates **Fig. 7**: step-wise optimization evaluation of NM-SpMM
//! (V1 → V2 → V3) against cuBLAS, on A100 / RTX 3090 / RTX 4090, with
//! `m = n = k = 4096` and sparsity ∈ {0%, 50%, 62.5%, 75%, 87.5%}.
//!
//! The paper's Fig. 7 y-axis is *efficiency*: achieved useful TFLOPS over
//! device peak. At 0% the NM kernel runs with `N = M = 32` and cuBLAS's
//! dense GEMM is shown alongside.

use gpu_sim::device::paper_devices;
use nm_bench::{pct, TextTable};
use nm_kernels::params::BlockingParams;
use nm_kernels::{DenseGemmKernel, NmSpmmKernel, NmVersion};
use nm_workloads::levels::{label, with_dense_control};

fn main() {
    let (m, n, k) = (4096, 4096, 4096);
    println!("== Fig. 7: step-wise optimization (m = n = k = {m}) ==\n");

    for dev in paper_devices() {
        println!(
            "-- {} (peak {:.1} TFLOPS FP32) --",
            dev.name,
            dev.peak_fp32_tflops()
        );
        let mut t = TextTable::new(&["sparsity", "V1", "V2", "V3", "cuBLAS", "V3 bound"]);
        let dense = DenseGemmKernel::new(BlockingParams::large())
            .estimate(&dev, m, n, k)
            .expect("dense estimate");

        for cfg in with_dense_control() {
            let mut cells: Vec<String> = vec![label(&cfg)];
            let mut v3_bound = String::new();
            for v in [NmVersion::V1, NmVersion::V2, NmVersion::V3] {
                let rep = NmSpmmKernel::new(v, BlockingParams::large())
                    .estimate(&dev, m, n, k, cfg, None)
                    .expect("estimate");
                cells.push(pct(rep.efficiency));
                if v == NmVersion::V3 {
                    v3_bound = format!("{:?}", rep.bound);
                }
            }
            // cuBLAS appears only at 0% in the paper's figure.
            cells.push(if cfg.sparsity() == 0.0 {
                pct(dense.efficiency)
            } else {
                "-".into()
            });
            cells.push(v3_bound);
            t.row(&cells);
        }
        t.print();
        println!();
    }
    println!("(expected shape: V1 ≈ V3 at ≤62.5%; V2/V3 pull ahead at ≥75%;");
    println!(" NM-SpMM at 0% within a few points of cuBLAS on A100, below it on 3090/4090)");
}
