//! Measured-performance harness: the native CPU V1→V3 ladder against the
//! scalar reference, on real wall clocks.
//!
//! Unlike the other bins (which regenerate the paper's figures from the
//! *timing model*), this one executes every kernel for real through the
//! [`nm_kernels::backend`] subsystem, cross-checks the numerics, and emits
//! a `BENCH_pr.json` trajectory file — the repo's measured performance
//! record, consumed by the `perf-smoke` CI gate.
//!
//! ```sh
//! # Full sweep (Fig. 7 / Table II shapes, ~a minute of CPU time):
//! cargo run --release -p nm-bench --bin bench_measured
//!
//! # CI smoke: small shapes, compare against the checked-in baseline and
//! # fail on any >25% regression of a kernel's speedup-vs-reference
//! # (a machine-neutral ratio — absolute GFLOP/s differ across runners):
//! cargo run --release -p nm-bench --bin bench_measured -- \
//!     --quick --out BENCH_pr.json --check-against BENCH_baseline.json
//! ```
//!
//! Exit codes: `0` success, `1` regression against the baseline or an
//! `--assert-ab` failure, `2` usage / numeric-mismatch / I/O failure —
//! including a `--threshold` outside the open interval `(0, 1)`, an
//! `NM_SPMM_ISA` override this host cannot execute, and an unrecognized
//! `--autotune` / `NM_SPMM_AUTOTUNE` mode.
//!
//! The run records which micro-kernel ISA the CPU ladder dispatched to
//! (top-level `isa` field plus one per CPU kernel entry in the JSON);
//! `NM_SPMM_FORCE_SCALAR=1` forces the scalar tile so CI can A/B the SIMD
//! and scalar paths on the same host.
//!
//! ## The plan A/B lane
//!
//! With `--autotune quick|full` (or `NM_SPMM_AUTOTUNE`), every shape also
//! runs the **evidence-based** path — `Session::load` under measured
//! autotuning, which short-run-benchmarks the ladder in place and
//! prepares on the measured winner — next to the cost-model default
//! (always-V3). Both lanes land in the JSON under `plan_ab`, and
//! `--assert-ab` turns the comparison into a gate: on the 512³ shapes
//! (where the analytic GPU model is known to invert the CPU ladder
//! ordering) the measured plan must not lose to the static default.
//!
//! ## The decode lane
//!
//! Skinny shapes (`m ∈ {1, 2, 4, 8}`) ride along with every sweep and
//! report **effective GB/s** next to GFLOP/s — at decode batch sizes the
//! product is bandwidth-bound, so bytes of compressed-operand traffic per
//! second is the honest axis. `m = 1` shapes also time two rivals: the
//! seed `spmv` loop from `nm-core` and the 4-row GEMM tile forced onto
//! the one-row input. Every decode shape also times the **storage-format
//! rivals** head to head — the V3 preparation staged row-major
//! (`cpu_v3`) versus staged SELL-C-σ sliced (`cpu_v3_sliced`) — and
//! reports each format's compressed-operand bytes. `--decode` runs the
//! decode set alone and gates it (measured plans must hold against
//! *both* format lanes, and the prepared SpMV path must beat both
//! rivals); CI writes that run to `BENCH_decode.json`.

use gpu_sim::device::a100_80g;
use nm_bench::{spd, TextTable};
use nm_core::index::IndexLayout;
use nm_core::json::JsonValue;
use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::prune::PrunePolicy;
use nm_core::sliced::{SlicedLayout, StorageFormat};
use nm_core::sparse::NmSparseMatrix;
use nm_core::spmm::spmm_reference;
use nm_kernels::plan::version_name;
use nm_kernels::{
    AutotuneMode, BackendKind, CpuTiling, Isa, LoadSpec, MicroKernel, NmVersion, Session,
    SessionBuilder, ShapeClass, DECODE_MAX_ROWS,
};
use std::time::Instant;

/// One benchmarked problem.
struct Shape {
    label: &'static str,
    m: usize,
    n: usize,
    k: usize,
    cfg: NmConfig,
}

fn cfg(n: usize, m: usize) -> NmConfig {
    NmConfig::new(n, m, 32).expect("valid config")
}

/// The full sweep: Fig. 7's 4096³ square at the acceptance sparsity plus a
/// spread of Table II sizes and one Llama-proportioned projection.
fn full_shapes() -> Vec<Shape> {
    vec![
        Shape {
            label: "A-512-50",
            m: 512,
            n: 512,
            k: 512,
            cfg: cfg(8, 16),
        },
        Shape {
            label: "A-512-75",
            m: 512,
            n: 512,
            k: 512,
            cfg: cfg(2, 8),
        },
        Shape {
            label: "A-512-87",
            m: 512,
            n: 512,
            k: 512,
            cfg: cfg(2, 16),
        },
        Shape {
            label: "C-2048-75",
            m: 512,
            n: 2048,
            k: 2048,
            cfg: cfg(2, 8),
        },
        Shape {
            label: "D-2048-87",
            m: 1024,
            n: 2048,
            k: 2048,
            cfg: cfg(2, 16),
        },
        Shape {
            label: "llama-proj-75",
            m: 512,
            n: 4096,
            k: 4096,
            cfg: cfg(2, 8),
        },
        Shape {
            label: "F-4096-75",
            m: 4096,
            n: 4096,
            k: 4096,
            cfg: cfg(2, 8),
        },
    ]
}

/// The CI smoke sweep: seconds, not minutes.
fn quick_shapes() -> Vec<Shape> {
    vec![
        Shape {
            label: "A-512-75",
            m: 512,
            n: 512,
            k: 512,
            cfg: cfg(2, 8),
        },
        Shape {
            label: "quick-768-87",
            m: 256,
            n: 768,
            k: 768,
            cfg: cfg(2, 16),
        },
        Shape {
            label: "quick-512-50",
            m: 256,
            n: 512,
            k: 512,
            cfg: cfg(8, 16),
        },
    ]
}

/// The decode sweep: skinny activation shapes (`m ≤` [`DECODE_MAX_ROWS`])
/// at the acceptance sparsity, where the product is bandwidth-bound and
/// the interesting metric is GB/s of compressed-operand traffic, not
/// GFLOP/s. `m = 1` shapes additionally run the seed `spmv` loop and a
/// forced 4-row GEMM tile as rivals (see [`bench_shape`]). These shapes
/// ride along in full mode and stand alone under `--decode`.
fn decode_shapes(quick: bool) -> Vec<Shape> {
    if quick {
        return vec![
            Shape {
                label: "decode-1-512-75",
                m: 1,
                n: 512,
                k: 512,
                cfg: cfg(2, 8),
            },
            Shape {
                label: "decode-8-512-75",
                m: 8,
                n: 512,
                k: 512,
                cfg: cfg(2, 8),
            },
        ];
    }
    let mut shapes = vec![
        Shape {
            label: "decode-1-2048-75",
            m: 1,
            n: 2048,
            k: 2048,
            cfg: cfg(2, 8),
        },
        Shape {
            label: "decode-2-2048-75",
            m: 2,
            n: 2048,
            k: 2048,
            cfg: cfg(2, 8),
        },
        Shape {
            label: "decode-4-2048-75",
            m: 4,
            n: 2048,
            k: 2048,
            cfg: cfg(2, 8),
        },
        Shape {
            label: "decode-8-2048-75",
            m: 8,
            n: 2048,
            k: 2048,
            cfg: cfg(2, 8),
        },
    ];
    shapes.push(Shape {
        label: "llama-decode-75",
        m: 1,
        n: 4096,
        k: 4096,
        cfg: cfg(2, 8),
    });
    shapes
}

/// Useful memory traffic of one decode-shape product, in bytes: the
/// compressed operand (`4·w·n` value bytes + `w·q` one-byte offsets) plus
/// the activation read (`4·m·k`) and the result write (`4·m·n`). At
/// `m ≤ 8` the product is bandwidth-bound — every B′ value is used at
/// most `m` times — so effective GB/s against this traffic is the honest
/// throughput axis; GFLOP/s is reported alongside for continuity.
fn decode_traffic_bytes(m: usize, n: usize, k: usize, sb: &NmSparseMatrix) -> f64 {
    let values = 4.0 * sb.w() as f64 * n as f64;
    let offsets = sb.w() as f64 * sb.q() as f64;
    let activation = 4.0 * m as f64 * k as f64;
    let result = 4.0 * m as f64 * n as f64;
    values + offsets + activation + result
}

/// One steady-state iteration is granted to kernels whose first run took
/// longer than this; past [`WARMUP_BUDGET_SECONDS`] the cold number is
/// kept rather than doubling a multi-second run.
const BIG_KERNEL_SECONDS: f64 = 0.15;

/// Cap on the extra time a big kernel's warmup re-run may cost.
const WARMUP_BUDGET_SECONDS: f64 = 2.5;

/// Measured seconds (best of an adaptive rep count) for one kernel run.
///
/// Small kernels repeat until ~0.4 s of total time and score the minimum.
/// Big kernels (first run > 0.15 s) used to run exactly once, which made
/// large-shape ladder numbers cold-run artifacts — the first iteration
/// pays page faults and cache warming the production steady state never
/// sees. They now get one budget-capped warmup: the cold run is treated
/// as warmup and one steady-state iteration is timed, unless the first
/// run already exceeded the warmup budget (then its number is kept —
/// doubling a multi-second kernel buys little).
fn time_best<F: FnMut() -> f64>(mut run_once: F) -> f64 {
    let mut best = run_once();
    if best >= BIG_KERNEL_SECONDS {
        if best < WARMUP_BUDGET_SECONDS {
            best = best.min(run_once());
        }
        return best;
    }
    let mut spent = best;
    while spent < 0.4 && best < BIG_KERNEL_SECONDS {
        let t = run_once();
        best = best.min(t);
        spent += t;
    }
    best
}

struct KernelResult {
    seconds: f64,
    gflops: f64,
    /// The micro-kernel ISA the run dispatched to; `None` for the scalar
    /// reference (it has no micro-kernel) and for the seed `spmv` loop.
    isa: Option<Isa>,
}

/// The measured-autotune lane of the plan A/B: what `Session::load`
/// picked when it was allowed to benchmark instead of trusting the cost
/// model, and how the pick ran.
struct AbLane {
    /// Online wall seconds of the measured-plan forward pass.
    seconds: f64,
    gflops: f64,
    /// The ladder step the measurement picked.
    version: NmVersion,
    /// The tile geometry the measurement picked.
    tiling: CpuTiling,
    /// The storage format the measurement picked (decode keys compare
    /// row-major against the sliced grid; prefill stays row-major).
    storage: StorageFormat,
    /// The short-run harness's own throughput estimate for the winner —
    /// the evidence the plan cache persists.
    harness_gflops: f64,
    samples: usize,
}

struct ShapeResult {
    label: &'static str,
    m: usize,
    n: usize,
    k: usize,
    cfg: NmConfig,
    /// [`decode_traffic_bytes`] for decode shapes, `None` for prefill —
    /// the denominator behind every GB/s this harness reports.
    traffic_bytes: Option<f64>,
    /// Compressed-operand bytes per storage format (tag → bytes), decode
    /// shapes only — the per-format accounting behind the decode table.
    storage_bytes: Vec<(String, usize)>,
    /// `reference`, `cpu_v1`, `cpu_v2`, `cpu_v3` in that order; decode
    /// shapes append the `cpu_v3_sliced` format rival, and `m = 1`
    /// shapes append `spmv_seed` and `gemm4_forced`.
    kernels: Vec<(&'static str, KernelResult)>,
    /// The measured-plan lane; `None` when autotuning is off. The
    /// cost-model lane of the A/B is `cpu_v3` above — exactly the plan a
    /// default `Session::load` prepares.
    ab: Option<AbLane>,
}

impl ShapeResult {
    fn get(&self, name: &str) -> &KernelResult {
        &self
            .kernels
            .iter()
            .find(|(n, _)| *n == name)
            .expect("known kernel")
            .1
    }

    fn maybe(&self, name: &str) -> Option<&KernelResult> {
        self.kernels
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, k)| k)
    }

    fn speedup_vs_ref(&self, name: &str) -> f64 {
        self.get("reference").seconds / self.get(name).seconds
    }

    /// Whether this shape sits in the decode band (`m ≤ 8` rows) — the
    /// same classification [`ShapeClass::of_rows`] gives the planner.
    fn is_decode(&self) -> bool {
        self.m <= DECODE_MAX_ROWS
    }

    /// Effective GB/s of a lane that ran in `seconds`, against the
    /// shape's useful decode traffic; `None` on prefill shapes.
    fn gbps(&self, seconds: f64) -> Option<f64> {
        self.traffic_bytes.map(|t| t / seconds / 1e9)
    }

    /// The fastest prepared-path lane (ladder versions, the sliced
    /// format rival, plus the measured A/B lane when it ran) — what a
    /// decode server would actually hit.
    fn best_prepared_seconds(&self) -> f64 {
        let ladder = ["cpu_v1", "cpu_v2", "cpu_v3", "cpu_v3_sliced"]
            .iter()
            .filter_map(|name| self.maybe(name).map(|kr| kr.seconds))
            .fold(f64::INFINITY, f64::min);
        self.ab.as_ref().map_or(ladder, |ab| ladder.min(ab.seconds))
    }
}

fn bench_shape(session: &mut Session, shape: &Shape, seed: u64) -> Result<ShapeResult, String> {
    let Shape { label, m, n, k, .. } = *shape;
    let c = shape.cfg;

    let a = MatrixF32::random(m, k, seed);
    let b = MatrixF32::random(k, n, seed ^ 0x5eed);
    // Shared via Arc: the three per-version loads below reference one
    // compressed copy instead of deep-cloning it.
    let sb = std::sync::Arc::new(
        NmSparseMatrix::prune(&b, c, PrunePolicy::Magnitude)
            .map_err(|e| format!("{label}: prune failed: {e}"))?,
    );
    let useful = 2.0 * m as f64 * n as f64 * sb.w() as f64;
    let traffic_bytes = (m <= DECODE_MAX_ROWS).then(|| decode_traffic_bytes(m, n, k, &sb));

    // The scalar reference is both the baseline and the numeric oracle.
    let mut expect = None;
    let ref_s = time_best(|| {
        let t0 = Instant::now();
        let c_ref = spmm_reference(&a, &sb);
        let dt = t0.elapsed().as_secs_f64();
        expect = Some(c_ref);
        dt
    });
    let expect = expect.expect("reference ran");

    let mut kernels = vec![(
        "reference",
        KernelResult {
            seconds: ref_s,
            gflops: useful / ref_s / 1e9,
            isa: None,
        },
    )];

    // Session::load_on does all the offline work once per (shape,
    // version): planning (cached), blocking derivation, B' staging,
    // col_info packing. The timing reps below amortize it exactly as the
    // CpuBackend accounts it — ExecRun::wall_seconds covers the online
    // kernel only. The session's pinned micro-kernel drives every
    // preparation, so the document's top-level `isa` and the per-kernel
    // entries agree by construction.
    let mut expect_v3 = None;
    for (name, version) in [
        ("cpu_v1", NmVersion::V1),
        ("cpu_v2", NmVersion::V2),
        ("cpu_v3", NmVersion::V3),
    ] {
        let layer = session
            .load_on(sb.clone(), m, BackendKind::Cpu(version))
            .map_err(|e| format!("{label}: {name} preparation failed: {e}"))?;
        let mut out = None;
        let mut failure = None;
        let secs = time_best(|| match layer.forward(&a) {
            Ok(run) => {
                let dt = run.wall_seconds;
                out = Some(run.c);
                dt
            }
            Err(e) => {
                failure = Some(format!("{label}: {name} failed: {e}"));
                f64::INFINITY // ends the rep loop immediately
            }
        });
        if let Some(failure) = failure {
            return Err(failure);
        }
        let got = out.expect("kernel ran");
        if !got.allclose(&expect, 1e-3, 1e-4) {
            return Err(format!(
                "{label}: {name} disagrees with the reference (max diff {})",
                got.max_abs_diff(&expect)
            ));
        }
        let isa = layer.isa().expect("CPU backend reports an ISA");
        if version == NmVersion::V3 {
            expect_v3 = Some(got.clone());
        }
        kernels.push((
            name,
            KernelResult {
                seconds: secs,
                gflops: useful / secs / 1e9,
                isa: Some(isa),
            },
        ));
    }

    // The storage-format rival, decode shapes only: the same V3
    // preparation pinned to the SELL-C-σ sliced layout, head to head
    // with the row-major `cpu_v3` lane above. An explicit backend keeps
    // this lane measurement-free (like the ladder lanes), so it times
    // the *derived* sliced geometry — the measured A/B lane below is
    // where evidence picks a format.
    if m <= DECODE_MAX_ROWS {
        let expect_v3 = expect_v3.as_ref().expect("cpu_v3 ran");
        let pin = StorageFormat::Sliced(SlicedLayout::DEFAULT);
        let layer = session
            .load_with(
                sb.clone(),
                LoadSpec::rows(m)
                    .backend(BackendKind::Cpu(NmVersion::V3))
                    .storage(pin),
            )
            .map_err(|e| format!("{label}: cpu_v3_sliced preparation failed: {e}"))?;
        let mut out = None;
        let mut failure = None;
        let secs = time_best(|| match layer.forward(&a) {
            Ok(run) => {
                let dt = run.wall_seconds;
                out = Some(run.c);
                dt
            }
            Err(e) => {
                failure = Some(format!("{label}: cpu_v3_sliced failed: {e}"));
                f64::INFINITY
            }
        });
        if let Some(failure) = failure {
            return Err(failure);
        }
        let got = out.expect("kernel ran");
        // The sliced staging is bit-identical to the row-major one, so
        // the cheap oracle is exact equality with the `cpu_v3` product —
        // a tolerance here would hide a broken permutation.
        if got.as_slice() != expect_v3.as_slice() {
            return Err(format!(
                "{label}: cpu_v3_sliced is not bit-identical to cpu_v3 (max diff {})",
                got.max_abs_diff(expect_v3)
            ));
        }
        let isa = layer.isa().expect("CPU backend reports an ISA");
        kernels.push((
            "cpu_v3_sliced",
            KernelResult {
                seconds: secs,
                gflops: useful / secs / 1e9,
                isa: Some(isa),
            },
        ));
    }

    // Decode rivals, m = 1 only: the pre-ladder seed loop from nm-core
    // (cold re-read of the compressed operand every call, no staging, no
    // SIMD) and the GEMM tile forced onto the SpMV shape — a 4-row
    // zero-padded operand through the prepared ladder, which is what a
    // fixed 4×16 register tile does to a one-row input. Both are scored
    // at the *useful* (1-row) FLOPs and traffic, so the padding waste
    // shows up as lost throughput rather than being normalized away.
    if m == 1 {
        let x: Vec<f32> = a.row(0).to_vec();
        let mut y_out = None;
        let seed_s = time_best(|| {
            let t0 = Instant::now();
            let y = nm_core::batched::spmv(&x, &sb).expect("seed spmv accepts k-length input");
            let dt = t0.elapsed().as_secs_f64();
            y_out = Some(y);
            dt
        });
        let got = MatrixF32::from_vec(1, n, y_out.expect("seed spmv ran"));
        if !got.allclose(&expect, 1e-3, 1e-4) {
            return Err(format!(
                "{label}: seed spmv disagrees with the reference (max diff {})",
                got.max_abs_diff(&expect)
            ));
        }
        kernels.push((
            "spmv_seed",
            KernelResult {
                seconds: seed_s,
                gflops: useful / seed_s / 1e9,
                isa: None,
            },
        ));

        let layer = session
            .load_on(sb.clone(), 4, BackendKind::Cpu(NmVersion::V1))
            .map_err(|e| format!("{label}: gemm4_forced preparation failed: {e}"))?;
        let mut a4 = vec![0f32; 4 * k];
        a4[..k].copy_from_slice(a.row(0));
        let a4 = MatrixF32::from_vec(4, k, a4);
        let mut out = None;
        let mut failure = None;
        let gemm_s = time_best(|| match layer.forward(&a4) {
            Ok(run) => {
                let dt = run.wall_seconds;
                out = Some(run.c);
                dt
            }
            Err(e) => {
                failure = Some(format!("{label}: gemm4_forced failed: {e}"));
                f64::INFINITY
            }
        });
        if let Some(failure) = failure {
            return Err(failure);
        }
        let c4 = out.expect("gemm4 ran");
        let got = MatrixF32::from_vec(1, n, c4.row(0).to_vec());
        if !got.allclose(&expect, 1e-3, 1e-4) {
            return Err(format!(
                "{label}: gemm4_forced row 0 disagrees with the reference (max diff {})",
                got.max_abs_diff(&expect)
            ));
        }
        let isa = layer.isa().expect("CPU backend reports an ISA");
        kernels.push((
            "gemm4_forced",
            KernelResult {
                seconds: gemm_s,
                gflops: useful / gemm_s / 1e9,
                isa: Some(isa),
            },
        ));
    }

    // The A/B lane: `Session::load` with measured autotuning routes
    // through the short-run harness (cache-consulted, so repeat shapes
    // re-measure nothing) and prepares on the evidence-picked ladder
    // version and tiling. Timed identically to the ladder lanes above.
    let ab = if session.autotune() != AutotuneMode::Off {
        let layer = session
            .load(sb.clone(), m)
            .map_err(|e| format!("{label}: measured-autotune load failed: {e}"))?;
        let mut out = None;
        let mut failure = None;
        let secs = time_best(|| match layer.forward(&a) {
            Ok(run) => {
                let dt = run.wall_seconds;
                out = Some(run.c);
                dt
            }
            Err(e) => {
                failure = Some(format!("{label}: measured plan failed: {e}"));
                f64::INFINITY
            }
        });
        if let Some(failure) = failure {
            return Err(failure);
        }
        let got = out.expect("kernel ran");
        if !got.allclose(&expect, 1e-3, 1e-4) {
            return Err(format!(
                "{label}: measured plan disagrees with the reference (max diff {})",
                got.max_abs_diff(&expect)
            ));
        }
        let measured = layer
            .plan()
            .measured
            .ok_or_else(|| format!("{label}: measured load returned a plan without evidence"))?;
        Some(AbLane {
            seconds: secs,
            gflops: useful / secs / 1e9,
            version: measured.ladder_version,
            tiling: measured.cpu_tiling,
            storage: measured.storage,
            harness_gflops: measured.gflops,
            samples: measured.samples,
        })
    } else {
        None
    };

    // Per-format compressed-operand footprint, decode shapes only (the
    // formats the rival lane above actually raced). Index bytes use the
    // row-major u8 layout on both sides so the delta isolates the sliced
    // format's permutation + padding overhead.
    let storage_bytes = if m <= DECODE_MAX_ROWS {
        let pin = StorageFormat::Sliced(SlicedLayout::DEFAULT);
        vec![
            (
                StorageFormat::RowMajor.tag(),
                sb.storage_bytes(IndexLayout::RowMajorU8),
            ),
            (pin.tag(), sb.storage_bytes_as(pin, IndexLayout::RowMajorU8)),
        ]
    } else {
        Vec::new()
    };

    Ok(ShapeResult {
        label,
        m,
        n,
        k,
        cfg: c,
        traffic_bytes,
        storage_bytes,
        kernels,
        ab,
    })
}

fn results_to_json(
    results: &[ShapeResult],
    mode: &str,
    device: &str,
    isa: Isa,
    autotune: AutotuneMode,
) -> JsonValue {
    let shapes = results
        .iter()
        .map(|r| {
            let kernels = r
                .kernels
                .iter()
                .map(|(name, kr)| {
                    let mut fields = vec![
                        ("seconds", JsonValue::Number(kr.seconds)),
                        ("gflops", JsonValue::Number(kr.gflops)),
                    ];
                    if let Some(gbps) = r.gbps(kr.seconds) {
                        fields.push(("gbps", JsonValue::Number(gbps)));
                    }
                    if let Some(isa) = kr.isa {
                        fields.push(("isa", JsonValue::from_str_value(isa.name())));
                    }
                    if *name != "reference" {
                        fields.push(("speedup_vs_ref", JsonValue::Number(r.speedup_vs_ref(name))));
                    }
                    (*name, JsonValue::object(fields))
                })
                .collect::<Vec<_>>();
            let mut fields = vec![
                ("label", JsonValue::from_str_value(r.label)),
                ("m", JsonValue::from_usize(r.m)),
                ("n", JsonValue::from_usize(r.n)),
                ("k", JsonValue::from_usize(r.k)),
                ("n_keep", JsonValue::from_usize(r.cfg.n)),
                ("m_win", JsonValue::from_usize(r.cfg.m)),
                ("l", JsonValue::from_usize(r.cfg.l)),
                ("sparsity", JsonValue::Number(r.cfg.sparsity())),
                (
                    "shape_class",
                    JsonValue::from_str_value(&ShapeClass::of_rows(r.m).tag()),
                ),
                ("kernels", JsonValue::object(kernels)),
                (
                    "stepwise",
                    JsonValue::object(vec![
                        ("v1_over_ref", JsonValue::Number(r.speedup_vs_ref("cpu_v1"))),
                        (
                            "v2_over_v1",
                            JsonValue::Number(r.get("cpu_v1").seconds / r.get("cpu_v2").seconds),
                        ),
                        (
                            "v3_over_v2",
                            JsonValue::Number(r.get("cpu_v2").seconds / r.get("cpu_v3").seconds),
                        ),
                        ("v3_over_ref", JsonValue::Number(r.speedup_vs_ref("cpu_v3"))),
                    ]),
                ),
            ];
            if let Some(t) = r.traffic_bytes {
                fields.push(("traffic_bytes", JsonValue::Number(t)));
            }
            if !r.storage_bytes.is_empty() {
                fields.push((
                    "storage_bytes",
                    JsonValue::object(
                        r.storage_bytes
                            .iter()
                            .map(|(tag, bytes)| (tag.as_str(), JsonValue::from_usize(*bytes)))
                            .collect(),
                    ),
                ));
            }
            if let Some(ab) = &r.ab {
                // Both lanes of the plan A/B, normalized against the
                // same-run reference so the comparison survives a change
                // of host.
                fields.push((
                    "plan_ab",
                    JsonValue::object(vec![
                        (
                            "cost_model",
                            JsonValue::object(vec![
                                ("version", JsonValue::from_str_value("v3")),
                                ("provenance", JsonValue::from_str_value("cost_model")),
                                ("seconds", JsonValue::Number(r.get("cpu_v3").seconds)),
                                (
                                    "speedup_vs_ref",
                                    JsonValue::Number(r.speedup_vs_ref("cpu_v3")),
                                ),
                            ]),
                        ),
                        (
                            "measured",
                            JsonValue::object(vec![
                                (
                                    "version",
                                    JsonValue::from_str_value(version_name(ab.version)),
                                ),
                                ("provenance", JsonValue::from_str_value("measured")),
                                ("seconds", JsonValue::Number(ab.seconds)),
                                ("gflops", JsonValue::Number(ab.gflops)),
                                (
                                    "gbps",
                                    r.gbps(ab.seconds)
                                        .map_or(JsonValue::Null, JsonValue::Number),
                                ),
                                (
                                    "speedup_vs_ref",
                                    JsonValue::Number(r.get("reference").seconds / ab.seconds),
                                ),
                                (
                                    "tiling",
                                    JsonValue::object(vec![
                                        ("mb", JsonValue::from_usize(ab.tiling.mb)),
                                        ("nb", JsonValue::from_usize(ab.tiling.nb)),
                                        ("kb", JsonValue::from_usize(ab.tiling.kb)),
                                        ("mt", JsonValue::from_usize(ab.tiling.mt)),
                                    ]),
                                ),
                                ("storage", JsonValue::from_str_value(&ab.storage.tag())),
                                ("harness_gflops", JsonValue::Number(ab.harness_gflops)),
                                ("samples", JsonValue::from_usize(ab.samples)),
                            ]),
                        ),
                        (
                            "measured_over_cost_model",
                            JsonValue::Number(r.get("cpu_v3").seconds / ab.seconds),
                        ),
                    ]),
                ));
            }
            JsonValue::object(fields)
        })
        .collect();
    JsonValue::object(vec![
        (
            "format",
            JsonValue::from_str_value("nm-spmm measured bench"),
        ),
        ("version", JsonValue::from_usize(1)),
        ("mode", JsonValue::from_str_value(mode)),
        ("autotune_mode", JsonValue::from_str_value(autotune.name())),
        ("plan_device", JsonValue::from_str_value(device)),
        ("isa", JsonValue::from_str_value(isa.name())),
        (
            "threads",
            JsonValue::from_usize(std::thread::available_parallelism().map_or(1, |p| p.get())),
        ),
        ("shapes", JsonValue::Array(shapes)),
    ])
}

/// Compare against a baseline document; returns human-readable regression
/// lines (empty = gate passes).
///
/// The gated metric is each CPU kernel's **speedup over the same-run
/// reference** (`speedup_vs_ref`), not absolute GFLOP/s: the ratio divides
/// out the host's per-core throughput, so a baseline recorded on one
/// machine remains meaningful on a different CI runner — **provided both
/// ran the same micro-kernel ISA**. SIMD dispatch inflates the CPU
/// kernels but not the scalar reference, so an avx512-recorded ratio is
/// meaningless on an avx2-only runner; entries whose baseline `isa`
/// disagrees with the measured one are skipped with a note instead of
/// producing spurious regressions (CI additionally pins the gated run's
/// ISA so this stays a safety net, not the common path). Shapes or
/// kernels the baseline does not know are likewise skipped, but a check
/// that ends up comparing **nothing** is itself a failure — otherwise a
/// renamed shape set would silently disarm the gate — *unless* everything
/// was skipped for ISA mismatch under **native** dispatch, which is a
/// hardware difference, not a stale baseline. When the run's ISA was
/// explicitly pinned (`isa_pinned`, i.e. `NM_SPMM_ISA` /
/// `NM_SPMM_FORCE_SCALAR` was set), an all-skipped comparison means the
/// pin and the baseline disagree — a configuration error that must fail,
/// or a forgotten pin during baseline regeneration would disarm CI's
/// gate permanently and silently.
fn check_against(
    results: &[ShapeResult],
    baseline: &JsonValue,
    threshold: f64,
    isa_pinned: bool,
) -> Vec<String> {
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    let mut isa_skipped = 0usize;
    let Some(base_shapes) = baseline.get("shapes").and_then(|s| s.as_array()) else {
        return vec!["baseline has no `shapes` array".into()];
    };
    for r in results {
        let Some(base) = base_shapes
            .iter()
            .find(|s| s.str_field("label").ok() == Some(r.label))
        else {
            println!("  (baseline has no shape `{}` — skipped)", r.label);
            continue;
        };
        let Ok(base_kernels) = base.field("kernels") else {
            continue;
        };
        for (name, kr) in &r.kernels {
            if *name == "reference" {
                continue; // the reference *is* the normalizer
            }
            let Some(base_kernel) = base_kernels.get(name) else {
                continue;
            };
            let Some(base_speedup) = base_kernel.get("speedup_vs_ref").and_then(|v| v.as_f64())
            else {
                continue;
            };
            // A baseline recorded under a different micro-kernel ISA is
            // not comparable; a baseline without an isa field (pre-dispatch
            // format) is compared as before.
            let base_isa = base_kernel.get("isa").and_then(|v| v.as_str());
            let measured_isa = kr.isa.map(|i| i.name());
            if let (Some(b), Some(m)) = (base_isa, measured_isa) {
                if b != m {
                    println!(
                        "  (baseline {} / {name} was recorded with the {b} \
                         micro-kernel; this run used {m} — skipped)",
                        r.label
                    );
                    isa_skipped += 1;
                    continue;
                }
            }
            compared += 1;
            let measured = r.speedup_vs_ref(name);
            let floor = base_speedup * (1.0 - threshold);
            if measured < floor {
                regressions.push(format!(
                    "{} / {name}: {measured:.2}x vs reference < {floor:.2}x \
                     (baseline {base_speedup:.2}x − {:.0}%)",
                    r.label,
                    threshold * 100.0
                ));
            }
        }
    }
    if compared == 0 {
        if isa_skipped > 0 && isa_pinned {
            regressions.push(format!(
                "every (shape, kernel) pair was skipped for ISA mismatch while the \
                 run's ISA was explicitly pinned — the pin and the baseline disagree; \
                 regenerate BENCH_baseline.json under the same NM_SPMM_ISA pin \
                 ({isa_skipped} pairs skipped)"
            ));
        } else if isa_skipped > 0 {
            println!(
                "  WARNING: every (shape, kernel) pair was skipped for ISA mismatch — \
                 the gate is disarmed on this hardware; regenerate BENCH_baseline.json \
                 under this runner's ISA (or pin NM_SPMM_ISA) to re-arm it"
            );
        } else {
            regressions.push(
                "no (shape, kernel) pair overlaps the baseline — the gate compared nothing; \
                 regenerate BENCH_baseline.json for the current shape set"
                    .into(),
            );
        }
    }
    regressions
}

/// The `--assert-ab` gate: on the 512³ shapes — where the analytic GPU
/// model is known to invert the CPU ladder ordering, so evidence has
/// something to win — the measured plan must run at least as fast as the
/// cost-model default (`cpu_v3`), with a 5% allowance for timing noise.
/// Returns failure lines; empty = pass. A comparison that covers nothing
/// is itself a failure, so a renamed shape set cannot silently disarm it.
fn check_ab(results: &[ShapeResult]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for r in results {
        if !(r.m == 512 && r.n == 512 && r.k == 512) {
            continue;
        }
        let Some(ab) = &r.ab else { continue };
        compared += 1;
        let ratio = r.get("cpu_v3").seconds / ab.seconds;
        if ratio < 0.95 {
            failures.push(format!(
                "{}: the measured plan ({}, {:.2} GFLOP/s) ran at {ratio:.2}x the \
                 cost-model V3 plan — evidence-based planning must not lose to the \
                 static default on an inverted shape",
                r.label,
                version_name(ab.version),
                ab.gflops,
            ));
        }
    }
    if compared == 0 {
        failures.push(
            "--assert-ab compared nothing: no 512-cubed shape carried an A/B lane \
             (run with --autotune quick|full and a shape set containing A-512-*)"
                .into(),
        );
    }
    failures
}

/// The `--decode` gate, in the spirit of [`check_ab`] but for the skinny
/// band. Three claims are enforced on every decode shape in the run:
///
/// 1. **Evidence holds** — where the A/B lane ran, the measured plan must
///    not lose to the cost-model V3 default (same 5% noise allowance as
///    `check_ab`; decode is exactly where GEMM-trained cost models are
///    known to mislead, so evidence losing here means the skinny
///    candidates in `measure::tiling_candidates` stopped winning).
/// 2. **Format evidence holds** — where the sliced rival lane ran, the
///    measured plan must likewise stay within 5% of it; together with
///    claim 1 the evidence-picked storage format never loses to either
///    same-run format lane.
/// 3. **The prepared SpMV path earns its keep** — on `m = 1` shapes the
///    best prepared lane must beat both rivals outright: the seed `spmv`
///    loop (no staging, no SIMD) and `gemm4_forced` (the 4-row GEMM tile
///    padded onto the one-row input). Losing to either means the decode
///    path is pure complexity.
///
/// Returns failure lines; empty = pass. A run that compares nothing is
/// itself a failure so a renamed shape set cannot silently disarm it.
fn check_decode(results: &[ShapeResult]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for r in results {
        if !r.is_decode() {
            continue;
        }
        if let Some(ab) = &r.ab {
            compared += 1;
            let ratio = r.get("cpu_v3").seconds / ab.seconds;
            if ratio < 0.95 {
                failures.push(format!(
                    "{}: the measured decode plan ({}, mb={}) ran at {ratio:.2}x the \
                     cost-model V3 plan — skinny candidates must not lose to the \
                     GEMM default on a decode shape",
                    r.label,
                    version_name(ab.version),
                    ab.tiling.mb,
                ));
            }
            // 3. **Format evidence holds** — the measured winner must also
            //    stay within the same 5% of the sliced rival lane. Combined
            //    with gate 1 (row-major `cpu_v3`), the evidence-picked
            //    format never loses to *either* same-run format lane.
            if let Some(sliced) = r.maybe("cpu_v3_sliced") {
                compared += 1;
                let ratio = sliced.seconds / ab.seconds;
                if ratio < 0.95 {
                    failures.push(format!(
                        "{}: the measured decode plan (format {}) ran at {ratio:.2}x the \
                         sliced rival lane — the format dimension of the autotune grid \
                         stopped tracking the better layout",
                        r.label,
                        ab.storage.tag(),
                    ));
                }
            }
        }
        if r.m != 1 {
            continue;
        }
        let best = r.best_prepared_seconds();
        for rival in ["spmv_seed", "gemm4_forced"] {
            let Some(kr) = r.maybe(rival) else { continue };
            compared += 1;
            if best >= kr.seconds {
                failures.push(format!(
                    "{}: the prepared SpMV path ({best:.6}s) does not beat {rival} \
                     ({:.6}s) — the decode path must outrun both the seed loop and \
                     the forced GEMM tile",
                    r.label, kr.seconds,
                ));
            }
        }
    }
    if compared == 0 {
        failures.push(
            "--decode gate compared nothing: no decode shape carried an A/B lane or \
             an m=1 rival (run a shape set containing decode-* shapes)"
                .into(),
        );
    }
    failures
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_measured [--quick] [--decode] [--out PATH] [--check-against PATH] \
         [--threshold F] [--seed N] [--autotune off|quick|full] [--assert-ab]\n\
         \n\
         --threshold F   allowed fractional regression of speedup-vs-reference,\n\
         \u{20}                strictly between 0 and 1 (default 0.25 = 25%)\n\
         --autotune M    also run the measured-plan A/B lane (Session::load under\n\
         \u{20}                short-run autotuning) next to the cost-model default\n\
         --assert-ab     fail (exit 1) when the measured plan loses to the\n\
         \u{20}                cost-model plan on the 512-cubed shapes; needs --autotune\n\
         --decode        run the decode shape set only (m <= 8; --quick picks the\n\
         \u{20}                small set) and gate it: measured plans must hold and the\n\
         \u{20}                prepared SpMV path must beat the seed loop and the forced\n\
         \u{20}                GEMM tile on m=1 (exit 1 on failure)\n\
         \n\
         environment: NM_SPMM_ISA=scalar|avx2|avx512|neon|native and\n\
         NM_SPMM_FORCE_SCALAR=1 override the micro-kernel ISA dispatch;\n\
         NM_SPMM_AUTOTUNE=off|quick|full is the env form of --autotune"
    );
    std::process::exit(2);
}

/// A regression threshold is a *fraction* of the baseline speedup: 0 (or
/// less) would fail on measurement noise alone, and 1 (or more) can never
/// fire — `floor = base · (1 − t)` hits zero — so both ends are rejected
/// rather than silently arming a nonsense gate.
fn threshold_is_valid(t: f64) -> bool {
    t.is_finite() && t > 0.0 && t < 1.0
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_pr.json");
    let mut check: Option<String> = None;
    let mut threshold = 0.25f64;
    let mut seed = 42u64;
    let mut autotune: Option<AutotuneMode> = None;
    let mut assert_ab = false;
    let mut decode_only = false;

    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--assert-ab" => assert_ab = true,
            "--decode" => decode_only = true,
            "--autotune" => {
                i += 1;
                let value = argv.get(i).cloned().unwrap_or_else(|| usage());
                // Validated exactly like the env form: garbage is a
                // structured usage error, never a silent fallback to Off.
                autotune = Some(match AutotuneMode::from_name(&value) {
                    Ok(mode) => mode,
                    Err(e) => {
                        eprintln!("--autotune {value}: {e}");
                        std::process::exit(2);
                    }
                });
            }
            "--out" => {
                i += 1;
                out = argv.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--check-against" => {
                i += 1;
                check = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--threshold" => {
                i += 1;
                threshold = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    if !threshold_is_valid(threshold) {
        eprintln!("--threshold {threshold} is outside (0, 1)");
        usage();
    }
    // The flag wins over the environment; either way an unrecognized
    // mode is a hard usage error (exit 2), mirroring NM_SPMM_ISA.
    let autotune = match autotune {
        Some(mode) => mode,
        None => match AutotuneMode::from_env() {
            Ok(mode) => mode.unwrap_or_default(),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
    };
    if assert_ab && autotune == AutotuneMode::Off {
        eprintln!("--assert-ab needs the A/B lane; pass --autotune quick|full");
        usage();
    }

    // Decode shapes ride along with every sweep (so BENCH_pr.json always
    // carries the skinny band) and stand alone under --decode.
    let shapes = if decode_only {
        decode_shapes(quick)
    } else {
        let mut s = if quick { quick_shapes() } else { full_shapes() };
        s.extend(decode_shapes(quick));
        s
    };
    let mode = match (decode_only, quick) {
        (true, true) => "decode-quick",
        (true, false) => "decode-full",
        (false, true) => "quick",
        (false, false) => "full",
    };
    // The micro-kernel the runs below will dispatch to (honoring the
    // NM_SPMM_* overrides); resolving it here surfaces a bad override as
    // a usage error before any benchmarking starts.
    let kernel = match MicroKernel::select() {
        Ok(k) => k,
        Err(e) => {
            eprintln!("micro-kernel selection failed: {e}");
            std::process::exit(2);
        }
    };
    // Plans come from the A100 model: the auto-tuned blocking (not the
    // timing estimate) is what drives the CPU tile sizes. The session
    // pins the resolved micro-kernel across every layer it loads.
    let mut session = match SessionBuilder::new(a100_80g())
        .micro_kernel(kernel)
        .autotune(autotune)
        .build()
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot build session: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "== measured CPU ladder ({mode} mode, {} shapes, {} micro-kernel, autotune {autotune}) ==\n",
        shapes.len(),
        kernel.isa()
    );
    let mut results = Vec::new();
    for shape in &shapes {
        print!(
            "{:>14}  {}x{}x{} {} ... ",
            shape.label,
            shape.m,
            shape.n,
            shape.k,
            shape.cfg.label()
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        match bench_shape(&mut session, shape, seed) {
            Ok(r) => {
                println!(
                    "ref {:.3}s  V3 {} ({:.2} GFLOP/s)",
                    r.get("reference").seconds,
                    spd(r.speedup_vs_ref("cpu_v3")),
                    r.get("cpu_v3").gflops
                );
                results.push(r);
            }
            Err(e) => {
                eprintln!("FAILED\nnumeric/planning failure: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut t = TextTable::new(&[
        "shape", "N:M", "ref GF/s", "V1 GF/s", "V2 GF/s", "V3 GF/s", "V1/ref", "V2/V1", "V3/V2",
        "V3/ref",
    ]);
    for r in &results {
        t.row(&[
            r.label.to_string(),
            r.cfg.label(),
            format!("{:.2}", r.get("reference").gflops),
            format!("{:.2}", r.get("cpu_v1").gflops),
            format!("{:.2}", r.get("cpu_v2").gflops),
            format!("{:.2}", r.get("cpu_v3").gflops),
            spd(r.speedup_vs_ref("cpu_v1")),
            spd(r.get("cpu_v1").seconds / r.get("cpu_v2").seconds),
            spd(r.get("cpu_v2").seconds / r.get("cpu_v3").seconds),
            spd(r.speedup_vs_ref("cpu_v3")),
        ]);
    }
    println!();
    t.print();

    if results.iter().any(|r| r.ab.is_some()) {
        println!("\n== plan A/B: cost-model default (V3) vs measured autotune ==\n");
        let mut t = TextTable::new(&[
            "shape",
            "V3 GF/s",
            "measured GF/s",
            "picked",
            "tiling mb/nb/kb/mt",
            "format",
            "meas/V3",
        ]);
        for r in &results {
            let Some(ab) = &r.ab else { continue };
            t.row(&[
                r.label.to_string(),
                format!("{:.2}", r.get("cpu_v3").gflops),
                format!("{:.2}", ab.gflops),
                version_name(ab.version).to_string(),
                format!(
                    "{}/{}/{}/{}",
                    ab.tiling.mb, ab.tiling.nb, ab.tiling.kb, ab.tiling.mt
                ),
                ab.storage.tag(),
                spd(r.get("cpu_v3").seconds / ab.seconds),
            ]);
        }
        t.print();
    }

    if results.iter().any(|r| r.is_decode()) {
        println!("\n== decode lanes (effective GB/s at useful traffic) ==\n");
        let mut t = TextTable::new(&[
            "shape",
            "m",
            "V1 GB/s",
            "V2 GB/s",
            "V3 GB/s",
            "sliced GB/s",
            "seed GB/s",
            "gemm4 GB/s",
            "best/seed",
            "best/gemm4",
        ]);
        for r in results.iter().filter(|r| r.is_decode()) {
            let gb = |name: &str| {
                r.maybe(name)
                    .and_then(|kr| r.gbps(kr.seconds))
                    .map_or("-".to_string(), |v| format!("{v:.2}"))
            };
            let best = r.best_prepared_seconds();
            let vs_best = |name: &str| {
                r.maybe(name)
                    .map_or("-".to_string(), |kr| spd(kr.seconds / best))
            };
            t.row(&[
                r.label.to_string(),
                r.m.to_string(),
                gb("cpu_v1"),
                gb("cpu_v2"),
                gb("cpu_v3"),
                gb("cpu_v3_sliced"),
                gb("spmv_seed"),
                gb("gemm4_forced"),
                vs_best("spmv_seed"),
                vs_best("gemm4_forced"),
            ]);
        }
        t.print();
    }

    let doc = results_to_json(
        &results,
        mode,
        &session.device().name,
        kernel.isa(),
        autotune,
    );
    let json = doc.dump().expect("results serialize");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    }
    println!("\nwrote {out}");

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let baseline = match JsonValue::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("malformed baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        println!(
            "checking against {path} (threshold {:.0}%):",
            threshold * 100.0
        );
        // Whether the run's ISA came from an explicit override rather than
        // native dispatch — it decides how an all-ISA-mismatch comparison
        // is judged (configuration error vs hardware difference). Spelled
        // out defaults (NM_SPMM_ISA=native, NM_SPMM_FORCE_SCALAR=0) count
        // as native dispatch, matching what select() actually did.
        let isa_pinned = MicroKernel::env_pins_isa();
        let regressions = check_against(&results, &baseline, threshold, isa_pinned);
        if regressions.is_empty() {
            println!("  no regressions — gate passes");
        } else {
            for r in &regressions {
                eprintln!("  REGRESSION: {r}");
            }
            std::process::exit(1);
        }
    }

    if assert_ab {
        let failures = check_ab(&results);
        if failures.is_empty() {
            println!("plan A/B gate: measured plans hold on the 512-cubed shapes");
        } else {
            for f in &failures {
                eprintln!("  A/B FAILURE: {f}");
            }
            std::process::exit(1);
        }
    }

    if decode_only {
        let failures = check_decode(&results);
        if failures.is_empty() {
            println!(
                "decode gate: measured plans hold and the prepared SpMV path beats \
                 both rivals on m=1"
            );
        } else {
            for f in &failures {
                eprintln!("  DECODE FAILURE: {f}");
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shape whose `cpu_v3` ran `v3_seconds` against a 1-second
    /// reference (powers of two keep the speedup arithmetic exact).
    fn result_with_v3_seconds(v3_seconds: f64) -> ShapeResult {
        ShapeResult {
            label: "A-512-75",
            m: 512,
            n: 512,
            k: 512,
            cfg: NmConfig::new(2, 8, 32).unwrap(),
            traffic_bytes: None,
            storage_bytes: Vec::new(),
            kernels: vec![
                (
                    "reference",
                    KernelResult {
                        seconds: 1.0,
                        gflops: 1.0,
                        isa: None,
                    },
                ),
                (
                    "cpu_v3",
                    KernelResult {
                        seconds: v3_seconds,
                        gflops: 1.0 / v3_seconds,
                        isa: Some(Isa::Scalar),
                    },
                ),
            ],
            ab: None,
        }
    }

    /// Attach a measured A/B lane that ran in `seconds`.
    fn with_ab(mut r: ShapeResult, seconds: f64) -> ShapeResult {
        r.ab = Some(AbLane {
            seconds,
            gflops: 1.0 / seconds,
            version: NmVersion::V1,
            tiling: CpuTiling {
                mb: 64,
                nb: 128,
                kb: 128,
                mt: 8,
            },
            storage: StorageFormat::RowMajor,
            harness_gflops: 1.0 / seconds,
            samples: 3,
        });
        r
    }

    fn baseline(label: &str, speedup: f64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"shapes": [{{"label": "{label}",
                 "kernels": {{"cpu_v3": {{"speedup_vs_ref": {speedup}}}}}}}]}}"#
        ))
        .unwrap()
    }

    fn baseline_with_isa(label: &str, speedup: f64, isa: &str) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"shapes": [{{"label": "{label}",
                 "kernels": {{"cpu_v3": {{"speedup_vs_ref": {speedup},
                                          "isa": "{isa}"}}}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn threshold_bounds_are_exclusive() {
        assert!(threshold_is_valid(0.25));
        assert!(threshold_is_valid(1e-9));
        assert!(threshold_is_valid(0.999));
        assert!(!threshold_is_valid(0.0), "0 fails on noise alone");
        assert!(!threshold_is_valid(1.0), "1 can never fire");
        assert!(!threshold_is_valid(-0.5));
        assert!(!threshold_is_valid(1.5));
        assert!(!threshold_is_valid(f64::NAN));
        assert!(!threshold_is_valid(f64::INFINITY));
    }

    #[test]
    fn floor_boundary_is_exclusive() {
        // Baseline 4x, threshold 0.5 → floor = 2x, all exactly
        // representable. A measured speedup exactly AT the floor passes
        // (the gate fires on `measured < floor`, strictly)...
        let at_floor = result_with_v3_seconds(0.5); // speedup exactly 2.0
        assert!(
            check_against(&[at_floor], &baseline("A-512-75", 4.0), 0.5, false).is_empty(),
            "measured == floor must pass"
        );
        // ...and one representable step below it fails.
        let below = result_with_v3_seconds(0.512); // speedup 1.953125
        let regressions = check_against(&[below], &baseline("A-512-75", 4.0), 0.5, false);
        assert_eq!(regressions.len(), 1, "measured < floor must fail");
        assert!(regressions[0].contains("cpu_v3"));
    }

    #[test]
    fn tiny_threshold_arms_a_tight_gate() {
        // threshold → 0 means the floor sits just under the baseline.
        let r = result_with_v3_seconds(0.25); // 4.0x measured
        assert!(check_against(&[r], &baseline("A-512-75", 4.0), 1e-9, false).is_empty());
        let r = result_with_v3_seconds(0.251); // fractionally slower
        assert_eq!(
            check_against(&[r], &baseline("A-512-75", 4.0), 1e-9, false).len(),
            1
        );
    }

    #[test]
    fn empty_overlap_is_itself_a_failure() {
        let r = result_with_v3_seconds(0.5);
        let regressions = check_against(&[r], &baseline("renamed-shape", 4.0), 0.25, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("compared nothing"));
    }

    #[test]
    fn isa_mismatch_skips_instead_of_spuriously_regressing() {
        // The measured run (scalar, 2.0x) would regress hard against an
        // avx512-recorded 8x baseline — but that ratio is not comparable
        // across ISAs, so the pair is skipped; with nothing else to
        // compare the gate disarms with a warning rather than failing.
        let r = result_with_v3_seconds(0.5);
        let regressions = check_against(
            &[r],
            &baseline_with_isa("A-512-75", 8.0, "avx512"),
            0.25,
            false,
        );
        assert!(
            regressions.is_empty(),
            "cross-ISA ratios must not gate: {regressions:?}"
        );
    }

    #[test]
    fn all_skipped_under_an_explicit_pin_is_a_configuration_failure() {
        // Same mismatch as above, but the run's ISA was pinned via env:
        // the pin and the baseline disagree, which must fail loudly —
        // otherwise a baseline regenerated without the CI pin would
        // permanently disarm the gate.
        let r = result_with_v3_seconds(0.5);
        let regressions = check_against(
            &[r],
            &baseline_with_isa("A-512-75", 8.0, "avx512"),
            0.25,
            true,
        );
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("explicitly pinned"));
    }

    #[test]
    fn matching_isa_still_gates() {
        let r = result_with_v3_seconds(0.5); // scalar, 2.0x
        let regressions = check_against(
            &[r],
            &baseline_with_isa("A-512-75", 8.0, "scalar"),
            0.25,
            false,
        );
        assert_eq!(regressions.len(), 1, "same-ISA regressions must fire");
    }

    #[test]
    fn ab_gate_passes_when_measured_wins_or_ties() {
        // Measured faster than V3: clean pass.
        let r = with_ab(result_with_v3_seconds(0.5), 0.25);
        assert!(check_ab(&[r]).is_empty());
        // Measured exactly at the 5% noise floor (ratio 0.95): passes —
        // the gate fires on `ratio < 0.95`, strictly.
        let r = with_ab(result_with_v3_seconds(0.95), 1.0);
        assert!(check_ab(&[r]).is_empty(), "ratio == 0.95 must pass");
    }

    #[test]
    fn ab_gate_fails_when_measured_loses_to_the_cost_model() {
        // Measured twice as slow as the V3 default: the whole point of
        // evidence-based planning failed on this shape.
        let r = with_ab(result_with_v3_seconds(0.5), 1.0);
        let failures = check_ab(&[r]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("must not lose"));
    }

    #[test]
    fn ab_gate_comparing_nothing_is_a_failure() {
        // No A/B lane at all (autotune off) …
        let failures = check_ab(&[result_with_v3_seconds(0.5)]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("compared nothing"));
        // … and a lane on a non-512³ shape doesn't arm the gate either.
        let mut r = with_ab(result_with_v3_seconds(0.5), 0.25);
        r.m = 1024;
        let failures = check_ab(&[r]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("compared nothing"));
    }

    #[test]
    fn legacy_baseline_without_isa_still_gates() {
        // Pre-dispatch baselines carry no isa field; they keep gating as
        // before rather than being silently skipped.
        let r = result_with_v3_seconds(0.5); // 2.0x
        let regressions = check_against(&[r], &baseline("A-512-75", 8.0), 0.25, false);
        assert_eq!(regressions.len(), 1);
    }

    /// An `m = 1` decode shape against a 1-second reference: the fastest
    /// ladder lane runs in `prepared_seconds`, the rivals as given.
    fn decode_result(prepared_seconds: f64, seed_seconds: f64, gemm_seconds: f64) -> ShapeResult {
        let lane = |seconds: f64, isa: Option<Isa>| KernelResult {
            seconds,
            gflops: 1.0 / seconds,
            isa,
        };
        ShapeResult {
            label: "decode-1-512-75",
            m: 1,
            n: 512,
            k: 512,
            cfg: NmConfig::new(2, 8, 32).unwrap(),
            traffic_bytes: Some(1e9),
            storage_bytes: Vec::new(),
            kernels: vec![
                ("reference", lane(1.0, None)),
                ("cpu_v1", lane(prepared_seconds, Some(Isa::Scalar))),
                ("cpu_v2", lane(prepared_seconds * 2.0, Some(Isa::Scalar))),
                ("cpu_v3", lane(prepared_seconds * 2.0, Some(Isa::Scalar))),
                ("spmv_seed", lane(seed_seconds, None)),
                ("gemm4_forced", lane(gemm_seconds, Some(Isa::Scalar))),
            ],
            ab: None,
        }
    }

    #[test]
    fn decode_gate_passes_when_the_prepared_path_beats_both_rivals() {
        let r = decode_result(0.1, 0.5, 0.4);
        assert!(check_decode(&[r]).is_empty());
    }

    #[test]
    fn decode_gate_fails_when_a_rival_wins_or_ties() {
        // The seed loop outruns every prepared lane: the decode path is
        // pure complexity on this shape, which must fail.
        let failures = check_decode(&[decode_result(0.5, 0.1, 1.0)]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("spmv_seed"));
        // A tie is not a win — the gate demands strictly faster.
        let failures = check_decode(&[decode_result(0.5, 0.5, 1.0)]);
        assert_eq!(failures.len(), 1);
        // Losing only to the forced GEMM tile also fires.
        let failures = check_decode(&[decode_result(0.5, 1.0, 0.25)]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("gemm4_forced"));
    }

    #[test]
    fn decode_gate_holds_measured_plans_to_the_cost_model() {
        // An m=8 decode shape (no m=1 rivals) whose measured plan ran
        // twice as slow as the V3 default: evidence lost on the band it
        // exists for.
        let mut r = with_ab(result_with_v3_seconds(0.5), 1.0);
        r.m = 8;
        let failures = check_decode(&[r]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("must not lose"));
        // At the 5% noise floor it passes (strict `< 0.95`).
        let mut r = with_ab(result_with_v3_seconds(0.95), 1.0);
        r.m = 8;
        assert!(check_decode(&[r]).is_empty());
    }

    #[test]
    fn decode_gate_holds_measured_plans_to_the_sliced_lane() {
        // An m=8 decode shape where the measured plan keeps pace with the
        // row-major V3 lane but runs twice as slow as the sliced rival:
        // the format dimension of the grid lost evidence it should hold.
        let mut r = with_ab(result_with_v3_seconds(1.0), 1.0);
        r.m = 8;
        r.kernels.push((
            "cpu_v3_sliced",
            KernelResult {
                seconds: 0.5,
                gflops: 2.0,
                isa: Some(Isa::Scalar),
            },
        ));
        let failures = check_decode(&[r]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("sliced rival lane"));
        assert!(failures[0].contains("rowmajor"));
        // Within the 5% noise floor both format gates pass.
        let mut r = with_ab(result_with_v3_seconds(1.0), 1.0);
        r.m = 8;
        r.kernels.push((
            "cpu_v3_sliced",
            KernelResult {
                seconds: 0.95,
                gflops: 1.0 / 0.95,
                isa: Some(Isa::Scalar),
            },
        ));
        assert!(check_decode(&[r]).is_empty());
    }

    #[test]
    fn decode_gate_comparing_nothing_is_a_failure() {
        // Prefill-only results (m = 512) arm nothing …
        let failures = check_decode(&[result_with_v3_seconds(0.5)]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("compared nothing"));
        // … and so does an m=8 decode shape with neither an A/B lane nor
        // m=1 rivals.
        let mut r = result_with_v3_seconds(0.5);
        r.m = 8;
        let failures = check_decode(&[r]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("compared nothing"));
    }

    #[test]
    fn gbps_is_reported_against_the_shape_traffic() {
        // 1 GB of traffic in 0.5 s → 2 GB/s; prefill shapes have no
        // bandwidth axis at all.
        let r = decode_result(0.1, 0.5, 0.4);
        assert_eq!(r.gbps(0.5), Some(2.0));
        let prefill = result_with_v3_seconds(0.5);
        assert_eq!(prefill.gbps(0.5), None);
    }

    #[test]
    fn decode_traffic_counts_operand_activation_and_result_bytes() {
        // Traffic is geometry-only, so a hand computation pins it:
        // values 4·w·n, offsets w·q, activation 4·m·k, result 4·m·n.
        let b = MatrixF32::random(64, 32, 7);
        let sb = NmSparseMatrix::prune(&b, cfg(2, 8), PrunePolicy::Magnitude).unwrap();
        let (w, q) = (sb.w() as f64, sb.q() as f64);
        let want = 4.0 * w * 32.0 + w * q + 4.0 * 64.0 + 4.0 * 32.0;
        assert_eq!(decode_traffic_bytes(1, 32, 64, &sb), want);
    }

    #[test]
    fn big_kernels_get_one_budget_capped_warmup() {
        // A slow-but-affordable first run is treated as cold warmup: one
        // steady-state iteration follows and the minimum is scored.
        let mut calls = 0;
        let best = time_best(|| {
            calls += 1;
            if calls == 1 {
                0.5
            } else {
                0.2
            }
        });
        assert_eq!(calls, 2);
        assert_eq!(best, 0.2);
        // Past the warmup budget the cold number is kept — no re-run.
        let mut calls = 0;
        let best = time_best(|| {
            calls += 1;
            3.0
        });
        assert_eq!(calls, 1);
        assert_eq!(best, 3.0);
    }

    #[test]
    fn small_kernels_repeat_to_the_time_budget() {
        let mut calls = 0;
        let best = time_best(|| {
            calls += 1;
            0.1
        });
        assert_eq!(calls, 4, "0.1 s kernels repeat until ~0.4 s is spent");
        assert_eq!(best, 0.1);
    }
}
