//! Regenerates **Fig. 9**: speedup over cuBLAS of NM-SpMM, nmSPARSE and
//! Sputnik on the 100-point Llama dataset, at the four benchmark sparsity
//! levels, on all three GPUs — plus the §IV-D aggregate claims
//! (NM-SpMM ≈ 2.1× nmSPARSE overall, 1.4×–6.3× over cuBLAS).
//!
//! All kernel selection goes through the unified [`Engine`]: one plan per
//! `(device, shape class, N:M)` key carries every family's estimate, and
//! repeated shapes (Llama's `mlp.gate`/`mlp.up` share weights shapes) are
//! cache hits rather than re-tunes — the per-device cache accounting is
//! printed after each table.
//!
//! Pass `--full` to print every data point; the default prints the
//! per-level summary and a 10-point sample of each series.

use gpu_sim::device::paper_devices;
use nm_bench::{geomean, spd, TextTable};
use nm_kernels::Engine;
use nm_workloads::levels::{benchmark_levels, label};
use nm_workloads::llama::dataset;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let points = dataset();
    println!("== Fig. 9: speedup vs cuBLAS, 100 Llama data points ==\n");

    let mut all_vs_cublas: Vec<f64> = Vec::new();
    let mut all_vs_nmsparse: Vec<f64> = Vec::new();

    for dev in paper_devices() {
        println!("-- {} --", dev.name);
        let mut engine = Engine::new(dev.clone());
        let mut summary = TextTable::new(&[
            "sparsity", "ideal", "NM-SpMM", "nmSPARSE", "Sputnik", "NM/nmSP",
        ]);
        for cfg in benchmark_levels() {
            let mut ours = Vec::with_capacity(points.len());
            let mut nmsp = Vec::with_capacity(points.len());
            let mut sput = Vec::with_capacity(points.len());
            let mut series: Vec<(usize, f64, f64, f64)> = Vec::new();
            for p in &points {
                let (m, n, k) = (p.m, p.shape.n, p.shape.k);
                let plan = engine.plan(m, n, k, cfg).expect("plan");
                let e = &plan.estimates;
                let dense = e.dense.seconds;
                let nm = e.nm_v3.expect("nm-spmm estimate").seconds;
                let base = e.nmsparse.expect("nmsparse estimate").seconds;
                let sp = e.sputnik.seconds;
                ours.push(dense / nm);
                nmsp.push(dense / base);
                sput.push(dense / sp);
                series.push((p.index, dense / nm, dense / base, dense / sp));
            }
            let (g_ours, g_nmsp, g_sput) = (geomean(&ours), geomean(&nmsp), geomean(&sput));
            summary.row(&[
                label(&cfg),
                spd(cfg.ideal_speedup()),
                spd(g_ours),
                spd(g_nmsp),
                spd(g_sput),
                spd(g_ours / g_nmsp),
            ]);
            all_vs_cublas.push(g_ours);
            all_vs_nmsparse.push(g_ours / g_nmsp);

            let step = if full { 1 } else { 10 };
            if dev.name.starts_with("A100") {
                let mut t =
                    TextTable::new(&["pt", "m", "n", "k", "NM-SpMM", "nmSPARSE", "Sputnik"]);
                for (i, p) in points.iter().enumerate().step_by(step) {
                    let (idx, a, b, c) = series[i];
                    t.row(&[
                        idx.to_string(),
                        p.m.to_string(),
                        p.shape.n.to_string(),
                        p.shape.k.to_string(),
                        spd(a),
                        spd(b),
                        spd(c),
                    ]);
                }
                println!("  [{} sample of the series]", label(&cfg));
                for line in t.render().lines() {
                    println!("  {line}");
                }
            }
        }
        summary.print();
        println!("  plan cache: {}\n", engine.stats());
    }

    println!("== §IV-D aggregates ==");
    println!(
        "NM-SpMM vs cuBLAS (geomean per level across devices): {} .. {}",
        spd(all_vs_cublas.iter().cloned().fold(f64::INFINITY, f64::min)),
        spd(all_vs_cublas.iter().cloned().fold(0.0, f64::max)),
    );
    println!(
        "NM-SpMM vs nmSPARSE overall: {}  (paper: 2.1x)",
        spd(geomean(&all_vs_nmsparse))
    );
}
