//! Regenerates **Table III**: hardware metrics of the three evaluation
//! GPUs, as encoded in the simulator's device presets, with the derived
//! quantities the analysis model uses (ridge point, NCU-locked peak).

use gpu_sim::device::{a100_ncu_locked, paper_devices};
use nm_bench::TextTable;

fn main() {
    println!("== Table III: hardware metrics ==\n");
    let devs = paper_devices();
    let mut t = TextTable::new(&["metric", "A100 80G", "RTX 3090", "RTX 4090"]);
    let row = |name: &str, f: &dyn Fn(&gpu_sim::DeviceConfig) -> String| {
        let mut cells = vec![name.to_string()];
        for d in &devs {
            cells.push(f(d));
        }
        cells
    };
    t.row(&row("Boost Clock (MHz)", &|d| {
        format!("{:.0}", d.clock_mhz)
    }));
    t.row(&row("Peak FP32 TFLOPS", &|d| {
        format!("{:.1}", d.peak_fp32_tflops())
    }));
    t.row(&row("Number of SMs", &|d| d.sm_count.to_string()));
    t.row(&row("Register File / SM (KB)", &|d| {
        (d.register_file_per_sm / 1024).to_string()
    }));
    t.row(&row("FP32 Cores / SM", &|d| {
        d.fp32_cores_per_sm.to_string()
    }));
    t.row(&row("FP32 FLOPs / clock / SM", &|d| {
        d.fp32_flops_per_clock_per_sm.to_string()
    }));
    t.row(&row("L1/Shared / SM (KB)", &|d| {
        (d.l1_shared_per_sm / 1024).to_string()
    }));
    t.row(&row("L2 Cache (MB)", &|d| (d.l2_bytes >> 20).to_string()));
    t.row(&row("DRAM (GB)", &|d| (d.dram_bytes >> 30).to_string()));
    t.row(&row("DRAM BW (GB/s)", &|d| {
        format!("{:.0}", d.dram_bw / 1e9)
    }));
    t.row(&row("Ridge (FLOP/B)", &|d| {
        format!("{:.1}", d.ridge_flops_per_byte())
    }));
    t.print();

    let locked = a100_ncu_locked();
    println!(
        "\nNCU-locked A100 (Fig. 10): clock {:.0} MHz -> peak {:.1} TFLOPS",
        locked.clock_mhz,
        locked.peak_fp32_tflops()
    );
}
