//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **packing vs non-packing** across the full sparsity range — where is
//!    the crossover the strategy model predicts at 70%?
//! 2. **pipeline double buffering** on/off at fixed footprint strategy,
//! 3. **vector length L** — accuracy-side footprint vs kernel efficiency,
//! 4. **index layout** — u8 row-major vs blocked vs bit-packed traffic,
//! 5. **thread-tile CMAR sweep** — Eq. (6) against simulated efficiency.

use gpu_sim::device::a100_80g;
use nm_analysis::cmar::{cmar, tile_fits_registers, LdsWidth};
use nm_analysis::packing::expected_ratio;
use nm_bench::{pct, TextTable};
use nm_core::index::{IndexLayout, IndexMatrix};
use nm_core::pattern::NmConfig;
use nm_kernels::Engine;

fn main() {
    let mut engine = Engine::new(a100_80g());
    let (m, n, k) = (4096, 4096, 4096);

    println!("== Ablation 1: packing vs non-packing across sparsity ==\n");
    // V2-with-packing vs V1 (never packs), same (tuned) blocking and the
    // same serial pipeline — both estimates come from one engine plan.
    let mut t = TextTable::new(&["N:M", "sparsity", "non-packing", "packing", "winner"]);
    for nn in [14usize, 12, 10, 8, 6, 5, 4, 3, 2, 1] {
        let cfg = NmConfig::new(nn, 16, 32).expect("config");
        let plan = engine.plan(m, n, k, cfg).expect("plan");
        let v1_eff = plan.estimates.nm_v1.expect("v1").efficiency;
        // Below the threshold the strategy refuses packing, so V2 degrades
        // to V1 and no forced-packing estimate exists.
        let packed_eff = if plan.decision.packing {
            plan.estimates.nm_v2.expect("v2").efficiency
        } else {
            f64::NAN
        };
        let row_winner = if packed_eff.is_nan() {
            "non-packing (by strategy)"
        } else if packed_eff > v1_eff {
            "packing"
        } else {
            "non-packing"
        };
        t.row(&[
            format!("{}:16", nn),
            pct(cfg.sparsity()),
            pct(v1_eff),
            if packed_eff.is_nan() {
                "-".into()
            } else {
                pct(packed_eff)
            },
            row_winner.to_string(),
        ]);
    }
    t.print();

    println!("\n== Ablation 2: pipeline double buffering (V2 vs V3) ==\n");
    let mut t = TextTable::new(&["sparsity", "serial (V2)", "pipelined (V3)", "gain"]);
    for nn in [8usize, 6, 4, 2] {
        let cfg = NmConfig::new(nn, 16, 32).expect("config");
        let plan = engine.plan(m, n, k, cfg).expect("plan");
        let v2 = plan.estimates.nm_v2.expect("v2");
        let v3 = plan.estimates.nm_v3.expect("v3");
        t.row(&[
            pct(cfg.sparsity()),
            pct(v2.efficiency),
            pct(v3.efficiency),
            format!("{:+.1}%", 100.0 * (v2.seconds / v3.seconds - 1.0)),
        ]);
    }
    t.print();

    println!("\n== Ablation 3: vector length L at 87.5% sparsity ==\n");
    let mut t = TextTable::new(&["L", "qs", "expected packed ratio", "V3 efficiency"]);
    for l in [8usize, 16, 32, 64, 128] {
        let cfg = NmConfig::new(2, 16, l).expect("config");
        match engine.plan(m, n, k, cfg) {
            Ok(plan) => {
                let qs = plan.params.ns / l;
                t.row(&[
                    l.to_string(),
                    qs.to_string(),
                    format!("{:.3}", expected_ratio(cfg, qs)),
                    pct(plan.estimates.nm_v3.expect("v3").efficiency),
                ]);
            }
            Err(e) => t.row(&[l.to_string(), "-".into(), "-".into(), format!("({e})")]),
        }
    }
    t.print();
    println!(
        "(smaller L -> better network accuracy but larger packed footprint; Fig. 2 discussion)"
    );

    println!("\n== Ablation 4: index-matrix layout traffic (4096x4096, 2:16) ==\n");
    let cfg = NmConfig::new(2, 16, 32).expect("config");
    let d = IndexMatrix::zeros(cfg.compressed_rows(k), cfg.window_cols(n));
    let mut t = TextTable::new(&["layout", "bytes", "vs bit-packed"]);
    let bp = d.storage_bytes(cfg, IndexLayout::BitPacked);
    for (name, layout) in [
        ("u8 row-major", IndexLayout::RowMajorU8),
        (
            "u8 blocked (ws=64, qs=4)",
            IndexLayout::Blocked { ws: 64, qs: 4 },
        ),
        ("bit-packed (log2 M = 4)", IndexLayout::BitPacked),
    ] {
        let bytes = d.storage_bytes(cfg, layout);
        t.row(&[
            name.to_string(),
            bytes.to_string(),
            format!("{:.2}x", bytes as f64 / bp as f64),
        ]);
    }
    t.print();

    println!("\n== Ablation 5: thread-tile CMAR sweep (Eq. 6) ==\n");
    let mut t = TextTable::new(&["mt", "nt", "regs ok", "CMAR (LDS.128)", "CMAR (LDS.32)"]);
    for (mt, nt) in [(2usize, 2usize), (4, 4), (8, 4), (8, 8), (8, 16), (16, 16)] {
        t.row(&[
            mt.to_string(),
            nt.to_string(),
            tile_fits_registers(mt, nt).to_string(),
            format!("{:.2}", cmar(mt, nt, LdsWidth::Lds128)),
            format!("{:.2}", cmar(mt, nt, LdsWidth::Lds32)),
        ]);
    }
    t.print();
    println!("(the paper's 8x8 / 8x16 tiles maximize CMAR within the 255-register budget)");

    // Ablations 1 and 2 share plan keys (same shape, same levels), so the
    // engine's memo serves the overlap without re-tuning.
    println!("\nplan cache: {}", engine.stats());
}
