//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **packing vs non-packing** across the full sparsity range — where is
//!    the crossover the strategy model predicts at 70%?
//! 2. **pipeline double buffering** on/off at fixed footprint strategy,
//! 3. **vector length L** — accuracy-side footprint vs kernel efficiency,
//! 4. **index layout** — u8 row-major vs blocked vs bit-packed traffic,
//! 5. **thread-tile CMAR sweep** — Eq. (6) against simulated efficiency.

use gpu_sim::device::a100_80g;
use nm_analysis::cmar::{cmar, tile_fits_registers, LdsWidth};
use nm_analysis::packing::expected_ratio;
use nm_bench::{pct, TextTable};
use nm_core::index::{IndexLayout, IndexMatrix};
use nm_core::pattern::NmConfig;
use nm_kernels::params::BlockingParams;
use nm_kernels::{NmSpmmKernel, NmVersion};

fn main() {
    let dev = a100_80g();
    let (m, n, k) = (4096, 4096, 4096);

    println!("== Ablation 1: packing vs non-packing across sparsity ==\n");
    let mut t = TextTable::new(&["N:M", "sparsity", "non-packing", "packing", "winner"]);
    for nn in [14usize, 12, 10, 8, 6, 5, 4, 3, 2, 1] {
        let cfg = NmConfig::new(nn, 16, 32).expect("config");
        // V2-with-packing-forced vs V1 (never packs), same serial pipeline.
        let v1 = NmSpmmKernel::new(NmVersion::V1, BlockingParams::large())
            .estimate(&dev, m, n, k, cfg, None)
            .expect("v1");
        // Force packing by passing the expected ratio through a V2 at any
        // sparsity: the kernel itself would only pack above the threshold,
        // so emulate forced packing with the packed ratio estimate.
        let kern = NmSpmmKernel::new(NmVersion::V2, BlockingParams::large());
        let plan = kern.plan(&dev, m, n, k, cfg).expect("plan");
        let ratio = expected_ratio(cfg, plan.blocking.qs);
        let packed_eff = if plan.packing {
            kern.estimate(&dev, m, n, k, cfg, Some(ratio))
                .expect("v2")
                .efficiency
        } else {
            // Below the threshold the plan refuses packing; report the AI
            // model's prediction of what forced packing would cost: packed
            // bytes are ratio*ks but with the col_info dependent chain —
            // approximate by scaling V1's load-side benefit away.
            f64::NAN
        };
        let row_winner = if packed_eff.is_nan() {
            "non-packing (by strategy)"
        } else if packed_eff > v1.efficiency {
            "packing"
        } else {
            "non-packing"
        };
        t.row(&[
            format!("{}:16", nn),
            pct(cfg.sparsity()),
            pct(v1.efficiency),
            if packed_eff.is_nan() {
                "-".into()
            } else {
                pct(packed_eff)
            },
            row_winner.to_string(),
        ]);
    }
    t.print();

    println!("\n== Ablation 2: pipeline double buffering (V2 vs V3) ==\n");
    let mut t = TextTable::new(&["sparsity", "serial (V2)", "pipelined (V3)", "gain"]);
    for nn in [8usize, 6, 4, 2] {
        let cfg = NmConfig::new(nn, 16, 32).expect("config");
        let v2 = NmSpmmKernel::new(NmVersion::V2, BlockingParams::large())
            .estimate(&dev, m, n, k, cfg, None)
            .expect("v2");
        let v3 = NmSpmmKernel::new(NmVersion::V3, BlockingParams::large())
            .estimate(&dev, m, n, k, cfg, None)
            .expect("v3");
        t.row(&[
            pct(cfg.sparsity()),
            pct(v2.efficiency),
            pct(v3.efficiency),
            format!("{:+.1}%", 100.0 * (v2.seconds / v3.seconds - 1.0)),
        ]);
    }
    t.print();

    println!("\n== Ablation 3: vector length L at 87.5% sparsity ==\n");
    let mut t = TextTable::new(&["L", "qs", "expected packed ratio", "V3 efficiency"]);
    for l in [8usize, 16, 32, 64, 128] {
        let cfg = NmConfig::new(2, 16, l).expect("config");
        let kern = NmSpmmKernel::new(NmVersion::V3, BlockingParams::large());
        match kern.plan(&dev, m, n, k, cfg) {
            Ok(plan) => {
                let rep = kern.estimate(&dev, m, n, k, cfg, None).expect("estimate");
                t.row(&[
                    l.to_string(),
                    plan.blocking.qs.to_string(),
                    format!("{:.3}", expected_ratio(cfg, plan.blocking.qs)),
                    pct(rep.efficiency),
                ]);
            }
            Err(e) => t.row(&[l.to_string(), "-".into(), "-".into(), format!("({e})")]),
        }
    }
    t.print();
    println!(
        "(smaller L -> better network accuracy but larger packed footprint; Fig. 2 discussion)"
    );

    println!("\n== Ablation 4: index-matrix layout traffic (4096x4096, 2:16) ==\n");
    let cfg = NmConfig::new(2, 16, 32).expect("config");
    let d = IndexMatrix::zeros(cfg.compressed_rows(k), cfg.window_cols(n));
    let mut t = TextTable::new(&["layout", "bytes", "vs bit-packed"]);
    let bp = d.storage_bytes(cfg, IndexLayout::BitPacked);
    for (name, layout) in [
        ("u8 row-major", IndexLayout::RowMajorU8),
        (
            "u8 blocked (ws=64, qs=4)",
            IndexLayout::Blocked { ws: 64, qs: 4 },
        ),
        ("bit-packed (log2 M = 4)", IndexLayout::BitPacked),
    ] {
        let bytes = d.storage_bytes(cfg, layout);
        t.row(&[
            name.to_string(),
            bytes.to_string(),
            format!("{:.2}x", bytes as f64 / bp as f64),
        ]);
    }
    t.print();

    println!("\n== Ablation 5: thread-tile CMAR sweep (Eq. 6) ==\n");
    let mut t = TextTable::new(&["mt", "nt", "regs ok", "CMAR (LDS.128)", "CMAR (LDS.32)"]);
    for (mt, nt) in [(2usize, 2usize), (4, 4), (8, 4), (8, 8), (8, 16), (16, 16)] {
        t.row(&[
            mt.to_string(),
            nt.to_string(),
            tile_fits_registers(mt, nt).to_string(),
            format!("{:.2}", cmar(mt, nt, LdsWidth::Lds128)),
            format!("{:.2}", cmar(mt, nt, LdsWidth::Lds32)),
        ]);
    }
    t.print();
    println!("(the paper's 8x8 / 8x16 tiles maximize CMAR within the 255-register budget)");
}
