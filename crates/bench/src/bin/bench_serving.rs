//! Serving-latency harness: the `nm-serve` front-end under closed-loop
//! and open-loop load, against a no-batching serial baseline, on real
//! wall clocks.
//!
//! ```sh
//! # Full run (~a few seconds):
//! cargo run --release -p nm-bench --bin bench_serving
//!
//! # CI smoke: smaller request counts, plus the same-run batching gate —
//! # batched goodput must strictly beat the serial baseline at
//! # concurrency 4 and 8:
//! cargo run --release -p nm-bench --bin bench_serving -- \
//!     --quick --assert-batching --out BENCH_serving.json
//! ```
//!
//! ## What it measures
//!
//! The workload is the **decode band** — single-vector requests against
//! one prepared layer — because that is where continuous batching pays on
//! kernel-level evidence: the skinny SpMV is bandwidth-bound, so stacking
//! `m` concurrent vectors into one fused `forward` call streams the
//! packed `B′` once for all `m` rows (each row bit-identical to its own
//! `forward_vec` result). The win is per-core and does not depend on a
//! thread pool, so it holds on a single-core CI runner.
//!
//! * **serial** — the same requests served one-by-one via `forward_vec`,
//!   no server in the path: the goodput floor batching must beat.
//! * **closed loop** — `c` client threads, each submitting and waiting,
//!   at `c ∈ {1, 2, 4, 8}`: latency distribution (client-observed e2e
//!   p50/p95/p99), goodput, and the server's mean coalesced batch size.
//! * **open loop** — paced submissions at ~2× the serial service rate
//!   with a per-request deadline: goodput under overload plus the shed
//!   and rejection accounting (every non-served request resolves with a
//!   structured error; the artifact proves none vanished).
//!
//! Exit codes: `0` success, `1` a `--assert-batching` gate failure,
//! `2` usage / I/O failure.

use gpu_sim::device::a100_80g;
use nm_bench::{mean, percentile, TextTable};
use nm_core::error::NmError;
use nm_core::json::JsonValue;
use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::sparse::NmSparseMatrix;
use nm_kernels::session::{LoadSpec, PreparedLayer};
use nm_kernels::{BackendKind, NmVersion, SessionBuilder, DECODE_MAX_ROWS};
use nm_serve::{Server, ServerConfig, SubmitOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One serving lane's outcome: wall-clock goodput plus the
/// client-observed latency distribution.
struct Lane {
    label: String,
    concurrency: usize,
    requests: usize,
    seconds: f64,
    latencies_ms: Vec<f64>,
    mean_batch: f64,
}

impl Lane {
    fn goodput_rps(&self) -> f64 {
        self.requests as f64 / self.seconds
    }

    fn json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("label", JsonValue::from_str_value(&self.label)),
            ("concurrency", JsonValue::from_usize(self.concurrency)),
            ("requests", JsonValue::from_usize(self.requests)),
            ("seconds", JsonValue::Number(self.seconds)),
            ("goodput_rps", JsonValue::Number(self.goodput_rps())),
            (
                "p50_ms",
                JsonValue::Number(percentile(&self.latencies_ms, 0.50)),
            ),
            (
                "p95_ms",
                JsonValue::Number(percentile(&self.latencies_ms, 0.95)),
            ),
            (
                "p99_ms",
                JsonValue::Number(percentile(&self.latencies_ms, 0.99)),
            ),
            ("mean_ms", JsonValue::Number(mean(&self.latencies_ms))),
            ("mean_batch", JsonValue::Number(self.mean_batch)),
        ])
    }
}

/// Deterministic request vectors: row `i` of a seeded random matrix.
fn request_pool(k: usize, count: usize, seed: u64) -> Vec<Vec<f32>> {
    let m = MatrixF32::random(count, k, seed);
    (0..count).map(|i| m.row(i).to_vec()).collect()
}

/// The no-server baseline: the identical request stream served one at a
/// time through the prepared SpMV path.
fn run_serial(layer: &PreparedLayer, pool: &[Vec<f32>], requests: usize) -> Lane {
    let mut latencies_ms = Vec::with_capacity(requests);
    let t0 = Instant::now();
    for i in 0..requests {
        let t = Instant::now();
        layer
            .forward_vec(&pool[i % pool.len()])
            .expect("serial forward_vec");
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    Lane {
        label: "serial".into(),
        concurrency: 1,
        requests,
        seconds: t0.elapsed().as_secs_f64(),
        latencies_ms,
        mean_batch: 1.0,
    }
}

/// Closed loop: `concurrency` clients, each submit → wait → repeat.
fn run_closed(
    layer: Arc<PreparedLayer>,
    cfg: &ServerConfig,
    pool: &[Vec<f32>],
    concurrency: usize,
    per_client: usize,
) -> Lane {
    let server = Server::start(layer, cfg.clone()).expect("server");
    let t0 = Instant::now();
    let latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..concurrency)
            .map(|client| {
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let x = pool[(client * per_client + i) % pool.len()].clone();
                        let t = Instant::now();
                        let ticket = loop {
                            match server.submit_decode(x.clone(), SubmitOptions::default()) {
                                Ok(ticket) => break ticket,
                                // A closed loop can only trip the bound
                                // transiently; back off and retry.
                                Err(NmError::Overloaded { .. }) => std::thread::yield_now(),
                                Err(e) => panic!("submit failed: {e}"),
                            }
                        };
                        ticket.wait().expect("request served");
                        lats.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let seconds = t0.elapsed().as_secs_f64();
    let stats = server.stats();
    Lane {
        label: format!("closed-c{concurrency}"),
        concurrency,
        requests: concurrency * per_client,
        seconds,
        latencies_ms,
        mean_batch: stats.mean_batch_size,
    }
}

/// Open loop: paced submissions at `offered_rps` with a deadline;
/// goodput, shed and rejection accounting under overload.
struct OpenOutcome {
    label: String,
    offered_rps: f64,
    submitted: usize,
    completed: usize,
    shed: usize,
    rejected: usize,
    seconds: f64,
    latencies_ms: Vec<f64>,
    deadline_ms: f64,
}

impl OpenOutcome {
    fn goodput_rps(&self) -> f64 {
        self.completed as f64 / self.seconds
    }

    fn json(&self) -> JsonValue {
        let finished = self.completed + self.shed;
        JsonValue::object(vec![
            ("label", JsonValue::from_str_value(&self.label)),
            ("offered_rps", JsonValue::Number(self.offered_rps)),
            ("deadline_ms", JsonValue::Number(self.deadline_ms)),
            ("submitted", JsonValue::from_usize(self.submitted)),
            ("completed", JsonValue::from_usize(self.completed)),
            ("shed", JsonValue::from_usize(self.shed)),
            ("rejected", JsonValue::from_usize(self.rejected)),
            ("seconds", JsonValue::Number(self.seconds)),
            ("goodput_rps", JsonValue::Number(self.goodput_rps())),
            (
                "shed_fraction",
                JsonValue::Number(if finished == 0 {
                    0.0
                } else {
                    self.shed as f64 / finished as f64
                }),
            ),
            (
                "p50_ms",
                JsonValue::Number(percentile(&self.latencies_ms, 0.50)),
            ),
            (
                "p99_ms",
                JsonValue::Number(percentile(&self.latencies_ms, 0.99)),
            ),
        ])
    }
}

fn run_open(
    label: &str,
    layer: Arc<PreparedLayer>,
    cfg: &ServerConfig,
    pool: &[Vec<f32>],
    offered_rps: f64,
    submissions: usize,
    deadline: Duration,
) -> OpenOutcome {
    let server = Server::start(layer, cfg.clone()).expect("server");
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let opts = SubmitOptions::default().with_deadline(deadline);
    let mut tickets = Vec::with_capacity(submissions);
    let mut rejected = 0usize;
    let t0 = Instant::now();
    for i in 0..submissions {
        if let Some(wait) = (t0 + interval * i as u32).checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match server.submit_decode(pool[i % pool.len()].clone(), opts) {
            Ok(ticket) => tickets.push((Instant::now(), ticket)),
            Err(NmError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("submit failed: {e}"),
        }
    }
    let mut latencies_ms = Vec::new();
    let mut shed = 0usize;
    for (submitted_at, ticket) in tickets {
        match ticket.wait() {
            Ok(_) => latencies_ms.push(submitted_at.elapsed().as_secs_f64() * 1e3),
            Err(NmError::DeadlineExceeded { .. }) => shed += 1,
            Err(e) => panic!("request resolved abnormally: {e}"),
        }
    }
    let seconds = t0.elapsed().as_secs_f64();
    OpenOutcome {
        label: label.to_string(),
        offered_rps,
        submitted: submissions - rejected,
        completed: latencies_ms.len(),
        shed,
        rejected,
        seconds,
        latencies_ms,
        deadline_ms: deadline.as_secs_f64() * 1e3,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_serving [--quick] [--assert-batching] [--out FILE] [--seed N]\n\
         \x20  --quick           smaller request counts (CI smoke)\n\
         \x20  --assert-batching exit 1 unless batched goodput beats serial at c >= 4\n\
         \x20  --out FILE        artifact path (default BENCH_serving.json)\n\
         \x20  --seed N          request-pool seed (default 42)"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut assert_batching = false;
    let mut out = String::from("BENCH_serving.json");
    let mut seed = 42u64;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--assert-batching" => assert_batching = true,
            "--out" => {
                i += 1;
                out = argv.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    // One decode-band layer shared by every lane. k = n = 2048 keeps the
    // per-request kernel large enough that the serving layer's own costs
    // (linger window, wakeups) are second-order on any host.
    let (k, n) = (2048, 2048);
    let nm = NmConfig::new(2, 8, 32).expect("config");
    let sb = NmSparseMatrix::prune_magnitude(&MatrixF32::random(k, n, seed ^ 0xbeef), nm)
        .expect("prune");
    let mut session = SessionBuilder::new(a100_80g())
        .backend(BackendKind::Cpu(NmVersion::V3))
        .build()
        .expect("session");
    let layer = Arc::new(
        session
            .load_with(sb, LoadSpec::rows(DECODE_MAX_ROWS))
            .expect("load decode-band layer"),
    );
    println!(
        "layer: {}x{} at {} on {}, plan class {} ({} micro-kernel)",
        k,
        n,
        nm,
        layer.backend(),
        layer.plan().key.shape.tag(),
        layer.isa().map(|i| i.name()).unwrap_or("-"),
    );

    // Gap-closed linger: a wide hard cap so a full closed-loop cohort can
    // gather, but the window shuts ~100 µs after arrivals stop — lone
    // requests (concurrency 1) pay only the gap, not the cap.
    let serving_cfg = ServerConfig {
        linger: Duration::from_micros(500),
        linger_gap: Duration::from_micros(100),
        ..Default::default()
    };
    let per_client = if quick { 16 } else { 64 };
    let serial_requests = if quick { 32 } else { 128 };
    let open_submissions = if quick { 120 } else { 400 };
    let pool = request_pool(k, 64, seed);

    // Warm the path (first-touch allocations, lazy page faults).
    for x in pool.iter().take(3) {
        layer.forward_vec(x).expect("warmup");
    }

    let serial = run_serial(&layer, &pool, serial_requests);
    let mut lanes: Vec<Lane> = vec![];
    for c in [1usize, 2, 4, 8] {
        lanes.push(run_closed(
            layer.clone(),
            &serving_cfg,
            &pool,
            c,
            per_client,
        ));
    }

    // Open loop, twice: at 2x the serial service rate (load batching is
    // expected to absorb — low shed, goodput above serial), and at 8x
    // (past even the batched capacity — deadlines shed, admission
    // control rejects, and every casualty is structurally accounted).
    let serial_rate = serial.goodput_rps();
    let opens: Vec<OpenOutcome> = vec![
        run_open(
            "open-2x",
            layer.clone(),
            &serving_cfg,
            &pool,
            serial_rate * 2.0,
            open_submissions,
            Duration::from_secs_f64(20.0 / serial_rate),
        ),
        run_open(
            "open-8x",
            layer.clone(),
            &serving_cfg,
            &pool,
            serial_rate * 8.0,
            open_submissions,
            Duration::from_secs_f64(10.0 / serial_rate),
        ),
    ];

    let mut table = TextTable::new(&["lane", "req", "goodput r/s", "p50 ms", "p99 ms", "batch"]);
    let fmt_lane = |l: &Lane| {
        [
            l.label.clone(),
            l.requests.to_string(),
            format!("{:.0}", l.goodput_rps()),
            format!("{:.3}", percentile(&l.latencies_ms, 0.50)),
            format!("{:.3}", percentile(&l.latencies_ms, 0.99)),
            format!("{:.2}", l.mean_batch),
        ]
    };
    table.row(&fmt_lane(&serial));
    for l in &lanes {
        table.row(&fmt_lane(l));
    }
    for open in &opens {
        table.row(&[
            open.label.clone(),
            format!("{}", open.submitted),
            format!("{:.0}", open.goodput_rps()),
            format!("{:.3}", percentile(&open.latencies_ms, 0.50)),
            format!("{:.3}", percentile(&open.latencies_ms, 0.99)),
            format!(
                "shed {:.0}% rej {}",
                100.0 * open.shed as f64 / open.submitted.max(1) as f64,
                open.rejected
            ),
        ]);
    }
    table.print();

    // The same-run batching gate: coalescing must buy goodput once
    // concurrency covers the decode band's stacking headroom.
    let ratio_at = |c: usize| -> f64 {
        lanes
            .iter()
            .find(|l| l.concurrency == c)
            .map(|l| l.goodput_rps() / serial_rate)
            .unwrap_or(0.0)
    };
    let (r4, r8) = (ratio_at(4), ratio_at(8));
    println!("batched/serial goodput: c4 {r4:.2}x, c8 {r8:.2}x");

    let doc = JsonValue::object(vec![
        ("schema", JsonValue::from_str_value("serving-v1")),
        ("quick", JsonValue::Bool(quick)),
        ("seed", JsonValue::from_usize(seed as usize)),
        ("threads", JsonValue::from_usize(session.threads())),
        (
            "isa",
            layer
                .isa()
                .map(|i| JsonValue::from_str_value(i.name()))
                .unwrap_or(JsonValue::Null),
        ),
        (
            "shape",
            JsonValue::object(vec![
                ("k", JsonValue::from_usize(k)),
                ("n", JsonValue::from_usize(n)),
                ("n_keep", JsonValue::from_usize(nm.n)),
                ("m_win", JsonValue::from_usize(nm.m)),
                ("sparsity", JsonValue::Number(nm.sparsity())),
                (
                    "plan_class",
                    JsonValue::from_str_value(&layer.plan().key.shape.tag()),
                ),
            ]),
        ),
        (
            "config",
            JsonValue::object(vec![
                (
                    "queue_capacity",
                    JsonValue::from_usize(serving_cfg.queue_capacity),
                ),
                (
                    "max_decode_batch",
                    JsonValue::from_usize(serving_cfg.max_decode_batch),
                ),
                (
                    "linger_us",
                    JsonValue::Number(serving_cfg.linger.as_secs_f64() * 1e6),
                ),
                (
                    "linger_gap_us",
                    JsonValue::Number(serving_cfg.linger_gap.as_secs_f64() * 1e6),
                ),
            ]),
        ),
        ("serial", serial.json()),
        (
            "closed_loop",
            JsonValue::Array(lanes.iter().map(Lane::json).collect()),
        ),
        (
            "open_loop",
            JsonValue::Array(opens.iter().map(OpenOutcome::json).collect()),
        ),
        (
            "gate",
            JsonValue::object(vec![
                ("batched_over_serial_c4", JsonValue::Number(r4)),
                ("batched_over_serial_c8", JsonValue::Number(r8)),
            ]),
        ),
    ]);
    let json = doc.dump().expect("artifact serializes");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("writing {out}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out}");

    if assert_batching {
        let mut failed = false;
        for (c, r) in [(4usize, r4), (8, r8)] {
            if r <= 1.0 {
                eprintln!(
                    "GATE FAIL: batched goodput at concurrency {c} is {r:.2}x serial (need > 1)"
                );
                failed = true;
            }
        }
        // Overload must shed or reject rather than drop: everything that
        // was admitted either completed or was shed with a structured
        // error — nothing vanishes.
        for open in &opens {
            if open.completed + open.shed != open.submitted {
                eprintln!(
                    "GATE FAIL: {} accounting does not balance ({} + {} != {})",
                    open.label, open.completed, open.shed, open.submitted
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("batching gate passed (c4 {r4:.2}x, c8 {r8:.2}x > 1.00x serial)");
    }
}
