//! Regenerates **Fig. 10**: roofline analysis of NM-SpMM and nmSPARSE on
//! the NCU-locked A100 (measured CUDA-core peak 14.7 TFLOPS),
//! `m = n = k = 4096`, four sparsity levels.
//!
//! X-axis: block arithmetic intensity per paper Eq. (3) (element form, as
//! the paper plots it). Y-axis: simulated TFLOPS. The paper reports
//! NM-SpMM at 96/93/95/88% of peak and nmSPARSE at 64/63/49/73%.

use gpu_sim::device::a100_ncu_locked;
use gpu_sim::roofline::Roofline;
use nm_analysis::ai::BlockAi;
use nm_bench::{pct, TextTable};
use nm_kernels::params::BlockingParams;
use nm_kernels::{NmSparseKernel, NmSpmmKernel, NmVersion};
use nm_workloads::levels::{benchmark_levels, label};

fn main() {
    let dev = a100_ncu_locked();
    let roof = Roofline::from_device(&dev);
    let (m, n, k) = (4096, 4096, 4096);
    println!("== Fig. 10: roofline on {} ==", dev.name);
    println!(
        "peak {:.1} TFLOPS, DRAM {:.0} GB/s, ridge {:.1} FLOP/B\n",
        dev.peak_fp32_tflops(),
        dev.dram_bw / 1e9,
        roof.ridge()
    );

    println!("roof series (AI in FLOP/byte -> attainable TFLOPS):");
    for (ai, tf) in roof.roof_series(0.5, 64.0, 8) {
        print!("  ({ai:.2}, {tf:.1})");
    }
    println!("\n");

    let mut t = TextTable::new(&[
        "sparsity",
        "AI eq3 (ours)",
        "TFLOPS (ours)",
        "eff (ours)",
        "AI eq3 (nmSP)",
        "TFLOPS (nmSP)",
        "eff (nmSP)",
    ]);
    let kern = NmSpmmKernel::new(NmVersion::V3, BlockingParams::large());
    for cfg in benchmark_levels() {
        let plan = kern.plan(&dev, m, n, k, cfg).expect("plan");
        let b = plan.blocking;
        // Packed footprint raises the effective AI exactly as §IV-E argues.
        let a_eff = (b.ks as f64 * plan.decision.packing_ratio).round() as usize;
        let ai_ours = BlockAi {
            ms: b.params.ms,
            ns: b.params.ns,
            ks: b.ks,
            ws: b.ws,
        }
        .with_a_footprint(if plan.packing { a_eff } else { b.ks });
        let rep = kern.estimate(&dev, m, n, k, cfg, None).expect("ours");

        // nmSPARSE iterates one window at a time: ks = M, ws = N.
        let ai_nmsp = BlockAi {
            ms: 32,
            ns: 64,
            ks: cfg.m,
            ws: cfg.n,
        }
        .elements();
        let base = NmSparseKernel
            .estimate(&dev, m, n, k, cfg)
            .expect("nmsparse");

        t.row(&[
            label(&cfg),
            format!("{ai_ours:.1}"),
            format!("{:.1}", rep.tflops),
            pct(rep.efficiency),
            format!("{ai_nmsp:.1}"),
            format!("{:.1}", base.tflops),
            pct(base.efficiency),
        ]);
    }
    t.print();
    println!("\n(paper: NM-SpMM 96/93/95/88% of peak; nmSPARSE 64/63/49/73%)");
    println!("(paper observation: NM-SpMM's AI at 75% exceeds its AI at 62.5%");
    println!(" because smaller ws admits larger ks under the Eq. 4 budget)");
}
