//! Generic sweep CLI: estimate any problem on any modeled device.
//!
//! ```sh
//! cargo run --release -p nm-bench --bin sweep -- \
//!     --m 2048 --n 11008 --k 4096 --device a100 --tune
//! ```
//!
//! Prints, for each sparsity level: the V3 kernel's time, TFLOPS,
//! efficiency, bound, speedup vs the dense baseline, energy estimate, and
//! (with `--tune`) the auto-tuned blocking against the Table I preset.

use gpu_sim::device::{a100_80g, a100_ncu_locked, rtx3090, rtx4090, DeviceConfig};
use gpu_sim::energy;
use nm_bench::{pct, spd, TextTable};
use nm_kernels::autotune;
use nm_kernels::{DenseGemmKernel, NmSpmmKernel, NmVersion};
use nm_workloads::gen::{ProblemInstance, ProblemSpec};
use nm_workloads::levels::{benchmark_levels, label};

struct Args {
    m: usize,
    n: usize,
    k: usize,
    device: DeviceConfig,
    tune: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        m: 4096,
        n: 4096,
        k: 4096,
        device: a100_80g(),
        tune: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--m" => {
                args.m = argv[i + 1].parse().expect("--m takes a number");
                i += 2;
            }
            "--n" => {
                args.n = argv[i + 1].parse().expect("--n takes a number");
                i += 2;
            }
            "--k" => {
                args.k = argv[i + 1].parse().expect("--k takes a number");
                i += 2;
            }
            "--device" => {
                args.device = match argv[i + 1].as_str() {
                    "a100" => a100_80g(),
                    "a100-locked" => a100_ncu_locked(),
                    "3090" => rtx3090(),
                    "4090" => rtx4090(),
                    other => panic!("unknown device '{other}' (a100|a100-locked|3090|4090)"),
                };
                i += 2;
            }
            "--tune" => {
                args.tune = true;
                i += 1;
            }
            other => panic!("unknown flag '{other}'"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let (m, n, k) = (args.m, args.n, args.k);
    let dev = &args.device;
    println!("== sweep: m={m} n={n} k={k} on {} ==\n", dev.name);

    let dense = DenseGemmKernel::auto(m, n)
        .estimate(dev, m, n, k)
        .expect("dense estimate");
    println!(
        "dense baseline: {:.3} ms, {:.2} TFLOPS ({})\n",
        dense.seconds * 1e3,
        dense.tflops,
        pct(dense.efficiency)
    );

    let mut t = TextTable::new(&[
        "sparsity",
        "time ms",
        "TFLOPS",
        "eff",
        "bound",
        "speedup",
        "energy mJ",
        "GF/J",
    ]);
    for cfg in benchmark_levels() {
        let kern = NmSpmmKernel::auto(NmVersion::V3, m, n);
        let rep = kern.estimate(dev, m, n, k, cfg, None).expect("estimate");
        // Energy needs event counts: run functionally on a reduced problem
        // is wasteful — instead rebuild stats analytically via a tiny
        // instance when shapes are huge. Use the profile-derived stats from
        // a real run only for small problems; otherwise scale from spec.
        let spec = ProblemSpec { m, n, k, cfg };
        let e = if m * n <= 512 * 512 {
            let inst = ProblemInstance::generate(spec, 1);
            let run = kern.run(dev, &inst.a, &inst.b_sparse).expect("run");
            Some(energy::estimate(dev, &run.stats, &run.report))
        } else {
            None
        };
        t.row(&[
            label(&cfg),
            format!("{:.3}", rep.seconds * 1e3),
            format!("{:.2}", rep.tflops),
            pct(rep.efficiency),
            format!("{:?}", rep.bound),
            spd(dense.seconds / rep.seconds),
            e.map(|e| format!("{:.2}", e.total_j() * 1e3))
                .unwrap_or("-".into()),
            e.map(|e| format!("{:.0}", e.gflops_per_joule(spec.useful_flops())))
                .unwrap_or("-".into()),
        ]);
    }
    t.print();

    if args.tune {
        println!("\n== auto-tuning (V3) ==\n");
        let mut t = TextTable::new(&["sparsity", "preset", "tuned", "tuned params", "gain"]);
        for cfg in benchmark_levels() {
            let preset = NmSpmmKernel::auto(NmVersion::V3, m, n)
                .estimate(dev, m, n, k, cfg, None)
                .expect("preset");
            let tuned = autotune::tune(dev, m, n, k, cfg).expect("tune");
            let p = tuned.params;
            t.row(&[
                label(&cfg),
                format!("{:.3} ms", preset.seconds * 1e3),
                format!("{:.3} ms", tuned.report.seconds * 1e3),
                format!("{}x{} mt{}xnt{}", p.ms, p.ns, p.mt, p.nt),
                format!(
                    "{:+.1}%",
                    100.0 * (preset.seconds / tuned.report.seconds - 1.0)
                ),
            ]);
        }
        t.print();
    }
}
