//! Generic sweep CLI: estimate any problem on any modeled device, or sweep
//! a whole Llama model's layers, all through the unified planner/engine.
//!
//! ```sh
//! # One shape, four sparsity levels (auto-tuned plans):
//! cargo run --release -p nm-bench --bin sweep -- \
//!     --m 2048 --n 11008 --k 4096 --device a100 --tune
//!
//! # Batched layer sweep of a whole model, with a persistent plan cache:
//! cargo run --release -p nm-bench --bin sweep -- \
//!     --llama 7b --seq 2048 --device a100 --cache plans.json
//! ```
//!
//! Every kernel choice comes from [`Session::plan`] — strategy decision
//! plus exhaustive autotune, memoized per `(device, shape class, N:M)`
//! key — and every functional execution goes through a prepared layer
//! handle ([`Session::load_planned`]). With `--cache PATH` the memo is
//! loaded at startup and saved on exit, so the second run of an identical
//! sweep performs zero tuning searches (the cache accounting printed at
//! the end proves it).

use gpu_sim::device::{a100_80g, a100_ncu_locked, rtx3090, rtx4090, DeviceConfig};
use gpu_sim::energy;
use nm_bench::{pct, spd, TextTable};
use nm_kernels::plan::version_name;
use nm_kernels::{AutotuneMode, BackendKind, NmSpmmKernel, NmVersion, Session, SessionBuilder};
use nm_workloads::gen::{ProblemInstance, ProblemSpec};
use nm_workloads::levels::{benchmark_levels, label};
use nm_workloads::llama::LLAMA_FAMILY;
use nm_workloads::sweep::{sweep_model, ExecutePolicy, SweepOptions};

struct Args {
    m: usize,
    n: usize,
    k: usize,
    shape_given: bool,
    device: DeviceConfig,
    tune: bool,
    llama: Option<&'static str>,
    seq: usize,
    cache: Option<String>,
    exec: bool,
    decode: bool,
    autotune: Option<AutotuneMode>,
}

fn parse_args() -> Args {
    let mut args = Args {
        m: 4096,
        n: 4096,
        k: 4096,
        shape_given: false,
        device: a100_80g(),
        tune: false,
        llama: None,
        seq: 2048,
        cache: None,
        exec: false,
        decode: false,
        autotune: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--m" => {
                args.m = argv[i + 1].parse().expect("--m takes a number");
                args.shape_given = true;
                i += 2;
            }
            "--n" => {
                args.n = argv[i + 1].parse().expect("--n takes a number");
                args.shape_given = true;
                i += 2;
            }
            "--k" => {
                args.k = argv[i + 1].parse().expect("--k takes a number");
                args.shape_given = true;
                i += 2;
            }
            "--seq" => {
                args.seq = argv[i + 1].parse().expect("--seq takes a number");
                i += 2;
            }
            "--device" => {
                args.device = match argv[i + 1].as_str() {
                    "a100" => a100_80g(),
                    "a100-locked" => a100_ncu_locked(),
                    "3090" => rtx3090(),
                    "4090" => rtx4090(),
                    other => panic!("unknown device '{other}' (a100|a100-locked|3090|4090)"),
                };
                i += 2;
            }
            "--llama" => {
                let name = argv[i + 1].as_str();
                args.llama = Some(match name {
                    "7b" => "Llama-7B",
                    "13b" => "Llama-13B",
                    "30b" => "Llama-30B",
                    "65b" => "Llama-65B",
                    other => panic!("unknown model '{other}' (7b|13b|30b|65b)"),
                });
                i += 2;
            }
            "--cache" => {
                args.cache = Some(argv[i + 1].clone());
                i += 2;
            }
            "--tune" => {
                args.tune = true;
                i += 1;
            }
            "--exec" => {
                args.exec = true;
                i += 1;
            }
            "--decode" => {
                args.decode = true;
                i += 1;
            }
            "--autotune" => {
                // Validated like NM_SPMM_ISA: an unrecognized mode is a
                // structured usage error, never a silent fall-back to off.
                let value = argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--autotune takes off|quick|full");
                    std::process::exit(2);
                });
                args.autotune = Some(AutotuneMode::from_name(&value).unwrap_or_else(|e| {
                    eprintln!("--autotune {value}: {e}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            other => panic!("unknown flag '{other}'"),
        }
    }
    args
}

fn make_session(args: &Args) -> Session {
    let mut builder = SessionBuilder::new(args.device.clone());
    if let Some(path) = &args.cache {
        builder = builder.plan_cache(path);
    }
    // The flag wins over NM_SPMM_AUTOTUNE; either way an unrecognized
    // mode exits 2 with a structured error instead of silently running
    // without measurement.
    let autotune = match args.autotune {
        Some(mode) => mode,
        None => match AutotuneMode::from_env() {
            Ok(mode) => mode.unwrap_or_default(),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
    };
    // Build errors are user errors here (e.g. a malformed NM_SPMM_STORAGE
    // or NM_SPMM_ISA pin): report and exit 2, same as the autotune path.
    let session = match builder.autotune(autotune).build() {
        Ok(session) => session,
        Err(e) => {
            eprintln!("cannot build session: {e}");
            std::process::exit(2);
        }
    };
    if autotune != AutotuneMode::Off {
        println!("measured autotune: {autotune} (scaled executions run the evidence-based lane)");
    }
    if let Some(path) = &args.cache {
        println!(
            "plan cache: {} ({} entries loaded)\n",
            path,
            session.stats().entries
        );
    }
    session
}

fn finish(session: &Session) {
    println!("\nplan cache: {}", session.stats());
    match session.save() {
        Ok(true) => println!("plan cache saved"),
        Ok(false) => {}
        Err(e) => eprintln!("warning: failed to save plan cache: {e}"),
    }
}

fn main() {
    let args = parse_args();
    let mut session = make_session(&args);
    if let Some(model_name) = args.llama {
        // Model mode takes its shapes from the model and always tunes.
        if args.shape_given {
            eprintln!("warning: --m/--n/--k are ignored with --llama (shapes come from the model; use --seq for the sequence length)");
        }
        if args.tune {
            eprintln!(
                "warning: --tune is ignored with --llama (engine plans are always auto-tuned)"
            );
        }
        llama_sweep(&args, &mut session, model_name);
    } else {
        shape_sweep(&args, &mut session);
    }
    finish(&session);
}

/// Batched layer sweep of one Llama model across the benchmark levels.
fn llama_sweep(args: &Args, session: &mut Session, model_name: &str) {
    let model = LLAMA_FAMILY
        .iter()
        .find(|m| m.name == model_name)
        .expect("known model");
    let opts = SweepOptions {
        seq_len: args.seq,
        execute: if args.exec {
            ExecutePolicy::Scaled(8)
        } else {
            ExecutePolicy::EstimateOnly
        },
        decode: args.decode,
        ..Default::default()
    };
    println!(
        "== layer sweep: {} (h={}, f={}), m={} on {} ==\n",
        model.name,
        model.hidden,
        model.intermediate,
        args.seq,
        session.device().name
    );
    for cfg in benchmark_levels() {
        let report = sweep_model(session, model, cfg, &opts).expect("sweep");
        println!("-- {} --", label(&cfg));
        let mut t = TextTable::new(&[
            "layer", "n", "k", "kernel", "blocking", "packing", "est ms", "dense ms", "speedup",
            "cached",
        ]);
        for l in &report.layers {
            let p = l.plan.params;
            t.row(&[
                l.layer.to_string(),
                l.n.to_string(),
                l.k.to_string(),
                l.plan.choice.to_string(),
                format!("{}x{} mt{}xnt{}", p.ms, p.ns, p.mt, p.nt),
                if l.plan.decision.packing { "yes" } else { "no" }.to_string(),
                format!("{:.3}", l.est_ms),
                format!("{:.3}", l.dense_ms),
                spd(l.speedup()),
                if l.cache_hit { "hit" } else { "miss" }.to_string(),
            ]);
        }
        t.print();
        if args.exec {
            let mut t = TextTable::new(&[
                "layer",
                "exec shape",
                "CPU ms",
                "CPU dense ms",
                "measured ms",
                "picked",
                "|sim-cpu|",
            ]);
            for l in &report.layers {
                if let Some(e) = l.exec {
                    t.row(&[
                        l.layer.to_string(),
                        format!("{}x{}x{}", e.m, e.n, e.k),
                        format!("{:.1}", e.cpu_ms),
                        format!("{:.1}", e.cpu_dense_ms),
                        e.measured_ms
                            .map(|ms| format!("{ms:.1}"))
                            .unwrap_or_else(|| "-".into()),
                        e.measured_version
                            .map(|v| version_name(v).to_string())
                            .unwrap_or_else(|| "-".into()),
                        format!("{:.2e}", e.sim_vs_cpu_max_diff),
                    ]);
                }
            }
            t.print();
        }
        if args.decode {
            // The decode lane: per-layer estimates at the generation
            // batch sizes, planned under ShapeClass::Decode keys.
            let mut t = TextTable::new(&[
                "layer",
                "m=1 ms",
                "m=2 ms",
                "m=4 ms",
                "m=8 ms",
                "decode ms",
                "format",
                "cached",
            ]);
            for l in &report.layers {
                let est = |batch: usize| {
                    l.decode
                        .iter()
                        .find(|d| d.batch == batch)
                        .map_or("-".to_string(), |d| format!("{:.4}", d.est_ms))
                };
                t.row(&[
                    l.layer.to_string(),
                    est(1),
                    est(2),
                    est(4),
                    est(8),
                    l.exec
                        .and_then(|e| e.decode_ms)
                        .map_or("-".to_string(), |ms| format!("{ms:.3}")),
                    l.decode.first().map_or("-".to_string(), |d| d.format.tag()),
                    if l.decode.iter().all(|d| d.cache_hit) {
                        "hit"
                    } else {
                        "miss"
                    }
                    .to_string(),
                ]);
            }
            println!("-- decode lanes ({}) --", label(&cfg));
            t.print();
        }
        println!(
            "model total: {:.3} ms sparse vs {:.3} ms dense = {} ({} hits / {} misses)\n",
            report.total_est_ms(),
            report.total_dense_ms(),
            spd(report.total_speedup()),
            report.cache_hits,
            report.cache_misses,
        );
    }
}

/// Single-shape sweep across the benchmark levels.
fn shape_sweep(args: &Args, session: &mut Session) {
    let (m, n, k) = (args.m, args.n, args.k);
    println!(
        "== sweep: m={m} n={n} k={k} on {} ==\n",
        session.device().name
    );

    let dense = session
        .plan(m, n, k, benchmark_levels()[0])
        .expect("plan")
        .estimates
        .dense;
    println!(
        "dense baseline: {:.3} ms, {:.2} TFLOPS ({})\n",
        dense.seconds * 1e3,
        dense.tflops,
        pct(dense.efficiency)
    );

    let mut t = TextTable::new(&[
        "sparsity",
        "kernel",
        "time ms",
        "TFLOPS",
        "eff",
        "bound",
        "speedup",
        "energy mJ",
        "GF/J",
    ]);
    for cfg in benchmark_levels() {
        let plan = session.plan(m, n, k, cfg).expect("plan");
        let best = plan.best().expect("planner-built plans carry an estimate");
        // Energy needs event counts: run the chosen kernel functionally on
        // small problems through a prepared Sim-backend handle; large
        // shapes skip it (the estimate covers time).
        let spec = ProblemSpec { m, n, k, cfg };
        let e = if m * n <= 512 * 512 {
            let inst = ProblemInstance::generate(spec, 1);
            let layer = session
                .load_planned(plan.clone(), inst.b_sparse.clone(), BackendKind::Sim)
                .expect("prepare");
            let run = layer.forward(&inst.a).expect("run");
            let stats = run.stats.expect("sim backend counts events");
            let report = run.report.expect("sim backend reports timing");
            Some(energy::estimate(session.device(), &stats, &report))
        } else {
            None
        };
        t.row(&[
            label(&cfg),
            plan.choice.to_string(),
            format!("{:.3}", best.seconds * 1e3),
            format!("{:.2}", best.tflops),
            pct(best.efficiency),
            format!("{:?}", plan.decision.predicted_bound),
            spd(plan
                .speedup_vs_dense()
                .expect("planner-built plans carry an estimate")),
            e.map(|e| format!("{:.2}", e.total_j() * 1e3))
                .unwrap_or("-".into()),
            e.map(|e| format!("{:.0}", e.gflops_per_joule(spec.useful_flops())))
                .unwrap_or("-".into()),
        ]);
    }
    t.print();

    if args.tune {
        println!("\n== auto-tuned blocking vs Table I preset (V3) ==\n");
        let mut t = TextTable::new(&["sparsity", "preset", "tuned", "tuned params", "gain"]);
        for cfg in benchmark_levels() {
            let plan = session.plan(m, n, k, cfg).expect("plan");
            let preset = NmSpmmKernel::auto(NmVersion::V3, m, n)
                .estimate(session.device(), m, n, k, cfg, None)
                .expect("preset");
            let tuned = plan.estimates.nm_v3.expect("nm estimate");
            let p = plan.params;
            t.row(&[
                label(&cfg),
                format!("{:.3} ms", preset.seconds * 1e3),
                format!("{:.3} ms", tuned.seconds * 1e3),
                format!("{}x{} mt{}xnt{}", p.ms, p.ns, p.mt, p.nt),
                format!("{:+.1}%", 100.0 * (preset.seconds / tuned.seconds - 1.0)),
            ]);
        }
        t.print();
    }
}
