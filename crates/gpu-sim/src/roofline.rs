//! The machine roofline (paper §IV-E, Fig. 10).
//!
//! Attainable performance at arithmetic intensity `AI` is
//! `min(peak_flops, AI × DRAM_bandwidth)`; the ridge point is where the two
//! meet. Fig. 10 plots NM-SpMM and nmSPARSE kernels against the A100's
//! NCU-locked roofline (14.7 TFLOPS FP32) — the harness reuses this type to
//! print the same series.

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// A single-ceiling roofline model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Compute ceiling in FLOP/s.
    pub peak_flops: f64,
    /// Memory ceiling slope in bytes/s.
    pub bandwidth: f64,
}

impl Roofline {
    /// Build from a device configuration.
    pub fn from_device(dev: &DeviceConfig) -> Self {
        Self {
            peak_flops: dev.peak_fp32_flops(),
            bandwidth: dev.dram_bw,
        }
    }

    /// Attainable FLOP/s at arithmetic intensity `ai` (FLOPs per byte).
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.bandwidth).min(self.peak_flops)
    }

    /// Attainable TFLOPS at `ai`.
    pub fn attainable_tflops(&self, ai: f64) -> f64 {
        self.attainable(ai) / 1e12
    }

    /// The ridge point: AI at which the kernel stops being memory bound.
    pub fn ridge(&self) -> f64 {
        self.peak_flops / self.bandwidth
    }

    /// `true` when a kernel of intensity `ai` is memory bound.
    pub fn is_memory_bound(&self, ai: f64) -> bool {
        ai < self.ridge()
    }

    /// Fraction of the roofline a measured `flops_per_sec` achieves at `ai`.
    pub fn utilization(&self, ai: f64, flops_per_sec: f64) -> f64 {
        flops_per_sec / self.attainable(ai)
    }

    /// Sample `(ai, attainable_tflops)` pairs on a log grid — the series a
    /// plotting harness draws as the roof.
    pub fn roof_series(&self, ai_min: f64, ai_max: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(ai_min > 0.0 && ai_max > ai_min && points >= 2);
        let step = (ai_max / ai_min).powf(1.0 / (points - 1) as f64);
        (0..points)
            .map(|i| {
                let ai = ai_min * step.powi(i as i32);
                (ai, self.attainable_tflops(ai))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{a100_80g, a100_ncu_locked, rtx4090};

    #[test]
    fn ridge_matches_device_helper() {
        let dev = a100_80g();
        let r = Roofline::from_device(&dev);
        assert!((r.ridge() - dev.ridge_flops_per_byte()).abs() < 1e-9);
    }

    #[test]
    fn attainable_is_min_of_ceilings() {
        let r = Roofline {
            peak_flops: 10e12,
            bandwidth: 1e12,
        };
        assert_eq!(r.attainable(5.0), 5e12); // memory side
        assert_eq!(r.attainable(100.0), 10e12); // compute side
        assert_eq!(r.attainable(10.0), 10e12); // exactly at ridge
        assert!(r.is_memory_bound(9.9));
        assert!(!r.is_memory_bound(10.1));
    }

    #[test]
    fn ncu_locked_roof_is_14_7() {
        let r = Roofline::from_device(&a100_ncu_locked());
        assert!((r.attainable_tflops(1000.0) - 14.7).abs() < 0.05);
    }

    #[test]
    fn paper_fig10_regime() {
        // Fig. 10: at AI ≈ 14-20 (NM-SpMM at 4096^3) the locked A100 is
        // compute bound; at AI ≈ 0.5-2 it is memory bound.
        let r = Roofline::from_device(&a100_ncu_locked());
        assert!(!r.is_memory_bound(14.0));
        assert!(r.is_memory_bound(2.0));
    }

    #[test]
    fn utilization_of_exact_roof_is_one() {
        let r = Roofline::from_device(&rtx4090());
        let ai = 3.0;
        assert!((r.utilization(ai, r.attainable(ai)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roof_series_is_monotone_then_flat() {
        let r = Roofline::from_device(&a100_80g());
        let series = r.roof_series(0.5, 64.0, 32);
        assert_eq!(series.len(), 32);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "roof must be non-decreasing");
        }
        let last = series.last().unwrap();
        assert!((last.1 - r.peak_flops / 1e12).abs() < 1e-6, "flat at peak");
    }
}
