//! Per-kernel event accounting — the simulator's Nsight-Compute stand-in.
//!
//! Kernels accumulate a [`KernelStats`] while (functionally or analytically)
//! executing. The timing model consumes these counts; tests assert that the
//! analytic path predicts exactly the counts the functional path measures.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Aggregated event counts for one kernel launch.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Thread-level fused multiply-adds executed.
    pub ffma: u64,
    /// Bytes loaded from global memory for the `A` operand.
    pub ldg_bytes_a: u64,
    /// Bytes loaded from global memory for `B` / `B′`.
    pub ldg_bytes_b: u64,
    /// Bytes loaded from global memory for the index matrix `D`.
    pub ldg_bytes_d: u64,
    /// Bytes loaded from global memory for `col_info` (packing path only).
    pub ldg_bytes_colinfo: u64,
    /// Bytes stored to global memory (the `C` tile write-back).
    pub stg_bytes: u64,
    /// 32-byte global sectors actually touched (coalescing-aware).
    pub ldg_sectors: u64,
    /// Warp-level shared-memory load requests.
    pub lds_requests: u64,
    /// Shared-memory replays caused by bank conflicts.
    pub lds_replays: u64,
    /// Warp-level shared-memory store requests (tile fills).
    pub sts_requests: u64,
    /// Bytes moved through shared memory by loads.
    pub lds_bytes: u64,
    /// Bytes moved through shared memory by stores.
    pub sts_bytes: u64,
    /// `__syncthreads()` executions (block-level).
    pub barriers: u64,
    /// Thread blocks launched.
    pub blocks: u64,
    /// Main-loop iterations summed over all blocks.
    pub main_loop_iters: u64,
}

impl KernelStats {
    /// Useful floating-point operations (2 FLOPs per FMA).
    pub fn flops(&self) -> f64 {
        2.0 * self.ffma as f64
    }

    /// Total bytes read from global memory.
    pub fn ldg_bytes_total(&self) -> u64 {
        self.ldg_bytes_a + self.ldg_bytes_b + self.ldg_bytes_d + self.ldg_bytes_colinfo
    }

    /// Total global traffic (reads + writes).
    pub fn global_bytes_total(&self) -> u64 {
        self.ldg_bytes_total() + self.stg_bytes
    }

    /// Measured arithmetic intensity: FLOPs per global byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.global_bytes_total();
        if b == 0 {
            f64::INFINITY
        } else {
            self.flops() / b as f64
        }
    }

    /// Shared-memory cycles implied by requests + replays (one cycle per
    /// 128-byte warp transaction on all modeled devices).
    pub fn lds_cycles(&self) -> u64 {
        self.lds_requests + self.lds_replays + self.sts_requests
    }
}

impl Add for KernelStats {
    type Output = KernelStats;
    fn add(self, rhs: KernelStats) -> KernelStats {
        KernelStats {
            ffma: self.ffma + rhs.ffma,
            ldg_bytes_a: self.ldg_bytes_a + rhs.ldg_bytes_a,
            ldg_bytes_b: self.ldg_bytes_b + rhs.ldg_bytes_b,
            ldg_bytes_d: self.ldg_bytes_d + rhs.ldg_bytes_d,
            ldg_bytes_colinfo: self.ldg_bytes_colinfo + rhs.ldg_bytes_colinfo,
            stg_bytes: self.stg_bytes + rhs.stg_bytes,
            ldg_sectors: self.ldg_sectors + rhs.ldg_sectors,
            lds_requests: self.lds_requests + rhs.lds_requests,
            lds_replays: self.lds_replays + rhs.lds_replays,
            sts_requests: self.sts_requests + rhs.sts_requests,
            lds_bytes: self.lds_bytes + rhs.lds_bytes,
            sts_bytes: self.sts_bytes + rhs.sts_bytes,
            barriers: self.barriers + rhs.barriers,
            blocks: self.blocks + rhs.blocks,
            main_loop_iters: self.main_loop_iters + rhs.main_loop_iters,
        }
    }
}

impl AddAssign for KernelStats {
    fn add_assign(&mut self, rhs: KernelStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for KernelStats {
    fn sum<I: Iterator<Item = KernelStats>>(iter: I) -> Self {
        iter.fold(KernelStats::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_is_twice_ffma() {
        let s = KernelStats {
            ffma: 100,
            ..Default::default()
        };
        assert_eq!(s.flops(), 200.0);
    }

    #[test]
    fn byte_totals() {
        let s = KernelStats {
            ldg_bytes_a: 10,
            ldg_bytes_b: 20,
            ldg_bytes_d: 5,
            ldg_bytes_colinfo: 1,
            stg_bytes: 8,
            ..Default::default()
        };
        assert_eq!(s.ldg_bytes_total(), 36);
        assert_eq!(s.global_bytes_total(), 44);
    }

    #[test]
    fn arithmetic_intensity_matches_hand_calc() {
        let s = KernelStats {
            ffma: 1000,
            ldg_bytes_a: 100,
            stg_bytes: 100,
            ..Default::default()
        };
        assert_eq!(s.arithmetic_intensity(), 2000.0 / 200.0);
        let z = KernelStats::default();
        assert!(z.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn add_and_sum() {
        let a = KernelStats {
            ffma: 1,
            blocks: 1,
            lds_requests: 3,
            ..Default::default()
        };
        let b = KernelStats {
            ffma: 2,
            blocks: 1,
            lds_replays: 4,
            ..Default::default()
        };
        let c: KernelStats = [a, b].into_iter().sum();
        assert_eq!(c.ffma, 3);
        assert_eq!(c.blocks, 2);
        assert_eq!(c.lds_cycles(), 7);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }
}
