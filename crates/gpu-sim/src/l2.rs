//! Inter-block L2 reuse model.
//!
//! GEMM-style kernels fetch each `A` panel once per grid *row* and each `B`
//! panel once per grid *column*; all other fetches of the same panel within
//! a concurrently-resident wave hit in L2. The model assumes the runtime
//! rasterizes blocks in a swizzled (≈square) super-tile — standard practice
//! for cuBLAS-class kernels and what the paper's hierarchical blocking
//! produces — and degrades reuse when the wave's instantaneous working set
//! overflows the L2 capacity (the RTX 3090's 6 MB makes this bite; the
//! A100's 40 MB and 4090's 72 MB rarely do).

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// How a kernel's raw global-load traffic divides between DRAM and L2 hits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficSplit {
    /// Bytes that must come from DRAM.
    pub dram_bytes: f64,
    /// Bytes served by L2 hits.
    pub l2_hit_bytes: f64,
    /// `dram_bytes / (dram_bytes + l2_hit_bytes)`.
    pub miss_fraction: f64,
}

impl TrafficSplit {
    /// Split with no reuse at all (everything from DRAM).
    pub fn all_miss(bytes: f64) -> Self {
        Self {
            dram_bytes: bytes,
            l2_hit_bytes: 0.0,
            miss_fraction: 1.0,
        }
    }
}

/// Per-block traffic description for the reuse analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockTraffic {
    /// Bytes of `A` loaded by one block over its whole lifetime
    /// (shared by every block in the same grid row).
    pub a_bytes: f64,
    /// Bytes of `B′` + `D` + `col_info` loaded by one block
    /// (shared by every block in the same grid column).
    pub bcol_bytes: f64,
    /// Bytes with no inter-block reuse (e.g. unstructured gathers).
    pub private_bytes: f64,
}

impl BlockTraffic {
    /// Raw bytes one block loads.
    pub fn total(&self) -> f64 {
        self.a_bytes + self.bcol_bytes + self.private_bytes
    }
}

/// Estimate the DRAM/L2 split for a grid of `grid_y × grid_x` blocks of
/// which `wave_blocks` run concurrently, each block loading `traffic`
/// **per main-loop iteration**; blocks advance through `iters` iterations
/// roughly in lockstep, so one iteration's panels form the instantaneous
/// L2 working set.
pub fn split_traffic(
    dev: &DeviceConfig,
    grid_y: usize,
    grid_x: usize,
    wave_blocks: usize,
    traffic: &BlockTraffic,
    _iters: usize,
) -> TrafficSplit {
    let total_blocks = (grid_y * grid_x) as f64;
    let raw_total = total_blocks * traffic.total();
    if raw_total == 0.0 {
        return TrafficSplit {
            dram_bytes: 0.0,
            l2_hit_bytes: 0.0,
            miss_fraction: 0.0,
        };
    }
    let wave = wave_blocks.max(1).min(grid_y * grid_x);

    // Swizzled rasterization: the wave covers an ≈square region of the grid.
    let sx = (wave as f64).sqrt().ceil().min(grid_x as f64).max(1.0);
    let sy = ((wave as f64) / sx).ceil().min(grid_y as f64).max(1.0);

    // Unique bytes a wave must pull: one A panel per covered row, one
    // B-column panel per covered column, private bytes always.
    let unique_per_wave =
        sy * traffic.a_bytes + sx * traffic.bcol_bytes + wave as f64 * traffic.private_bytes;
    let raw_per_wave = wave as f64 * traffic.total();

    // Capacity: reuse needs the current iteration's panels to stay resident.
    // Double-buffered consumers keep ~2 slices alive. Even when they fit,
    // scheduling is never a perfect swizzle — cap reuse quality below 1.
    let working_set = 2.0 * (sy * traffic.a_bytes + sx * traffic.bcol_bytes);
    let capacity = 0.8 * dev.l2_bytes as f64;
    let reuse_quality = if working_set <= capacity {
        0.95
    } else {
        0.95 * capacity / working_set
    };

    let dram_per_wave = unique_per_wave + (raw_per_wave - unique_per_wave) * (1.0 - reuse_quality);
    let miss_fraction = (dram_per_wave / raw_per_wave).clamp(0.0, 1.0);
    let dram_bytes = raw_total * miss_fraction;
    TrafficSplit {
        dram_bytes,
        l2_hit_bytes: raw_total - dram_bytes,
        miss_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{a100_80g, rtx3090};

    /// Per-iteration tile traffic of a blocked GEMM (`ks`-deep slice).
    fn gemm_traffic(ms: usize, ns: usize, ks: usize) -> BlockTraffic {
        BlockTraffic {
            a_bytes: (ms * ks * 4) as f64,
            bcol_bytes: (ns * ks * 4) as f64,
            private_bytes: 0.0,
        }
    }

    #[test]
    fn full_reuse_on_big_l2() {
        // 4096^3 dense GEMM with 64x128 tiles, ks=96 slices, on A100: wave
        // of 108 blocks over a 64x32 grid. Unique traffic is far below raw.
        let dev = a100_80g();
        let t = gemm_traffic(64, 128, 96);
        let split = split_traffic(&dev, 64, 32, 108, &t, 43);
        assert!(split.miss_fraction < 0.25, "got {}", split.miss_fraction);
        assert!(split.dram_bytes > 0.0);
        assert!(split.l2_hit_bytes > split.dram_bytes);
    }

    #[test]
    fn small_l2_degrades_reuse() {
        let t = gemm_traffic(64, 128, 1024); // big slices strain a 6MB L2
        let a100 = split_traffic(&a100_80g(), 64, 32, 108, &t, 4);
        let r3090 = split_traffic(&rtx3090(), 64, 32, 82, &t, 4);
        assert!(
            r3090.miss_fraction >= a100.miss_fraction,
            "3090 (6MB L2) must miss at least as much as A100 (40MB): {} vs {}",
            r3090.miss_fraction,
            a100.miss_fraction
        );
    }

    #[test]
    fn private_traffic_never_hits() {
        let dev = a100_80g();
        let t = BlockTraffic {
            a_bytes: 0.0,
            bcol_bytes: 0.0,
            private_bytes: 1e6,
        };
        let split = split_traffic(&dev, 16, 16, 108, &t, 10);
        assert!((split.miss_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_block_wave_has_no_reuse() {
        let dev = a100_80g();
        let t = gemm_traffic(64, 64, 256);
        let split = split_traffic(&dev, 8, 8, 1, &t, 4);
        // One block per wave: unique == raw.
        assert!((split.miss_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_is_harmless() {
        let dev = a100_80g();
        let t = BlockTraffic {
            a_bytes: 0.0,
            bcol_bytes: 0.0,
            private_bytes: 0.0,
        };
        let split = split_traffic(&dev, 4, 4, 8, &t, 4);
        assert_eq!(split.dram_bytes, 0.0);
        assert_eq!(split.miss_fraction, 0.0);
    }

    #[test]
    fn more_concurrency_means_more_reuse() {
        let dev = a100_80g();
        let t = gemm_traffic(64, 128, 96);
        let small = split_traffic(&dev, 64, 32, 16, &t, 43);
        let large = split_traffic(&dev, 64, 32, 216, &t, 43);
        assert!(large.miss_fraction < small.miss_fraction);
    }

    #[test]
    fn miss_fraction_bounded() {
        let dev = rtx3090();
        for wave in [1usize, 13, 82, 400] {
            let t = gemm_traffic(128, 128, 512);
            let s = split_traffic(&dev, 32, 32, wave, &t, 16);
            assert!((0.0..=1.0).contains(&s.miss_fraction));
            assert!(
                (s.dram_bytes + s.l2_hit_bytes - 1024.0 * t.total()).abs() / (1024.0 * t.total())
                    < 1e-9,
                "conservation of bytes"
            );
        }
    }
}
