//! Device configurations — the paper's Table III, plus derived quantities.
//!
//! All three evaluation GPUs are encoded verbatim from Table III of the
//! paper. Peak FP32 throughput is *derived* (clock × SMs × FLOPs/clock/SM)
//! and unit-tested against the table's "Peak FP32 TFLOPS" row, so a typo in
//! either place is caught.

use serde::{Deserialize, Serialize};

/// Static description of a GPGPU for the timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, e.g. `"A100 80G PCIe"`.
    pub name: String,
    /// SM clock in MHz used for cycle→second conversion.
    pub clock_mhz: f64,
    /// Streaming multiprocessor count.
    pub sm_count: usize,
    /// FP32 CUDA cores per SM (one FMA per core per clock).
    pub fp32_cores_per_sm: usize,
    /// FP32 FLOPs per clock per SM (2 × cores, FMA counts as two FLOPs).
    pub fp32_flops_per_clock_per_sm: usize,
    /// Register file per SM in bytes (A100/3090/4090: 256 KiB).
    pub register_file_per_sm: usize,
    /// Architectural per-thread register cap (255 on all three GPUs).
    pub max_registers_per_thread: usize,
    /// Combined L1/shared-memory capacity per SM (Table III row).
    pub l1_shared_per_sm: usize,
    /// Maximum shared memory allocatable per SM (carveout limit).
    pub max_shared_per_sm: usize,
    /// L2 cache size in bytes.
    pub l2_bytes: usize,
    /// DRAM capacity in bytes.
    pub dram_bytes: usize,
    /// DRAM bandwidth in bytes/second.
    pub dram_bw: f64,
    /// Effective L2 bandwidth as a multiple of DRAM bandwidth
    /// (hit traffic is served this much faster than misses).
    pub l2_bw_ratio: f64,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Shared-memory bandwidth per SM, bytes per clock (32 banks × 4 B).
    pub smem_bytes_per_clock: f64,
    /// Average DRAM access latency in SM clocks.
    pub dram_latency_cycles: f64,
    /// Average L2 hit latency in SM clocks.
    pub l2_latency_cycles: f64,
    /// `__syncthreads()` cost in clocks (barrier + re-convergence).
    pub barrier_cycles: f64,
    /// Fraction of theoretical issue/compute throughput a perfectly tuned
    /// kernel sustains in practice (instruction replay, clock variation,
    /// scoreboard stalls). Calibrated so a tuned dense GEMM lands at the
    /// ~95% efficiency cuBLAS reaches on these parts.
    pub sustained_efficiency: f64,
}

impl DeviceConfig {
    /// SM clock in Hz.
    #[inline]
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz * 1e6
    }

    /// Peak FP32 throughput in FLOP/s (clock × SMs × FLOPs/clock/SM).
    pub fn peak_fp32_flops(&self) -> f64 {
        self.clock_hz() * self.sm_count as f64 * self.fp32_flops_per_clock_per_sm as f64
    }

    /// Peak FP32 throughput in TFLOPS.
    pub fn peak_fp32_tflops(&self) -> f64 {
        self.peak_fp32_flops() / 1e12
    }

    /// FMA lanes per SM per clock (= FP32 cores).
    #[inline]
    pub fn fma_per_clock_per_sm(&self) -> f64 {
        self.fp32_flops_per_clock_per_sm as f64 / 2.0
    }

    /// Device-wide DRAM bytes delivered per SM clock.
    #[inline]
    pub fn dram_bytes_per_clock(&self) -> f64 {
        self.dram_bw / self.clock_hz()
    }

    /// Device-wide L2-hit bytes delivered per SM clock.
    #[inline]
    pub fn l2_bytes_per_clock(&self) -> f64 {
        self.dram_bytes_per_clock() * self.l2_bw_ratio
    }

    /// Machine balance point: FLOPs per DRAM byte at which compute and
    /// memory time are equal (the roofline ridge).
    pub fn ridge_flops_per_byte(&self) -> f64 {
        self.peak_fp32_flops() / self.dram_bw
    }

    /// 32-bit registers available per SM.
    pub fn registers_per_sm(&self) -> usize {
        self.register_file_per_sm / 4
    }
}

/// NVIDIA A100 80GB PCIe (Table III column 1).
pub fn a100_80g() -> DeviceConfig {
    DeviceConfig {
        name: "A100 80G PCIe".into(),
        clock_mhz: 1410.0,
        sm_count: 108,
        fp32_cores_per_sm: 64,
        fp32_flops_per_clock_per_sm: 128,
        register_file_per_sm: 256 * 1024,
        max_registers_per_thread: 255,
        l1_shared_per_sm: 192 * 1024,
        max_shared_per_sm: 164 * 1024,
        l2_bytes: 40 * 1024 * 1024,
        dram_bytes: 80 * 1024 * 1024 * 1024,
        dram_bw: 1935e9,
        l2_bw_ratio: 3.5,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
        max_threads_per_block: 1024,
        smem_bytes_per_clock: 128.0,
        dram_latency_cycles: 560.0,
        l2_latency_cycles: 230.0,
        barrier_cycles: 40.0,
        sustained_efficiency: 0.96,
    }
}

/// The A100 with the SM clock locked the way NVIDIA Nsight Compute locks it
/// during profiling — the paper's Fig. 10 roofline uses the resulting
/// 14.7 TFLOPS FP32 peak rather than the boost-clock 19.5 TFLOPS.
pub fn a100_ncu_locked() -> DeviceConfig {
    let mut d = a100_80g();
    // 14.7e12 / (108 SMs * 128 FLOP/clk) = 1063 MHz locked clock.
    d.name = "A100 80G PCIe (NCU-locked)".into();
    d.clock_mhz = 14.7e12 / (108.0 * 128.0) / 1e6;
    d
}

/// NVIDIA GeForce RTX 3090 (Table III column 2).
pub fn rtx3090() -> DeviceConfig {
    DeviceConfig {
        name: "RTX 3090".into(),
        clock_mhz: 1695.0,
        sm_count: 82,
        fp32_cores_per_sm: 128,
        fp32_flops_per_clock_per_sm: 256,
        register_file_per_sm: 256 * 1024,
        max_registers_per_thread: 255,
        l1_shared_per_sm: 128 * 1024,
        max_shared_per_sm: 100 * 1024,
        l2_bytes: 6 * 1024 * 1024,
        dram_bytes: 24 * 1024 * 1024 * 1024,
        dram_bw: 936e9,
        l2_bw_ratio: 3.0,
        max_warps_per_sm: 48,
        max_blocks_per_sm: 16,
        max_threads_per_block: 1024,
        smem_bytes_per_clock: 128.0,
        dram_latency_cycles: 500.0,
        l2_latency_cycles: 220.0,
        barrier_cycles: 40.0,
        sustained_efficiency: 0.96,
    }
}

/// NVIDIA GeForce RTX 4090 (Table III column 3).
pub fn rtx4090() -> DeviceConfig {
    DeviceConfig {
        name: "RTX 4090".into(),
        clock_mhz: 2520.0,
        sm_count: 128,
        fp32_cores_per_sm: 128,
        fp32_flops_per_clock_per_sm: 256,
        register_file_per_sm: 256 * 1024,
        max_registers_per_thread: 255,
        l1_shared_per_sm: 128 * 1024,
        max_shared_per_sm: 100 * 1024,
        l2_bytes: 72 * 1024 * 1024,
        dram_bytes: 24 * 1024 * 1024 * 1024,
        dram_bw: 1008e9,
        l2_bw_ratio: 5.0,
        max_warps_per_sm: 48,
        max_blocks_per_sm: 24,
        max_threads_per_block: 1024,
        smem_bytes_per_clock: 128.0,
        dram_latency_cycles: 480.0,
        l2_latency_cycles: 200.0,
        barrier_cycles: 40.0,
        sustained_efficiency: 0.96,
    }
}

/// All three evaluation devices in the paper's order.
pub fn paper_devices() -> Vec<DeviceConfig> {
    vec![a100_80g(), rtx3090(), rtx4090()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tflops_matches_table_iii() {
        // Table III: 19.5 / 35.6 / 82.6 TFLOPS.
        assert!((a100_80g().peak_fp32_tflops() - 19.5).abs() < 0.1);
        assert!((rtx3090().peak_fp32_tflops() - 35.6).abs() < 0.2);
        assert!((rtx4090().peak_fp32_tflops() - 82.6).abs() < 0.3);
    }

    #[test]
    fn ncu_locked_peak_is_14_7_tflops() {
        let d = a100_ncu_locked();
        assert!((d.peak_fp32_tflops() - 14.7).abs() < 0.05);
        assert!(d.clock_mhz < a100_80g().clock_mhz);
    }

    #[test]
    fn fp32_flops_per_clock_is_twice_cores() {
        for d in paper_devices() {
            assert_eq!(d.fp32_flops_per_clock_per_sm, 2 * d.fp32_cores_per_sm);
        }
    }

    #[test]
    fn ridge_points_order_matches_paper_narrative() {
        // The paper notes 3090/4090 have a larger compute/bandwidth gap than
        // A100, which is why sparsity pays off less there.
        let a100 = a100_80g().ridge_flops_per_byte();
        let r3090 = rtx3090().ridge_flops_per_byte();
        let r4090 = rtx4090().ridge_flops_per_byte();
        assert!(a100 < r3090, "A100 ridge {a100} must be lowest");
        assert!(r3090 < r4090, "4090 ridge {r4090} must be highest");
        // A100 ridge ≈ 19.5e12/1935e9 ≈ 10 FLOP/B.
        assert!((a100 - 10.08).abs() < 0.2);
    }

    #[test]
    fn dram_bytes_per_clock_sane() {
        let d = a100_80g();
        // 1935 GB/s / 1.41 GHz ≈ 1372 B/clock device-wide.
        assert!((d.dram_bytes_per_clock() - 1372.3).abs() < 2.0);
    }

    #[test]
    fn registers_per_sm() {
        assert_eq!(a100_80g().registers_per_sm(), 65536);
    }

    #[test]
    fn table_iii_capacity_rows() {
        assert_eq!(a100_80g().l2_bytes, 40 << 20);
        assert_eq!(rtx3090().l2_bytes, 6 << 20);
        assert_eq!(rtx4090().l2_bytes, 72 << 20);
        assert_eq!(a100_80g().l1_shared_per_sm, 192 << 10);
        assert_eq!(rtx3090().l1_shared_per_sm, 128 << 10);
        assert_eq!(a100_80g().sm_count, 108);
        assert_eq!(rtx3090().sm_count, 82);
        assert_eq!(rtx4090().sm_count, 128);
    }
}
