//! Occupancy: how many thread blocks fit on one SM.
//!
//! The paper leans on occupancy twice: register pressure from the `Ct`
//! accumulator tile limits parallelism ("using too many registers per thread
//! reduces parallelism", §III-B2), and the shared-memory blocking equation
//! (Eq. 4) reserves half the SM's shared memory. This module reproduces the
//! standard CUDA occupancy calculation restricted to the resources the
//! paper reasons about: warp slots, registers, shared memory, block slots.

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Per-block resource demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockResources {
    /// Threads per block.
    pub threads: usize,
    /// Registers per thread (architectural cap 255).
    pub regs_per_thread: usize,
    /// Shared-memory bytes per block (all buffers, double-buffered if so).
    pub smem_bytes: usize,
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Blocks resident per SM (0 when the block cannot launch at all).
    pub blocks_per_sm: usize,
    /// Warps resident per SM.
    pub warps_per_sm: usize,
    /// Resident warps / architectural warp slots.
    pub occupancy: f64,
    /// Which resource capped residency.
    pub limiter: Limiter,
}

/// The resource that bounds occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Warp slots per SM.
    WarpSlots,
    /// Register file capacity.
    Registers,
    /// Shared-memory capacity.
    SharedMemory,
    /// Hardware block-slot limit.
    BlockSlots,
    /// Block is unlaunchable (exceeds a per-block hardware limit).
    Unlaunchable,
}

/// Compute occupancy of `res` on `dev`.
pub fn occupancy(dev: &DeviceConfig, res: &BlockResources) -> Occupancy {
    let warps_per_block = res.threads.div_ceil(32);
    if res.threads == 0
        || res.threads > dev.max_threads_per_block
        || res.regs_per_thread > dev.max_registers_per_thread
        || res.smem_bytes > dev.max_shared_per_sm
    {
        return Occupancy {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            occupancy: 0.0,
            limiter: Limiter::Unlaunchable,
        };
    }

    let by_warps = dev.max_warps_per_sm / warps_per_block;
    let regs_per_block = res.regs_per_thread.max(1) * res.threads;
    let by_regs = dev.registers_per_sm() / regs_per_block;
    let by_smem = dev
        .max_shared_per_sm
        .checked_div(res.smem_bytes)
        .unwrap_or(usize::MAX);
    let by_slots = dev.max_blocks_per_sm;

    let blocks = by_warps.min(by_regs).min(by_smem).min(by_slots);
    let limiter = if blocks == by_smem && res.smem_bytes > 0 {
        Limiter::SharedMemory
    } else if blocks == by_regs {
        Limiter::Registers
    } else if blocks == by_warps {
        Limiter::WarpSlots
    } else {
        Limiter::BlockSlots
    };
    let warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        occupancy: warps as f64 / dev.max_warps_per_sm as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{a100_80g, rtx3090};

    #[test]
    fn small_block_is_warp_or_slot_limited() {
        let dev = a100_80g();
        let res = BlockResources {
            threads: 128,
            regs_per_thread: 32,
            smem_bytes: 0,
        };
        let occ = occupancy(&dev, &res);
        // 65536 regs / (32*128) = 16 blocks; warp slots 64/4 = 16 blocks.
        assert_eq!(occ.blocks_per_sm, 16);
        assert_eq!(occ.warps_per_sm, 64);
        assert!((occ.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_heavy_block_is_reg_limited() {
        let dev = a100_80g();
        // The paper's thread tile: mt*nt + mt + nt + overhead ~ 110 regs.
        let res = BlockResources {
            threads: 256,
            regs_per_thread: 128,
            smem_bytes: 0,
        };
        let occ = occupancy(&dev, &res);
        // 65536/(128*256) = 2 blocks = 16 warps of 64.
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::Registers);
        assert!(occ.occupancy < 0.3);
    }

    #[test]
    fn smem_heavy_block_is_smem_limited() {
        let dev = a100_80g();
        let res = BlockResources {
            threads: 128,
            regs_per_thread: 64,
            smem_bytes: 100 * 1024,
        };
        let occ = occupancy(&dev, &res);
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn unlaunchable_blocks() {
        let dev = a100_80g();
        for res in [
            BlockResources {
                threads: 2048,
                regs_per_thread: 32,
                smem_bytes: 0,
            },
            BlockResources {
                threads: 128,
                regs_per_thread: 300,
                smem_bytes: 0,
            },
            BlockResources {
                threads: 128,
                regs_per_thread: 32,
                smem_bytes: 200 * 1024,
            },
            BlockResources {
                threads: 0,
                regs_per_thread: 32,
                smem_bytes: 0,
            },
        ] {
            let occ = occupancy(&dev, &res);
            assert_eq!(occ.blocks_per_sm, 0, "{res:?} must be unlaunchable");
            assert_eq!(occ.limiter, Limiter::Unlaunchable);
        }
    }

    #[test]
    fn devices_differ_in_smem_capacity() {
        // 60 KB double-buffered tiles: 1 block on 3090 (100 KB cap) but the
        // A100 still fits only 2 if registers allow.
        let res = BlockResources {
            threads: 128,
            regs_per_thread: 100,
            smem_bytes: 60 * 1024,
        };
        assert_eq!(occupancy(&rtx3090(), &res).blocks_per_sm, 1);
        assert_eq!(occupancy(&a100_80g(), &res).blocks_per_sm, 2);
    }

    #[test]
    fn partial_warp_rounds_up() {
        let dev = a100_80g();
        let res = BlockResources {
            threads: 33, // 2 warps
            regs_per_thread: 32,
            smem_bytes: 0,
        };
        let occ = occupancy(&dev, &res);
        assert_eq!(occ.warps_per_sm, occ.blocks_per_sm * 2);
    }
}
