//! First-order energy model.
//!
//! Energy per operation on modern GPUs is dominated by data movement:
//! moving a byte from DRAM costs ~two orders of magnitude more than an FMA.
//! The model charges per-event energies (FMA, shared-memory byte, L2 byte,
//! DRAM byte) plus static/leakage power over the kernel's runtime —
//! the standard Hong-Kim-style decomposition. Constants follow published
//! per-operation estimates for 7-8 nm datacenter GPUs (Jouppi et al.,
//! "Ten Lessons", and NVIDIA's own energy-per-op disclosures), scaled per
//! device by its TDP class. Absolute joules are indicative; *relative*
//! comparisons (sparsity saves energy roughly with traffic and time) are
//! the point.

use crate::device::DeviceConfig;
use crate::stats::KernelStats;
use crate::timing::LaunchReport;
use serde::{Deserialize, Serialize};

/// Per-operation energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// One FP32 FMA (two FLOPs).
    pub pj_per_fma: f64,
    /// One byte through shared memory.
    pub pj_per_smem_byte: f64,
    /// One byte served by L2.
    pub pj_per_l2_byte: f64,
    /// One byte from DRAM.
    pub pj_per_dram_byte: f64,
    /// Static + idle power in watts, charged over the runtime.
    pub static_watts: f64,
}

impl EnergyParams {
    /// Defaults for the modeled 7-8 nm generation.
    pub fn for_device(dev: &DeviceConfig) -> Self {
        // Scale static power with the part's compute class.
        let static_watts = 0.25 * (dev.peak_fp32_tflops() * 10.0).clamp(60.0, 150.0);
        Self {
            pj_per_fma: 1.3,
            pj_per_smem_byte: 2.0,
            pj_per_l2_byte: 8.0,
            pj_per_dram_byte: 20.0,
            static_watts,
        }
    }
}

/// Energy breakdown for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Compute (FMA) energy in joules.
    pub compute_j: f64,
    /// Shared-memory traffic energy in joules.
    pub smem_j: f64,
    /// L2 traffic energy in joules.
    pub l2_j: f64,
    /// DRAM traffic energy in joules.
    pub dram_j: f64,
    /// Static/leakage energy over the runtime in joules.
    pub static_j: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.smem_j + self.l2_j + self.dram_j + self.static_j
    }

    /// Energy efficiency in GFLOPs per joule for `useful_flops`.
    pub fn gflops_per_joule(&self, useful_flops: f64) -> f64 {
        useful_flops / self.total_j() / 1e9
    }
}

/// Estimate the energy of a launch from its event counts and report.
pub fn estimate(dev: &DeviceConfig, stats: &KernelStats, report: &LaunchReport) -> EnergyReport {
    let p = EnergyParams::for_device(dev);
    let pj = 1e-12;
    let smem_bytes = (stats.lds_bytes + stats.sts_bytes) as f64;
    EnergyReport {
        compute_j: stats.ffma as f64 * p.pj_per_fma * pj,
        smem_j: smem_bytes * p.pj_per_smem_byte * pj,
        l2_j: report.traffic.l2_hit_bytes * p.pj_per_l2_byte * pj,
        dram_j: (report.traffic.dram_bytes + stats.stg_bytes as f64) * p.pj_per_dram_byte * pj,
        static_j: p.static_watts * report.seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{a100_80g, rtx4090};
    use crate::l2::TrafficSplit;
    use crate::timing::{Bound, RoundBreakdown};

    fn fake_report(seconds: f64, dram: f64, l2: f64) -> LaunchReport {
        LaunchReport {
            name: "test".into(),
            cycles: seconds * 1.41e9,
            seconds,
            tflops: 0.0,
            efficiency: 0.0,
            bound: Bound::Compute,
            waves: 1,
            blocks_per_sm: 1,
            traffic: TrafficSplit {
                dram_bytes: dram,
                l2_hit_bytes: l2,
                miss_fraction: dram / (dram + l2).max(1.0),
            },
            round: RoundBreakdown {
                compute: 0.0,
                shared: 0.0,
                memory: 0.0,
                critical_path: 0.0,
            },
        }
    }

    #[test]
    fn dram_byte_costs_more_than_fma() {
        let p = EnergyParams::for_device(&a100_80g());
        assert!(p.pj_per_dram_byte > 10.0 * p.pj_per_fma);
        assert!(p.pj_per_l2_byte < p.pj_per_dram_byte);
        assert!(p.pj_per_smem_byte < p.pj_per_l2_byte);
    }

    #[test]
    fn totals_add_up() {
        let dev = a100_80g();
        let stats = KernelStats {
            ffma: 1_000_000,
            lds_bytes: 500_000,
            sts_bytes: 500_000,
            stg_bytes: 100_000,
            ..Default::default()
        };
        let rep = fake_report(1e-3, 1e6, 9e6);
        let e = estimate(&dev, &stats, &rep);
        let sum = e.compute_j + e.smem_j + e.l2_j + e.dram_j + e.static_j;
        assert!((e.total_j() - sum).abs() < 1e-15);
        assert!(e.total_j() > 0.0);
        // At 1 ms, static energy dominates micro-kernels.
        assert!(e.static_j > e.compute_j);
    }

    #[test]
    fn less_traffic_means_less_energy() {
        let dev = a100_80g();
        let stats = KernelStats {
            ffma: 10_000_000,
            ..Default::default()
        };
        let heavy = estimate(&dev, &stats, &fake_report(1e-3, 1e9, 1e9));
        let light = estimate(&dev, &stats, &fake_report(1e-3, 1e8, 1e8));
        assert!(light.total_j() < heavy.total_j());
    }

    #[test]
    fn gflops_per_joule_is_finite_and_positive() {
        let dev = rtx4090();
        let stats = KernelStats {
            ffma: 1 << 30,
            lds_bytes: 1 << 28,
            sts_bytes: 1 << 28,
            ..Default::default()
        };
        let rep = fake_report(5e-3, 1e9, 3e9);
        let e = estimate(&dev, &stats, &rep);
        let g = e.gflops_per_joule(2.0 * (1u64 << 30) as f64);
        assert!(g.is_finite() && g > 0.0);
    }

    #[test]
    fn static_power_scales_with_device_class() {
        let small = EnergyParams::for_device(&a100_80g()).static_watts;
        let big = EnergyParams::for_device(&rtx4090()).static_watts;
        assert!(big >= small);
    }
}
