//! Warp-level memory access models: global-memory coalescing and
//! shared-memory bank conflicts.
//!
//! These are the two access-pattern effects the paper's kernels are designed
//! around ("reordering to avoid bank conflict", §I; coalesced `LoadTile`
//! accesses, §III-B). The kernels in `nm-kernels` call these functions with
//! the *actual per-lane addresses* their tile loaders generate, so a layout
//! bug (e.g. an unpadded shared tile) shows up as measurable replays, just
//! as it would under Nsight Compute.

/// Bytes per global-memory sector (transaction granularity).
pub const SECTOR_BYTES: usize = 32;
/// Number of shared-memory banks.
pub const NUM_BANKS: usize = 32;
/// Bank word width in bytes.
pub const BANK_WIDTH: usize = 4;

/// Number of 32-byte sectors touched by one warp-wide global access, given
/// each active lane's starting byte address and the per-lane access width.
///
/// A fully coalesced 32-lane × 4 B access touches 4 sectors (128 B); a
/// stride-N gather touches up to 32.
pub fn coalesced_sectors(lane_addrs: &[usize], bytes_per_lane: usize) -> usize {
    let mut sectors: Vec<usize> = lane_addrs
        .iter()
        .flat_map(|&a| {
            let first = a / SECTOR_BYTES;
            let last = (a + bytes_per_lane - 1) / SECTOR_BYTES;
            first..=last
        })
        .collect();
    sectors.sort_unstable();
    sectors.dedup();
    sectors.len()
}

/// Shared-memory conflict degree of one warp-wide access: the maximum number
/// of *distinct* 4-byte words any single bank must serve. Degree 1 is
/// conflict-free; lanes reading the same word broadcast and do not conflict.
///
/// For accesses wider than 4 B the hardware splits the warp into phases; pass
/// each phase's addresses separately (the tile loaders do this).
pub fn bank_conflict_degree(lane_word_addrs: &[usize]) -> usize {
    let mut per_bank: [Vec<usize>; NUM_BANKS] = std::array::from_fn(|_| Vec::new());
    for &addr in lane_word_addrs {
        let word = addr; // caller passes word (4-byte) indices
        let bank = word % NUM_BANKS;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    per_bank.iter().map(Vec::len).max().unwrap_or(0).max(1)
}

/// Replay count for one warp access: `degree − 1` extra trips.
pub fn bank_conflict_replays(lane_word_addrs: &[usize]) -> usize {
    bank_conflict_degree(lane_word_addrs) - 1
}

/// Summary of one warp-level shared-memory access pattern evaluated over a
/// whole tile load/store loop.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SmemAccessReport {
    /// Warp-level requests issued.
    pub requests: usize,
    /// Replays caused by bank conflicts (extra cycles beyond `requests`).
    pub replays: usize,
}

impl SmemAccessReport {
    /// Accumulate one warp access with the given word addresses.
    pub fn record(&mut self, lane_word_addrs: &[usize]) {
        self.requests += 1;
        self.replays += bank_conflict_replays(lane_word_addrs);
    }

    /// Total serviced cycles (requests + replays).
    pub fn cycles(&self) -> usize {
        self.requests + self.replays
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: &SmemAccessReport) {
        self.requests += other.requests;
        self.replays += other.replays;
    }
}

/// Word addresses for a warp reading a `rows × cols` shared tile with one
/// lane per `(row, col)` in a `lanes_y × lanes_x` arrangement, with an
/// optional padding column (`stride = cols + pad`). Helper for layout tests.
pub fn tile_access_words(
    lanes_y: usize,
    lanes_x: usize,
    stride: usize,
    row0: usize,
    col0: usize,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(lanes_y * lanes_x);
    for ly in 0..lanes_y {
        for lx in 0..lanes_x {
            out.push((row0 + ly) * stride + col0 + lx);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp_touches_four_sectors() {
        let addrs: Vec<usize> = (0..32).map(|l| l * 4).collect();
        assert_eq!(coalesced_sectors(&addrs, 4), 4);
    }

    #[test]
    fn strided_gather_touches_one_sector_per_lane() {
        let addrs: Vec<usize> = (0..32).map(|l| l * 128).collect();
        assert_eq!(coalesced_sectors(&addrs, 4), 32);
    }

    #[test]
    fn vectorized_float4_access() {
        // 32 lanes × 16 B contiguous = 512 B = 16 sectors.
        let addrs: Vec<usize> = (0..32).map(|l| l * 16).collect();
        assert_eq!(coalesced_sectors(&addrs, 16), 16);
    }

    #[test]
    fn duplicate_addresses_coalesce() {
        let addrs = vec![0usize; 32];
        assert_eq!(coalesced_sectors(&addrs, 4), 1);
    }

    #[test]
    fn unaligned_access_spans_extra_sector() {
        // One lane reading 4 B at byte 30 crosses a sector boundary.
        assert_eq!(coalesced_sectors(&[30], 4), 2);
    }

    #[test]
    fn conflict_free_row_access() {
        // 32 consecutive words hit 32 distinct banks.
        let words: Vec<usize> = (0..32).collect();
        assert_eq!(bank_conflict_degree(&words), 1);
    }

    #[test]
    fn broadcast_is_conflict_free() {
        let words = vec![7usize; 32];
        assert_eq!(bank_conflict_degree(&words), 1);
        assert_eq!(bank_conflict_replays(&words), 0);
    }

    #[test]
    fn stride_32_column_access_is_fully_serialized() {
        // Column of a 32-wide tile without padding: all lanes hit bank 0.
        let words: Vec<usize> = (0..32).map(|l| l * 32).collect();
        assert_eq!(bank_conflict_degree(&words), 32);
    }

    #[test]
    fn padding_removes_column_conflicts() {
        // Same column access with stride 33: every lane a different bank.
        let words: Vec<usize> = (0..32).map(|l| l * 33).collect();
        assert_eq!(bank_conflict_degree(&words), 1);
    }

    #[test]
    fn two_way_conflict() {
        // Lanes 0..16 hit words 0..16, lanes 16..32 hit words 32..48:
        // each bank serves 2 distinct words.
        let words: Vec<usize> = (0..16).chain(32..48).collect();
        assert_eq!(bank_conflict_degree(&words), 2);
        assert_eq!(bank_conflict_replays(&words), 1);
    }

    #[test]
    fn report_accumulates() {
        let mut rep = SmemAccessReport::default();
        rep.record(&(0..32).collect::<Vec<_>>()); // clean
        rep.record(&(0..32).map(|l| l * 32).collect::<Vec<_>>()); // 32-way
        assert_eq!(rep.requests, 2);
        assert_eq!(rep.replays, 31);
        assert_eq!(rep.cycles(), 33);

        let mut other = SmemAccessReport::default();
        other.record(&[0; 32]);
        rep.merge(&other);
        assert_eq!(rep.requests, 3);
    }

    #[test]
    fn tile_access_helper_matches_manual_layout() {
        // 4x8 warp grid reading a 32-wide tile, no padding: row-major lanes.
        let words = tile_access_words(4, 8, 32, 0, 0);
        assert_eq!(words.len(), 32);
        assert_eq!(words[0], 0);
        assert_eq!(words[8], 32); // second lane row starts one tile row down
                                  // Banks repeat every row (stride 32) -> 4 distinct words per bank for
                                  // the 8 banks covered.
        assert_eq!(bank_conflict_degree(&words), 4);
        // Padding does not help a 2-D lane grid where lanes read different
        // rows AND columns — banks (ly+lx) mod 32 still collide 4 ways.
        // (This is why the kernels load Bt row-wise and broadcast At instead.)
        let padded = tile_access_words(4, 8, 33, 0, 0);
        assert_eq!(bank_conflict_degree(&padded), 4);
        // A row-wise warp access (1x32 lanes) is conflict-free regardless.
        let row = tile_access_words(1, 32, 33, 3, 0);
        assert_eq!(bank_conflict_degree(&row), 1);
    }

    #[test]
    fn empty_access_degree_is_one() {
        assert_eq!(bank_conflict_degree(&[]), 1);
        assert_eq!(coalesced_sectors(&[], 4), 0);
    }
}
