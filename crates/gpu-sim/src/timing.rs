//! The pipeline-aware timing model.
//!
//! Converts a kernel's resource shape and per-iteration event counts into
//! cycles, reproducing the overlap structures of paper Figs. 5/6:
//!
//! * **Serial** main loop (V1/V2, Listing 1/3): every iteration pays
//!   `load → barrier → compute`; with `b` blocks resident per SM the SM
//!   interleaves one block's loads with another's compute, so the SM-level
//!   round time is the maximum of the per-resource totals and each block's
//!   own critical path.
//! * **Double-buffered** main loop (V3, Listing 4): a block overlaps the
//!   next tile's global load with the current tile's compute, so only
//!   `max(compute, load)` plus any un-hidden latency remains on the
//!   critical path.
//!
//! Within the inner kernel, register double-buffering of `At`/`Bt`
//! (Listing 4's `SMBlock`) removes the WAR serialization between shared
//! loads and FMAs; without it the exposure shrinks with the number of
//! warps that can interleave (V1/V2).
//!
//! The model is a steady-state bound computation (processor-sharing
//! queues), not a cycle-accurate trace — deliberately: it is deterministic,
//! fast enough to sweep the paper's 100-point dataset, and every term maps
//! to a sentence of the paper's own analysis.

use crate::device::DeviceConfig;
use crate::l2::{split_traffic, BlockTraffic, TrafficSplit};
use crate::occupancy::{occupancy, BlockResources};
use serde::{Deserialize, Serialize};

/// Main-loop pipeline structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Load, `__syncthreads()`, compute — no intra-block overlap (V1/V2).
    Serial,
    /// Global loads for iteration `i+1` overlap compute of iteration `i`
    /// (V3, paper Fig. 5/6 — which side hides which is emergent from the
    /// relative magnitudes, exactly as in the paper).
    DoubleBuffered,
}

/// Everything the timing model needs to know about one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name for reports.
    pub name: String,
    /// Grid shape `(grid_y, grid_x)` in blocks.
    pub grid: (usize, usize),
    /// Per-block resource demand (threads, registers, shared memory).
    pub resources: BlockResources,
    /// Main-loop trip count per block (`⌈w/ws⌉`).
    pub iters_per_block: usize,
    /// FP32-pipe cycles per block-iteration at full-SM rate
    /// (`ffma_per_iter / fma_per_clock_per_sm`).
    pub comp_cycles_per_iter: f64,
    /// Shared-memory pipe cycles per block-iteration, replays included.
    pub lds_cycles_per_iter: f64,
    /// Global→shared bytes per block-iteration, split by reuse class.
    pub g2s_per_iter: BlockTraffic,
    /// Additional *serialized* load chains per iteration (the packing
    /// path's `col_info → As` dependency adds 1; everything else 0).
    pub dependent_load_chains: f64,
    /// Main-loop structure.
    pub pipeline: PipelineMode,
    /// Register-level double buffering of `At`/`Bt` in the inner kernel.
    pub inner_double_buffer: bool,
    /// Bytes of `C` written back per block in the epilogue.
    pub stg_bytes_per_block: f64,
    /// Useful FLOPs of the whole problem (`2·m·n·w`), for the efficiency
    /// metric. Loads/stores of padding are *not* useful work.
    pub useful_flops: f64,
}

/// Which resource dominates the steady-state round time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// FP32 pipe saturated.
    Compute,
    /// DRAM/L2 bandwidth saturated.
    Memory,
    /// Shared-memory pipe saturated.
    SharedMemory,
    /// Dependency latency exposed (occupancy too low to hide it).
    Latency,
}

/// Timing-model output for one launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchReport {
    /// Kernel name (copied from the profile).
    pub name: String,
    /// Total kernel cycles at the SM clock.
    pub cycles: f64,
    /// Wall time in seconds.
    pub seconds: f64,
    /// Useful throughput in TFLOPS.
    pub tflops: f64,
    /// `tflops / peak_fp32_tflops`.
    pub efficiency: f64,
    /// Dominant bound in the steady state.
    pub bound: Bound,
    /// Full waves the grid needs.
    pub waves: usize,
    /// Resident blocks per SM.
    pub blocks_per_sm: usize,
    /// DRAM vs L2 split of the load traffic.
    pub traffic: TrafficSplit,
    /// Per-round component times (cycles), for diagnosis.
    pub round: RoundBreakdown,
}

/// The four competing terms of one steady-state round (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundBreakdown {
    /// `b × comp_cycles_per_iter` — FP32 resource bound.
    pub compute: f64,
    /// `b × lds_cycles_per_iter` — shared-memory resource bound.
    pub shared: f64,
    /// `b × load_service` — DRAM/L2 resource bound.
    pub memory: f64,
    /// The per-block critical path (latency + serial structure).
    pub critical_path: f64,
}

/// Timing-model failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The block cannot be scheduled on this device at all.
    Unlaunchable {
        /// Explanation (which limit was exceeded).
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unlaunchable { reason } => write!(f, "kernel unlaunchable: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Estimate the execution of `prof` on `dev`.
pub fn estimate(dev: &DeviceConfig, prof: &KernelProfile) -> Result<LaunchReport, SimError> {
    let occ = occupancy(dev, &prof.resources);
    if occ.blocks_per_sm == 0 {
        return Err(SimError::Unlaunchable {
            reason: format!(
                "{:?} exceeds limits of {} (smem cap {} B, {} regs/thread)",
                prof.resources, dev.name, dev.max_shared_per_sm, dev.max_registers_per_thread
            ),
        });
    }
    let (gy, gx) = prof.grid;
    let total_blocks = (gy * gx).max(1);
    let wave_capacity = occ.blocks_per_sm * dev.sm_count;
    let waves = total_blocks.div_ceil(wave_capacity);
    let wave_blocks = total_blocks.min(wave_capacity);
    // The hardware scheduler spreads a partial wave across ALL SMs, so
    // small grids see full machine bandwidth/compute at reduced residency.
    let active_sms = wave_blocks.min(dev.sm_count) as f64;
    let b = occ
        .blocks_per_sm
        .min(wave_blocks.div_ceil(active_sms as usize)) as f64;

    // --- Load-side service rates (per SM share of device bandwidth) ---
    // A double-buffered kernel keeps two iteration slices in flight, so a
    // resident block exposes the same L2 panel-sharing window as two serial
    // blocks; reuse is evaluated over that effective wave.
    let reuse_wave = match prof.pipeline {
        PipelineMode::Serial => wave_blocks,
        PipelineMode::DoubleBuffered => 2 * wave_blocks,
    };
    let traffic = split_traffic(
        dev,
        gy,
        gx,
        reuse_wave,
        &prof.g2s_per_iter,
        prof.iters_per_block,
    );
    let dram_rate_per_sm = dev.dram_bytes_per_clock() / active_sms;
    let l2_rate_per_sm = dev.l2_bytes_per_clock() / active_sms;
    let bytes_iter = prof.g2s_per_iter.total();
    let (dram_iter, l2_iter) = (
        bytes_iter * traffic.miss_fraction,
        bytes_iter * (1.0 - traffic.miss_fraction),
    );
    // Per-block per-iteration global load service time.
    let g = dram_iter / dram_rate_per_sm + l2_iter / l2_rate_per_sm;
    // Exposed access latency per dependent chain.
    let lat = traffic.miss_fraction * dev.dram_latency_cycles
        + (1.0 - traffic.miss_fraction) * dev.l2_latency_cycles;
    let lat_eff = lat * (1.0 + prof.dependent_load_chains);

    // --- Inner-kernel exposure (shared-mem loads vs FMAs) ---
    let warps = (prof.resources.threads.div_ceil(32)).max(1) as f64;
    let xc = prof.comp_cycles_per_iter;
    let xl = prof.lds_cycles_per_iter;
    let x = if prof.inner_double_buffer {
        xc.max(xl)
    } else {
        // WAR hazard serializes LDS→FFMA within a warp; other warps of the
        // same block hide part of it.
        xc.max(xl) + xc.min(xl) / warps
    };

    // --- Steady-state round time (all b resident blocks advance one iter) --
    let sync = dev.barrier_cycles;
    let r_comp = b * xc;
    let r_lds = b * xl;
    let r_mem = b * g;
    let (round, crit) = match prof.pipeline {
        // Serial main loop (Listing 1/3): barriers give every resident
        // block the same iteration cadence, so blocks phase-lock and their
        // load phases collide instead of hiding under a neighbour's compute
        // — the convoy effect double buffering exists to break. A block
        // finds the SM also loading with probability ≈ G/(G+X); that
        // fraction of the lesser resource stays exposed, and the per-trip
        // access latency sits on the critical path.
        PipelineMode::Serial => {
            let collision = g / (g + x).max(1e-9);
            let base = r_comp.max(r_lds).max(r_mem);
            // Residency desynchronizes barrier cadences enough to hide the
            // access latency across blocks (but not the bandwidth/compute
            // serialization the collision term charges).
            let round = base + collision * r_comp.min(r_mem) + lat_eff / b + 2.0 * sync;
            (round, lat_eff + g + x + 2.0 * sync)
        }
        // Steady-state double buffering (Listing 4): loads for iteration
        // i+1 are issued as compute of iteration i starts, so back-to-back
        // loads amortize the access latency — only service times compete.
        // Latency reappears solely in the prologue.
        PipelineMode::DoubleBuffered => {
            let crit = (x + sync).max(g);
            (r_comp.max(r_lds).max(r_mem).max(crit), crit)
        }
    };

    // Attribute the round to whichever resource explains (almost) all of it.
    // The critical path always embeds one compute and one load term, so a
    // strict argmax would misreport compute-bound single-block-per-SM
    // kernels as latency bound.
    let bound = if r_mem >= 0.93 * round {
        Bound::Memory
    } else if r_comp >= 0.93 * round {
        Bound::Compute
    } else if r_lds >= 0.93 * round {
        Bound::SharedMemory
    } else {
        Bound::Latency
    };

    // --- Assemble the launch ---
    let prologue = lat_eff + g; // first tile fill
    let epilogue = prof.stg_bytes_per_block * b / dram_rate_per_sm + lat;
    let wave_cycles = prologue + prof.iters_per_block as f64 * round + epilogue;
    let cycles = waves as f64 * wave_cycles / dev.sustained_efficiency;

    let seconds = cycles / dev.clock_hz();
    let tflops = if seconds > 0.0 {
        prof.useful_flops / seconds / 1e12
    } else {
        0.0
    };
    Ok(LaunchReport {
        name: prof.name.clone(),
        cycles,
        seconds,
        tflops,
        efficiency: tflops / dev.peak_fp32_tflops(),
        bound,
        waves,
        blocks_per_sm: occ.blocks_per_sm,
        traffic,
        round: RoundBreakdown {
            compute: r_comp,
            shared: r_lds,
            memory: r_mem,
            critical_path: crit,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::a100_80g;

    /// A dense-GEMM-shaped profile: 64x128 tile, ks=96, m=n=k=4096.
    fn dense_profile(pipeline: PipelineMode, inner_dbuf: bool) -> KernelProfile {
        let (ms, ns, ks) = (64usize, 128usize, 96usize);
        let k = 4096usize;
        let threads = ms * ns / 64; // 8x8 thread tiles
        let smem = 4
            * (ms * ks + ks * ns)
            * if pipeline == PipelineMode::DoubleBuffered {
                2
            } else {
                1
            };
        KernelProfile {
            name: "dense-test".into(),
            grid: (4096 / ms, 4096 / ns),
            resources: BlockResources {
                threads,
                regs_per_thread: 120,
                smem_bytes: smem,
            },
            iters_per_block: k / ks,
            comp_cycles_per_iter: (ms * ns * ks) as f64 / 64.0,
            lds_cycles_per_iter: (threads * ks * (8 + 8) * 4) as f64 / 128.0,
            g2s_per_iter: BlockTraffic {
                a_bytes: (ms * ks * 4) as f64,
                bcol_bytes: (ks * ns * 4) as f64,
                private_bytes: 0.0,
            },
            dependent_load_chains: 0.0,
            pipeline,
            inner_double_buffer: inner_dbuf,
            stg_bytes_per_block: (ms * ns * 4) as f64,
            useful_flops: 2.0 * 4096f64.powi(3),
        }
    }

    #[test]
    fn tuned_dense_gemm_is_compute_bound_and_efficient() {
        let dev = a100_80g();
        let rep = estimate(&dev, &dense_profile(PipelineMode::DoubleBuffered, true)).unwrap();
        assert_eq!(rep.bound, Bound::Compute);
        assert!(
            rep.efficiency > 0.85 && rep.efficiency <= 1.0,
            "dense GEMM efficiency {} out of band",
            rep.efficiency
        );
    }

    #[test]
    fn serial_pipeline_is_slower() {
        let dev = a100_80g();
        let v3 = estimate(&dev, &dense_profile(PipelineMode::DoubleBuffered, true)).unwrap();
        let mut p1 = dense_profile(PipelineMode::Serial, false);
        p1.resources.smem_bytes /= 2; // V1 has single buffers
        let v1 = estimate(&dev, &p1).unwrap();
        assert!(
            v1.seconds > v3.seconds,
            "serial {} must be slower than double-buffered {}",
            v1.seconds,
            v3.seconds
        );
        // But not catastrophically at compute-bound shapes (paper Fig. 7).
        assert!(v3.seconds / v1.seconds > 0.6);
    }

    #[test]
    fn unlaunchable_block_is_an_error() {
        let dev = a100_80g();
        let mut p = dense_profile(PipelineMode::Serial, false);
        p.resources.smem_bytes = 10 * 1024 * 1024;
        assert!(estimate(&dev, &p).is_err());
    }

    #[test]
    fn memory_bound_profile_classified() {
        let dev = a100_80g();
        let mut p = dense_profile(PipelineMode::DoubleBuffered, true);
        // Blow up the per-iteration traffic with zero-reuse bytes.
        p.g2s_per_iter.private_bytes = 4e6;
        let rep = estimate(&dev, &p).unwrap();
        assert_eq!(rep.bound, Bound::Memory);
        assert!(rep.efficiency < 0.5);
    }

    #[test]
    fn latency_bound_small_grid() {
        let dev = a100_80g();
        let mut p = dense_profile(PipelineMode::Serial, false);
        p.resources.smem_bytes /= 2;
        p.grid = (1, 1); // single block: nothing hides latency
        p.useful_flops = 2.0 * 64.0 * 128.0 * 4096.0;
        let rep = estimate(&dev, &p).unwrap();
        assert!(rep.efficiency < 0.05, "one block cannot fill a GPU");
    }

    #[test]
    fn waves_quantize() {
        let dev = a100_80g();
        let mut p = dense_profile(PipelineMode::DoubleBuffered, true);
        let rep1 = estimate(&dev, &p).unwrap();
        // Same per-block work, slightly more blocks than a wave boundary.
        p.grid = (rep1.blocks_per_sm * dev.sm_count / 32 + 1, 32);
        let rep2 = estimate(&dev, &p).unwrap();
        assert_eq!(rep2.waves, 2);
    }

    #[test]
    fn dependent_chain_raises_critical_path() {
        let dev = a100_80g();
        let mut base = dense_profile(PipelineMode::Serial, false);
        base.resources.smem_bytes /= 2;
        let r0 = estimate(&dev, &base).unwrap();
        base.dependent_load_chains = 1.0;
        let r1 = estimate(&dev, &base).unwrap();
        assert!(r1.round.critical_path > r0.round.critical_path);
    }

    #[test]
    fn report_units_are_consistent() {
        let dev = a100_80g();
        let rep = estimate(&dev, &dense_profile(PipelineMode::DoubleBuffered, true)).unwrap();
        let recomputed_tflops = 2.0 * 4096f64.powi(3) / rep.seconds / 1e12;
        assert!((recomputed_tflops - rep.tflops).abs() / rep.tflops < 1e-9);
        assert!((rep.seconds - rep.cycles / dev.clock_hz()).abs() < 1e-12);
    }
}
