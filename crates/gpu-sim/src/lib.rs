//! # gpu-sim — a GPGPU substrate simulator
//!
//! The NM-SpMM paper is evaluated on NVIDIA A100/RTX 3090/RTX 4090 hardware.
//! This crate is the substitution for that hardware: a simulator that models
//! exactly the architectural quantities the paper's analysis is built on —
//!
//! * device configurations encoding the paper's Table III
//!   ([`device::DeviceConfig`] with [`device::a100_80g`],
//!   [`device::rtx3090`], [`device::rtx4090`] presets),
//! * warp-level global-memory coalescing (32-byte sectors, [`mem`]),
//! * shared-memory bank conflicts (32 banks × 4 B, replay counting),
//! * occupancy (registers / shared memory / warp slots, [`occupancy`]),
//! * an L2 inter-block reuse model ([`l2`]),
//! * a pipeline-aware timing model ([`timing`]) reproducing the paper's
//!   Fig. 5/6 overlap structure: serial (V1/V2) vs double-buffered (V3)
//!   main loops, DRAM latency exposure, and multi-block interleaving,
//! * the machine roofline ([`roofline`]).
//!
//! Kernels (in the `nm-kernels` crate) execute *functionally* against plain
//! buffers to produce real FP32 results, while reporting their per-block
//! event counts ([`stats::KernelStats`]) and resource shape
//! ([`timing::KernelProfile`]) to this crate's timing model, which turns
//! them into cycles, seconds, TFLOPS and efficiency.

#![warn(missing_docs)]

pub mod device;
pub mod energy;
pub mod l2;
pub mod mem;
pub mod occupancy;
pub mod roofline;
pub mod stats;
pub mod timing;
pub mod trace;

pub use device::DeviceConfig;
pub use stats::KernelStats;
pub use timing::{KernelProfile, LaunchReport, PipelineMode};
pub use trace::{ExecutionTrace, PhaseCounts};

/// Glob-import of the simulator's most used types.
pub mod prelude {
    pub use crate::device::{a100_80g, a100_ncu_locked, rtx3090, rtx4090, DeviceConfig};
    pub use crate::occupancy::{BlockResources, Occupancy};
    pub use crate::roofline::Roofline;
    pub use crate::stats::KernelStats;
    pub use crate::timing::{Bound, KernelProfile, LaunchReport, PipelineMode};
    pub use crate::trace::{ExecutionTrace, PhaseCounts};
}
