//! Execution traces: a structured timeline of one simulated launch.
//!
//! The timing model reduces a launch to prologue / steady-state rounds /
//! epilogue per wave; this module materializes that structure as an
//! inspectable [`ExecutionTrace`] — the simulator's answer to an Nsight
//! Compute timeline — with per-phase resource attribution and a CSV
//! exporter for plotting.

use crate::device::DeviceConfig;
use crate::timing::{Bound, KernelProfile, LaunchReport};
use serde::{Deserialize, Serialize};

/// One segment of the launch timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment kind.
    pub kind: SegmentKind,
    /// Start time in cycles from launch.
    pub start_cycles: f64,
    /// Duration in cycles.
    pub duration_cycles: f64,
    /// Wave index this segment belongs to.
    pub wave: usize,
}

/// What a segment spends its time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// First tile fill: exposed access latency + service.
    Prologue,
    /// The steady-state main loop (all iterations).
    MainLoop,
    /// C write-back (+ split-K reduction when present).
    Epilogue,
}

/// A structured launch timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Kernel name.
    pub name: String,
    /// Device name.
    pub device: String,
    /// Ordered timeline segments.
    pub segments: Vec<Segment>,
    /// Total cycles (matches the report).
    pub total_cycles: f64,
    /// Steady-state bound.
    pub bound: Bound,
    /// Fraction of the total spent in the main loop (the useful part).
    pub main_loop_fraction: f64,
}

/// Phase-structure fingerprint of a launch timeline: how many waves it
/// ran and how many segments of each kind they contributed.
///
/// This is the **trace comparison hook** external executors check
/// themselves against: any backend that claims to execute the same
/// launch (e.g. the `nm-gpu` shader interpreter) must walk the same
/// number of waves with the same prologue / main-loop / epilogue
/// structure the timing model assumes. Cycle *durations* are
/// deliberately excluded — they are the model's opinion; the phase
/// counts are the launch's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCounts {
    /// Waves the launch needed (grid blocks / resident capacity).
    pub waves: usize,
    /// Prologue segments (one per wave: the first tile fill).
    pub prologue: usize,
    /// Main-loop segments (one per wave).
    pub main_loop: usize,
    /// Epilogue segments (one per wave: the `C` write-back).
    pub epilogue: usize,
}

impl PhaseCounts {
    /// Whether two launch shapes agree.
    pub fn matches(&self, other: &PhaseCounts) -> bool {
        self == other
    }
}

impl std::fmt::Display for PhaseCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} wave(s): {}P/{}M/{}E",
            self.waves, self.prologue, self.main_loop, self.epilogue
        )
    }
}

impl ExecutionTrace {
    /// This trace's phase-structure fingerprint (see [`PhaseCounts`]).
    pub fn phase_counts(&self) -> PhaseCounts {
        let count = |kind: SegmentKind| self.segments.iter().filter(|s| s.kind == kind).count();
        PhaseCounts {
            waves: self.segments.iter().map(|s| s.wave + 1).max().unwrap_or(0),
            prologue: count(SegmentKind::Prologue),
            main_loop: count(SegmentKind::MainLoop),
            epilogue: count(SegmentKind::Epilogue),
        }
    }

    /// Build a trace from a profile and its report. The per-wave split
    /// reuses the same arithmetic as `timing::estimate`, so segment sums
    /// equal the report's total (tested).
    pub fn from_launch(dev: &DeviceConfig, prof: &KernelProfile, report: &LaunchReport) -> Self {
        let waves = report.waves.max(1);
        let wave_cycles = report.cycles / waves as f64;

        // Decompose one wave the way the estimator assembles it: the
        // prologue is one exposed access + fill; the epilogue is the C
        // write-back; the remainder is the main loop.
        let lat = report.traffic.miss_fraction * dev.dram_latency_cycles
            + (1.0 - report.traffic.miss_fraction) * dev.l2_latency_cycles;
        let chains = 1.0 + prof.dependent_load_chains;
        let g = prof.g2s_per_iter.total()
            * (report.traffic.miss_fraction / dev.dram_bytes_per_clock()
                + (1.0 - report.traffic.miss_fraction) / dev.l2_bytes_per_clock())
            * report.blocks_per_sm.max(1) as f64;
        let prologue = (lat * chains + g).min(wave_cycles * 0.45);
        let epilogue =
            (prof.stg_bytes_per_block / dev.dram_bytes_per_clock() + lat).min(wave_cycles * 0.25);
        let main = (wave_cycles - prologue - epilogue).max(0.0);

        let mut segments = Vec::with_capacity(waves * 3);
        let mut t = 0.0;
        for wave in 0..waves {
            for (kind, dur) in [
                (SegmentKind::Prologue, prologue),
                (SegmentKind::MainLoop, main),
                (SegmentKind::Epilogue, epilogue),
            ] {
                segments.push(Segment {
                    kind,
                    start_cycles: t,
                    duration_cycles: dur,
                    wave,
                });
                t += dur;
            }
        }
        let main_total: f64 = segments
            .iter()
            .filter(|s| s.kind == SegmentKind::MainLoop)
            .map(|s| s.duration_cycles)
            .sum();
        ExecutionTrace {
            name: prof.name.clone(),
            device: dev.name.clone(),
            segments,
            total_cycles: t,
            bound: report.bound,
            main_loop_fraction: if t > 0.0 { main_total / t } else { 0.0 },
        }
    }

    /// Export as CSV (`wave,kind,start_cycles,duration_cycles`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("wave,kind,start_cycles,duration_cycles\n");
        for s in &self.segments {
            out.push_str(&format!(
                "{},{:?},{:.1},{:.1}\n",
                s.wave, s.kind, s.start_cycles, s.duration_cycles
            ));
        }
        out
    }

    /// Render a compact one-line bar per wave (for terminal output), e.g.
    /// `wave 0: [P==M================E]`.
    pub fn ascii_timeline(&self, width: usize) -> String {
        let mut out = String::new();
        let per_wave: Vec<&[Segment]> = self.segments.chunks(3).collect();
        for (i, segs) in per_wave.iter().enumerate() {
            let wave_total: f64 = segs.iter().map(|s| s.duration_cycles).sum();
            out.push_str(&format!("wave {i}: ["));
            for s in *segs {
                let c = match s.kind {
                    SegmentKind::Prologue => 'P',
                    SegmentKind::MainLoop => '=',
                    SegmentKind::Epilogue => 'E',
                };
                let n = if wave_total > 0.0 {
                    ((s.duration_cycles / wave_total) * width as f64).round() as usize
                } else {
                    0
                };
                out.extend(std::iter::repeat_n(c, n.max(1)));
            }
            out.push_str("]\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::a100_80g;
    use crate::l2::BlockTraffic;
    use crate::occupancy::BlockResources;
    use crate::timing::{estimate, PipelineMode};

    fn sample_profile() -> KernelProfile {
        KernelProfile {
            name: "trace-test".into(),
            grid: (64, 32),
            resources: BlockResources {
                threads: 128,
                regs_per_thread: 120,
                smem_bytes: 96 * 1024,
            },
            iters_per_block: 16,
            comp_cycles_per_iter: 4096.0,
            lds_cycles_per_iter: 1024.0,
            g2s_per_iter: BlockTraffic {
                a_bytes: 65536.0,
                bcol_bytes: 16384.0,
                private_bytes: 0.0,
            },
            dependent_load_chains: 1.0,
            pipeline: PipelineMode::DoubleBuffered,
            inner_double_buffer: true,
            stg_bytes_per_block: 32768.0,
            useful_flops: 1e12,
        }
    }

    #[test]
    fn segments_cover_the_whole_launch() {
        let dev = a100_80g();
        let prof = sample_profile();
        let rep = estimate(&dev, &prof).unwrap();
        let trace = ExecutionTrace::from_launch(&dev, &prof, &rep);
        assert_eq!(trace.segments.len(), rep.waves * 3);
        // Durations sum to the total; segments are contiguous.
        let sum: f64 = trace.segments.iter().map(|s| s.duration_cycles).sum();
        assert!((sum - trace.total_cycles).abs() < 1e-6);
        let mut t = 0.0;
        for s in &trace.segments {
            assert!((s.start_cycles - t).abs() < 1e-6, "gap before {s:?}");
            t += s.duration_cycles;
        }
        assert!(
            (trace.total_cycles - rep.cycles).abs() / rep.cycles < 0.5,
            "trace total {} should be near report cycles {}",
            trace.total_cycles,
            rep.cycles
        );
    }

    #[test]
    fn phase_counts_fingerprint_the_wave_structure() {
        let dev = a100_80g();
        let prof = sample_profile();
        let rep = estimate(&dev, &prof).unwrap();
        let trace = ExecutionTrace::from_launch(&dev, &prof, &rep);
        let pc = trace.phase_counts();
        assert_eq!(pc.waves, rep.waves.max(1));
        assert_eq!(pc.prologue, pc.waves);
        assert_eq!(pc.main_loop, pc.waves);
        assert_eq!(pc.epilogue, pc.waves);
        assert!(pc.matches(&pc));
        assert!(!pc.matches(&PhaseCounts {
            waves: pc.waves + 1,
            ..pc
        }));
        assert!(pc.to_string().contains("wave"));
    }

    #[test]
    fn main_loop_dominates_long_kernels() {
        let dev = a100_80g();
        let prof = sample_profile();
        let rep = estimate(&dev, &prof).unwrap();
        let trace = ExecutionTrace::from_launch(&dev, &prof, &rep);
        assert!(
            trace.main_loop_fraction > 0.7,
            "16-iteration kernel must be main-loop dominated: {}",
            trace.main_loop_fraction
        );
    }

    #[test]
    fn csv_has_header_and_rows() {
        let dev = a100_80g();
        let prof = sample_profile();
        let rep = estimate(&dev, &prof).unwrap();
        let trace = ExecutionTrace::from_launch(&dev, &prof, &rep);
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "wave,kind,start_cycles,duration_cycles");
        assert_eq!(lines.len(), 1 + trace.segments.len());
        assert!(lines[1].starts_with("0,Prologue"));
    }

    #[test]
    fn ascii_timeline_renders_one_line_per_wave() {
        let dev = a100_80g();
        let prof = sample_profile();
        let rep = estimate(&dev, &prof).unwrap();
        let trace = ExecutionTrace::from_launch(&dev, &prof, &rep);
        let art = trace.ascii_timeline(40);
        assert_eq!(art.lines().count(), rep.waves);
        assert!(art.contains('P') && art.contains('=') && art.contains('E'));
    }
}
