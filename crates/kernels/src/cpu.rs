//! Native CPU execution of the paper's V1→V3 optimization ladder.
//!
//! The simulated kernels in [`crate::nm`] model the CUDA ladder; this module
//! *runs* the same three optimization steps on the host, over the identical
//! offset-compressed [`NmSparseMatrix`] representation:
//!
//! * **V1 — hierarchical blocking** ([`NmVersion::V1`]): `mb×nb×kb` cache
//!   blocking around a register micro-kernel. `B′` is staged once into a
//!   block-contiguous layout (the CPU analogue of the paper's
//!   `transformLayout` + shared-memory `Bs` tile): each `(k-block,
//!   column-block)` pair becomes one dense `ub×nb` panel the inner loop
//!   streams sequentially. Full 16- (or 32-) float window chunks run
//!   through an explicitly vectorized register micro-tile
//!   ([`crate::simd::MicroKernel`] — AVX2/AVX-512/NEON selected once at
//!   preparation time, scalar fallback elsewhere) via a 4→2→1 row ladder,
//!   so skinny decode panels (1–3 rows, including `m = 1` SpMV) stay
//!   vectorized; ragged column windows take a general scalar path.
//! * **V2 — sparsity-aware packing** ([`NmVersion::V2`]): above the 70%
//!   sparsity threshold, each `(k-block, column-block)` pair additionally
//!   stages only the window-union columns of `A` into a dense panel through
//!   [`nm_core::colinfo::preprocess`] (`col_info`), and the inner loop
//!   indexes the packed panel with the reordered positions — paper §III-C1.
//!   Below the threshold the direct V1 data path is kept, exactly like the
//!   GPU kernel skips packing at moderate sparsity.
//! * **V3 — pipelined staging + parallelism** ([`NmVersion::V3`]): V2 with
//!   double-buffered panel packing (the next k-block's `A` panel is staged
//!   before the current one is consumed, mirroring the V3 pipeline of
//!   paper §III-C2) and rayon row-panel parallelism using the same
//!   row-chunking scheme as [`nm_core::parallel`].
//!
//! Tile sizes are not invented here: [`CpuTiling::derive`] maps a
//! [`Plan`](crate::plan::Plan)'s auto-tuned [`BlockingParams`] onto the CPU
//! (`mb = ms`, `nb = ns`, `mt = mt`), so the planner's blocking decision
//! drives both backends. A blocking that cannot drive the CPU tiles (e.g.
//! `ns` not a multiple of the vector length `L`, possible when the autotuner
//! fell back to the `Para_Init_Table` preset) is a structured
//! [`NmError::InvalidBlocking`], never a panic.

use nm_core::colinfo::{preprocess, PackedLayout};
use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_core::pattern::{NmConfig, SparsityClass};
use nm_core::sliced::{SlicedLayout, SlicedMatrix, StorageFormat};
use nm_core::sparse::NmSparseMatrix;
use rayon::prelude::*;

use crate::nm::NmVersion;
use crate::params::BlockingParams;
use crate::simd::{Isa, MicroKernel, MW, NW, NW2};

/// Cache-capacity target for one staged `B′` block (`ub × nb` floats): the
/// k-depth [`CpuTiling::derive`] picks keeps the block within this many
/// bytes so it survives in cache across the panel's row tiles.
const B_BLOCK_BYTES: usize = 64 * 1024;

/// Whether the CPU ladder's V2/V3 take the packed data path for `cfg` —
/// exactly the paper's §III-A rule: sparsity at or above
/// [`nm_core::pattern::SPARSITY_THRESHOLD`] (70%) packs, below it the
/// direct gather is cheaper than the staging it would save.
#[inline]
pub fn uses_packing(cfg: NmConfig) -> bool {
    cfg.class() == SparsityClass::High
}

/// CPU tile sizes for one problem, derived from a plan's auto-tuned
/// blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuTiling {
    /// Rows of `C` per panel (the unit of V3 parallelism); from `ms`.
    pub mb: usize,
    /// Columns of `C` per block, a multiple of `L`; from `ns`.
    pub nb: usize,
    /// Dense k-depth per block, a multiple of `M`; sized to keep one
    /// staged `B′` block within the cache-capacity budget
    /// (`B_BLOCK_BYTES`).
    pub kb: usize,
    /// Rows per general-path register tile (the fast path uses the 4→2→1
    /// row ladder of vectorized micro-tiles); from `mt`.
    pub mt: usize,
}

impl CpuTiling {
    /// Map auto-tuned GPU blocking onto CPU tiles for a `k`-deep problem.
    ///
    /// Fails with [`NmError::InvalidBlocking`] when the blocking cannot
    /// drive the CPU tiles (zero tile sizes, or `ns` not a multiple of the
    /// vector length `L` — the window-alignment the packed path requires).
    pub fn derive(params: BlockingParams, cfg: NmConfig, k: usize) -> Result<Self> {
        if params.ms == 0 || params.ns == 0 || params.mt == 0 {
            return Err(NmError::InvalidBlocking {
                reason: format!(
                    "CPU tiles need positive ms/ns/mt (got {}x{}, mt={})",
                    params.ms, params.ns, params.mt
                ),
            });
        }
        if !params.ns.is_multiple_of(cfg.l) {
            return Err(NmError::InvalidBlocking {
                reason: format!(
                    "ns={} cannot drive the CPU column block: \
                     not a multiple of the vector length L={}",
                    params.ns, cfg.l
                ),
            });
        }
        let k_pad = k.max(1).div_ceil(cfg.m) * cfg.m;
        // Compressed rows that fit the B-block budget, at least one window.
        let ub = (B_BLOCK_BYTES / 4 / params.ns).max(cfg.n);
        let windows = (ub / cfg.n).max(1);
        let kb = (windows * cfg.m).min(k_pad);
        Ok(Self {
            mb: params.ms,
            nb: params.ns,
            kb,
            mt: params.mt,
        })
    }

    /// Tiling from the `Para_Init_Table` preset for callers without a plan.
    pub fn auto(cfg: NmConfig, m: usize, n: usize, k: usize) -> Result<Self> {
        let mut params = BlockingParams::para_init_table(m, n);
        // The preset's ns may not be window-aligned for exotic L; widen to
        // the least common multiple so `derive` cannot reject it.
        if !params.ns.is_multiple_of(cfg.l) {
            params.ns = lcm(params.ns, cfg.l);
        }
        Self::derive(params, cfg, k)
    }
}

thread_local! {
    /// See [`offline_staging_passes`].
    static STAGING_PASSES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Staging-cost probe: how many offline preparations ([`CpuPrepared`]
/// constructions — `B′` block staging plus any `col_info` packing) the
/// **current thread** has run since it started.
///
/// This exists so callers can *prove* the prepare-once contract rather
/// than trust it: read the counter, call
/// [`forward`](crate::session::PreparedLayer::forward) as often as you
/// like, read it again — an unchanged count demonstrates that no hidden
/// re-staging happened on the calling thread. The counter is thread-local
/// (preparation always runs on the caller's thread) so concurrent tests
/// cannot disturb each other's readings; the increment is one
/// thread-local add per preparation, noise next to the staging itself.
pub fn offline_staging_passes() -> u64 {
    STAGING_PASSES.with(|c| c.get())
}

fn lcm(a: usize, b: usize) -> usize {
    fn gcd(mut a: usize, mut b: usize) -> usize {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    a / gcd(a, b) * b
}

/// The offline pre-processing product for one `(B′, tiling, version)`
/// combination: validated tile geometry, the block-contiguous `B′` staging
/// (`transformLayout`), and — for V2/V3 at high sparsity — the `col_info`
/// packed layout.
///
/// Everything in here depends only on the *weights* (`sb`) and the tiling,
/// never on the activations `A`, so it is built once and amortized across
/// executions — exactly the paper's offline step.
/// [`CpuBackend`](crate::backend::CpuBackend) prepares outside its
/// wall-clock window so measured times cover the online kernel only; the
/// per-`A` panel packing stays inside the timed loop because it genuinely
/// is online work.
pub struct CpuPrepared {
    version: NmVersion,
    tiling: CpuTiling,
    /// The micro-kernel selected for this preparation — runtime ISA
    /// detection happens exactly once, here, never inside the hot loop.
    kernel: MicroKernel,
    /// Shape/config fingerprint of the operand this was prepared for.
    /// `(cfg, w, n, k)` catches shape and sparsity-pattern-class mixups;
    /// `content_fp` additionally samples the values and indices so a
    /// *different* matrix with identical shape and config is rejected
    /// too, instead of silently gathering against the wrong staging.
    cfg: NmConfig,
    w: usize,
    n: usize,
    k: usize,
    content_fp: u64,
    staged: StagedFormat,
    packed: Option<PackedLayout>,
}

/// Which staging a preparation carries — the kernel-side face of
/// [`StorageFormat`]. The row-major arm is the existing
/// `transformLayout` product, untouched; the sliced arm gathers through
/// pre-resolved absolute indices and needs neither the per-call index
/// reconstruction nor the packed `A` staging.
enum StagedFormat {
    /// Block-contiguous `B′` panels (the paper's layout).
    RowMajor(StagedB),
    /// SELL-C-σ slice panels with absolute gather indices.
    Sliced(StagedSliced),
}

/// FNV-1a over a bounded strided sample of `B′` values and `D` indices —
/// ≤128 probes however large the matrix, so verifying it per call is
/// noise next to the multiply, yet a same-shape-same-config *different*
/// matrix collides only if the sampled entries all agree bit for bit.
fn content_fingerprint(sb: &NmSparseMatrix) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    let values = sb.values();
    let d = sb.indices();
    let (w, n, q) = (sb.w(), sb.cols(), sb.q());
    if w == 0 || n == 0 {
        return h;
    }
    let samples = 64usize;
    for s in 0..samples {
        // Deterministic stride over the (w × n) value grid.
        let u = s * w / samples;
        let j = (s * 31) % n;
        mix(values.row(u)[j].to_bits() as u64);
        if q > 0 {
            mix(d.get(u, (s * 7) % q) as u64);
        }
    }
    h
}

impl CpuPrepared {
    /// Validate `tiling` against `sb` and run the offline staging, with
    /// the micro-kernel chosen by [`MicroKernel::select`] (widest ISA the
    /// host supports, honoring the `NM_SPMM_ISA` / `NM_SPMM_FORCE_SCALAR`
    /// environment overrides).
    ///
    /// # Errors
    /// [`NmError::InvalidBlocking`] when the tiling is not window-aligned
    /// for `sb`'s configuration, and [`NmError::Unsupported`] when an
    /// environment override requests an ISA this host cannot execute.
    pub fn new(version: NmVersion, sb: &NmSparseMatrix, tiling: CpuTiling) -> Result<Self> {
        Self::with_kernel(version, sb, tiling, MicroKernel::select()?)
    }

    /// As [`CpuPrepared::new`] but staging `sb` in an explicit
    /// [`StorageFormat`] — the planner/autotuner entry point for the
    /// sliced layout.
    ///
    /// # Errors
    /// As [`CpuPrepared::new`], plus [`NmError::InvalidConfig`] for an
    /// invalid sliced parameterization.
    pub fn new_with_format(
        version: NmVersion,
        sb: &NmSparseMatrix,
        tiling: CpuTiling,
        format: StorageFormat,
    ) -> Result<Self> {
        Self::with_format(version, sb, tiling, MicroKernel::select()?, format)
    }

    /// As [`CpuPrepared::new`] but with an explicit micro-kernel — the
    /// hook the parity suites use to A/B every compiled ISA on one host.
    ///
    /// # Errors
    /// [`NmError::InvalidBlocking`] when the tiling is not window-aligned
    /// for `sb`'s configuration.
    pub fn with_kernel(
        version: NmVersion,
        sb: &NmSparseMatrix,
        tiling: CpuTiling,
        kernel: MicroKernel,
    ) -> Result<Self> {
        Self::with_format(version, sb, tiling, kernel, StorageFormat::RowMajor)
    }

    /// The fully explicit constructor: micro-kernel *and* storage format.
    /// Row-major runs the existing `transformLayout` staging (plus the
    /// `col_info` packing where the version and sparsity call for it); a
    /// sliced format builds the SELL-C-σ panels instead and replicates the
    /// row-major block classification per window, so both stagings execute
    /// the same arithmetic in the same order — bit-identical results.
    ///
    /// # Errors
    /// [`NmError::InvalidBlocking`] when the tiling is not window-aligned
    /// for `sb`'s configuration; [`NmError::InvalidConfig`] for an invalid
    /// sliced parameterization.
    pub fn with_format(
        version: NmVersion,
        sb: &NmSparseMatrix,
        tiling: CpuTiling,
        kernel: MicroKernel,
        format: StorageFormat,
    ) -> Result<Self> {
        let cfg = sb.cfg();
        if tiling.mb == 0 || tiling.mt == 0 {
            return Err(NmError::InvalidBlocking {
                reason: format!("mb={} and mt={} must be positive", tiling.mb, tiling.mt),
            });
        }
        if tiling.nb == 0 || !tiling.nb.is_multiple_of(cfg.l) {
            return Err(NmError::InvalidBlocking {
                reason: format!(
                    "nb={} must be a positive multiple of L={}",
                    tiling.nb, cfg.l
                ),
            });
        }
        if tiling.kb == 0 || !tiling.kb.is_multiple_of(cfg.m) {
            return Err(NmError::InvalidBlocking {
                reason: format!(
                    "kb={} must be a positive multiple of M={}",
                    tiling.kb, cfg.m
                ),
            });
        }
        STAGING_PASSES.with(|c| c.set(c.get() + 1));
        let (k, n) = (sb.k(), sb.cols());
        // Effective block geometry, clamped to the (padded) problem so
        // neither the staging nor `preprocess` builds blocks larger than
        // the matrix.
        let kb = tiling.kb.min(k.max(1).div_ceil(cfg.m) * cfg.m);
        let nb = tiling.nb.min(n.max(1).div_ceil(cfg.l) * cfg.l);
        let tiling = CpuTiling { kb, nb, ..tiling };

        // Stage B′ once, in the requested format. The sliced staging
        // gathers through absolute indices, so it needs no packed layout —
        // it replicates the packed path's zero-padded loads directly.
        let (staged, packed) = match format {
            StorageFormat::RowMajor => {
                // transformLayout: stage B′ into block-contiguous panels.
                let staged = StagedB::build(sb, nb, kb);
                // Offline col_info pre-processing for the packed (V2/V3,
                // high-sparsity) data path.
                let packed = match version {
                    NmVersion::V1 => None,
                    NmVersion::V2 | NmVersion::V3 => {
                        if uses_packing(cfg) {
                            Some(preprocess(sb, kb, nb)?)
                        } else {
                            None
                        }
                    }
                };
                (StagedFormat::RowMajor(staged), packed)
            }
            StorageFormat::Sliced(layout) => {
                let twin_packed = version != NmVersion::V1 && uses_packing(cfg);
                let staged = StagedSliced::build(sb, nb, kb, twin_packed, layout)?;
                (StagedFormat::Sliced(staged), None)
            }
        };
        Ok(Self {
            version,
            tiling,
            kernel,
            cfg,
            w: sb.w(),
            n,
            k,
            content_fp: content_fingerprint(sb),
            staged,
            packed,
        })
    }

    /// The ladder step this preparation serves.
    pub fn version(&self) -> NmVersion {
        self.version
    }

    /// The effective (clamped) tile geometry.
    pub fn tiling(&self) -> CpuTiling {
        self.tiling
    }

    /// The instruction set the selected micro-kernel executes — what
    /// [`ExecRun`](crate::backend::ExecRun) and `BENCH_pr.json` record.
    pub fn isa(&self) -> Isa {
        self.kernel.isa()
    }

    /// The selected micro-kernel.
    pub fn kernel(&self) -> MicroKernel {
        self.kernel
    }

    /// The storage format this preparation staged `B′` in.
    pub fn format(&self) -> StorageFormat {
        match &self.staged {
            StagedFormat::RowMajor(_) => StorageFormat::RowMajor,
            StagedFormat::Sliced(ss) => StorageFormat::Sliced(ss.sm.layout()),
        }
    }

    /// Whether this preparation carries the `col_info` packed layout
    /// (V2/V3 at high sparsity, row-major staging only).
    pub(crate) fn is_packed(&self) -> bool {
        self.packed.is_some()
    }

    /// The row-major staging's block geometry `(nb, ub, jblocks,
    /// kblocks)`, or `None` for a sliced preparation. The codegen
    /// backend lowers its kernel grid from exactly these numbers so the
    /// generated shader walks the same blocks the CPU kernel does.
    pub(crate) fn rowmajor_geometry(&self) -> Option<(usize, usize, usize, usize)> {
        match &self.staged {
            StagedFormat::RowMajor(s) => Some((s.nb, s.ub, s.jblocks, s.kblocks)),
            StagedFormat::Sliced(_) => None,
        }
    }

    /// The sliced staging's parts `(matrix, fast flags, ub, kblocks)`,
    /// or `None` for a row-major preparation. The fast flags are the
    /// op-flavor map, `fast[pos * kblocks + bk]` over permuted window
    /// positions — the codegen backend re-uses them verbatim as its
    /// per-span selector table.
    pub(crate) fn sliced_parts(&self) -> Option<(&SlicedMatrix, &[bool], usize, usize)> {
        match &self.staged {
            StagedFormat::RowMajor(_) => None,
            StagedFormat::Sliced(ss) => Some((&ss.sm, &ss.fast, ss.ub, ss.kblocks)),
        }
    }

    /// Reject an operand this preparation was not staged from: shape or
    /// config disagreement, or a *different* matrix with identical shape
    /// and config (bounded content-fingerprint sample). Shared by every
    /// execution path that accepts `(operand, preparation)` pairs.
    pub(crate) fn validate_operand(&self, sb: &NmSparseMatrix) -> Result<()> {
        if (self.cfg, self.w, self.n, self.k) != (sb.cfg(), sb.w(), sb.cols(), sb.k()) {
            return Err(NmError::DimensionMismatch {
                expected: format!(
                    "the {}x{} {} operand prepared for",
                    self.k, self.n, self.cfg
                ),
                found: format!("B′ for a {}x{} {} matrix", sb.k(), sb.cols(), sb.cfg()),
            });
        }
        if self.content_fp != content_fingerprint(sb) {
            return Err(NmError::DimensionMismatch {
                expected: "the same B′ this preparation was staged from".into(),
                found: "a different matrix with identical shape and config \
                        (content fingerprint mismatch)"
                    .into(),
            });
        }
        Ok(())
    }
}

/// Execute `C = A ⊛ (B′, D)` natively on the CPU at the given ladder step.
///
/// All three versions produce the same matrix (they differ only in data
/// movement); each matches [`nm_core::spmm::spmm_reference`] up to
/// reduction order. This convenience wrapper runs the offline step
/// ([`CpuPrepared::new`]) and the online kernel back to back; callers that
/// execute the same `B′` repeatedly (or that time the kernel) should
/// prepare once and call [`spmm_cpu_prepared`].
///
/// # Errors
/// [`NmError::DimensionMismatch`] when `a.cols() != sb.k()`,
/// [`NmError::InvalidBlocking`] when `tiling` is not window-aligned for
/// `sb`'s configuration, and [`NmError::Unsupported`] when an environment
/// override requests an ISA this host cannot execute.
pub fn spmm_cpu(
    version: NmVersion,
    a: &MatrixF32,
    sb: &NmSparseMatrix,
    tiling: CpuTiling,
) -> Result<MatrixF32> {
    let prep = CpuPrepared::new(version, sb, tiling)?;
    spmm_cpu_prepared(a, sb, &prep)
}

/// The online kernel: execute against a pre-built [`CpuPrepared`]
/// (amortizing the offline staging across calls, as inference serving
/// would).
///
/// # Errors
/// [`NmError::DimensionMismatch`] when `a.cols() != sb.k()`, when `sb`'s
/// shape/config disagrees with what `prep` was prepared from, or when a
/// *different* matrix with identical shape and config is substituted (a
/// bounded content-fingerprint sample catches the swap instead of letting
/// the kernel gather against the wrong staging).
pub fn spmm_cpu_prepared(
    a: &MatrixF32,
    sb: &NmSparseMatrix,
    prep: &CpuPrepared,
) -> Result<MatrixF32> {
    let (m, k) = a.shape();
    if k != sb.k() {
        return Err(NmError::DimensionMismatch {
            expected: format!("A with k = {}", sb.k()),
            found: format!("A is {m} x {k}"),
        });
    }
    prep.validate_operand(sb)?;

    let n = sb.cols();
    let mut c = MatrixF32::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return Ok(c);
    }
    let tiling = prep.tiling;
    let double_buffer = prep.version == NmVersion::V3;
    let mk = prep.kernel;

    match &prep.staged {
        StagedFormat::RowMajor(staged) => match prep.version {
            // V3: rayon row panels (each owns its scratch and staging
            // buffers).
            NmVersion::V3 => {
                c.as_mut_slice()
                    .par_chunks_mut(tiling.mb * n)
                    .enumerate()
                    .for_each(|(panel, c_panel)| {
                        run_panel(
                            a,
                            sb,
                            &tiling,
                            staged,
                            prep.packed.as_ref(),
                            mk,
                            double_buffer,
                            panel * tiling.mb,
                            c_panel,
                        );
                    });
            }
            // V1/V2: sequential panels (the ladder adds parallelism only
            // at V3).
            _ => {
                for (panel, c_panel) in c.as_mut_slice().chunks_mut(tiling.mb * n).enumerate() {
                    run_panel(
                        a,
                        sb,
                        &tiling,
                        staged,
                        prep.packed.as_ref(),
                        mk,
                        false,
                        panel * tiling.mb,
                        c_panel,
                    );
                }
            }
        },
        StagedFormat::Sliced(ss) => {
            let a_data = a.as_slice();
            // When gather indices can legitimately reach the padded tail
            // of the final window (k not a multiple of M), gather from a
            // zero-padded copy of A — the same 0.0 the packed path loads
            // from its zero-filled panels, so results stay bit-identical.
            let padded: Option<Vec<f32>> = if ss.k_pad > k {
                let mut p = vec![0f32; m * ss.k_pad];
                for (dst, src) in p.chunks_mut(ss.k_pad).zip(a_data.chunks(k)) {
                    dst[..k].copy_from_slice(src);
                }
                Some(p)
            } else {
                None
            };
            let (xa, xk) = match &padded {
                Some(p) => (p.as_slice(), ss.k_pad),
                None => (a_data, k),
            };
            let l = prep.cfg.l;
            match prep.version {
                // V3: output rows are bit-independent, so the sliced path
                // parallelizes per row (the decode band rarely has more
                // than a handful).
                NmVersion::V3 => {
                    c.as_mut_slice()
                        .par_chunks_mut(n)
                        .enumerate()
                        .for_each(|(i, y)| {
                            let mut acc = vec![0f32; l];
                            run_sliced_row(&xa[i * xk..(i + 1) * xk], ss, mk, l, &mut acc, y);
                        });
                }
                _ => {
                    let mut acc = vec![0f32; l];
                    for (i, y) in c.as_mut_slice().chunks_mut(n).enumerate() {
                        run_sliced_row(&xa[i * xk..(i + 1) * xk], ss, mk, l, &mut acc, y);
                    }
                }
            }
        }
    }
    Ok(c)
}

/// Prepared sparse matrix–vector product: `y = x ⊛ B′` through the same
/// [`CpuPrepared`] staging the matrix path uses — the decode (`m = 1`)
/// entry point of the ladder. The vector is viewed as a `1 × k` operand
/// and runs the 1-row rung of the fast-path ladder; no extra staging or
/// copies beyond the `1 × k` view are made, so a preparation built for
/// prefill serves decode for free.
///
/// # Errors
/// [`NmError::DimensionMismatch`] when `x.len() != sb.k()` or when `sb`
/// disagrees with what `prep` was prepared from (shape, config, or
/// content fingerprint) — the same contract as [`spmm_cpu_prepared`].
pub fn spmv_cpu_prepared(x: &[f32], sb: &NmSparseMatrix, prep: &CpuPrepared) -> Result<Vec<f32>> {
    if x.len() != sb.k() {
        return Err(NmError::DimensionMismatch {
            expected: format!("x of length k = {}", sb.k()),
            found: format!("x of length {}", x.len()),
        });
    }
    let a = MatrixF32::from_vec(1, x.len(), x.to_vec());
    spmm_cpu_prepared(&a, sb, prep).map(MatrixF32::into_vec)
}

/// `B′` re-laid out block-contiguously: one dense `ub_act × nbw` row-major
/// panel per `(column-block, k-block)` pair — the paper's `transformLayout`
/// plus the shared-memory `Bs` tile, materialized once per call and shared
/// read-only by every row panel.
struct StagedB {
    data: Vec<f32>,
    offs: Vec<usize>,
    /// Column-block width (multiple of `L`).
    nb: usize,
    /// Compressed rows per k-block.
    ub: usize,
    jblocks: usize,
    kblocks: usize,
}

impl StagedB {
    fn build(sb: &NmSparseMatrix, nb: usize, kb: usize) -> Self {
        let cfg = sb.cfg();
        let (w, n) = (sb.w(), sb.cols());
        let ub = kb * cfg.n / cfg.m;
        let jblocks = n.div_ceil(nb);
        let kblocks = w.div_ceil(ub);
        let values = sb.values();
        let mut data = Vec::with_capacity(w * n);
        let mut offs = Vec::with_capacity(jblocks * kblocks + 1);
        for jbi in 0..jblocks {
            let jb = jbi * nb;
            let jb_hi = (jb + nb).min(n);
            for bk in 0..kblocks {
                offs.push(data.len());
                let u_lo = bk * ub;
                let u_hi = ((bk + 1) * ub).min(w);
                for u in u_lo..u_hi {
                    data.extend_from_slice(&values.row(u)[jb..jb_hi]);
                }
            }
        }
        offs.push(data.len());
        Self {
            data,
            offs,
            nb,
            ub,
            jblocks,
            kblocks,
        }
    }

    /// The contiguous panel for `(column-block jbi, bk)`.
    #[inline]
    fn block(&self, jbi: usize, bk: usize) -> &[f32] {
        let i = jbi * self.kblocks + bk;
        &self.data[self.offs[i]..self.offs[i + 1]]
    }
}

/// The SELL-C-σ staging: the built [`SlicedMatrix`] plus the *op-flavor
/// map* that makes the sliced path bit-identical to the row-major one.
///
/// Every `(window, k-block)` pair is classified exactly as the row-major
/// twin staging would classify the block containing it — vectorized
/// micro-tile versus general mul-add-with-zero-skip — because the two
/// flavors round differently (FMA versus separate multiply/add) and the
/// general path skips zero operands. Replicating the classification at
/// staging time, from the same clamped tile geometry, means the sliced
/// kernel performs the same floating-point operations on the same values
/// in the same per-element order.
struct StagedSliced {
    sm: SlicedMatrix,
    /// Compressed rows per k-block (same formula as the row-major twin).
    ub: usize,
    kblocks: usize,
    /// `k` rounded up to the window depth `M`; gather indices may
    /// legitimately reach `[k, k_pad)` in the padded final window.
    k_pad: usize,
    /// Fast flag per `(permuted window position, k-block)`,
    /// `fast[pos * kblocks + bk]`.
    fast: Vec<bool>,
}

impl StagedSliced {
    /// Build the sliced staging for the clamped block geometry
    /// `(nb, kb)`. `twin_packed` says whether the row-major twin of this
    /// preparation would take the packed data path (V2/V3 at high
    /// sparsity) — packed blocks are unconditionally in bounds, which
    /// widens the twin's fast classification.
    fn build(
        sb: &NmSparseMatrix,
        nb: usize,
        kb: usize,
        twin_packed: bool,
        layout: SlicedLayout,
    ) -> Result<Self> {
        let cfg = sb.cfg();
        let (w, n, q, k) = (sb.w(), sb.cols(), sb.q(), sb.k());
        let sm = SlicedMatrix::build(sb, layout)?;
        let ub = kb * cfg.n / cfg.m;
        let jblocks = n.div_ceil(nb);
        let kblocks = w.div_ceil(ub);
        let d = sb.indices();

        // Replicate the row-major twin's per-block fast classification
        // (see `run_panel`): 16-divisible windows, no partial window in
        // the column block, and in-bounds gathers (always true for the
        // packed source; per-index for the direct one).
        let mut fast_old = vec![false; q * kblocks];
        if cfg.l.is_multiple_of(NW) {
            for jbi in 0..jblocks {
                let jb = jbi * nb;
                let jb_hi = (jb + nb).min(n);
                if !(jb_hi - jb).is_multiple_of(cfg.l) {
                    continue;
                }
                let j_lo = jb / cfg.l;
                let j_hi = jb_hi.div_ceil(cfg.l).min(q);
                for bk in 0..kblocks {
                    let u_lo = bk * ub;
                    let u_hi = ((bk + 1) * ub).min(w);
                    let in_bounds = twin_packed
                        || (bk + 1) * kb <= k
                        || (j_lo..j_hi).all(|j| {
                            (u_lo..u_hi).all(|u| u / cfg.n * cfg.m + (d.get(u, j) as usize) < k)
                        });
                    if in_bounds {
                        for j in j_lo..j_hi {
                            fast_old[j * kblocks + bk] = true;
                        }
                    }
                }
            }
        }
        // Re-index the flags to permuted window positions.
        let fast = (0..q)
            .flat_map(|pos| {
                let old = sm.perm().perm[pos];
                fast_old[old * kblocks..(old + 1) * kblocks].to_vec()
            })
            .collect();
        Ok(Self {
            sm,
            ub,
            kblocks,
            k_pad: k.div_ceil(cfg.m) * cfg.m,
            fast,
        })
    }
}

/// One output row through the sliced staging: `y += x ⊛ slices`.
///
/// `x` must already be zero-padded to `k_pad` when the padded final
/// window is reachable (the caller handles this once per call). Fast
/// windows run the same register micro-tiles as the row-major path over
/// the pre-resolved absolute indices — no per-call index reconstruction,
/// no `A` panel packing; general windows replicate the row-major general
/// path's zeroed accumulator and zero-operand skip. Write-back lands at
/// each window's original column span, so the permutation never escapes.
fn run_sliced_row(
    x: &[f32],
    ss: &StagedSliced,
    mk: MicroKernel,
    l: usize,
    acc_scratch: &mut [f32],
    y: &mut [f32],
) {
    let sm = &ss.sm;
    let w = sm.w();
    let wide = l.is_multiple_of(NW2);
    let ar = [x];
    for s in 0..sm.slices() {
        let width = sm.width(s);
        let vals = sm.value_panel(s);
        for bk in 0..ss.kblocks {
            let u_lo = bk * ss.ub;
            let u_hi = ((bk + 1) * ss.ub).min(w);
            let panel = &vals[u_lo * width..u_hi * width];
            let mut col_off = 0usize;
            for (wi, pos) in sm.slice_windows(s).enumerate() {
                let (col, lw) = sm.span(pos);
                let idx = sm.gather_span(s, wi, u_lo, u_hi);
                if ss.fast[pos * ss.kblocks + bk] {
                    #[cfg(test)]
                    instrument::SLICED_FAST.with(|c| c.set(c.get() + 1));
                    if wide {
                        for off in (0..l).step_by(NW2) {
                            let acc = mk.tile32(&ar, idx, panel, width, col_off + off);
                            for (out, add) in y[col + off..col + off + NW2].iter_mut().zip(&acc[0])
                            {
                                *out += add;
                            }
                        }
                    } else {
                        for off in (0..l).step_by(NW) {
                            let acc = mk.tile16(&ar, idx, panel, width, col_off + off);
                            for (out, add) in y[col + off..col + off + NW].iter_mut().zip(&acc[0]) {
                                *out += add;
                            }
                        }
                    }
                } else {
                    let acc = &mut acc_scratch[..lw];
                    acc.fill(0.0);
                    for (ui, &si) in idx.iter().enumerate() {
                        let alpha = x[si as usize];
                        if alpha != 0.0 {
                            let at = ui * width + col_off;
                            for (out, bv) in acc.iter_mut().zip(&panel[at..at + lw]) {
                                *out += alpha * bv;
                            }
                        }
                    }
                    for (out, add) in y[col..col + lw].iter_mut().zip(&acc[..]) {
                        *out += add;
                    }
                }
                col_off += lw;
            }
        }
    }
}

/// Where the micro-kernel gathers its `A` operands from.
enum RowSource<'a> {
    /// V1 / moderate sparsity: straight out of the dense `A` rows.
    Direct {
        a: &'a [f32],
        k: usize,
        i0: usize,
        /// `k` rounded up to the window depth `M`: the exclusive bound a
        /// gather index may legitimately reach in the padded final window.
        k_pad: usize,
    },
    /// V2/V3 high sparsity: out of the packed per-block `A` panel.
    Packed { buf: &'a [f32], stride: usize },
}

impl RowSource<'_> {
    /// The gather slice for panel row `r`.
    #[inline(always)]
    fn row(&self, r: usize) -> &[f32] {
        match self {
            RowSource::Direct { a, k, i0, .. } => &a[(i0 + r) * k..(i0 + r + 1) * k],
            RowSource::Packed { buf, stride } => &buf[r * stride..(r + 1) * stride],
        }
    }

    /// One gathered `A` operand for panel row `r`, index `s` — the general
    /// path's bounds-aware load.
    ///
    /// Zero-fill is reserved for the one *legitimate* out-of-bounds case:
    /// a direct-source index into the padded tail of the final window
    /// (`k ≤ s < k_pad`, which exists only when `k` is not a multiple of
    /// `M`). Any other out-of-range index is a corrupted index
    /// construction; silently zero-filling it would turn an indexing bug
    /// into a numerically-plausible wrong answer, so debug builds assert
    /// instead (release builds still zero-fill rather than fault).
    #[inline(always)]
    fn gather(&self, r: usize, s: usize) -> f32 {
        match self {
            RowSource::Direct { a, k, i0, k_pad } => {
                if s < *k {
                    a[(i0 + r) * k + s]
                } else {
                    debug_assert!(
                        s < *k_pad,
                        "corrupted gather index {s}: dense depth k={k}, \
                         padded window bound {k_pad}"
                    );
                    0.0
                }
            }
            RowSource::Packed { buf, stride } => {
                if s < *stride {
                    buf[r * stride + s]
                } else {
                    debug_assert!(
                        false,
                        "corrupted packed gather index {s}: panel stride {stride} \
                         (packed indices are in-bounds by construction)"
                    );
                    0.0
                }
            }
        }
    }
}

/// Whether every gather index of a direct-source block stays inside the
/// dense depth `k` — the fast path's actual requirement. The coarse
/// `(bk + 1) · kb ≤ k` test this replaces disqualified the *entire* final
/// partial k-block even when all of its indices are in bounds.
#[inline]
fn direct_gathers_in_bounds(idx: &[u32], k: usize) -> bool {
    idx.iter().all(|&s| (s as usize) < k)
}

/// Test-only counters proving which data path a run took. Thread-local so
/// concurrently running tests cannot disturb each other's counts; V1/V2
/// execute on the calling thread, so their blocks are all visible here
/// (V3's rayon panels are not — use V1 when asserting on the counter).
#[cfg(test)]
pub(crate) mod instrument {
    use std::cell::Cell;

    thread_local! {
        /// Blocks computed through the vectorized fast path.
        pub static FAST_BLOCKS: Cell<usize> = const { Cell::new(0) };
        /// Skinny (1- or 2-row) rungs of the fast-path row ladder — the
        /// decode tiles. Zero before the ladder existed: rows < 4 fell
        /// through to the general scalar path.
        pub static SKINNY_RUNGS: Cell<usize> = const { Cell::new(0) };
        /// `(window, k-block)` pairs the sliced path ran through the
        /// vectorized micro-tiles — proof the sliced fast flavor was
        /// actually exercised, not silently demoted to the general path.
        pub static SLICED_FAST: Cell<usize> = const { Cell::new(0) };
    }
}

/// Per-panel scratch reused across blocks.
struct Scratch {
    /// Gather indices, `(j - j_lo) * ub_act + ui` layout.
    idx: Vec<u32>,
    /// General-path accumulator tile (`mt × nb`).
    acc: Vec<f32>,
    /// General-path per-row `A` values.
    av: Vec<f32>,
}

/// Compute one row panel (`rows = c_panel.len() / n` rows starting at `i0`).
#[allow(clippy::too_many_arguments)]
fn run_panel(
    a: &MatrixF32,
    sb: &NmSparseMatrix,
    t: &CpuTiling,
    staged: &StagedB,
    packed: Option<&PackedLayout>,
    mk: MicroKernel,
    double_buffer: bool,
    i0: usize,
    c_panel: &mut [f32],
) {
    let (_, k) = a.shape();
    let cfg = sb.cfg();
    let n = sb.cols();
    let (w, q) = (sb.w(), sb.q());
    let d = sb.indices();
    let a_data = a.as_slice();
    let rows = c_panel.len() / n;
    let (nb, ub) = (staged.nb, staged.ub);
    let kb = ub * cfg.m / cfg.n;
    let qs = nb / cfg.l;

    let mut scratch = Scratch {
        idx: vec![0u32; ub * qs],
        acc: vec![0f32; t.mt.max(MW) * nb],
        av: vec![0f32; t.mt.max(MW)],
    };
    // A-staging buffers for the packed path: `rows × kb`, alternating under
    // double buffering (the V3 pipeline), single otherwise.
    let mut bufs = match packed {
        Some(_) => [vec![0f32; rows * kb], vec![0f32; rows * kb]],
        None => [Vec::new(), Vec::new()],
    };

    let pack = |buf: &mut [f32], layout: &PackedLayout, bk: usize, bj: usize| {
        let ci = &layout.col_info;
        let cols = ci.block(bk, bj);
        let kbase = bk * ci.ks;
        for (r, chunk) in buf.chunks_mut(ci.ks).take(rows).enumerate() {
            let a_row = &a_data[(i0 + r) * k..(i0 + r + 1) * k];
            for (slot, &col) in chunk[..cols.len()].iter_mut().zip(cols) {
                let src = kbase + col as usize;
                *slot = if src < k { a_row[src] } else { 0.0 };
            }
        }
    };

    for jbi in 0..staged.jblocks {
        let jb = jbi * nb;
        let jb_hi = (jb + nb).min(n);
        let j_lo = jb / cfg.l;
        let j_hi = jb_hi.div_ceil(cfg.l).min(q);

        if let Some(layout) = packed {
            pack(&mut bufs[0], layout, 0, jbi);
        }
        for bk in 0..staged.kblocks {
            let u_lo = bk * ub;
            let u_hi = ((bk + 1) * ub).min(w);
            let ub_act = u_hi - u_lo;
            let bs = staged.block(jbi, bk);

            let source = match packed {
                Some(layout) => {
                    if double_buffer {
                        if bk + 1 < staged.kblocks {
                            // Stage the next k-block's panel before
                            // consuming the current one — V3's
                            // load/compute overlap.
                            pack(&mut bufs[(bk + 1) % 2], layout, bk + 1, jbi);
                        }
                    } else if bk > 0 {
                        // V2: single staging buffer, refilled per k-block.
                        pack(&mut bufs[0], layout, bk, jbi);
                    }
                    // Reordered indices: positions into the packed panel.
                    for j in j_lo..j_hi {
                        for (ui, u) in (u_lo..u_hi).enumerate() {
                            scratch.idx[(j - j_lo) * ub_act + ui] =
                                layout.packed_index(u, j) as u32;
                        }
                    }
                    RowSource::Packed {
                        buf: &bufs[if double_buffer { bk % 2 } else { 0 }],
                        stride: kb,
                    }
                }
                None => {
                    // Direct gather: global dense source columns.
                    for j in j_lo..j_hi {
                        for (ui, u) in (u_lo..u_hi).enumerate() {
                            let base = u / cfg.n * cfg.m;
                            scratch.idx[(j - j_lo) * ub_act + ui] =
                                (base + d.get(u, j) as usize) as u32;
                        }
                    }
                    RowSource::Direct {
                        a: a_data,
                        k,
                        i0,
                        k_pad: k.div_ceil(cfg.m) * cfg.m,
                    }
                }
            };

            // The vectorized micro-tile needs: 16-divisible windows, no
            // partial window in this column block, and (for the direct
            // source) all gathers in bounds. The packed source is always
            // in bounds; for the direct source, a k-block fully inside the
            // dense depth trivially qualifies, and the final partial block
            // qualifies whenever its actual per-block indices do — only a
            // genuinely padded tail (k not a multiple of M) falls back.
            let windows_full = (jb_hi - jb).is_multiple_of(cfg.l);
            let used_idx = &scratch.idx[..(j_hi - j_lo) * ub_act];
            let in_bounds = matches!(source, RowSource::Packed { .. })
                || (bk + 1) * kb <= k
                || direct_gathers_in_bounds(used_idx, k);
            let fast = cfg.l.is_multiple_of(NW) && windows_full && in_bounds;

            compute_block(
                &source,
                mk,
                &scratch.idx,
                ub_act,
                bs,
                cfg.l,
                n,
                jb,
                jb_hi,
                j_lo,
                j_hi,
                rows,
                t.mt,
                fast,
                c_panel,
                &mut scratch.acc,
                &mut scratch.av,
            );
        }
    }
}

/// One `(column-block, k-block)` contribution to the panel's `C` rows.
/// When `fast`, every row goes through the vectorized register
/// micro-kernel via a 4→2→1 row ladder — full 4-row tiles, then a 2-row
/// and a 1-row skinny tile for the remainder, so decode panels (`rows <
/// 4`) and prefill tail rows are vectorized too, never demoted to the
/// scalar path. The dual-accumulator 32-wide tiles are used when `L`
/// allows it. Non-fast blocks (ragged windows, odd `L`, out-of-bounds
/// gathers) take the general scalar path.
#[allow(clippy::too_many_arguments)]
fn compute_block(
    source: &RowSource<'_>,
    mk: MicroKernel,
    idx: &[u32],
    ub_act: usize,
    bs: &[f32],
    l: usize,
    n: usize,
    jb: usize,
    jb_hi: usize,
    j_lo: usize,
    j_hi: usize,
    rows: usize,
    mt: usize,
    fast: bool,
    c_panel: &mut [f32],
    acc_scratch: &mut [f32],
    av_scratch: &mut [f32],
) {
    let nbw = jb_hi - jb;
    #[cfg(test)]
    if fast {
        instrument::FAST_BLOCKS.with(|c| c.set(c.get() + 1));
    }
    // The widest tile the window admits: `L % 32 == 0` doubles the
    // per-broadcast FMA work through the dual-accumulator kernel.
    let wide = l.is_multiple_of(NW2);

    let mut r0 = 0;
    if fast {
        while r0 + MW <= rows {
            run_fast_rows::<MW>(
                source, mk, idx, ub_act, bs, l, n, jb, nbw, j_lo, j_hi, wide, r0, c_panel,
            );
            r0 += MW;
        }
        if rows - r0 >= 2 {
            run_fast_rows::<2>(
                source, mk, idx, ub_act, bs, l, n, jb, nbw, j_lo, j_hi, wide, r0, c_panel,
            );
            r0 += 2;
        }
        if r0 < rows {
            run_fast_rows::<1>(
                source, mk, idx, ub_act, bs, l, n, jb, nbw, j_lo, j_hi, wide, r0, c_panel,
            );
            r0 += 1;
        }
    }

    // General path: whole non-fast blocks (ragged windows, odd L,
    // out-of-bounds gathers). Fast blocks never reach here — the row
    // ladder above covered every row.
    while r0 < rows {
        let rt = mt.min(rows - r0);
        let acc = &mut acc_scratch[..rt * nbw];
        acc.fill(0.0);
        for (ui, b_row) in bs.chunks(nbw).take(ub_act).enumerate() {
            for j in j_lo..j_hi {
                let s = idx[(j - j_lo) * ub_act + ui] as usize;
                for (r, slot) in av_scratch[..rt].iter_mut().enumerate() {
                    *slot = source.gather(r0 + r, s);
                }
                let lo = j * l;
                let hi = ((j + 1) * l).min(jb_hi);
                let b_seg = &b_row[lo - jb..hi - jb];
                for (r, &alpha) in av_scratch[..rt].iter().enumerate() {
                    if alpha != 0.0 {
                        let at = r * nbw + (lo - jb);
                        for (out, bv) in acc[at..at + b_seg.len()].iter_mut().zip(b_seg) {
                            *out += alpha * bv;
                        }
                    }
                }
            }
        }
        for r in 0..rt {
            let at = (r0 + r) * n + jb;
            for (out, add) in c_panel[at..at + nbw].iter_mut().zip(&acc[r * nbw..]) {
                *out += add;
            }
        }
        r0 += rt;
    }
}

/// One rung of the fast-path row ladder: `R` consecutive panel rows
/// through the vectorized `R×16` / `R×32` register tile across every
/// window of this `(column-block, k-block)` pair.
#[allow(clippy::too_many_arguments)]
#[inline]
fn run_fast_rows<const R: usize>(
    source: &RowSource<'_>,
    mk: MicroKernel,
    idx: &[u32],
    ub_act: usize,
    bs: &[f32],
    l: usize,
    n: usize,
    jb: usize,
    nbw: usize,
    j_lo: usize,
    j_hi: usize,
    wide: bool,
    r0: usize,
    c_panel: &mut [f32],
) {
    #[cfg(test)]
    if R < MW {
        instrument::SKINNY_RUNGS.with(|c| c.set(c.get() + 1));
    }
    let ar: [&[f32]; R] = std::array::from_fn(|i| source.row(r0 + i));
    for j in j_lo..j_hi {
        let lo = j * l;
        let idxj = &idx[(j - j_lo) * ub_act..(j - j_lo + 1) * ub_act];
        if wide {
            for off in (0..l).step_by(NW2) {
                let acc = mk.tile32(&ar, idxj, bs, nbw, lo - jb + off);
                add_tile(c_panel, &acc, r0, n, lo + off);
            }
        } else {
            for off in (0..l).step_by(NW) {
                let acc = mk.tile16(&ar, idxj, bs, nbw, lo - jb + off);
                add_tile(c_panel, &acc, r0, n, lo + off);
            }
        }
    }
}

/// Accumulate one `R × W` register tile into the panel rows starting at
/// `r0`, column `col`.
#[inline(always)]
fn add_tile<const R: usize, const W: usize>(
    c_panel: &mut [f32],
    acc: &[[f32; W]; R],
    r0: usize,
    n: usize,
    col: usize,
) {
    for (r, acc_row) in acc.iter().enumerate() {
        let at = (r0 + r) * n + col;
        for (out, add) in c_panel[at..at + W].iter_mut().zip(acc_row) {
            *out += add;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_core::prune::PrunePolicy;
    use nm_core::spmm::spmm_reference;

    fn cfg(n: usize, m: usize, l: usize) -> NmConfig {
        NmConfig::new(n, m, l).unwrap()
    }

    fn check(m: usize, k: usize, n: usize, c: NmConfig, tiling: CpuTiling) {
        let a = MatrixF32::random(m, k, 1);
        let b = MatrixF32::random(k, n, 2);
        let sb = NmSparseMatrix::prune(&b, c, PrunePolicy::Random { seed: 3 }).unwrap();
        let expect = spmm_reference(&a, &sb);
        for version in [NmVersion::V1, NmVersion::V2, NmVersion::V3] {
            let got = spmm_cpu(version, &a, &sb, tiling).unwrap();
            assert!(
                got.allclose(&expect, 1e-3, 1e-4),
                "{c} {version:?}: max diff {}",
                got.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn ladder_matches_reference_across_levels() {
        for c in NmConfig::paper_levels(8) {
            let t = CpuTiling::auto(c, 64, 96, 128).unwrap();
            check(64, 128, 96, c, t);
        }
    }

    #[test]
    fn full_micro_tile_path_matches_on_l16_and_l32() {
        // Shapes engineered so the fast path covers everything: L a
        // multiple of 16, every dimension block-aligned.
        for l in [16, 32] {
            let c = cfg(2, 8, l);
            let t = CpuTiling {
                mb: 16,
                nb: 2 * l,
                kb: 32,
                mt: 4,
            };
            check(32, 64, 4 * l, c, t);
        }
    }

    #[test]
    fn ragged_shapes_and_tiny_tiles() {
        let c = cfg(2, 16, 4);
        check(
            37,
            67,
            45,
            c,
            CpuTiling {
                mb: 16,
                nb: 8,
                kb: 32,
                mt: 4,
            },
        );
        check(
            5,
            16,
            9,
            c,
            CpuTiling {
                mb: 2,
                nb: 4,
                kb: 16,
                mt: 8,
            },
        );
    }

    #[test]
    fn moderate_sparsity_skips_packing_but_still_matches() {
        // 8:16 (50%) is below the 70% threshold: V2/V3 use the direct path.
        let c = cfg(8, 16, 8);
        assert!(!uses_packing(c));
        let t = CpuTiling::auto(c, 48, 64, 96).unwrap();
        check(48, 96, 64, c, t);
    }

    #[test]
    fn dense_n_equals_m_matches() {
        let c = cfg(4, 4, 4);
        let t = CpuTiling::auto(c, 32, 40, 64).unwrap();
        check(32, 64, 40, c, t);
    }

    #[test]
    fn derive_maps_plan_blocking_and_respects_budget() {
        let c = cfg(2, 8, 32);
        let p = BlockingParams::large();
        let t = CpuTiling::derive(p, c, 4096).unwrap();
        assert_eq!((t.mb, t.nb, t.mt), (p.ms, p.ns, p.mt));
        assert_eq!(t.kb % c.m, 0);
        let ub = t.kb * c.n / c.m;
        assert!(
            ub * t.nb * 4 <= B_BLOCK_BYTES,
            "B block must fit the budget"
        );
        // Shallow problems clamp kb to the padded depth.
        let shallow = CpuTiling::derive(p, c, 40).unwrap();
        assert_eq!(shallow.kb, 40);
    }

    #[test]
    fn derive_rejects_window_misaligned_ns() {
        let c = cfg(2, 16, 48); // L=48 divides no Table I ns
        let err = CpuTiling::derive(BlockingParams::small(), c, 1024).unwrap_err();
        assert!(matches!(err, NmError::InvalidBlocking { .. }), "{err}");
        // ...but `auto` widens the preset to stay usable.
        let t = CpuTiling::auto(c, 128, 96, 1024).unwrap();
        assert_eq!(t.nb % 48, 0);
    }

    #[test]
    fn spmm_cpu_rejects_bad_operands_and_tiles() {
        let c = cfg(2, 4, 4);
        let a = MatrixF32::random(8, 16, 5);
        let b = MatrixF32::random(16, 12, 6);
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        let good = CpuTiling {
            mb: 8,
            nb: 8,
            kb: 8,
            mt: 4,
        };
        let short_a = MatrixF32::random(8, 12, 7);
        assert!(matches!(
            spmm_cpu(NmVersion::V1, &short_a, &sb, good),
            Err(NmError::DimensionMismatch { .. })
        ));
        for bad in [
            CpuTiling { nb: 6, ..good }, // not a multiple of L
            CpuTiling { kb: 6, ..good }, // not a multiple of M
            CpuTiling { mt: 0, ..good }, // empty tile
            CpuTiling { nb: 0, ..good }, // empty block
        ] {
            assert!(
                matches!(
                    spmm_cpu(NmVersion::V2, &a, &sb, bad),
                    Err(NmError::InvalidBlocking { .. })
                ),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn prepared_is_reusable_and_rejects_mismatched_operands() {
        let c = cfg(2, 8, 4);
        let b = MatrixF32::random(64, 32, 11);
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        let t = CpuTiling::auto(c, 16, 32, 64).unwrap();
        let prep = CpuPrepared::new(NmVersion::V3, &sb, t).unwrap();
        assert_eq!(prep.version(), NmVersion::V3);
        for seed in 0..3u64 {
            let a = MatrixF32::random(16, 64, 20 + seed);
            let got = spmm_cpu_prepared(&a, &sb, &prep).unwrap();
            assert!(got.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
        }
        // A same-k different-n operand (and a same-shape different-config
        // one) must be rejected by the fingerprint.
        let a = MatrixF32::random(16, 64, 30);
        let other = NmSparseMatrix::prune_magnitude(&MatrixF32::random(64, 40, 12), c).unwrap();
        assert!(matches!(
            spmm_cpu_prepared(&a, &other, &prep),
            Err(NmError::DimensionMismatch { .. })
        ));
        let recfg = NmSparseMatrix::prune_magnitude(&b, cfg(4, 16, 4)).unwrap(); // same w, different cfg
        assert_eq!(recfg.w(), sb.w(), "setup: shapes collide on purpose");
        assert!(matches!(
            spmm_cpu_prepared(&a, &recfg, &prep),
            Err(NmError::DimensionMismatch { .. })
        ));
        // A *different* matrix with identical shape AND config: shape
        // fields collide, the content fingerprint must not.
        let swapped = NmSparseMatrix::prune_magnitude(&MatrixF32::random(64, 32, 99), c).unwrap();
        assert_eq!(
            (swapped.w(), swapped.cols(), swapped.k(), swapped.cfg()),
            (sb.w(), sb.cols(), sb.k(), sb.cfg()),
            "setup: identical shape and config on purpose"
        );
        let err = spmm_cpu_prepared(&a, &swapped, &prep).unwrap_err();
        assert!(
            err.to_string().contains("fingerprint"),
            "swapping in a same-shape different matrix must be caught: {err}"
        );
    }

    #[test]
    fn tail_k_block_keeps_the_fast_path_when_gathers_are_in_bounds() {
        // k = 40 is a multiple of M = 8 but not of kb = 32: the coarse
        // `(bk + 1) * kb <= k` test used to kick the entire final k-block
        // (dense rows 32..40) off the fast path even though every gather
        // index is < k. The per-block bound keeps it vectorized.
        let c = cfg(2, 8, 16);
        let t = CpuTiling {
            mb: 8,
            nb: 32,
            kb: 32,
            mt: 4,
        };
        let (m, k, n) = (8, 40, 32);
        let a = MatrixF32::random(m, k, 21);
        let b = MatrixF32::random(k, n, 22);
        let sb = NmSparseMatrix::prune(&b, c, PrunePolicy::Random { seed: 23 }).unwrap();
        // V1 takes the direct source; count fast blocks across the run.
        let prep = CpuPrepared::with_kernel(NmVersion::V1, &sb, t, MicroKernel::scalar()).unwrap();
        let before = instrument::FAST_BLOCKS.with(|c| c.get());
        let got = spmm_cpu_prepared(&a, &sb, &prep).unwrap();
        let fast_blocks = instrument::FAST_BLOCKS.with(|c| c.get()) - before;
        assert!(
            got.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4),
            "tail-block result must stay correct (max diff {})",
            got.max_abs_diff(&spmm_reference(&a, &sb))
        );
        // Two k-blocks (0..32 and the 32..40 tail), one column block: both
        // must have gone through the micro-kernel.
        assert_eq!(
            fast_blocks, 2,
            "the final partial k-block must keep the fast path"
        );
    }

    #[test]
    fn padded_tail_window_still_leaves_the_fast_path() {
        // k = 36 is NOT a multiple of M = 8: the final window's indices can
        // point into the padded range [36, 40) — a legitimate zero-fill the
        // fast path cannot handle, so a tail block whose gathers reach the
        // pad must fall back to the general path. Random pruning (unlike
        // magnitude, which never picks a zero padded lane) makes that
        // happen; the assertion adapts in case a reseed changes the draw.
        let c = cfg(2, 8, 16);
        let t = CpuTiling {
            mb: 8,
            nb: 32,
            kb: 32,
            mt: 4,
        };
        let (m, k, n) = (8, 36, 32);
        let a = MatrixF32::random(m, k, 31);
        let b = MatrixF32::random(k, n, 32);
        let sb = NmSparseMatrix::prune(&b, c, PrunePolicy::Random { seed: 33 }).unwrap();
        // Does any final-window gather point past k into the pad?
        let d = sb.indices();
        let tail_hits_pad =
            (8..sb.w()).any(|u| (0..sb.q()).any(|j| u / c.n * c.m + d.get(u, j) as usize >= k));
        let prep = CpuPrepared::with_kernel(NmVersion::V1, &sb, t, MicroKernel::scalar()).unwrap();
        let before = instrument::FAST_BLOCKS.with(|c| c.get());
        let got = spmm_cpu_prepared(&a, &sb, &prep).unwrap();
        let fast_blocks = instrument::FAST_BLOCKS.with(|c| c.get()) - before;
        assert!(got.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
        let expected = if tail_hits_pad { 1 } else { 2 };
        assert_eq!(
            fast_blocks, expected,
            "a tail block gathering from the pad must take the general path \
             (tail_hits_pad = {tail_hits_pad})"
        );
        assert!(
            tail_hits_pad,
            "seed 33 should produce at least one padded-lane pick; \
             reseed the test so the fallback case stays exercised"
        );
    }

    #[test]
    fn direct_gather_bound_is_per_index() {
        assert!(direct_gathers_in_bounds(&[0, 5, 39], 40));
        assert!(!direct_gathers_in_bounds(&[0, 5, 40], 40));
        assert!(direct_gathers_in_bounds(&[], 40), "vacuously true");
    }

    #[test]
    fn gather_zero_fills_only_the_padded_tail() {
        let a: Vec<f32> = (0..12).map(|v| v as f32).collect();
        // k = 6, M-padded depth 8: indices 6 and 7 are the legitimate
        // padded tail of the final window; index 5 is a real load.
        let src = RowSource::Direct {
            a: &a,
            k: 6,
            i0: 0,
            k_pad: 8,
        };
        assert_eq!(src.gather(1, 5), a[11]);
        assert_eq!(src.gather(0, 6), 0.0);
        assert_eq!(src.gather(1, 7), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn corrupted_gather_index_is_caught_in_debug_builds() {
        use std::panic::catch_unwind;
        let a = vec![1.0f32; 16];
        let src = RowSource::Direct {
            a: &a,
            k: 8,
            i0: 0,
            k_pad: 8,
        };
        // 9 is beyond even the padded depth: corruption, not padding.
        assert!(
            catch_unwind(|| src.gather(0, 9)).is_err(),
            "an index past the padded window bound must assert in debug"
        );
        let buf = vec![2.0f32; 8];
        let packed = RowSource::Packed {
            buf: &buf,
            stride: 4,
        };
        assert!(
            catch_unwind(|| packed.gather(0, 4)).is_err(),
            "packed indices are in-bounds by construction; any overflow must assert"
        );
    }

    #[test]
    fn explicit_kernel_selection_is_reported() {
        let c = cfg(2, 8, 4);
        let b = MatrixF32::random(32, 16, 41);
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        let t = CpuTiling::auto(c, 16, 16, 32).unwrap();
        let prep = CpuPrepared::with_kernel(NmVersion::V2, &sb, t, MicroKernel::scalar()).unwrap();
        assert_eq!(prep.isa(), Isa::Scalar);
        assert_eq!(prep.kernel(), MicroKernel::scalar());
        // The default constructor picks a host-supported kernel too.
        let auto = CpuPrepared::new(NmVersion::V2, &sb, t).unwrap();
        assert!(auto.isa().supported());
    }

    #[test]
    fn packing_threshold_matches_core_boundary() {
        // Exactly 70% packs (>= convention), just below does not.
        assert!(uses_packing(NmConfig::new(3, 10, 4).unwrap()));
        assert!(!uses_packing(NmConfig::new(4, 10, 4).unwrap()));
        assert!(uses_packing(cfg(2, 8, 4))); // the 75% acceptance level
    }

    #[test]
    fn exact_boundary_config_matches_reference_through_packed_path() {
        let c = NmConfig::new(3, 10, 5).unwrap(); // exactly 0.70
        let t = CpuTiling {
            mb: 16,
            nb: 20,
            kb: 30,
            mt: 4,
        };
        check(23, 50, 35, c, t);
    }

    #[test]
    fn skinny_decode_rows_match_reference_across_levels() {
        // The decode regime: 1–5 activation rows through every ladder rung
        // (4-row tiles, the 2- and 1-row skinny tiles, and general-path
        // remainders) at all four paper sparsity levels.
        for c in NmConfig::paper_levels(16) {
            let t = CpuTiling::auto(c, 8, 64, 128).unwrap();
            for m in [1, 2, 3, 5] {
                check(m, 128, 64, c, t);
            }
        }
    }

    #[test]
    fn skinny_panels_stay_on_the_vectorized_fast_path() {
        // A single-row (decode) operand on a block-aligned shape: every
        // block must classify as fast AND run its row through the 1-row
        // skinny rung, not the general scalar path.
        let c = cfg(2, 8, 16);
        let t = CpuTiling {
            mb: 8,
            nb: 32,
            kb: 32,
            mt: 4,
        };
        let (k, n) = (64, 32);
        let b = MatrixF32::random(k, n, 52);
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        let prep = CpuPrepared::with_kernel(NmVersion::V1, &sb, t, MicroKernel::scalar()).unwrap();
        for (m, want_skinny) in [(1, 2), (2, 2), (3, 4), (6, 2)] {
            let a = MatrixF32::random(m, k, 51);
            let before_fast = instrument::FAST_BLOCKS.with(|c| c.get());
            let before_skinny = instrument::SKINNY_RUNGS.with(|c| c.get());
            let got = spmm_cpu_prepared(&a, &sb, &prep).unwrap();
            let fast = instrument::FAST_BLOCKS.with(|c| c.get()) - before_fast;
            let skinny = instrument::SKINNY_RUNGS.with(|c| c.get()) - before_skinny;
            assert!(got.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
            // One column block × two k-blocks, all fast.
            assert_eq!(fast, 2, "m = {m}: both blocks must classify fast");
            // m=1 → one 1-row rung per block; m=2 → one 2-row rung; m=3 →
            // a 2-row and a 1-row rung; m=6 → one 4-row tile + a 2-row rung.
            assert_eq!(skinny, want_skinny, "m = {m}: skinny-rung count");
        }
    }

    /// Sliced and row-major preparations of the same operand must produce
    /// bit-identical outputs — not merely allclose — because the sliced
    /// staging replicates the row-major op-flavor per window.
    fn check_sliced_bitwise(m: usize, k: usize, n: usize, c: NmConfig, t: CpuTiling, seed: u64) {
        let a = MatrixF32::random(m, k, seed);
        let b = MatrixF32::random(k, n, seed + 1);
        let sb = NmSparseMatrix::prune(&b, c, PrunePolicy::Random { seed: seed + 2 }).unwrap();
        for version in [NmVersion::V1, NmVersion::V2, NmVersion::V3] {
            let rm = CpuPrepared::with_kernel(version, &sb, t, MicroKernel::scalar()).unwrap();
            for layout in [
                SlicedLayout::new(1, 1).unwrap(),
                SlicedLayout::new(4, 4).unwrap(),
                SlicedLayout::DEFAULT,
            ] {
                let sl = CpuPrepared::with_format(
                    version,
                    &sb,
                    t,
                    MicroKernel::scalar(),
                    StorageFormat::Sliced(layout),
                )
                .unwrap();
                assert_eq!(sl.format(), StorageFormat::Sliced(layout));
                let want = spmm_cpu_prepared(&a, &sb, &rm).unwrap();
                let got = spmm_cpu_prepared(&a, &sb, &sl).unwrap();
                assert_eq!(
                    got.as_slice(),
                    want.as_slice(),
                    "{c} {version:?} {layout}: sliced must be bit-identical to row-major"
                );
            }
        }
    }

    #[test]
    fn sliced_is_bit_identical_across_levels_and_versions() {
        for c in NmConfig::paper_levels(16) {
            let t = CpuTiling::auto(c, 4, 64, 128).unwrap();
            check_sliced_bitwise(1, 128, 64, c, t, 71);
            check_sliced_bitwise(3, 128, 64, c, t, 73);
        }
    }

    #[test]
    fn sliced_is_bit_identical_on_ragged_shapes() {
        // Ragged everything: n not a multiple of L (partial final window),
        // k not a multiple of M (padded tail window), q not divisible by
        // the slice height, odd L off the fast path entirely.
        let c4 = cfg(2, 16, 4);
        check_sliced_bitwise(
            2,
            67,
            45,
            c4,
            CpuTiling {
                mb: 16,
                nb: 8,
                kb: 32,
                mt: 4,
            },
            81,
        );
        // L=16 with a padded tail (k=36): mixes fast and general flavors.
        let c16 = cfg(2, 8, 16);
        check_sliced_bitwise(
            1,
            36,
            32,
            c16,
            CpuTiling {
                mb: 8,
                nb: 32,
                kb: 32,
                mt: 4,
            },
            83,
        );
    }

    #[test]
    fn sliced_fast_windows_run_the_micro_tiles() {
        let c = cfg(2, 8, 16);
        let t = CpuTiling {
            mb: 8,
            nb: 32,
            kb: 32,
            mt: 4,
        };
        let (k, n) = (64, 32);
        let b = MatrixF32::random(k, n, 91);
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        let prep = CpuPrepared::with_format(
            NmVersion::V1,
            &sb,
            t,
            MicroKernel::scalar(),
            StorageFormat::Sliced(SlicedLayout::DEFAULT),
        )
        .unwrap();
        let x = MatrixF32::random(1, k, 92);
        let before = instrument::SLICED_FAST.with(|c| c.get());
        let y = spmv_cpu_prepared(x.row(0), &sb, &prep).unwrap();
        let fast = instrument::SLICED_FAST.with(|c| c.get()) - before;
        // 2 windows × 2 k-blocks, all block-aligned: every pair is fast.
        assert_eq!(fast, 4, "all sliced (window, k-block) pairs must be fast");
        let rm = CpuPrepared::with_kernel(NmVersion::V1, &sb, t, MicroKernel::scalar()).unwrap();
        let want = spmv_cpu_prepared(x.row(0), &sb, &rm).unwrap();
        assert_eq!(y, want, "bit-identical to the row-major decode path");
        let expect = spmm_reference(&x, &sb);
        let got = MatrixF32::from_vec(1, n, y);
        assert!(got.allclose(&expect, 1e-3, 1e-4));
    }

    #[test]
    fn spmv_prepared_matches_the_matrix_path_and_validates_length() {
        let c = cfg(2, 8, 16);
        let (k, n) = (96, 64);
        let b = MatrixF32::random(k, n, 61);
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        let t = CpuTiling::auto(c, 1, n, k).unwrap();
        let x = MatrixF32::random(1, k, 62);
        let expect = spmm_reference(&x, &sb);
        for version in [NmVersion::V1, NmVersion::V2, NmVersion::V3] {
            let prep = CpuPrepared::new(version, &sb, t).unwrap();
            let y = spmv_cpu_prepared(x.row(0), &sb, &prep).unwrap();
            let got = MatrixF32::from_vec(1, n, y);
            assert!(
                got.allclose(&expect, 1e-3, 1e-4),
                "{version:?}: max diff {}",
                got.max_abs_diff(&expect)
            );
            assert!(matches!(
                spmv_cpu_prepared(&x.row(0)[..k - 1], &sb, &prep),
                Err(NmError::DimensionMismatch { .. })
            ));
        }
    }
}
