//! The unified kernel planner: one entry point that picks a kernel family,
//! tunes its blocking, and memoizes the result.
//!
//! The paper's end-to-end workflow (§IV, Fig. 9, Table I) is: given a
//! device, a problem shape and an N:M configuration, run the §III-A/III-C
//! decision procedure, pick the best kernel version and blocking plan, then
//! sweep whole models. Before this module every bench bin re-derived that
//! selection by hand and [`crate::autotune`] re-searched from scratch on
//! every call. [`Planner::plan`] does it once per [`PlanKey`] —
//! `(device, shape class, N:M)` — and memoizes the finished [`Plan`] in a
//! [`PlanCache`], which serializes to JSON (via `nm_core::json`; the
//! offline `serde` shim has no serializer) so tuning survives across
//! processes. Cache hits and misses are counted, mirroring the offline
//! tuning-then-lookup workflow of real sparse kernel libraries (NMSPARSE;
//! Yang et al., *Design Principles for Sparse Matrix Multiplication on the
//! GPU*).
//!
//! Shapes are keyed by **class**, not raw dimensions: every dimension is
//! padded up to the 32-element granularity the kernels themselves pad to,
//! so a `100×200×300` problem and a `128×224×320` one share the
//! `128×224×320` key and therefore the same plan. The plan is computed
//! *from the padded dimensions*, making `key → plan` a pure function —
//! equal keys can never observe different plans.

use crate::autotune;
use crate::cpu::CpuTiling;
use crate::dense::DenseGemmKernel;
use crate::nm::{NmSpmmKernel, NmVersion};
use crate::nmsparse::NmSparseKernel;
use crate::params::BlockingParams;
use crate::sparse_tc::SparseTensorCoreKernel;
use crate::sputnik::SputnikKernel;
use gpu_sim::device::DeviceConfig;
use gpu_sim::timing::LaunchReport;
use nm_analysis::strategy::{PipelineHint, PredictedBound, StrategyDecision};
use nm_core::error::{NmError, Result};
use nm_core::json::JsonValue;
use nm_core::pattern::NmConfig;
use nm_core::sliced::StorageFormat;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Kernel-dimension padding granularity used for shape classes.
const CLASS_GRANULE: usize = 32;

#[inline]
fn pad_dim(d: usize) -> usize {
    d.max(1).div_ceil(CLASS_GRANULE) * CLASS_GRANULE
}

/// Largest activation-row count classified as decode. Autoregressive
/// serving batches a handful of tokens per step; past 8 rows the 4-row
/// register tiles amortize well and the GEMM regime applies.
pub const DECODE_MAX_ROWS: usize = 8;

/// The execution regime of a shape — a first-class planner dimension.
///
/// Prefill (square-ish GEMM) and decode (1–8 activation rows, the
/// autoregressive serving regime) want different plans: decode is
/// bandwidth-bound streaming of `B′` where the GEMM autotuner's tile
/// search is meaningless, so decode keys skip it and lean on measured
/// evidence instead. Keying the class separately means an `m = 1` SpMV
/// and an `m = 512` GEMM over the same weights can never collide on one
/// cache entry (both pad to the same 32-row granule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeClass {
    /// The GEMM regime: more than [`DECODE_MAX_ROWS`] activation rows.
    Prefill,
    /// Autoregressive decode with this exact activation-row count
    /// (1..=[`DECODE_MAX_ROWS`]); `Decode(1)` is SpMV.
    Decode(usize),
}

impl ShapeClass {
    /// Classify a concrete (unpadded) activation-row count.
    pub fn of_rows(m: usize) -> Self {
        if (1..=DECODE_MAX_ROWS).contains(&m) {
            ShapeClass::Decode(m)
        } else {
            ShapeClass::Prefill
        }
    }

    /// Whether this is the decode regime.
    pub fn is_decode(&self) -> bool {
        matches!(self, ShapeClass::Decode(_))
    }

    /// The exact decode row count, when decode.
    pub fn decode_rows(&self) -> Option<usize> {
        match self {
            ShapeClass::Decode(rows) => Some(*rows),
            ShapeClass::Prefill => None,
        }
    }

    /// Stable identifier used in the JSON cache (`"prefill"`,
    /// `"decode:4"`).
    pub fn tag(&self) -> String {
        match self {
            ShapeClass::Prefill => "prefill".to_string(),
            ShapeClass::Decode(rows) => format!("decode:{rows}"),
        }
    }

    /// Inverse of [`ShapeClass::tag`].
    pub fn from_tag(tag: &str) -> Result<Self> {
        if tag == "prefill" {
            return Ok(ShapeClass::Prefill);
        }
        if let Some(rows) = tag.strip_prefix("decode:") {
            let rows: usize = rows.parse().map_err(|_| NmError::Persist {
                reason: format!("malformed shape class `{tag}`"),
            })?;
            if (1..=DECODE_MAX_ROWS).contains(&rows) {
                return Ok(ShapeClass::Decode(rows));
            }
        }
        Err(NmError::Persist {
            reason: format!("unknown shape class `{tag}`"),
        })
    }

    /// Deterministic ordering rank for cache serialization.
    fn sort_rank(&self) -> (u8, usize) {
        match self {
            ShapeClass::Prefill => (0, 0),
            ShapeClass::Decode(rows) => (1, *rows),
        }
    }
}

impl std::fmt::Display for ShapeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.tag())
    }
}

/// Deterministic fingerprint of every timing-relevant [`DeviceConfig`]
/// parameter (FNV-1a over a canonical rendering). Part of the cache key,
/// so plans computed against an edited device model — same marketing name,
/// different silicon — can never replay as stale hits. Changes to the
/// timing-model *code* are not fingerprinted; bump [`CACHE_FORMAT_VERSION`]
/// for those.
fn device_fingerprint(dev: &DeviceConfig) -> String {
    let canon = format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        dev.clock_mhz,
        dev.sm_count,
        dev.fp32_cores_per_sm,
        dev.fp32_flops_per_clock_per_sm,
        dev.register_file_per_sm,
        dev.max_registers_per_thread,
        dev.l1_shared_per_sm,
        dev.max_shared_per_sm,
        dev.l2_bytes,
        dev.dram_bytes,
        dev.dram_bw,
        dev.l2_bw_ratio,
        dev.max_warps_per_sm,
        dev.max_blocks_per_sm,
        dev.max_threads_per_block,
        dev.smem_bytes_per_clock,
        dev.dram_latency_cycles,
        dev.l2_latency_cycles,
        dev.barrier_cycles,
        dev.sustained_efficiency,
    );
    let mut h: u64 = 0xcbf29ce484222325;
    for b in canon.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// The measurement scope of a **measured** plan: which host the evidence
/// was gathered on.
///
/// Measured cache entries are keyed by
/// `(host ISA, thread count, shape class, N:M(L))` in addition to the
/// device fields, so a cache file moved between machines (different ISA)
/// or run configurations (different worker count) **misses** instead of
/// replaying foreign measurements. Cost-model entries carry no host —
/// an analytic estimate is host-independent by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlanHost {
    /// Micro-kernel ISA name ([`crate::simd::Isa::name`]) the measurement
    /// dispatched to.
    pub isa: String,
    /// Rayon worker threads the measurement fanned across.
    pub threads: usize,
}

impl std::fmt::Display for PlanHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}t", self.isa, self.threads)
    }
}

/// Cache key: device identity, shape class and sparsity configuration.
///
/// `m`, `n`, `k` are stored **padded** to the 32-element class granule;
/// plans are
/// computed from these padded dimensions, so equal keys yield equal plans.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanKey {
    /// Device name (from [`DeviceConfig::name`]).
    pub device: String,
    /// FNV-1a fingerprint of the device's timing-relevant parameters,
    /// so an edited device model (same name, different silicon) misses
    /// instead of replaying stale estimates.
    pub device_fp: String,
    /// Padded output rows.
    pub m: usize,
    /// Padded output columns.
    pub n: usize,
    /// Padded reduction depth.
    pub k: usize,
    /// Vectors kept per pruning window (`N`).
    pub n_keep: usize,
    /// Pruning-window depth (`M`).
    pub m_win: usize,
    /// Vector length (`L`).
    pub l: usize,
    /// Prefill vs decode — classified on the *unpadded* row count, so
    /// skinny decode shapes (which all pad to the same 32-row granule)
    /// plan, measure and cache separately from each other and from
    /// prefill.
    pub shape: ShapeClass,
    /// The storage lane this plan is keyed to. [`StorageFormat::RowMajor`]
    /// is both the paper's layout and the *auto* lane (measurement may
    /// still pick a sliced winner, recorded in
    /// [`MeasuredChoice::storage`]); an explicit sliced pin keys its own
    /// cache identity so it never shadows the auto entry. Pre-v4
    /// documents load as row-major.
    pub storage: StorageFormat,
    /// The measurement scope for measured entries; `None` for cost-model
    /// plans. Part of the key, so measured evidence never shadows the
    /// analytic plan for the same shape (and vice versa).
    pub host: Option<PlanHost>,
}

impl PlanKey {
    /// Key for a concrete problem instance.
    pub fn new(dev: &DeviceConfig, m: usize, n: usize, k: usize, cfg: NmConfig) -> Self {
        Self {
            device: dev.name.clone(),
            device_fp: device_fingerprint(dev),
            m: pad_dim(m),
            n: pad_dim(n),
            k: pad_dim(k),
            n_keep: cfg.n,
            m_win: cfg.m,
            l: cfg.l,
            shape: ShapeClass::of_rows(m),
            storage: StorageFormat::RowMajor,
            host: None,
        }
    }

    /// The same key scoped to measured evidence gathered on `host`.
    pub fn for_host(&self, host: PlanHost) -> Self {
        Self {
            host: Some(host),
            ..self.clone()
        }
    }

    /// The same key re-keyed to an explicit storage lane.
    pub fn with_storage(&self, storage: StorageFormat) -> Self {
        Self {
            storage,
            ..self.clone()
        }
    }

    /// The sparsity configuration the key encodes.
    pub fn cfg(&self) -> Result<NmConfig> {
        NmConfig::new(self.n_keep, self.m_win, self.l)
    }
}

impl std::fmt::Display for PlanKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}x{}x{} {}:{}(L={})",
            self.device, self.m, self.n, self.k, self.n_keep, self.m_win, self.l
        )?;
        if self.shape.is_decode() {
            write!(f, " [{}]", self.shape)?;
        }
        if self.storage != StorageFormat::RowMajor {
            write!(f, " [{}]", self.storage)?;
        }
        if let Some(host) = &self.host {
            write!(f, " @{host}")?;
        }
        Ok(())
    }
}

/// The kernel family a [`Plan`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelChoice {
    /// Dense GEMM (the cuBLAS stand-in) — chosen when sparsity cannot pay.
    Dense,
    /// NM-SpMM V1: hierarchical blocking only.
    NmV1,
    /// NM-SpMM V2: V1 + sparsity-aware packing.
    NmV2,
    /// NM-SpMM V3: V2 + pipelined double buffering (the paper's kernel).
    NmV3,
    /// The nmSPARSE VW baseline.
    NmSparse,
    /// The Sputnik unstructured-SpMM baseline.
    Sputnik,
    /// Sparse tensor cores (2:4 element-wise only).
    SparseTc,
}

impl KernelChoice {
    /// Stable identifier used in the JSON cache.
    pub fn name(&self) -> &'static str {
        match self {
            KernelChoice::Dense => "dense",
            KernelChoice::NmV1 => "nm_v1",
            KernelChoice::NmV2 => "nm_v2",
            KernelChoice::NmV3 => "nm_v3",
            KernelChoice::NmSparse => "nmsparse",
            KernelChoice::Sputnik => "sputnik",
            KernelChoice::SparseTc => "sparse_tc",
        }
    }

    /// Inverse of [`KernelChoice::name`].
    pub fn from_name(name: &str) -> Result<Self> {
        Ok(match name {
            "dense" => KernelChoice::Dense,
            "nm_v1" => KernelChoice::NmV1,
            "nm_v2" => KernelChoice::NmV2,
            "nm_v3" => KernelChoice::NmV3,
            "nmsparse" => KernelChoice::NmSparse,
            "sputnik" => KernelChoice::Sputnik,
            "sparse_tc" => KernelChoice::SparseTc,
            other => {
                return Err(NmError::Persist {
                    reason: format!("unknown kernel choice `{other}`"),
                })
            }
        })
    }

    /// The NM-SpMM version this choice corresponds to, if any.
    pub fn nm_version(&self) -> Option<NmVersion> {
        match self {
            KernelChoice::NmV1 => Some(NmVersion::V1),
            KernelChoice::NmV2 => Some(NmVersion::V2),
            KernelChoice::NmV3 => Some(NmVersion::V3),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelChoice::Dense => "dense GEMM",
            KernelChoice::NmV1 => "NM-SpMM V1",
            KernelChoice::NmV2 => "NM-SpMM V2",
            KernelChoice::NmV3 => "NM-SpMM V3",
            KernelChoice::NmSparse => "nmSPARSE",
            KernelChoice::Sputnik => "Sputnik",
            KernelChoice::SparseTc => "sparse tensor cores",
        })
    }
}

/// Compact, serializable summary of one kernel's timing estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimateSummary {
    /// Wall time in seconds.
    pub seconds: f64,
    /// Useful throughput in TFLOPS.
    pub tflops: f64,
    /// Fraction of the device's FP32 peak.
    pub efficiency: f64,
}

impl From<&LaunchReport> for EstimateSummary {
    fn from(r: &LaunchReport) -> Self {
        Self {
            seconds: r.seconds,
            tflops: r.tflops,
            efficiency: r.efficiency,
        }
    }
}

/// Per-family timing estimates for one [`PlanKey`].
///
/// `dense` and `sputnik` always estimate; the others are `None` when the
/// family cannot launch this configuration (e.g. sparse tensor cores on
/// anything but 2:4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelEstimates {
    /// The cuBLAS stand-in (the "1.0×" baseline of Fig. 9).
    pub dense: EstimateSummary,
    /// NM-SpMM V1 with the tuned blocking.
    pub nm_v1: Option<EstimateSummary>,
    /// NM-SpMM V2 with the tuned blocking.
    pub nm_v2: Option<EstimateSummary>,
    /// NM-SpMM V3 with the tuned blocking.
    pub nm_v3: Option<EstimateSummary>,
    /// The nmSPARSE VW baseline.
    pub nmsparse: Option<EstimateSummary>,
    /// The Sputnik CSR baseline.
    pub sputnik: EstimateSummary,
    /// Sparse tensor cores (2:4 only).
    pub sparse_tc: Option<EstimateSummary>,
}

impl KernelEstimates {
    /// The estimate for one family, if available.
    pub fn get(&self, choice: KernelChoice) -> Option<EstimateSummary> {
        match choice {
            KernelChoice::Dense => Some(self.dense),
            KernelChoice::NmV1 => self.nm_v1,
            KernelChoice::NmV2 => self.nm_v2,
            KernelChoice::NmV3 => self.nm_v3,
            KernelChoice::NmSparse => self.nmsparse,
            KernelChoice::Sputnik => Some(self.sputnik),
            KernelChoice::SparseTc => self.sparse_tc,
        }
    }
}

/// Where a [`Plan`]'s decision came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// The analytic timing model (strategy decision + exhaustive
    /// estimate-driven autotune) — host-independent.
    CostModel,
    /// Short-run measurement on the executing host
    /// ([`measure`](mod@crate::measure)) — scoped by the key's [`PlanHost`].
    Measured,
}

impl Provenance {
    /// Stable identifier used in the JSON cache.
    pub fn name(&self) -> &'static str {
        match self {
            Provenance::CostModel => "cost_model",
            Provenance::Measured => "measured",
        }
    }

    /// Inverse of [`Provenance::name`].
    pub fn from_name(name: &str) -> Result<Self> {
        match name {
            "cost_model" => Ok(Provenance::CostModel),
            "measured" => Ok(Provenance::Measured),
            other => Err(NmError::Persist {
                reason: format!("unknown plan provenance `{other}`"),
            }),
        }
    }
}

/// Stable identifier for a ladder version, as written into the JSON
/// cache and the measured-bench A/B report (`"v1"`/`"v2"`/`"v3"`).
pub fn version_name(v: NmVersion) -> &'static str {
    match v {
        NmVersion::V1 => "v1",
        NmVersion::V2 => "v2",
        NmVersion::V3 => "v3",
    }
}

fn version_from_name(name: &str) -> Result<NmVersion> {
    match name {
        "v1" => Ok(NmVersion::V1),
        "v2" => Ok(NmVersion::V2),
        "v3" => Ok(NmVersion::V3),
        other => Err(NmError::Persist {
            reason: format!("unknown ladder version `{other}`"),
        }),
    }
}

/// The measured-best CPU execution choice carried by a `Measured` plan:
/// which ladder step to run and with which tile geometry, plus the
/// evidence (throughput, sample count) that picked it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredChoice {
    /// The V1→V3 ladder step that measured fastest.
    pub ladder_version: NmVersion,
    /// The (effective, clamped) CPU tile geometry it measured fastest
    /// with.
    pub cpu_tiling: CpuTiling,
    /// The storage format that measured fastest — on an auto
    /// (row-major-keyed) decode entry this is where a sliced layout wins
    /// its place; execution stages `B′` in this format.
    pub storage: StorageFormat,
    /// Measured useful throughput of the winner, in GFLOP/s.
    pub gflops: f64,
    /// Timed iterations behind the winning sample.
    pub samples: usize,
}

/// A fully resolved execution plan for one `(device, shape class, N:M)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// The key this plan answers.
    pub key: PlanKey,
    /// Fastest kernel family under the timing model.
    pub choice: KernelChoice,
    /// Auto-tuned Table I blocking for the NM-SpMM family.
    pub params: BlockingParams,
    /// Candidates the exhaustive search evaluated (0 when tuning was
    /// impossible and `params` fell back to `Para_Init_Table`).
    pub evaluated: usize,
    /// The §III-A decision (packing, pipeline orientation, roofline bound).
    pub decision: StrategyDecision,
    /// Per-family timing estimates.
    pub estimates: KernelEstimates,
    /// Where the decision came from.
    pub provenance: Provenance,
    /// The measured-best CPU choice; present exactly when `provenance`
    /// is [`Provenance::Measured`].
    pub measured: Option<MeasuredChoice>,
}

impl Plan {
    /// Validated cost-model plan constructor — the invariant that the
    /// chosen family carries an estimate is checked **here**, at
    /// construction, so no later accessor can trip over it (it used to be
    /// enforced only on the JSON parse path, letting in-process
    /// construction build a plan whose [`Plan::best`] panicked).
    pub fn new(
        key: PlanKey,
        choice: KernelChoice,
        params: BlockingParams,
        evaluated: usize,
        decision: StrategyDecision,
        estimates: KernelEstimates,
    ) -> Result<Self> {
        let plan = Self {
            key,
            choice,
            params,
            evaluated,
            decision,
            estimates,
            provenance: Provenance::CostModel,
            measured: None,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Check the structural invariants every construction path must hold:
    /// the chosen family has an estimate, and measured evidence is present
    /// exactly when the provenance says so.
    pub fn validate(&self) -> Result<()> {
        if self.estimates.get(self.choice).is_none() {
            return Err(NmError::InvalidConfig {
                reason: format!(
                    "plan for `{}` chooses `{}` but carries no estimate for it",
                    self.key,
                    self.choice.name()
                ),
            });
        }
        if (self.provenance == Provenance::Measured) != self.measured.is_some() {
            return Err(NmError::InvalidConfig {
                reason: format!(
                    "plan for `{}` has provenance `{}` but measured evidence is {}",
                    self.key,
                    self.provenance.name(),
                    if self.measured.is_some() {
                        "present"
                    } else {
                        "absent"
                    }
                ),
            });
        }
        if self.provenance == Provenance::Measured && self.key.host.is_none() {
            return Err(NmError::InvalidConfig {
                reason: format!("measured plan for `{}` is not scoped to a host", self.key),
            });
        }
        Ok(())
    }

    /// Derive the measured variant of this plan: same shape class and
    /// analytic estimates, re-keyed to `host` and carrying the measured
    /// CPU winner. The cost-model entry stays untouched under its own
    /// (host-less) key.
    pub fn with_measured(&self, host: PlanHost, measured: MeasuredChoice) -> Result<Self> {
        let mut plan = self.clone();
        plan.key = self.key.for_host(host);
        plan.provenance = Provenance::Measured;
        plan.measured = Some(measured);
        plan.validate()?;
        Ok(plan)
    }

    /// The winning family's estimate.
    ///
    /// # Errors
    /// [`NmError::InvalidConfig`] when the plan's chosen family carries no
    /// estimate — a structural corruption every constructor rejects, but a
    /// hand-built `Plan` literal can still encode.
    pub fn best(&self) -> Result<EstimateSummary> {
        self.estimates
            .get(self.choice)
            .ok_or_else(|| NmError::InvalidConfig {
                reason: format!(
                    "plan for `{}` chooses `{}` but carries no estimate for it",
                    self.key,
                    self.choice.name()
                ),
            })
    }

    /// Estimated speedup of the chosen kernel over the dense baseline.
    ///
    /// # Errors
    /// Propagates [`Plan::best`].
    pub fn speedup_vs_dense(&self) -> Result<f64> {
        Ok(self.estimates.dense.seconds / self.best()?.seconds)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let p = self.params;
        let timing = match self.best() {
            Ok(best) => format!(
                "{:.3} ms, {:.2}x vs dense",
                best.seconds * 1e3,
                self.estimates.dense.seconds / best.seconds
            ),
            Err(_) => "no estimate".to_string(),
        };
        let evidence = match &self.measured {
            Some(m) => format!(
                " [measured: {} {:.1} GFLOP/s]",
                version_name(m.ladder_version),
                m.gflops
            ),
            None => String::new(),
        };
        format!(
            "{} via {} [{}x{} mt{}xnt{}]{} — {timing}{evidence}",
            self.key,
            self.choice,
            p.ms,
            p.ns,
            p.mt,
            p.nt,
            if self.decision.packing {
                ", packing"
            } else {
                ""
            },
        )
    }
}

// ---------------------------------------------------------------------------
// JSON encoding (hand-rolled: the offline serde shim has no serializer).
// ---------------------------------------------------------------------------

fn est_to_json(e: &EstimateSummary) -> JsonValue {
    JsonValue::object(vec![
        ("seconds", JsonValue::Number(e.seconds)),
        ("tflops", JsonValue::Number(e.tflops)),
        ("efficiency", JsonValue::Number(e.efficiency)),
    ])
}

fn est_from_json(v: &JsonValue) -> Result<EstimateSummary> {
    Ok(EstimateSummary {
        seconds: v.f64_field("seconds")?,
        tflops: v.f64_field("tflops")?,
        efficiency: v.f64_field("efficiency")?,
    })
}

fn opt_est_to_json(e: &Option<EstimateSummary>) -> JsonValue {
    match e {
        Some(e) => est_to_json(e),
        None => JsonValue::Null,
    }
}

fn opt_est_from_json(v: &JsonValue) -> Result<Option<EstimateSummary>> {
    match v {
        JsonValue::Null => Ok(None),
        other => Ok(Some(est_from_json(other)?)),
    }
}

fn host_to_json(host: &Option<PlanHost>) -> JsonValue {
    match host {
        Some(h) => JsonValue::object(vec![
            ("isa", JsonValue::from_str_value(&h.isa)),
            ("threads", JsonValue::from_usize(h.threads)),
        ]),
        None => JsonValue::Null,
    }
}

fn host_from_json(v: Option<&JsonValue>) -> Result<Option<PlanHost>> {
    match v {
        None | Some(JsonValue::Null) => Ok(None),
        Some(h) => Ok(Some(PlanHost {
            isa: h.str_field("isa")?.to_string(),
            threads: h.usize_field("threads")?,
        })),
    }
}

/// Parse a storage tag from a cache document. Absent/null fields load as
/// row-major (pre-v4 documents predate the storage dimension); a present
/// but unrecognized tag is a malformed document.
fn storage_from_json(v: Option<&JsonValue>) -> Result<StorageFormat> {
    match v {
        None | Some(JsonValue::Null) => Ok(StorageFormat::RowMajor),
        Some(s) => {
            let tag = s.as_str().ok_or_else(|| NmError::Persist {
                reason: "`storage` is not a string".into(),
            })?;
            StorageFormat::from_name(tag).map_err(|e| NmError::Persist {
                reason: format!("malformed storage format: {e}"),
            })
        }
    }
}

fn measured_to_json(m: &Option<MeasuredChoice>) -> JsonValue {
    match m {
        Some(m) => JsonValue::object(vec![
            (
                "ladder_version",
                JsonValue::from_str_value(version_name(m.ladder_version)),
            ),
            ("mb", JsonValue::from_usize(m.cpu_tiling.mb)),
            ("nb", JsonValue::from_usize(m.cpu_tiling.nb)),
            ("kb", JsonValue::from_usize(m.cpu_tiling.kb)),
            ("mt", JsonValue::from_usize(m.cpu_tiling.mt)),
            ("storage", JsonValue::from_str_value(&m.storage.tag())),
            ("gflops", JsonValue::Number(m.gflops)),
            ("samples", JsonValue::from_usize(m.samples)),
        ]),
        None => JsonValue::Null,
    }
}

fn measured_from_json(v: Option<&JsonValue>) -> Result<Option<MeasuredChoice>> {
    match v {
        None | Some(JsonValue::Null) => Ok(None),
        Some(m) => Ok(Some(MeasuredChoice {
            ladder_version: version_from_name(m.str_field("ladder_version")?)?,
            cpu_tiling: CpuTiling {
                mb: m.usize_field("mb")?,
                nb: m.usize_field("nb")?,
                kb: m.usize_field("kb")?,
                mt: m.usize_field("mt")?,
            },
            storage: storage_from_json(m.get("storage"))?,
            gflops: m.f64_field("gflops")?,
            samples: m.usize_field("samples")?,
        })),
    }
}

fn plan_to_json(plan: &Plan) -> JsonValue {
    let k = &plan.key;
    let p = &plan.params;
    let d = &plan.decision;
    let e = &plan.estimates;
    JsonValue::object(vec![
        (
            "key",
            JsonValue::object(vec![
                ("device", JsonValue::from_str_value(&k.device)),
                ("device_fp", JsonValue::from_str_value(&k.device_fp)),
                ("m", JsonValue::from_usize(k.m)),
                ("n", JsonValue::from_usize(k.n)),
                ("k", JsonValue::from_usize(k.k)),
                ("n_keep", JsonValue::from_usize(k.n_keep)),
                ("m_win", JsonValue::from_usize(k.m_win)),
                ("l", JsonValue::from_usize(k.l)),
                ("shape", JsonValue::from_str_value(&k.shape.tag())),
                ("storage", JsonValue::from_str_value(&k.storage.tag())),
                ("host", host_to_json(&k.host)),
            ]),
        ),
        ("choice", JsonValue::from_str_value(plan.choice.name())),
        (
            "provenance",
            JsonValue::from_str_value(plan.provenance.name()),
        ),
        ("measured", measured_to_json(&plan.measured)),
        (
            "params",
            JsonValue::object(vec![
                ("ms", JsonValue::from_usize(p.ms)),
                ("ns", JsonValue::from_usize(p.ns)),
                ("mr", JsonValue::from_usize(p.mr)),
                ("nr", JsonValue::from_usize(p.nr)),
                ("mt", JsonValue::from_usize(p.mt)),
                ("nt", JsonValue::from_usize(p.nt)),
            ]),
        ),
        ("evaluated", JsonValue::from_usize(plan.evaluated)),
        (
            "decision",
            JsonValue::object(vec![
                ("packing", JsonValue::Bool(d.packing)),
                (
                    "pipeline",
                    JsonValue::from_str_value(match d.pipeline {
                        PipelineHint::ComputeHidesLoad => "compute_hides_load",
                        PipelineHint::LoadHidesCompute => "load_hides_compute",
                    }),
                ),
                (
                    "bound",
                    JsonValue::from_str_value(match d.predicted_bound {
                        PredictedBound::Compute => "compute",
                        PredictedBound::Memory => "memory",
                    }),
                ),
                ("ai_flops_per_byte", JsonValue::Number(d.ai_flops_per_byte)),
                ("packing_ratio", JsonValue::Number(d.packing_ratio)),
                ("sparsity", JsonValue::Number(d.sparsity)),
            ]),
        ),
        (
            "estimates",
            JsonValue::object(vec![
                ("dense", est_to_json(&e.dense)),
                ("nm_v1", opt_est_to_json(&e.nm_v1)),
                ("nm_v2", opt_est_to_json(&e.nm_v2)),
                ("nm_v3", opt_est_to_json(&e.nm_v3)),
                ("nmsparse", opt_est_to_json(&e.nmsparse)),
                ("sputnik", est_to_json(&e.sputnik)),
                ("sparse_tc", opt_est_to_json(&e.sparse_tc)),
            ]),
        ),
    ])
}

fn plan_from_json(v: &JsonValue) -> Result<Plan> {
    let kv = v.field("key")?;
    let key = PlanKey {
        device: kv.str_field("device")?.to_string(),
        device_fp: kv.str_field("device_fp")?.to_string(),
        m: kv.usize_field("m")?,
        n: kv.usize_field("n")?,
        k: kv.usize_field("k")?,
        n_keep: kv.usize_field("n_keep")?,
        m_win: kv.usize_field("m_win")?,
        l: kv.usize_field("l")?,
        // Version-1/2 documents predate the shape-class dimension; they
        // were all planned through the GEMM path, so they load as prefill.
        shape: match kv.get("shape") {
            None | Some(JsonValue::Null) => ShapeClass::Prefill,
            Some(s) => ShapeClass::from_tag(s.as_str().ok_or_else(|| NmError::Persist {
                reason: "`shape` is not a string".into(),
            })?)?,
        },
        // Version-1/2/3 documents predate the storage dimension; every
        // plan they hold was staged row-major.
        storage: storage_from_json(kv.get("storage"))?,
        // Version-1 documents predate measured provenance and carry no
        // host scope.
        host: host_from_json(kv.get("host"))?,
    };
    let choice = KernelChoice::from_name(v.str_field("choice")?)?;
    // Version-1 documents carry neither field: they were produced by the
    // analytic planner, so they load as CostModel-provenance.
    let provenance = match v.get("provenance") {
        Some(p) => Provenance::from_name(p.as_str().ok_or_else(|| NmError::Persist {
            reason: "`provenance` is not a string".into(),
        })?)?,
        None => Provenance::CostModel,
    };
    let measured = measured_from_json(v.get("measured"))?;
    let pv = v.field("params")?;
    let params = BlockingParams {
        ms: pv.usize_field("ms")?,
        ns: pv.usize_field("ns")?,
        mr: pv.usize_field("mr")?,
        nr: pv.usize_field("nr")?,
        mt: pv.usize_field("mt")?,
        nt: pv.usize_field("nt")?,
    };
    params.validate()?;
    let dv = v.field("decision")?;
    let decision = StrategyDecision {
        packing: dv.bool_field("packing")?,
        pipeline: match dv.str_field("pipeline")? {
            "compute_hides_load" => PipelineHint::ComputeHidesLoad,
            "load_hides_compute" => PipelineHint::LoadHidesCompute,
            other => {
                return Err(NmError::Persist {
                    reason: format!("unknown pipeline hint `{other}`"),
                })
            }
        },
        predicted_bound: match dv.str_field("bound")? {
            "compute" => PredictedBound::Compute,
            "memory" => PredictedBound::Memory,
            other => {
                return Err(NmError::Persist {
                    reason: format!("unknown bound `{other}`"),
                })
            }
        },
        ai_flops_per_byte: dv.f64_field("ai_flops_per_byte")?,
        packing_ratio: dv.f64_field("packing_ratio")?,
        sparsity: dv.f64_field("sparsity")?,
    };
    let ev = v.field("estimates")?;
    let estimates = KernelEstimates {
        dense: est_from_json(ev.field("dense")?)?,
        nm_v1: opt_est_from_json(ev.field("nm_v1")?)?,
        nm_v2: opt_est_from_json(ev.field("nm_v2")?)?,
        nm_v3: opt_est_from_json(ev.field("nm_v3")?)?,
        nmsparse: opt_est_from_json(ev.field("nmsparse")?)?,
        sputnik: est_from_json(ev.field("sputnik")?)?,
        sparse_tc: opt_est_from_json(ev.field("sparse_tc")?)?,
    };
    let plan = Plan {
        key,
        choice,
        params,
        evaluated: v.usize_field("evaluated")?,
        decision,
        estimates,
        provenance,
        measured,
    };
    // Same invariants as in-process construction ([`Plan::validate`]): a
    // (hand-edited or corrupted) document that breaks them is malformed,
    // not merely surprising.
    plan.validate()?;
    Ok(plan)
}

/// Version tag written into cache files; bump on schema changes.
///
/// * v1 — analytic plans only.
/// * v2 — adds `key.host`, `provenance` and `measured` (evidence-based
///   planning). v1 documents still load: they become CostModel-provenance
///   entries with no host scope.
/// * v3 — adds `key.shape` (prefill vs decode). v1/v2 documents still
///   load: their entries were planned through the GEMM path, so they
///   become prefill-class keys.
/// * v4 — adds `key.storage` and `measured.storage` (the SELL-C-σ sliced
///   lane). v1–v3 documents still load: everything they hold was staged
///   row-major, so both fields default to it.
const CACHE_FORMAT_VERSION: usize = 4;

/// Oldest cache-file version [`PlanCache::from_json`] still accepts.
const CACHE_FORMAT_OLDEST: usize = 1;

/// In-memory memo of finished [`Plan`]s with hit/miss accounting and JSON
/// persistence.
#[derive(Debug, Default, Clone)]
pub struct PlanCache {
    entries: HashMap<PlanKey, Plan>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that found a plan (since construction or load).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Counted lookup: bumps the hit or miss counter.
    pub fn lookup(&mut self, key: &PlanKey) -> Option<&Plan> {
        if self.entries.contains_key(key) {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.entries.get(key)
    }

    /// Uncounted lookup.
    pub fn peek(&self, key: &PlanKey) -> Option<&Plan> {
        self.entries.get(key)
    }

    /// Store a plan under its own key.
    pub fn insert(&mut self, plan: Plan) {
        self.entries.insert(plan.key.clone(), plan);
    }

    /// Iterate over memoized plans (unspecified order).
    pub fn plans(&self) -> impl Iterator<Item = &Plan> {
        self.entries.values()
    }

    /// Serialize every entry to a JSON document (deterministic order:
    /// entries are sorted by key).
    pub fn to_json(&self) -> Result<String> {
        let mut plans: Vec<&Plan> = self.entries.values().collect();
        plans.sort_by_key(|p| {
            (
                p.key.device.clone(),
                p.key.device_fp.clone(),
                p.key.m,
                p.key.n,
                p.key.k,
                p.key.n_keep,
                p.key.m_win,
                p.key.l,
                p.key.shape.sort_rank(),
                p.key.storage.tag(),
                p.key.host.clone(),
            )
        });
        let doc = JsonValue::object(vec![
            ("format", JsonValue::from_str_value("nm-spmm plan cache")),
            ("version", JsonValue::from_usize(CACHE_FORMAT_VERSION)),
            (
                "entries",
                JsonValue::Array(plans.into_iter().map(plan_to_json).collect()),
            ),
        ]);
        doc.dump()
    }

    /// Parse a cache from the JSON produced by [`PlanCache::to_json`].
    /// Hit/miss counters start at zero.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = JsonValue::parse(text)?;
        if doc.str_field("format")? != "nm-spmm plan cache" {
            return Err(NmError::Persist {
                reason: "not a plan-cache document".into(),
            });
        }
        let version = doc.usize_field("version")?;
        if !(CACHE_FORMAT_OLDEST..=CACHE_FORMAT_VERSION).contains(&version) {
            return Err(NmError::Persist {
                reason: format!(
                    "plan-cache version {version} unsupported \
                     (expected {CACHE_FORMAT_OLDEST}..={CACHE_FORMAT_VERSION})"
                ),
            });
        }
        let mut cache = Self::new();
        let entries = doc
            .field("entries")?
            .as_array()
            .ok_or_else(|| NmError::Persist {
                reason: "`entries` is not an array".into(),
            })?;
        for entry in entries {
            cache.insert(plan_from_json(entry)?);
        }
        Ok(cache)
    }

    /// Write the cache to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| NmError::Persist {
            reason: format!("writing {}: {e}", path.display()),
        })
    }

    /// Read a cache from a file written by [`PlanCache::save`].
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| NmError::Persist {
            reason: format!("reading {}: {e}", path.display()),
        })?;
        Self::from_json(&text)
    }
}

/// The unified planner: strategy decision + exhaustive autotune, memoized.
#[derive(Debug, Clone)]
pub struct Planner {
    dev: DeviceConfig,
    cache: PlanCache,
}

impl Planner {
    /// Planner for one device with an empty cache.
    pub fn new(dev: DeviceConfig) -> Self {
        Self {
            dev,
            cache: PlanCache::new(),
        }
    }

    /// Planner seeded with a previously built (e.g. loaded) cache.
    pub fn with_cache(dev: DeviceConfig, cache: PlanCache) -> Self {
        Self { dev, cache }
    }

    /// The device this planner plans for.
    pub fn device(&self) -> &DeviceConfig {
        &self.dev
    }

    /// Read access to the memo.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Surrender the memo (for persistence).
    pub fn into_cache(self) -> PlanCache {
        self.cache
    }

    /// Plan a problem: cache lookup first, full strategy + autotune on miss.
    ///
    /// Deterministic: equal `(device, shape class, N:M)` keys always return
    /// equal plans, whether computed or replayed from the cache.
    pub fn plan(&mut self, m: usize, n: usize, k: usize, cfg: NmConfig) -> Result<Plan> {
        self.plan_as(ShapeClass::of_rows(m), m, n, k, cfg)
    }

    /// As [`Planner::plan`], but under an **explicit** shape class instead
    /// of the one `m` classifies to — the planner face of the
    /// [`LoadSpec`](crate::session::LoadSpec) shape-class override.
    ///
    /// `ShapeClass::Decode(r)` plans the decode regime for `r` rows
    /// regardless of `m` (a layer loaded for a prefill row count can get a
    /// decode-band plan without re-loading); `ShapeClass::Prefill` forces
    /// the GEMM regime even for a skinny `m ≤ DECODE_MAX_ROWS` shape.
    ///
    /// # Errors
    /// [`NmError::InvalidConfig`] when `Decode(r)` names a row count
    /// outside `1..=DECODE_MAX_ROWS`.
    pub fn plan_as(
        &mut self,
        class: ShapeClass,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
    ) -> Result<Plan> {
        self.plan_stored(class, StorageFormat::RowMajor, m, n, k, cfg)
    }

    /// As [`Planner::plan_as`], but keyed to an explicit storage lane —
    /// the planner face of the [`LoadSpec`](crate::session::LoadSpec)
    /// storage override. A sliced lane gets its own cache identity; the
    /// analytic estimates are storage-independent (the cost model times
    /// data movement the GPU kernels share), so the lane only changes the
    /// key and what execution stages.
    ///
    /// # Errors
    /// As [`Planner::plan_as`].
    pub fn plan_stored(
        &mut self,
        class: ShapeClass,
        storage: StorageFormat,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
    ) -> Result<Plan> {
        if let ShapeClass::Decode(rows) = class {
            if !(1..=DECODE_MAX_ROWS).contains(&rows) {
                return Err(NmError::InvalidConfig {
                    reason: format!(
                        "decode shape class supports 1..={DECODE_MAX_ROWS} rows, got {rows}"
                    ),
                });
            }
        }
        // A decode override plans *as* that row count; a prefill override
        // keeps the caller's dimensions and only forces the regime.
        let eff_m = match class {
            ShapeClass::Decode(rows) => rows,
            ShapeClass::Prefill => m,
        };
        let mut key = PlanKey::new(&self.dev, eff_m, n, k, cfg);
        key.shape = class;
        key.storage = storage;
        if let Some(plan) = self.cache.lookup(&key) {
            return Ok(plan.clone());
        }
        let plan = compute_plan(&self.dev, key)?;
        self.cache.insert(plan.clone());
        Ok(plan)
    }

    /// Counted lookup of an already-resolved plan under an arbitrary key —
    /// how the session layer consults measured (host-scoped) entries that
    /// [`Planner::plan`] itself never computes.
    pub fn lookup(&mut self, key: &PlanKey) -> Option<Plan> {
        self.cache.lookup(key).cloned()
    }

    /// Store an externally resolved plan (e.g. measured evidence) in the
    /// memo under its own key.
    pub fn insert(&mut self, plan: Plan) {
        self.cache.insert(plan);
    }
}

/// The pure `key → plan` function: everything below operates on the padded
/// class dimensions so equal keys can never diverge.
fn compute_plan(dev: &DeviceConfig, key: PlanKey) -> Result<Plan> {
    let cfg = key.cfg()?;
    let (m, n, k) = (key.m, key.n, key.k);

    // Dense baseline is mandatory — without it no speedup is defined.
    let dense: EstimateSummary = (&DenseGemmKernel::auto(m, n).estimate(dev, m, n, k)?).into();

    // Exhaustive search over the valid blocking space for V3 (the paper's
    // kernel); fall back to the Para_Init_Table preset when the space is
    // empty (e.g. an L no supported ns is a multiple of). Decode keys
    // skip the search entirely: the autotuner ranks *GEMM* tilings by
    // modeled FLOP throughput, which is meaningless at 1–8 activation
    // rows where the kernel streams `B′` once — the preset records a
    // valid launch geometry and the real skinny-vs-GEMM call is made from
    // measurement ([`crate::measure`]), not the cost model.
    let (params, evaluated, nm_v3) = if key.shape.is_decode() {
        let preset = BlockingParams::para_init_table(m, n);
        let rep = NmSpmmKernel::new(NmVersion::V3, preset)
            .estimate(dev, m, n, k, cfg, None)
            .ok();
        (preset, 0, rep.as_ref().map(EstimateSummary::from))
    } else {
        match autotune::tune(dev, m, n, k, cfg) {
            Ok(t) => (t.params, t.evaluated, Some((&t.report).into())),
            Err(_) => {
                let preset = BlockingParams::para_init_table(m, n);
                let rep = NmSpmmKernel::new(NmVersion::V3, preset)
                    .estimate(dev, m, n, k, cfg, None)
                    .ok();
                (preset, 0, rep.as_ref().map(EstimateSummary::from))
            }
        }
    };

    // The strategy decision for the winning blocking. When even the preset
    // cannot launch, fall back to a plain Strategy::decide on the Table I
    // geometry so the plan still records the paper's packing/pipeline call.
    let decision = match NmSpmmKernel::new(NmVersion::V3, params).plan(dev, m, n, k, cfg) {
        Ok(p) => p.decision,
        Err(_) => {
            let block = nm_analysis::ai::BlockAi {
                ms: params.ms,
                ns: params.ns,
                ks: cfg.m.max(32),
                ws: cfg.n.max(1) * cfg.m.max(32) / cfg.m.max(1),
            };
            nm_analysis::strategy::Strategy::decide(dev, cfg, block, (params.ns / cfg.l).max(1))
        }
    };

    // Step-wise versions at the same tuned blocking (Fig. 7's ladder).
    let nm_v1 = NmSpmmKernel::new(NmVersion::V1, params)
        .estimate(dev, m, n, k, cfg, None)
        .ok()
        .as_ref()
        .map(EstimateSummary::from);
    let nm_v2 = NmSpmmKernel::new(NmVersion::V2, params)
        .estimate(dev, m, n, k, cfg, None)
        .ok()
        .as_ref()
        .map(EstimateSummary::from);

    // Comparison baselines.
    let nmsparse = NmSparseKernel
        .estimate(dev, m, n, k, cfg)
        .ok()
        .as_ref()
        .map(EstimateSummary::from);
    let sputnik: EstimateSummary = (&SputnikKernel.estimate(dev, m, n, k, cfg)).into();
    let sparse_tc = SparseTensorCoreKernel
        .estimate(dev, m, n, k, cfg)
        .ok()
        .as_ref()
        .map(EstimateSummary::from);

    let estimates = KernelEstimates {
        dense,
        nm_v1,
        nm_v2,
        nm_v3,
        nmsparse,
        sputnik,
        sparse_tc,
    };

    // Fastest family wins. Only families with an estimate compete; strict
    // `<` means ties keep the earlier entry, and NM-SpMM is listed first,
    // so an exact tie against any baseline (dense included) keeps the
    // paper's kernel.
    let mut choice = KernelChoice::Dense;
    let mut best = f64::INFINITY;
    for cand in [
        KernelChoice::NmV3,
        KernelChoice::NmSparse,
        KernelChoice::Sputnik,
        KernelChoice::SparseTc,
        KernelChoice::Dense,
    ] {
        if let Some(e) = estimates.get(cand) {
            if e.seconds < best {
                best = e.seconds;
                choice = cand;
            }
        }
    }

    Plan::new(key, choice, params, evaluated, decision, estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::{a100_80g, rtx4090};

    fn cfg(n: usize, m: usize) -> NmConfig {
        NmConfig::new(n, m, 32).unwrap()
    }

    #[test]
    fn shape_class_pads_to_32() {
        let dev = a100_80g();
        let a = PlanKey::new(&dev, 100, 200, 300, cfg(4, 16));
        assert_eq!((a.m, a.n, a.k), (128, 224, 320));
        let b = PlanKey::new(&dev, 128, 224, 320, cfg(4, 16));
        assert_eq!(a, b, "shapes in the same class share a key");
        let c = PlanKey::new(&dev, 129, 224, 320, cfg(4, 16));
        assert_ne!(a, c);
    }

    #[test]
    fn planner_hits_cache_on_identical_key() {
        let mut planner = Planner::new(a100_80g());
        let first = planner.plan(512, 512, 512, cfg(4, 16)).unwrap();
        assert_eq!(planner.cache().hits(), 0);
        assert_eq!(planner.cache().misses(), 1);
        // Same class (padding makes 500 ≡ 512 is false — 500 pads to 512).
        let second = planner.plan(500, 500, 500, cfg(4, 16)).unwrap();
        assert_eq!(planner.cache().hits(), 1, "same class must hit");
        assert_eq!(planner.cache().misses(), 1);
        assert_eq!(first, second, "cache replay must be byte-identical");
        assert_eq!(planner.cache().len(), 1);
    }

    #[test]
    fn plan_is_deterministic_for_fixed_key() {
        let dev = rtx4090();
        for level in [cfg(8, 16), cfg(2, 16)] {
            let a = Planner::new(dev.clone())
                .plan(1024, 2048, 4096, level)
                .unwrap();
            let b = Planner::new(dev.clone())
                .plan(1024, 2048, 4096, level)
                .unwrap();
            assert_eq!(a, b, "{level}: fresh planners must agree");
        }
    }

    #[test]
    fn tuned_plan_beats_or_matches_preset() {
        let mut planner = Planner::new(a100_80g());
        let plan = planner.plan(4096, 4096, 4096, cfg(2, 16)).unwrap();
        assert!(plan.evaluated > 100, "search must be exhaustive");
        let preset = NmSpmmKernel::auto(NmVersion::V3, 4096, 4096)
            .estimate(&a100_80g(), 4096, 4096, 4096, cfg(2, 16), None)
            .unwrap();
        let tuned = plan.estimates.nm_v3.unwrap();
        assert!(tuned.seconds <= preset.seconds * 1.0001);
    }

    #[test]
    fn high_sparsity_plan_packs_and_picks_nm() {
        let mut planner = Planner::new(a100_80g());
        let plan = planner.plan(4096, 4096, 4096, cfg(2, 16)).unwrap();
        assert!(plan.decision.packing);
        assert_eq!(plan.choice, KernelChoice::NmV3);
        assert!(plan.speedup_vs_dense().unwrap() > 1.0);
        assert!(!plan.summary().is_empty());
    }

    #[test]
    fn sparse_tc_only_estimated_for_2_4() {
        let mut planner = Planner::new(a100_80g());
        let p24 = planner
            .plan(1024, 1024, 1024, NmConfig::new(2, 4, 32).unwrap())
            .unwrap();
        assert!(p24.estimates.sparse_tc.is_some());
        let p216 = planner.plan(1024, 1024, 1024, cfg(2, 16)).unwrap();
        assert!(p216.estimates.sparse_tc.is_none());
    }

    #[test]
    fn cache_json_round_trips_exactly() {
        let mut planner = Planner::new(a100_80g());
        for level in [
            cfg(8, 16),
            cfg(4, 16),
            cfg(2, 16),
            NmConfig::new(2, 4, 32).unwrap(),
        ] {
            planner.plan(512, 1024, 2048, level).unwrap();
            planner.plan(256, 256, 256, level).unwrap();
        }
        let cache = planner.into_cache();
        let json = cache.to_json().unwrap();
        let reloaded = PlanCache::from_json(&json).unwrap();
        assert_eq!(reloaded.len(), cache.len());
        for plan in cache.plans() {
            assert_eq!(
                reloaded.peek(&plan.key),
                Some(plan),
                "{} must survive the round trip bit-exactly",
                plan.key
            );
        }
        // Serialization is deterministic.
        assert_eq!(json, reloaded.to_json().unwrap());
    }

    #[test]
    fn reloaded_cache_serves_hits_without_recompute() {
        let dev = a100_80g();
        let mut planner = Planner::new(dev.clone());
        let original = planner.plan(512, 512, 2048, cfg(4, 16)).unwrap();
        let json = planner.cache().to_json().unwrap();

        let reloaded = PlanCache::from_json(&json).unwrap();
        let mut warm = Planner::with_cache(dev, reloaded);
        let replay = warm.plan(512, 512, 2048, cfg(4, 16)).unwrap();
        assert_eq!(warm.cache().hits(), 1, "reload must hit");
        assert_eq!(warm.cache().misses(), 0);
        assert_eq!(original, replay);
    }

    #[test]
    fn malformed_cache_documents_rejected() {
        assert!(PlanCache::from_json("{}").is_err());
        assert!(PlanCache::from_json("[]").is_err());
        assert!(PlanCache::from_json(
            r#"{"format":"nm-spmm plan cache","version":99,"entries":[]}"#
        )
        .is_err());
        assert!(
            PlanCache::from_json(r#"{"format":"something else","version":1,"entries":[]}"#)
                .is_err()
        );
        // Empty but well-formed is fine.
        let empty =
            PlanCache::from_json(r#"{"format":"nm-spmm plan cache","version":1,"entries":[]}"#)
                .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn edited_device_model_invalidates_cached_plans() {
        // Same marketing name, different silicon: the fingerprint must
        // force a miss instead of replaying stale estimates.
        let mut dev = a100_80g();
        let level = cfg(4, 16);
        let mut planner = Planner::new(dev.clone());
        planner.plan(1024, 1024, 1024, level).unwrap();
        let cache = planner.into_cache();

        dev.dram_bw *= 2.0;
        // The handed-over cache keeps its counters (unlike a JSON reload,
        // which zeroes them): one miss from the population pass above.
        let mut warm = Planner::with_cache(dev, cache);
        warm.plan(1024, 1024, 1024, level).unwrap();
        assert_eq!(warm.cache().hits(), 0, "stale plan must not replay");
        assert_eq!(warm.cache().misses(), 2);
        assert_eq!(warm.cache().len(), 2, "both fingerprints coexist");
    }

    #[test]
    fn choice_without_estimate_is_rejected_at_load() {
        // A document whose chosen family carries a null estimate would
        // panic in Plan::best; loading must fail instead.
        let mut planner = Planner::new(a100_80g());
        let plan = planner.plan(256, 256, 256, cfg(2, 16)).unwrap();
        assert!(
            plan.estimates.sparse_tc.is_none(),
            "test setup: 2:16 has no sparse-TC estimate"
        );
        let json = planner.cache().to_json().unwrap();
        let needle = format!("\"choice\":\"{}\"", plan.choice.name());
        let corrupted = json.replace(&needle, "\"choice\":\"sparse_tc\"");
        let err = PlanCache::from_json(&corrupted).unwrap_err();
        assert!(
            err.to_string().contains("no estimate"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn tie_against_dense_keeps_the_nm_kernel() {
        // Dense N = M config: V3 and dense model the same computation, so
        // their estimates can tie; the NM kernel must win the tie per the
        // documented resolution order (NM listed first).
        let mut planner = Planner::new(a100_80g());
        let plan = planner
            .plan(4096, 4096, 4096, NmConfig::new(32, 32, 32).unwrap())
            .unwrap();
        let v3 = plan.estimates.nm_v3.unwrap();
        if v3.seconds <= plan.estimates.dense.seconds {
            assert_eq!(plan.choice, KernelChoice::NmV3);
        } else {
            assert_eq!(plan.choice, KernelChoice::Dense);
        }
    }

    fn demo_host() -> PlanHost {
        PlanHost {
            isa: "avx2".into(),
            threads: 4,
        }
    }

    fn demo_measured() -> MeasuredChoice {
        MeasuredChoice {
            ladder_version: NmVersion::V1,
            cpu_tiling: CpuTiling {
                mb: 64,
                nb: 128,
                kb: 128,
                mt: 8,
            },
            storage: StorageFormat::RowMajor,
            gflops: 12.5,
            samples: 3,
        }
    }

    #[test]
    fn in_process_construction_rejects_choice_without_estimate() {
        // The old `Plan::best()` panicked on exactly this shape of plan;
        // the validated constructor must refuse to build it instead.
        let mut planner = Planner::new(a100_80g());
        let plan = planner.plan(256, 256, 256, cfg(2, 16)).unwrap();
        assert!(plan.estimates.sparse_tc.is_none());
        let err = Plan::new(
            plan.key.clone(),
            KernelChoice::SparseTc,
            plan.params,
            plan.evaluated,
            plan.decision,
            plan.estimates,
        )
        .unwrap_err();
        assert!(matches!(err, NmError::InvalidConfig { .. }), "{err}");
        assert!(err.to_string().contains("no estimate"), "{err}");

        // A hand-built literal that sneaks past the constructor still gets
        // a structured error from `best()`, never a panic.
        let mut bad = plan.clone();
        bad.choice = KernelChoice::SparseTc;
        assert!(bad.best().is_err());
        assert!(bad.speedup_vs_dense().is_err());
        assert!(bad.summary().contains("no estimate"));
    }

    #[test]
    fn measured_provenance_round_trips_through_json() {
        let mut planner = Planner::new(a100_80g());
        let base = planner.plan(512, 512, 512, cfg(2, 8)).unwrap();
        assert_eq!(base.provenance, Provenance::CostModel);
        let measured = base.with_measured(demo_host(), demo_measured()).unwrap();
        assert_eq!(measured.provenance, Provenance::Measured);
        assert_eq!(measured.key.host, Some(demo_host()));

        let mut cache = planner.into_cache();
        cache.insert(measured.clone());
        let json = cache.to_json().unwrap();
        let reloaded = PlanCache::from_json(&json).unwrap();
        assert_eq!(reloaded.len(), 2, "cost-model and measured coexist");
        assert_eq!(reloaded.peek(&base.key), Some(&base));
        assert_eq!(reloaded.peek(&measured.key), Some(&measured));
        // Serialization stays deterministic with host-scoped keys present.
        assert_eq!(json, reloaded.to_json().unwrap());
    }

    #[test]
    fn measured_entries_miss_on_foreign_host() {
        // A cache moved between hosts (different ISA) or run configs
        // (different thread count) must miss, not replay the measurement.
        let mut planner = Planner::new(a100_80g());
        let base = planner.plan(512, 512, 512, cfg(2, 8)).unwrap();
        let measured = base.with_measured(demo_host(), demo_measured()).unwrap();
        let mut cache = planner.into_cache();
        cache.insert(measured.clone());

        assert!(cache.lookup(&measured.key).is_some());
        let other_isa = base.key.for_host(PlanHost {
            isa: "avx512".into(),
            threads: 4,
        });
        assert!(cache.lookup(&other_isa).is_none(), "ISA change must miss");
        let other_threads = base.key.for_host(PlanHost {
            isa: "avx2".into(),
            threads: 8,
        });
        assert!(
            cache.lookup(&other_threads).is_none(),
            "thread-count change must miss"
        );
    }

    #[test]
    fn version_1_documents_load_as_cost_model_provenance() {
        // Produce a v3 document holding only analytic plans, then rewrite
        // it into the exact v1 schema (no shape, no host, no provenance,
        // no measured) — the serializer is ours, so the surgery is exact.
        let mut planner = Planner::new(a100_80g());
        let plan = planner.plan(512, 1024, 2048, cfg(4, 16)).unwrap();
        let v3 = planner.cache().to_json().unwrap();
        let v1 = v3
            .replace("\"version\":4", "\"version\":1")
            .replace("\"shape\":\"prefill\",", "")
            .replace("\"storage\":\"rowmajor\",", "")
            .replace(",\"host\":null", "")
            .replace("\"provenance\":\"cost_model\",\"measured\":null,", "");
        assert!(!v1.contains("provenance"), "surgery must remove v2 fields");
        assert!(!v1.contains("shape"), "surgery must remove v3 fields");
        assert!(!v1.contains("storage"), "surgery must remove v4 fields");
        let cache = PlanCache::from_json(&v1).unwrap();
        let loaded = cache.peek(&plan.key).expect("v1 entry must load");
        assert_eq!(loaded.provenance, Provenance::CostModel);
        assert_eq!(loaded.measured, None);
        assert_eq!(loaded.key.host, None);
        assert_eq!(loaded.key.shape, ShapeClass::Prefill);
        assert_eq!(loaded, &plan, "v1 reload equals the in-process plan");
    }

    #[test]
    fn decode_shapes_key_separately_from_prefill_and_each_other() {
        // m = 1..8 all pad to the same 32-row granule; before the shape
        // class they collided on one cache entry with each other AND with
        // a 32-row prefill problem.
        let dev = a100_80g();
        let level = cfg(4, 16);
        let prefill = PlanKey::new(&dev, 32, 4096, 4096, level);
        assert_eq!(prefill.shape, ShapeClass::Prefill);
        let mut seen = vec![prefill];
        for rows in 1..=DECODE_MAX_ROWS {
            let key = PlanKey::new(&dev, rows, 4096, 4096, level);
            assert_eq!(key.m, 32, "decode rows still pad for plan purity");
            assert_eq!(key.shape, ShapeClass::Decode(rows));
            assert!(
                !seen.contains(&key),
                "decode:{rows} must not collide with any earlier key"
            );
            seen.push(key);
        }
        assert_eq!(ShapeClass::of_rows(9), ShapeClass::Prefill);
        assert_eq!(
            ShapeClass::of_rows(0),
            ShapeClass::Prefill,
            "empty is not decode"
        );
    }

    #[test]
    fn decode_plans_skip_the_gemm_autotuner_and_round_trip() {
        let mut planner = Planner::new(a100_80g());
        let decode = planner.plan(1, 4096, 4096, cfg(2, 16)).unwrap();
        assert!(decode.key.shape.is_decode());
        assert_eq!(
            decode.evaluated, 0,
            "decode must not search GEMM tilings; selection is measured"
        );
        let prefill = planner.plan(512, 4096, 4096, cfg(2, 16)).unwrap();
        assert!(prefill.evaluated > 0, "prefill keeps the exhaustive search");

        let cache = planner.into_cache();
        let json = cache.to_json().unwrap();
        assert!(json.contains("\"shape\":\"decode:1\""));
        let reloaded = PlanCache::from_json(&json).unwrap();
        assert_eq!(reloaded.peek(&decode.key), Some(&decode));
        assert_eq!(json, reloaded.to_json().unwrap(), "deterministic order");
    }

    #[test]
    fn shape_class_tags_round_trip() {
        for class in [
            ShapeClass::Prefill,
            ShapeClass::Decode(1),
            ShapeClass::Decode(DECODE_MAX_ROWS),
        ] {
            assert_eq!(ShapeClass::from_tag(&class.tag()).unwrap(), class);
        }
        assert!(ShapeClass::from_tag("decode:0").is_err());
        assert!(ShapeClass::from_tag("decode:9").is_err());
        assert!(ShapeClass::from_tag("decode:x").is_err());
        assert!(ShapeClass::from_tag("gemm").is_err());
    }

    #[test]
    fn measured_invariants_rejected_at_load_and_construction() {
        let mut planner = Planner::new(a100_80g());
        let base = planner.plan(256, 256, 256, cfg(2, 16)).unwrap();
        let measured = base.with_measured(demo_host(), demo_measured()).unwrap();
        let mut cache = PlanCache::new();
        cache.insert(measured);
        let json = cache.to_json().unwrap();

        // Provenance says measured but the evidence is stripped out.
        let broken = json.replace("\"measured\":{", "\"measured\":null,\"x\":{");
        assert!(PlanCache::from_json(&broken).is_err());

        // In-process: measured provenance without evidence must not build.
        let mut bad = base.clone();
        bad.provenance = Provenance::Measured;
        assert!(bad.validate().is_err());
        // And measured evidence requires a host-scoped key.
        let mut unscoped = base.with_measured(demo_host(), demo_measured()).unwrap();
        unscoped.key.host = None;
        assert!(unscoped.validate().is_err());
    }

    #[test]
    fn storage_lane_keys_and_measured_storage_round_trip() {
        use nm_core::sliced::SlicedLayout;
        let mut planner = Planner::new(a100_80g());
        let level = cfg(2, 16);
        let sliced = StorageFormat::Sliced(SlicedLayout::new(8, 32).unwrap());
        // The sliced lane gets its own cache identity next to the auto one.
        let auto = planner
            .plan_as(ShapeClass::Decode(1), 1, 4096, 4096, level)
            .unwrap();
        let pinned = planner
            .plan_stored(ShapeClass::Decode(1), sliced, 1, 4096, 4096, level)
            .unwrap();
        assert_eq!(auto.key.storage, StorageFormat::RowMajor);
        assert_eq!(pinned.key.storage, sliced);
        assert_ne!(auto.key, pinned.key, "lanes must not collide");
        assert_eq!(planner.cache().len(), 2);

        // A measured winner can carry a sliced format on the auto lane.
        let mut m = demo_measured();
        m.storage = sliced;
        let measured = auto.with_measured(demo_host(), m).unwrap();
        let mut cache = planner.into_cache();
        cache.insert(measured.clone());
        let json = cache.to_json().unwrap();
        assert!(json.contains("\"storage\":\"sliced:8:32\""));
        let reloaded = PlanCache::from_json(&json).unwrap();
        assert_eq!(reloaded.peek(&pinned.key), Some(&pinned));
        assert_eq!(
            reloaded
                .peek(&measured.key)
                .unwrap()
                .measured
                .unwrap()
                .storage,
            sliced
        );
        assert_eq!(json, reloaded.to_json().unwrap(), "deterministic order");

        // A v3 document (no storage fields) loads as row-major — surgery
        // on our own serializer keeps the exercise exact.
        let mut v3cache = PlanCache::new();
        v3cache.insert(auto.clone());
        let v3 = v3cache
            .to_json()
            .unwrap()
            .replace("\"version\":4", "\"version\":3")
            .replace("\"storage\":\"rowmajor\",", "");
        assert!(!v3.contains("storage"));
        let loaded = PlanCache::from_json(&v3).unwrap();
        assert_eq!(
            loaded.peek(&auto.key),
            Some(&auto),
            "v3 reload equals the in-process plan (row-major lane)"
        );

        // A malformed storage tag is a persistence error, not a fallback.
        let bad = json.replace("\"storage\":\"sliced:8:32\"", "\"storage\":\"sell\"");
        assert!(matches!(
            PlanCache::from_json(&bad),
            Err(NmError::Persist { .. })
        ));
    }

    #[test]
    fn provenance_names_round_trip() {
        for p in [Provenance::CostModel, Provenance::Measured] {
            assert_eq!(Provenance::from_name(p.name()).unwrap(), p);
        }
        assert!(Provenance::from_name("oracle").is_err());
    }

    #[test]
    fn kernel_choice_names_round_trip() {
        for c in [
            KernelChoice::Dense,
            KernelChoice::NmV1,
            KernelChoice::NmV2,
            KernelChoice::NmV3,
            KernelChoice::NmSparse,
            KernelChoice::Sputnik,
            KernelChoice::SparseTc,
        ] {
            assert_eq!(KernelChoice::from_name(c.name()).unwrap(), c);
        }
        assert!(KernelChoice::from_name("cublas").is_err());
    }
}
