//! Blocking parameters: Table I, `Para_Init_Table`, and the shared-memory
//! equation (Eq. 4/5) that derives `ks`.

use gpu_sim::device::DeviceConfig;
use nm_core::error::{NmError, Result};
use nm_core::pattern::NmConfig;
use serde::{Deserialize, Serialize};

/// Table I row: shared-memory block, warp tile and thread tile sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingParams {
    /// Block rows of `C` per thread block.
    pub ms: usize,
    /// Block columns of `C` per thread block.
    pub ns: usize,
    /// Warp-tile rows (`mr = lanes_y · mt`).
    pub mr: usize,
    /// Warp-tile columns (`nr = lanes_x · nt`).
    pub nr: usize,
    /// Thread-tile rows.
    pub mt: usize,
    /// Thread-tile columns.
    pub nt: usize,
}

impl BlockingParams {
    /// Table I "small" column.
    pub const fn small() -> Self {
        Self {
            ms: 32,
            ns: 32,
            mr: 16,
            nr: 32,
            mt: 4,
            nt: 4,
        }
    }

    /// Table I "medium" column.
    pub const fn medium() -> Self {
        Self {
            ms: 32,
            ns: 64,
            mr: 32,
            nr: 32,
            mt: 8,
            nt: 4,
        }
    }

    /// Table I "large" column.
    pub const fn large() -> Self {
        Self {
            ms: 64,
            ns: 128,
            mr: 64,
            nr: 32,
            mt: 8,
            nt: 8,
        }
    }

    /// All three Table I rows with their labels, in paper order.
    pub fn table_i() -> [(&'static str, BlockingParams); 3] {
        [
            ("small", Self::small()),
            ("medium", Self::medium()),
            ("large", Self::large()),
        ]
    }

    /// Listing 1's `Para_Init_Table(m, n)`: select a Table I row by problem
    /// footprint, matching the Table II size classes (A,B → small; C,D →
    /// medium; E,F → large).
    pub fn para_init_table(m: usize, n: usize) -> Self {
        let cells = m.saturating_mul(n);
        if cells <= 512 * 1024 {
            Self::small()
        } else if cells <= 1024 * 2048 {
            Self::medium()
        } else {
            Self::large()
        }
    }

    /// Threads per block: `(ms·ns)/(mt·nt)`.
    pub fn threads(&self) -> usize {
        self.ms * self.ns / (self.mt * self.nt)
    }

    /// Warps per block: `(ms/mr)·(ns/nr)`.
    pub fn warps(&self) -> usize {
        (self.ms / self.mr) * (self.ns / self.nr)
    }

    /// Warp lane grid `(lanes_y, lanes_x)` — 4×8, 8×4 etc.
    pub fn lane_grid(&self) -> (usize, usize) {
        (self.mr / self.mt, self.nr / self.nt)
    }

    /// Structural validation: divisibility, 32-lane warps, Table I's
    /// "multiples of 32" rule, and the Eq. (6) register budget.
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: String| Err(NmError::InvalidBlocking { reason });
        if !self.ms.is_multiple_of(32) || !self.ns.is_multiple_of(32) {
            return fail(format!(
                "ms={} and ns={} must be multiples of 32 (bank-conflict rule)",
                self.ms, self.ns
            ));
        }
        if !self.ms.is_multiple_of(self.mr) || !self.ns.is_multiple_of(self.nr) {
            return fail(format!(
                "warp tile {}x{} must divide block {}x{}",
                self.mr, self.nr, self.ms, self.ns
            ));
        }
        if !self.mr.is_multiple_of(self.mt) || !self.nr.is_multiple_of(self.nt) {
            return fail(format!(
                "thread tile {}x{} must divide warp tile {}x{}",
                self.mt, self.nt, self.mr, self.nr
            ));
        }
        let (ly, lx) = self.lane_grid();
        if ly * lx != 32 {
            return fail(format!("warp lane grid {ly}x{lx} must have 32 lanes"));
        }
        if self.mt + self.nt + self.mt * self.nt > 255 {
            return fail(format!(
                "thread tile {}x{} exceeds the 255-register budget",
                self.mt, self.nt
            ));
        }
        Ok(())
    }
}

/// Fully derived blocking for one (device, sparsity, k) combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blocking {
    /// The Table I parameters this blocking instantiates.
    pub params: BlockingParams,
    /// Dense k-depth per main-loop iteration (multiple of `M`).
    pub ks: usize,
    /// Compressed rows per iteration (`ws = ks·N/M`).
    pub ws: usize,
    /// Pruning windows per block column (`qs = ns/L`).
    pub qs: usize,
    /// Whether shared-memory tiles are double-buffered (V3).
    pub double_buffer: bool,
    /// Shared-memory bytes per block (all buffers).
    pub smem_bytes: usize,
    /// Estimated registers per thread.
    pub regs_per_thread: usize,
}

/// Fixed per-thread register overhead (pointers, loop counters, offsets).
const REG_OVERHEAD: usize = 26;
/// Cap on the per-thread index-prefetch buffer (`idx[ws]` in Listing 4);
/// beyond this the kernel prefetches in chunks.
const IDX_PREFETCH_CAP: usize = 40;

/// Derive `ks` from the shared-memory capacity (paper Eq. 4/5) and fill in
/// the dependent quantities.
///
/// Eq. (4): `4·(ks·ms + ws·ns + ws·qs) ≤ SM_Size · 0.5` with
/// `ws = ks·N/M`; the reserved half holds the V3 double buffers, so V1/V2
/// simply use half the SM (allowing two resident blocks) while V3 uses all
/// of it.
pub fn derive_blocking(
    dev: &DeviceConfig,
    params: BlockingParams,
    cfg: NmConfig,
    k: usize,
    double_buffer: bool,
    inner_double_buffer: bool,
) -> Result<Blocking> {
    params.validate()?;
    if !params.ns.is_multiple_of(cfg.l) {
        return Err(NmError::InvalidBlocking {
            reason: format!(
                "ns={} must be a multiple of the vector length L={}",
                params.ns, cfg.l
            ),
        });
    }
    let (n_keep, m_win) = (cfg.n, cfg.m);
    let qs = params.ns / cfg.l;
    // Half the SM per Eq. 4, minus a small reserve for the `col_info`
    // staging buffer and "other temporary variables" (paper §III-B1).
    let budget = dev.max_shared_per_sm / 2 - 2048;
    // bytes(ks) = 4·ks·ms + 4·(ks·N/M)·ns + (ks·N/M)·qs  (Ds stored as u8)
    let denom = 4.0 * params.ms as f64
        + (n_keep as f64 / m_win as f64) * (4.0 * params.ns as f64 + qs as f64);
    let ks_cap = (budget as f64 / denom).floor() as usize;
    let k_padded = k.div_ceil(m_win) * m_win;
    let ks = (ks_cap / m_win * m_win).clamp(m_win, k_padded.max(m_win));
    let ws = ks * n_keep / m_win;

    let tile_bytes = 4 * ks * params.ms + 4 * ws * params.ns + ws * qs;
    let smem_bytes = tile_bytes * if double_buffer { 2 } else { 1 };

    let frag = (params.mt + params.nt) * if inner_double_buffer { 2 } else { 1 };
    let idx_regs = if inner_double_buffer {
        ws.min(IDX_PREFETCH_CAP)
    } else {
        0
    };
    let regs_per_thread =
        (params.mt * params.nt + frag + idx_regs + REG_OVERHEAD).min(dev.max_registers_per_thread);

    Ok(Blocking {
        params,
        ks,
        ws,
        qs,
        double_buffer,
        smem_bytes,
        regs_per_thread,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::{a100_80g, rtx3090};

    fn cfg(n: usize, m: usize) -> NmConfig {
        NmConfig::new(n, m, 32).unwrap()
    }

    #[test]
    fn table_i_rows_are_valid() {
        for (label, p) in BlockingParams::table_i() {
            p.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(p.lane_grid().0 * p.lane_grid().1, 32, "{label}");
        }
    }

    #[test]
    fn table_i_thread_and_warp_counts() {
        assert_eq!(BlockingParams::small().threads(), 64);
        assert_eq!(BlockingParams::small().warps(), 2);
        assert_eq!(BlockingParams::medium().threads(), 64);
        assert_eq!(BlockingParams::medium().warps(), 2);
        assert_eq!(BlockingParams::large().threads(), 128);
        assert_eq!(BlockingParams::large().warps(), 4);
    }

    #[test]
    fn para_init_matches_table_ii_classes() {
        assert_eq!(
            BlockingParams::para_init_table(512, 512),
            BlockingParams::small()
        );
        assert_eq!(
            BlockingParams::para_init_table(512, 1024),
            BlockingParams::small()
        );
        assert_eq!(
            BlockingParams::para_init_table(512, 2048),
            BlockingParams::medium()
        );
        assert_eq!(
            BlockingParams::para_init_table(1024, 2048),
            BlockingParams::medium()
        );
        assert_eq!(
            BlockingParams::para_init_table(2048, 4096),
            BlockingParams::large()
        );
        assert_eq!(
            BlockingParams::para_init_table(4096, 4096),
            BlockingParams::large()
        );
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = BlockingParams::large();
        p.ms = 48; // not a multiple of 32
        assert!(p.validate().is_err());
        let mut p = BlockingParams::large();
        p.mt = 16;
        p.nt = 16; // 288 regs
        assert!(p.validate().is_err());
        let mut p = BlockingParams::large();
        p.mr = 48; // does not divide ms=64
        assert!(p.validate().is_err());
    }

    #[test]
    fn ks_satisfies_eq4_budget() {
        let dev = a100_80g();
        for c in [
            cfg(8, 16),
            cfg(6, 16),
            cfg(4, 16),
            cfg(2, 16),
            NmConfig::new(32, 32, 32).unwrap(),
        ] {
            for (_, p) in BlockingParams::table_i() {
                let b = derive_blocking(&dev, p, c, 4096, false, false).unwrap();
                let bytes = 4 * (b.ks * p.ms + b.ws * p.ns) + b.ws * b.qs;
                assert!(
                    bytes <= dev.max_shared_per_sm / 2,
                    "Eq.4 violated for {c}: {bytes} > {}",
                    dev.max_shared_per_sm / 2
                );
                assert_eq!(b.ks % c.m, 0, "ks must be a multiple of M");
                assert_eq!(b.ws, b.ks * c.n / c.m);
            }
        }
    }

    #[test]
    fn higher_sparsity_allows_larger_ks() {
        // With smaller ws, the same budget admits deeper k blocks — the
        // §IV-E observation that 75% reaches higher AI than 62.5%.
        let dev = a100_80g();
        let p = BlockingParams::large();
        let k50 = derive_blocking(&dev, p, cfg(8, 16), 8192, false, false)
            .unwrap()
            .ks;
        let k875 = derive_blocking(&dev, p, cfg(2, 16), 8192, false, false)
            .unwrap()
            .ks;
        assert!(
            k875 > k50,
            "ks at 87.5% ({k875}) must exceed ks at 50% ({k50})"
        );
    }

    #[test]
    fn double_buffer_doubles_smem() {
        let dev = a100_80g();
        let p = BlockingParams::large();
        let single = derive_blocking(&dev, p, cfg(4, 16), 4096, false, false).unwrap();
        let double = derive_blocking(&dev, p, cfg(4, 16), 4096, true, true).unwrap();
        assert_eq!(double.smem_bytes, 2 * single.smem_bytes);
        assert!(double.smem_bytes <= dev.max_shared_per_sm);
        assert!(double.regs_per_thread > single.regs_per_thread);
    }

    #[test]
    fn ks_clamps_to_problem_depth() {
        let dev = a100_80g();
        let p = BlockingParams::small();
        let b = derive_blocking(&dev, p, cfg(8, 16), 64, false, false).unwrap();
        assert!(b.ks <= 64);
        assert_eq!(b.ks % 16, 0);
    }

    #[test]
    fn smaller_smem_devices_get_smaller_ks() {
        let p = BlockingParams::large();
        let a = derive_blocking(&a100_80g(), p, cfg(4, 16), 8192, false, false)
            .unwrap()
            .ks;
        let r = derive_blocking(&rtx3090(), p, cfg(4, 16), 8192, false, false)
            .unwrap()
            .ks;
        assert!(
            r < a,
            "3090 (100KB smem) ks {r} must be below A100 (164KB) {a}"
        );
    }

    #[test]
    fn rejects_ns_not_multiple_of_l() {
        let dev = a100_80g();
        let p = BlockingParams::small(); // ns = 32
        let c = NmConfig::new(2, 16, 48).unwrap(); // L = 48 does not divide 32
        assert!(derive_blocking(&dev, p, c, 1024, false, false).is_err());
    }

    #[test]
    fn registers_capped_at_architectural_limit() {
        let dev = a100_80g();
        let p = BlockingParams::large();
        let b = derive_blocking(&dev, p, cfg(2, 16), 8192, true, true).unwrap();
        assert!(b.regs_per_thread <= 255);
    }
}
