//! Explicit SIMD micro-kernels with runtime ISA dispatch.
//!
//! The CPU ladder's hot loop is a register-resident `C` tile accumulated
//! across a whole k-block: `MW = 4` rows by 16 (or 32) columns, with `B`
//! streamed from the staged block and `A` gathered through per-window
//! indices. Until this module existed that tile was a scalar loop that
//! leaned on LLVM auto-vectorization — which, at the default `x86-64`
//! target baseline, means SSE2 without FMA. Here the same tile is written
//! explicitly with `std::arch` intrinsics:
//!
//! * **AVX2 + FMA** (x86_64) — two/four 256-bit accumulators per row,
//! * **AVX-512F** (x86_64) — one/two 512-bit accumulators per row,
//! * **NEON** (aarch64) — four/eight 128-bit accumulators per row,
//! * **scalar** — the portable fallback, and the A/B baseline for the
//!   `bench_measured` SIMD-vs-scalar comparison.
//!
//! Two tile widths exist: the classic `4×16` ([`MicroKernel::run4x16`])
//! and a wider `4×32` dual-accumulator variant ([`MicroKernel::run4x32`])
//! used when the vector length `L` is a multiple of 32 — one `A` broadcast
//! then feeds twice the FMA work, and the extra independent accumulator
//! chains hide FMA latency.
//!
//! ## Skinny tiles — the decode path
//!
//! Autoregressive decode multiplies one (or a handful of) activation rows
//! against the same pruned weights; forcing those shapes through the 4-row
//! tile would compute and then discard up to 3 rows of work. Every tile
//! therefore also exists at **1 and 2 rows**
//! ([`MicroKernel::run1x16`] / [`MicroKernel::run2x16`] /
//! [`MicroKernel::run1x32`] / [`MicroKernel::run2x32`]): the same
//! streamed-`B′` inner loop, const-generic over the row count, so a row
//! panel runs a 4→2→1 ladder and no row ever pays for a sibling it does
//! not have. At one row the tile *is* a vectorized SpMV over the staged
//! block — the kernel the prepared decode path is built on.
//!
//! ## Dispatch discipline
//!
//! Feature detection (`is_x86_feature_detected!` /
//! `std::arch::is_aarch64_feature_detected!`) happens **once**, when a
//! [`MicroKernel`] is constructed — [`CpuPrepared`](crate::cpu::CpuPrepared)
//! stores the selection, so the per-block hot path only matches on an enum
//! it already holds, never re-detects. A `MicroKernel` for an unsupported
//! ISA is unrepresentable: every constructor verifies host support and
//! returns [`NmError::Unsupported`] otherwise, which is what makes the
//! `unsafe` calls into `#[target_feature]` functions sound.
//!
//! ## Overrides
//!
//! [`MicroKernel::select`] honors two environment variables so CI can A/B
//! the SIMD and scalar paths on the same host:
//!
//! * `NM_SPMM_FORCE_SCALAR=1` (or `true`) — force the scalar tile;
//! * `NM_SPMM_ISA=scalar|avx2|avx512|neon|native` — request a specific
//!   ISA; an ISA the host cannot run is a structured error, never an
//!   illegal-instruction fault.

use nm_core::error::{NmError, Result};

/// Rows of the register micro-tile.
pub const MW: usize = 4;
/// Columns of the narrow micro-tile (the fast path's minimum granularity).
pub const NW: usize = 16;
/// Columns of the wide dual-accumulator micro-tile.
pub const NW2: usize = 32;

/// The instruction sets a micro-kernel can be compiled for.
///
/// All variants exist on every build target so names stay stable in
/// serialized artifacts (`BENCH_pr.json`); whether a variant can *run*
/// here is [`Isa::supported`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable scalar tile (auto-vectorized at the build's baseline).
    Scalar,
    /// 256-bit AVX2 with FMA (x86_64).
    Avx2,
    /// 512-bit AVX-512F (x86_64).
    Avx512,
    /// 128-bit NEON (aarch64, where it is architecturally mandatory).
    Neon,
}

impl Isa {
    /// Every ISA, portable first.
    pub const ALL: [Isa; 4] = [Isa::Scalar, Isa::Avx2, Isa::Avx512, Isa::Neon];

    /// Stable identifier (`scalar`, `avx2`, `avx512`, `neon`) — the value
    /// recorded in `BENCH_pr.json`'s `isa` fields.
    pub fn name(&self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// Inverse of [`Isa::name`] (case-insensitive).
    pub fn from_name(name: &str) -> Result<Self> {
        Self::ALL
            .into_iter()
            .find(|i| i.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| NmError::Unsupported {
                reason: format!("unknown ISA `{name}` (expected scalar, avx2, avx512 or neon)"),
            })
    }

    /// Whether this host can execute the ISA's micro-kernel: compiled for
    /// this architecture *and* the CPU reports the feature at runtime.
    pub fn supported(&self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// The widest ISA this host supports (the default selection).
    pub fn detect() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if Isa::Avx512.supported() {
                return Isa::Avx512;
            }
            if Isa::Avx2.supported() {
                return Isa::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if Isa::Neon.supported() {
                return Isa::Neon;
            }
        }
        Isa::Scalar
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A validated micro-kernel selection: an [`Isa`] this host is proven to
/// support. Construction is the *only* place feature detection happens;
/// the hot path dispatches on the stored value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroKernel {
    isa: Isa,
}

impl MicroKernel {
    /// The portable scalar kernel (always available).
    pub fn scalar() -> Self {
        Self { isa: Isa::Scalar }
    }

    /// The widest kernel the host supports, ignoring environment
    /// overrides.
    pub fn native() -> Self {
        Self { isa: Isa::detect() }
    }

    /// The kernel for a specific ISA.
    ///
    /// # Errors
    /// [`NmError::Unsupported`] when this host cannot execute `isa` — the
    /// invariant that makes the SIMD dispatch sound.
    pub fn for_isa(isa: Isa) -> Result<Self> {
        if isa.supported() {
            Ok(Self { isa })
        } else {
            Err(NmError::Unsupported {
                reason: format!(
                    "the {isa} micro-kernel cannot run on this host \
                     (feature not detected or wrong architecture)"
                ),
            })
        }
    }

    /// Resolve a request by name: an [`Isa::name`] or `native` for
    /// autodetection.
    ///
    /// # Errors
    /// [`NmError::Unsupported`] for unknown names and for ISAs this host
    /// cannot execute.
    pub fn for_name(name: &str) -> Result<Self> {
        if name.eq_ignore_ascii_case("native") {
            return Ok(Self::native());
        }
        Self::for_isa(Isa::from_name(name)?)
    }

    /// The default selection: [`MicroKernel::native`] unless an
    /// environment override asks otherwise (see the module docs).
    ///
    /// # Errors
    /// [`NmError::Unsupported`] when `NM_SPMM_ISA` names an unknown ISA or
    /// one this host cannot execute, or when `NM_SPMM_FORCE_SCALAR` is set
    /// to something other than a recognized boolean — a typo'd override
    /// must fail loudly, not silently fall back.
    pub fn select() -> Result<Self> {
        let force_scalar = match std::env::var("NM_SPMM_FORCE_SCALAR") {
            Ok(v) => force_scalar_requested(&v)?,
            Err(_) => false,
        };
        if force_scalar {
            return Ok(Self::scalar());
        }
        match std::env::var("NM_SPMM_ISA") {
            Ok(name) => Self::for_name(&name),
            Err(_) => Ok(Self::native()),
        }
    }

    /// Whether the environment currently pins [`MicroKernel::select`] to a
    /// *specific* ISA rather than native dispatch: `NM_SPMM_FORCE_SCALAR`
    /// parses truthy, or `NM_SPMM_ISA` names anything but `native`.
    /// (`NM_SPMM_FORCE_SCALAR=0` and `NM_SPMM_ISA=native` are *not* pins —
    /// they spell out the default.) Consumers use this to decide whether
    /// an ISA disagreement with a recorded baseline is a configuration
    /// error (pinned) or a hardware difference (native).
    pub fn env_pins_isa() -> bool {
        env_pins_isa_from(
            std::env::var("NM_SPMM_FORCE_SCALAR").ok().as_deref(),
            std::env::var("NM_SPMM_ISA").ok().as_deref(),
        )
    }

    /// Every kernel this host can execute (scalar first) — the set the
    /// parity test suite sweeps.
    pub fn available() -> Vec<Self> {
        Isa::ALL
            .into_iter()
            .filter(Isa::supported)
            .map(|isa| Self { isa })
            .collect()
    }

    /// The ISA this kernel executes.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// The 4×16 tile: accumulate `MW` rows by [`NW`] columns of `C` across
    /// the whole k-block. `ar` are the four gather rows, `idx` the packed
    /// gather index per compressed row, `bs` the staged `B′` block
    /// (`stride` floats per compressed row), `boff` the column offset of
    /// this tile inside the block.
    ///
    /// Caller contract (checked by `debug_assert!`): every `idx` value is
    /// in bounds for every row of `ar`, and `bs` covers
    /// `idx.len()` compressed rows of `stride ≥ boff + 16` floats.
    #[inline]
    pub fn run4x16(
        &self,
        ar: &[&[f32]; MW],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW]; MW] {
        self.tile16(ar, idx, bs, stride, boff)
    }

    /// The 4×32 dual-accumulator tile: as [`MicroKernel::run4x16`] but
    /// [`NW2`] columns wide — one `A` broadcast feeds two 16-wide column
    /// chunks, and the doubled independent accumulator chains hide FMA
    /// latency. Used by the fast path when `L` is a multiple of 32.
    #[inline]
    pub fn run4x32(
        &self,
        ar: &[&[f32]; MW],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW2]; MW] {
        self.tile32(ar, idx, bs, stride, boff)
    }

    /// The 2×16 skinny tile: two rows of the same streamed-`B′` inner loop
    /// — the middle rung of the fast path's 4→2→1 row ladder.
    #[inline]
    pub fn run2x16(
        &self,
        ar: &[&[f32]; 2],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW]; 2] {
        self.tile16(ar, idx, bs, stride, boff)
    }

    /// The 2×32 skinny dual-accumulator tile (`L % 32 == 0` blocks).
    #[inline]
    pub fn run2x32(
        &self,
        ar: &[&[f32]; 2],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW2]; 2] {
        self.tile32(ar, idx, bs, stride, boff)
    }

    /// The 1×16 tile: a vectorized sparse vector-matrix product over one
    /// staged `B′` block — the decode-path (`m = 1`) kernel.
    #[inline]
    pub fn run1x16(
        &self,
        ar: &[&[f32]; 1],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW]; 1] {
        self.tile16(ar, idx, bs, stride, boff)
    }

    /// The 1×32 dual-accumulator SpMV tile (`L % 32 == 0` blocks).
    #[inline]
    pub fn run1x32(
        &self,
        ar: &[&[f32]; 1],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW2]; 1] {
        self.tile32(ar, idx, bs, stride, boff)
    }

    /// Row-generic 16-wide dispatch behind the public entry points. One
    /// match on the construct-time ISA; the per-ISA bodies are const-generic
    /// over the row count, so 1-, 2- and 4-row tiles share one
    /// implementation per ISA instead of drifting apart. Crate-visible so
    /// the CPU ladder's row ladder can stay generic over the rung size.
    #[inline]
    pub(crate) fn tile16<const R: usize>(
        &self,
        ar: &[&[f32]; R],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW]; R] {
        debug_check::<R, NW>(ar, idx, bs, stride, boff);
        match self.isa {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `self` can only be constructed for a detected ISA.
            Isa::Avx2 => unsafe { x86::avx2_rx16(ar, idx, bs, stride, boff) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above — avx512f was detected at construction.
            Isa::Avx512 => unsafe { x86::avx512_rx16(ar, idx, bs, stride, boff) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above — neon was detected at construction.
            Isa::Neon => unsafe { arm::neon_rx16(ar, idx, bs, stride, boff) },
            // Scalar, plus foreign-architecture variants that the
            // constructors make unreachable; falling back to the portable
            // tile keeps even a broken invariant memory-safe.
            _ => scalar_tile::<R, NW>(ar, idx, bs, stride, boff),
        }
    }

    /// Row-generic 32-wide dispatch; see [`MicroKernel::tile16`].
    #[inline]
    pub(crate) fn tile32<const R: usize>(
        &self,
        ar: &[&[f32]; R],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW2]; R] {
        debug_check::<R, NW2>(ar, idx, bs, stride, boff);
        match self.isa {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `self` can only be constructed for a detected ISA.
            Isa::Avx2 => unsafe { x86::avx2_rx32(ar, idx, bs, stride, boff) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above — avx512f was detected at construction.
            Isa::Avx512 => unsafe { x86::avx512_rx32(ar, idx, bs, stride, boff) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above — neon was detected at construction.
            Isa::Neon => unsafe { arm::neon_rx32(ar, idx, bs, stride, boff) },
            _ => scalar_tile::<R, NW2>(ar, idx, bs, stride, boff),
        }
    }
}

impl std::fmt::Display for MicroKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} micro-kernel", self.isa)
    }
}

/// Parse an `NM_SPMM_FORCE_SCALAR` value. Only recognized booleans are
/// accepted — an operator who sets `yes` or `on` believes they pinned the
/// scalar tile, and silently running SIMD instead would corrupt their A/B
/// record, so anything unrecognized is a structured error.
/// [`MicroKernel::env_pins_isa`] over explicit values (testable without
/// touching the process environment). An unparseable `NM_SPMM_FORCE_SCALAR`
/// counts as not-pinned: [`MicroKernel::select`] rejects it with a
/// structured error before any pinned-ness decision matters.
fn env_pins_isa_from(force_scalar: Option<&str>, isa: Option<&str>) -> bool {
    if force_scalar.is_some_and(|v| force_scalar_requested(v).unwrap_or(false)) {
        return true;
    }
    isa.is_some_and(|name| !name.eq_ignore_ascii_case("native"))
}

fn force_scalar_requested(value: &str) -> Result<bool> {
    if value == "1" || value.eq_ignore_ascii_case("true") {
        Ok(true)
    } else if value.is_empty() || value == "0" || value.eq_ignore_ascii_case("false") {
        Ok(false)
    } else {
        Err(NmError::Unsupported {
            reason: format!(
                "NM_SPMM_FORCE_SCALAR=`{value}` is not a recognized boolean \
                 (use 1/true to force the scalar tile, 0/false/unset otherwise)"
            ),
        })
    }
}

/// The caller contract every tile implementation relies on, verified in
/// debug builds at the dispatch boundary (so the `#[target_feature]`
/// bodies can use unchecked loads).
#[inline]
fn debug_check<const R: usize, const W: usize>(
    ar: &[&[f32]; R],
    idx: &[u32],
    bs: &[f32],
    stride: usize,
    boff: usize,
) {
    debug_assert!(stride >= boff + W, "tile columns exceed the block stride");
    debug_assert!(
        idx.is_empty() || (idx.len() - 1) * stride + boff + W <= bs.len(),
        "staged block too short for {} compressed rows",
        idx.len()
    );
    debug_assert!(
        idx.iter()
            .all(|&s| ar.iter().all(|row| (s as usize) < row.len())),
        "gather index out of bounds for the fast path"
    );
    let _ = (ar, idx, bs, stride, boff);
}

/// The portable tile, generic over row count and width — the pre-SIMD
/// `micro4x16` kept as the fallback and the forced-scalar A/B baseline.
/// What LLVM auto-vectorizes here is bounded by the build's target
/// baseline (plain SSE2 for default `x86-64`), which is exactly the gap
/// the explicit kernels close.
fn scalar_tile<const R: usize, const W: usize>(
    ar: &[&[f32]; R],
    idx: &[u32],
    bs: &[f32],
    stride: usize,
    boff: usize,
) -> [[f32; W]; R] {
    let mut acc = [[0f32; W]; R];
    for (ui, &s) in idx.iter().enumerate() {
        let b = &bs[ui * stride + boff..ui * stride + boff + W];
        let s = s as usize;
        for (row, acc_row) in ar.iter().zip(acc.iter_mut()) {
            let av = row[s];
            for (slot, bv) in acc_row.iter_mut().zip(b) {
                *slot += av * bv;
            }
        }
    }
    acc
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2+FMA and AVX-512F tiles. Every function is `unsafe` because it
    //! is compiled with `#[target_feature]`; callers must have verified
    //! the feature at runtime ([`super::MicroKernel`]'s constructors do).
    //! Loads are unchecked — the bounds are the caller contract checked by
    //! [`super::debug_check`] at the dispatch boundary.

    use super::{NW, NW2};
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires `avx2` and `fma` at runtime, plus the bounds contract of
    /// [`super::MicroKernel::run4x16`]. `R ≤ 4` keeps the accumulators in
    /// the register file.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn avx2_rx16<const R: usize>(
        ar: &[&[f32]; R],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW]; R] {
        // 2R ymm accumulators (R ≤ 4 rows × 2 vectors) + 2 streamed B
        // vectors + 1 broadcast: comfortably inside the 16 ymm registers.
        let mut acc = [[_mm256_setzero_ps(); 2]; R];
        for (ui, &s) in idx.iter().enumerate() {
            let b = bs.as_ptr().add(ui * stride + boff);
            let b0 = _mm256_loadu_ps(b);
            let b1 = _mm256_loadu_ps(b.add(8));
            let s = s as usize;
            for (row, acc_row) in ar.iter().zip(acc.iter_mut()) {
                let av = _mm256_set1_ps(*row.get_unchecked(s));
                acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
                acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
            }
        }
        let mut out = [[0f32; NW]; R];
        for (acc_row, out_row) in acc.iter().zip(out.iter_mut()) {
            _mm256_storeu_ps(out_row.as_mut_ptr(), acc_row[0]);
            _mm256_storeu_ps(out_row.as_mut_ptr().add(8), acc_row[1]);
        }
        out
    }

    /// # Safety
    /// Requires `avx2` and `fma` at runtime, plus the bounds contract of
    /// [`super::MicroKernel::run4x32`]. `R ≤ 4` keeps the accumulators in
    /// the register file.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn avx2_rx32<const R: usize>(
        ar: &[&[f32]; R],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW2]; R] {
        // 4R ymm accumulators fill the register file at R = 4; LLVM folds
        // the four B loads into FMA memory operands, so only the broadcast
        // needs a live register. Skinny rows leave headroom.
        let mut acc = [[_mm256_setzero_ps(); 4]; R];
        for (ui, &s) in idx.iter().enumerate() {
            let b = bs.as_ptr().add(ui * stride + boff);
            let b0 = _mm256_loadu_ps(b);
            let b1 = _mm256_loadu_ps(b.add(8));
            let b2 = _mm256_loadu_ps(b.add(16));
            let b3 = _mm256_loadu_ps(b.add(24));
            let s = s as usize;
            for (row, acc_row) in ar.iter().zip(acc.iter_mut()) {
                let av = _mm256_set1_ps(*row.get_unchecked(s));
                acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
                acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
                acc_row[2] = _mm256_fmadd_ps(av, b2, acc_row[2]);
                acc_row[3] = _mm256_fmadd_ps(av, b3, acc_row[3]);
            }
        }
        let mut out = [[0f32; NW2]; R];
        for (acc_row, out_row) in acc.iter().zip(out.iter_mut()) {
            for (v, &vec) in acc_row.iter().enumerate() {
                _mm256_storeu_ps(out_row.as_mut_ptr().add(v * 8), vec);
            }
        }
        out
    }

    /// # Safety
    /// Requires `avx512f` at runtime, plus the bounds contract of
    /// [`super::MicroKernel::run4x16`].
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn avx512_rx16<const R: usize>(
        ar: &[&[f32]; R],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW]; R] {
        // One zmm per row: the whole 16-wide tile row is a single vector.
        let mut acc = [_mm512_setzero_ps(); R];
        for (ui, &s) in idx.iter().enumerate() {
            let b = _mm512_loadu_ps(bs.as_ptr().add(ui * stride + boff));
            let s = s as usize;
            for (row, acc_row) in ar.iter().zip(acc.iter_mut()) {
                let av = _mm512_set1_ps(*row.get_unchecked(s));
                *acc_row = _mm512_fmadd_ps(av, b, *acc_row);
            }
        }
        let mut out = [[0f32; NW]; R];
        for (acc_row, out_row) in acc.iter().zip(out.iter_mut()) {
            _mm512_storeu_ps(out_row.as_mut_ptr(), *acc_row);
        }
        out
    }

    /// # Safety
    /// Requires `avx512f` at runtime, plus the bounds contract of
    /// [`super::MicroKernel::run4x32`].
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn avx512_rx32<const R: usize>(
        ar: &[&[f32]; R],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW2]; R] {
        // Dual zmm accumulators per row — 2R of the 32 zmm registers.
        let mut acc = [[_mm512_setzero_ps(); 2]; R];
        for (ui, &s) in idx.iter().enumerate() {
            let b = bs.as_ptr().add(ui * stride + boff);
            let b0 = _mm512_loadu_ps(b);
            let b1 = _mm512_loadu_ps(b.add(16));
            let s = s as usize;
            for (row, acc_row) in ar.iter().zip(acc.iter_mut()) {
                let av = _mm512_set1_ps(*row.get_unchecked(s));
                acc_row[0] = _mm512_fmadd_ps(av, b0, acc_row[0]);
                acc_row[1] = _mm512_fmadd_ps(av, b1, acc_row[1]);
            }
        }
        let mut out = [[0f32; NW2]; R];
        for (acc_row, out_row) in acc.iter().zip(out.iter_mut()) {
            _mm512_storeu_ps(out_row.as_mut_ptr(), acc_row[0]);
            _mm512_storeu_ps(out_row.as_mut_ptr().add(16), acc_row[1]);
        }
        out
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    //! NEON tiles. NEON is architecturally mandatory on aarch64, but the
    //! same construct-time verification discipline applies.

    use super::{NW, NW2};
    use std::arch::aarch64::*;

    /// # Safety
    /// Requires `neon` at runtime, plus the bounds contract of
    /// [`super::MicroKernel::run4x16`].
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn neon_rx16<const R: usize>(
        ar: &[&[f32]; R],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW]; R] {
        // 4R of the 32 q-registers hold the tile (R ≤ 4 rows × 4 vectors).
        let mut acc = [[vdupq_n_f32(0.0); 4]; R];
        for (ui, &s) in idx.iter().enumerate() {
            let b = bs.as_ptr().add(ui * stride + boff);
            let bv = [
                vld1q_f32(b),
                vld1q_f32(b.add(4)),
                vld1q_f32(b.add(8)),
                vld1q_f32(b.add(12)),
            ];
            let s = s as usize;
            for (row, acc_row) in ar.iter().zip(acc.iter_mut()) {
                let av = vdupq_n_f32(*row.get_unchecked(s));
                for (slot, &v) in acc_row.iter_mut().zip(bv.iter()) {
                    *slot = vfmaq_f32(*slot, av, v);
                }
            }
        }
        let mut out = [[0f32; NW]; R];
        for (acc_row, out_row) in acc.iter().zip(out.iter_mut()) {
            for (v, &vec) in acc_row.iter().enumerate() {
                vst1q_f32(out_row.as_mut_ptr().add(v * 4), vec);
            }
        }
        out
    }

    /// # Safety
    /// Requires `neon` at runtime, plus the bounds contract of
    /// [`super::MicroKernel::run4x32`].
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn neon_rx32<const R: usize>(
        ar: &[&[f32]; R],
        idx: &[u32],
        bs: &[f32],
        stride: usize,
        boff: usize,
    ) -> [[f32; NW2]; R] {
        // A fused 4×32 tile would keep 32 q-register accumulators live at
        // once — the whole aarch64 vector file, guaranteeing spills in the
        // hot loop. Run the halves as two *sequential* R×16 passes over
        // the k-block instead (16 live accumulators each at R = 4); the
        // repeated `A` broadcasts cost far less than per-iteration
        // spill/reload traffic would, and the second pass re-reads a
        // `B′` block that the first pass left cache-resident.
        let lo = neon_rx16(ar, idx, bs, stride, boff);
        let hi = neon_rx16(ar, idx, bs, stride, boff + NW);
        let mut out = [[0f32; NW2]; R];
        for ((out_row, lo_row), hi_row) in out.iter_mut().zip(&lo).zip(&hi) {
            out_row[..NW].copy_from_slice(lo_row);
            out_row[NW..].copy_from_slice(hi_row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (no external RNG dependency).
    fn fill(len: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn tile_inputs(depth: usize, stride: usize, k: usize) -> (Vec<Vec<f32>>, Vec<u32>, Vec<f32>) {
        let rows: Vec<Vec<f32>> = (0..MW).map(|r| fill(k, 7 + r as u32)).collect();
        let idx: Vec<u32> = (0..depth).map(|u| ((u * 13 + 5) % k) as u32).collect();
        let bs = fill(depth * stride, 99);
        (rows, idx, bs)
    }

    #[test]
    fn name_round_trip_and_unknown_name_rejected() {
        for isa in Isa::ALL {
            assert_eq!(Isa::from_name(isa.name()).unwrap(), isa);
            assert_eq!(Isa::from_name(&isa.name().to_uppercase()).unwrap(), isa);
            assert!(!isa.to_string().is_empty());
        }
        assert!(matches!(
            Isa::from_name("sse9"),
            Err(NmError::Unsupported { .. })
        ));
    }

    #[test]
    fn available_starts_with_scalar_and_contains_the_native_pick() {
        let avail = MicroKernel::available();
        assert_eq!(avail[0].isa(), Isa::Scalar);
        assert!(avail.contains(&MicroKernel::native()));
        // Every advertised kernel really is constructible.
        for mk in &avail {
            assert_eq!(MicroKernel::for_isa(mk.isa()).unwrap(), *mk);
        }
    }

    #[test]
    fn foreign_architecture_isa_is_a_structured_error() {
        #[cfg(target_arch = "x86_64")]
        let foreign = Isa::Neon;
        #[cfg(not(target_arch = "x86_64"))]
        let foreign = Isa::Avx2;
        assert!(!foreign.supported());
        assert!(matches!(
            MicroKernel::for_isa(foreign),
            Err(NmError::Unsupported { .. })
        ));
        assert!(matches!(
            MicroKernel::for_name(foreign.name()),
            Err(NmError::Unsupported { .. })
        ));
    }

    #[test]
    fn pinned_ness_tracks_what_select_would_actually_do() {
        // Pins: a truthy force-scalar, or a concrete ISA request.
        assert!(env_pins_isa_from(Some("1"), None));
        assert!(env_pins_isa_from(Some("true"), Some("native")));
        assert!(env_pins_isa_from(None, Some("avx2")));
        assert!(env_pins_isa_from(None, Some("scalar")));
        // Not pins: unset, spelled-out defaults, or a falsy force-scalar.
        assert!(!env_pins_isa_from(None, None));
        assert!(!env_pins_isa_from(Some("0"), None));
        assert!(!env_pins_isa_from(Some("false"), Some("native")));
        assert!(!env_pins_isa_from(None, Some("NATIVE")));
        // Unparseable force-scalar defers to select()'s hard error.
        assert!(!env_pins_isa_from(Some("yes"), None));
        assert!(env_pins_isa_from(Some("yes"), Some("avx2")));
    }

    #[test]
    fn force_scalar_values_parse_strictly() {
        assert!(force_scalar_requested("1").unwrap());
        assert!(force_scalar_requested("true").unwrap());
        assert!(force_scalar_requested("TRUE").unwrap());
        assert!(!force_scalar_requested("0").unwrap());
        assert!(!force_scalar_requested("false").unwrap());
        assert!(!force_scalar_requested("").unwrap());
        for bad in ["yes", "on", "2", "scalar"] {
            assert!(
                matches!(
                    force_scalar_requested(bad),
                    Err(NmError::Unsupported { .. })
                ),
                "`{bad}` must be rejected, not silently ignored"
            );
        }
    }

    #[test]
    fn for_name_native_and_scalar_resolve() {
        assert_eq!(
            MicroKernel::for_name("native").unwrap(),
            MicroKernel::native()
        );
        assert_eq!(
            MicroKernel::for_name("scalar").unwrap(),
            MicroKernel::scalar()
        );
        assert!(MicroKernel::for_name("riscv-v").is_err());
    }

    #[test]
    fn every_available_kernel_matches_scalar_on_both_widths() {
        let (rows, idx, bs) = tile_inputs(24, 40, 64);
        let ar: [&[f32]; MW] = [&rows[0], &rows[1], &rows[2], &rows[3]];
        let want16 = MicroKernel::scalar().run4x16(&ar, &idx, &bs, 40, 3);
        let want32 = MicroKernel::scalar().run4x32(&ar, &idx, &bs, 40, 3);
        for mk in MicroKernel::available() {
            let got16 = mk.run4x16(&ar, &idx, &bs, 40, 3);
            let got32 = mk.run4x32(&ar, &idx, &bs, 40, 3);
            for r in 0..MW {
                for c in 0..NW {
                    assert!(
                        (got16[r][c] - want16[r][c]).abs() <= 1e-4 * want16[r][c].abs() + 1e-5,
                        "{mk} 4x16 [{r}][{c}]: {} vs {}",
                        got16[r][c],
                        want16[r][c]
                    );
                }
                for c in 0..NW2 {
                    assert!(
                        (got32[r][c] - want32[r][c]).abs() <= 1e-4 * want32[r][c].abs() + 1e-5,
                        "{mk} 4x32 [{r}][{c}]: {} vs {}",
                        got32[r][c],
                        want32[r][c]
                    );
                }
            }
        }
    }

    #[test]
    fn empty_index_list_accumulates_nothing() {
        let (rows, _, bs) = tile_inputs(4, 32, 16);
        let ar: [&[f32]; MW] = [&rows[0], &rows[1], &rows[2], &rows[3]];
        for mk in MicroKernel::available() {
            assert_eq!(mk.run4x16(&ar, &[], &bs, 32, 0), [[0.0; NW]; MW]);
            assert_eq!(mk.run4x32(&ar, &[], &bs, 32, 0), [[0.0; NW2]; MW]);
            assert_eq!(
                mk.run2x16(&[&rows[0], &rows[1]], &[], &bs, 32, 0),
                [[0.0; NW]; 2]
            );
            assert_eq!(mk.run1x32(&[&rows[0]], &[], &bs, 32, 0), [[0.0; NW2]; 1]);
        }
    }

    #[test]
    fn skinny_tiles_match_the_four_row_tile_row_for_row() {
        // Rows accumulate independently in every implementation, so the
        // 1- and 2-row tiles must reproduce the corresponding rows of the
        // 4-row tile bit for bit — same ISA, same per-row operation order.
        let (rows, idx, bs) = tile_inputs(24, 40, 64);
        let ar4: [&[f32]; MW] = [&rows[0], &rows[1], &rows[2], &rows[3]];
        for mk in MicroKernel::available() {
            let want16 = mk.run4x16(&ar4, &idx, &bs, 40, 3);
            let want32 = mk.run4x32(&ar4, &idx, &bs, 40, 3);
            let got2x16 = mk.run2x16(&[&rows[0], &rows[1]], &idx, &bs, 40, 3);
            let got2x32 = mk.run2x32(&[&rows[2], &rows[3]], &idx, &bs, 40, 3);
            let got1x16 = mk.run1x16(&[&rows[3]], &idx, &bs, 40, 3);
            let got1x32 = mk.run1x32(&[&rows[0]], &idx, &bs, 40, 3);
            assert_eq!(
                [got2x16[0], got2x16[1]],
                [want16[0], want16[1]],
                "{mk} 2x16"
            );
            assert_eq!(
                [got2x32[0], got2x32[1]],
                [want32[2], want32[3]],
                "{mk} 2x32"
            );
            assert_eq!(got1x16[0], want16[3], "{mk} 1x16");
            assert_eq!(got1x32[0], want32[0], "{mk} 1x32");
        }
    }

    #[test]
    fn skinny_tiles_agree_across_isas() {
        let (rows, idx, bs) = tile_inputs(24, 40, 64);
        let scalar = MicroKernel::scalar();
        let want16 = scalar.run1x16(&[&rows[0]], &idx, &bs, 40, 3);
        let want32 = scalar.run2x32(&[&rows[1], &rows[2]], &idx, &bs, 40, 3);
        for mk in MicroKernel::available() {
            let got16 = mk.run1x16(&[&rows[0]], &idx, &bs, 40, 3);
            let got32 = mk.run2x32(&[&rows[1], &rows[2]], &idx, &bs, 40, 3);
            for c in 0..NW {
                assert!(
                    (got16[0][c] - want16[0][c]).abs() <= 1e-4 * want16[0][c].abs() + 1e-5,
                    "{mk} 1x16 [{c}]: {} vs {}",
                    got16[0][c],
                    want16[0][c]
                );
            }
            for (r, (got_row, want_row)) in got32.iter().zip(&want32).enumerate() {
                for c in 0..NW2 {
                    assert!(
                        (got_row[c] - want_row[c]).abs() <= 1e-4 * want_row[c].abs() + 1e-5,
                        "{mk} 2x32 [{r}][{c}]: {} vs {}",
                        got_row[c],
                        want_row[c]
                    );
                }
            }
        }
    }
}
