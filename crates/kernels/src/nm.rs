//! The NM-SpMM kernel — paper Listings 1–4 — in three step-wise versions.
//!
//! * **V1** (`Listing 1+2`): hierarchical blocking only. Tiles of `A`, `B′`
//!   and `D` are staged through shared memory, warps tile the block, each
//!   thread computes an `mt × nt` outer product. Main loop is serial
//!   (`load → __syncthreads → compute`) and `A` is always loaded in full.
//! * **V2** (`Listing 3`): V1 + sparsity-aware memory access. When sparsity
//!   crosses the 70% threshold, `As` is packed through `col_info`, cutting
//!   its footprint to the window-union fraction; this adds the
//!   `col_info → As` dependent-load chain.
//! * **V3** (`Listing 4`): V2 + pipelining. Shared-memory tiles are double
//!   buffered so iteration `i+1`'s global loads overlap iteration `i`'s
//!   compute, and `At`/`Bt` fragments are double buffered in registers
//!   (plus the `idx[ws]` index prefetch) to break the LDS→FMA WAR hazard.
//!
//! All three versions compute identical results; they differ only in data
//! movement and pipeline structure — exactly the paper's Fig. 7 experiment.

use crate::common::{grid_dims, scatter_tile, sectors_contig, sectors_runs};
use crate::params::{derive_blocking, Blocking, BlockingParams};
use crate::SimRun;
use gpu_sim::device::DeviceConfig;
use gpu_sim::l2::BlockTraffic;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::stats::KernelStats;
use gpu_sim::timing::{
    estimate as sim_estimate, KernelProfile, LaunchReport, PipelineMode, SimError,
};
use nm_analysis::ai::BlockAi;
use nm_analysis::packing::expected_ratio;
use nm_analysis::strategy::{Strategy, StrategyDecision};
use nm_core::colinfo::{preprocess, PackedLayout};
use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::sparse::NmSparseMatrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The step-wise optimization ladder of §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NmVersion {
    /// Hierarchical blocking mechanism (Listings 1–2).
    V1,
    /// V1 + sparsity-aware footprint minimization (Listing 3).
    V2,
    /// V2 + pipelined latency hiding (Listing 4).
    V3,
}

impl NmVersion {
    /// Display name as used in Fig. 7.
    pub fn name(&self) -> &'static str {
        match self {
            NmVersion::V1 => "V1",
            NmVersion::V2 => "V2",
            NmVersion::V3 => "V3",
        }
    }

    /// Whether shared-memory tiles are double buffered.
    pub fn double_buffer(&self) -> bool {
        matches!(self, NmVersion::V3)
    }

    /// Whether `At`/`Bt` fragments are double buffered in registers.
    pub fn inner_double_buffer(&self) -> bool {
        matches!(self, NmVersion::V3)
    }

    /// Whether the sparsity-aware packing path is available.
    pub fn supports_packing(&self) -> bool {
        !matches!(self, NmVersion::V1)
    }

    /// Main-loop pipeline structure.
    pub fn pipeline(&self) -> PipelineMode {
        match self {
            NmVersion::V1 | NmVersion::V2 => PipelineMode::Serial,
            NmVersion::V3 => PipelineMode::DoubleBuffered,
        }
    }
}

/// A fully resolved launch plan for one (device, problem) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NmPlan {
    /// Derived blocking (ks/ws/qs, shared memory, registers).
    pub blocking: Blocking,
    /// Grid shape `(grid_y, grid_x)`.
    pub grid: (usize, usize),
    /// Main-loop trip count.
    pub iters: usize,
    /// Compressed depth `w` of the problem.
    pub w: usize,
    /// Whether this launch packs `As` through `col_info`.
    pub packing: bool,
    /// Split-K factor: number of k-slices computed by separate blocks
    /// (1 = off). Engaged when the output grid is too small to fill the
    /// device; partial tiles are reduced in an epilogue pass.
    pub split_k: usize,
    /// The analysis-model decision that produced `packing`.
    pub decision: StrategyDecision,
}

/// The NM-SpMM kernel at a chosen version and Table I parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NmSpmmKernel {
    /// Optimization level.
    pub version: NmVersion,
    /// Table I blocking parameters.
    pub params: BlockingParams,
}

impl NmSpmmKernel {
    /// Kernel with explicit parameters.
    pub fn new(version: NmVersion, params: BlockingParams) -> Self {
        Self { version, params }
    }

    /// Kernel with `Para_Init_Table`-selected parameters.
    pub fn auto(version: NmVersion, m: usize, n: usize) -> Self {
        Self {
            version,
            params: BlockingParams::para_init_table(m, n),
        }
    }

    /// Resolve blocking, strategy and grid for a problem.
    pub fn plan(
        &self,
        dev: &DeviceConfig,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
    ) -> Result<NmPlan> {
        let blocking = derive_blocking(
            dev,
            self.params,
            cfg,
            k,
            self.version.double_buffer(),
            self.version.inner_double_buffer(),
        )?;
        let w = cfg.compressed_rows(k);
        let iters = w.div_ceil(blocking.ws).max(1);
        let block_ai = BlockAi {
            ms: blocking.params.ms,
            ns: blocking.params.ns,
            ks: blocking.ks,
            ws: blocking.ws,
        };
        let decision = Strategy::decide(dev, cfg, block_ai, blocking.qs);
        let packing = self.version.supports_packing() && decision.packing;
        let grid = grid_dims(m, n, blocking.params.ms, blocking.params.ns);
        // Split-K: when the output grid cannot occupy the device, carve the
        // main loop into k-slices owned by separate blocks (classic
        // split-K GEMM; partials are summed in an epilogue reduction).
        let blocks = grid.0 * grid.1;
        let split_k = if blocks < dev.sm_count && iters > 1 {
            (dev.sm_count / blocks).clamp(1, iters)
        } else {
            1
        };
        Ok(NmPlan {
            blocking,
            grid,
            iters,
            w,
            packing,
            split_k,
            decision,
        })
    }

    /// Analytic estimate: timing-model report without touching data.
    ///
    /// `packing_ratio` overrides the expected window-union model (pass the
    /// measured `ColInfo::mean_packing_ratio` when available).
    pub fn estimate(
        &self,
        dev: &DeviceConfig,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
        packing_ratio: Option<f64>,
    ) -> Result<LaunchReport> {
        let plan = self.plan(dev, m, n, k, cfg)?;
        let ratio = self.effective_ratio(&plan, cfg, packing_ratio);
        let (profile, _) = self.build_profile(dev, &plan, m, n, cfg, ratio);
        sim_estimate(dev, &profile).map_err(sim_to_nm)
    }

    /// Functional run: compute `C = A ⊛ (B′, D)` through the simulated data
    /// path and return the result with stats and the timing report.
    pub fn run(&self, dev: &DeviceConfig, a: &MatrixF32, sb: &NmSparseMatrix) -> Result<SimRun> {
        let (m, k) = a.shape();
        if k != sb.k() {
            return Err(NmError::DimensionMismatch {
                expected: format!("A with k = {}", sb.k()),
                found: format!("A with k = {k}"),
            });
        }
        let n = sb.cols();
        let cfg = sb.cfg();
        let plan = self.plan(dev, m, n, k, cfg)?;

        let layout = if plan.packing {
            Some(preprocess(sb, plan.blocking.ks, plan.blocking.params.ns)?)
        } else {
            None
        };
        let ratio = layout
            .as_ref()
            .map(|l| l.col_info.mean_packing_ratio())
            .unwrap_or(1.0);

        let (profile, stats) = self.build_profile(dev, &plan, m, n, cfg, ratio);
        let report = sim_estimate(dev, &profile).map_err(sim_to_nm)?;

        // Functional execution, block-parallel (each block owns one
        // (tile, k-slice) partial; the epilogue reduction sums slices).
        let (gy, gx) = plan.grid;
        let split = plan.split_k.max(1);
        let iters_per_slice = plan.iters.div_ceil(split);
        let tiles: Vec<(usize, usize, Vec<f32>)> = (0..gy * gx * split)
            .into_par_iter()
            .map(|idx| {
                let (bi, rest) = (idx / (gx * split), idx % (gx * split));
                let (bj, si) = (rest / split, rest % split);
                let it_lo = si * iters_per_slice;
                let it_hi = ((si + 1) * iters_per_slice).min(plan.iters);
                let tile = compute_block(a, sb, &plan, layout.as_ref(), bi, bj, it_lo, it_hi);
                (bi, bj, tile)
            })
            .collect();

        let (ms, ns) = (plan.blocking.params.ms, plan.blocking.params.ns);
        let mut acc: std::collections::HashMap<(usize, usize), Vec<f32>> =
            std::collections::HashMap::new();
        for (bi, bj, tile) in tiles {
            match acc.entry((bi, bj)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(tile);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (d, s) in e.get_mut().iter_mut().zip(&tile) {
                        *d += s;
                    }
                }
            }
        }
        let mut c = MatrixF32::zeros(m, n);
        let cbuf = c.as_mut_slice();
        for ((bi, bj), tile) in acc {
            let row0 = bi * ms;
            let col0 = bj * ns;
            scatter_tile(
                cbuf,
                n,
                &tile,
                ns,
                row0,
                col0,
                ms.min(m - row0),
                ns.min(n - col0),
            );
        }
        Ok(SimRun { c, stats, report })
    }

    fn effective_ratio(&self, plan: &NmPlan, cfg: NmConfig, packing_ratio: Option<f64>) -> f64 {
        if plan.packing {
            packing_ratio.unwrap_or_else(|| expected_ratio(cfg, plan.blocking.qs))
        } else {
            1.0
        }
    }

    /// Build the timing profile *and* the aggregate event counts from the
    /// same per-iteration quantities, so the two can never drift apart.
    fn build_profile(
        &self,
        dev: &DeviceConfig,
        plan: &NmPlan,
        m: usize,
        n: usize,
        _cfg: NmConfig,
        packing_ratio: f64,
    ) -> (KernelProfile, KernelStats) {
        let b = &plan.blocking;
        let p = b.params;
        let (ms, ns, ks, ws, qs) = (p.ms, p.ns, b.ks, b.ws, b.qs);
        let warps = p.warps();

        // --- Per-iteration global loads (bytes) ---
        let a_cols = if plan.packing {
            (ks as f64 * packing_ratio).round().max(1.0) as usize
        } else {
            ks
        };
        let a_bytes = (a_cols * ms * 4) as u64;
        let b_bytes = (ws * ns * 4) as u64;
        let d_bytes = (ws * qs) as u64; // u8 entries, blocked layout
        let colinfo_bytes = if plan.packing { (a_cols * 2) as u64 } else { 0 };

        // --- Per-iteration shared-memory pipe cycles ---
        // Tile fills (STS) move every loaded byte through the smem pipe.
        let fill_bytes = a_bytes + b_bytes + d_bytes;
        // Inner loop: per warp per p, an mr-long At column segment
        // (broadcast across the lane columns) and an nr-long Bt row segment
        // (broadcast across the lane rows) — unique bytes only.
        let inner_bytes = (ws * warps * (p.mr + p.nr) * 4) as u64;
        // Index reads: V1/V2 read Ds per (warp, p); V3 prefetches once.
        let idx_bytes = if self.version.inner_double_buffer() {
            (ws * qs) as u64
        } else {
            (ws * warps * 32) as u64
        };
        let lds_bytes_iter = inner_bytes + idx_bytes;
        let lds_cycles_iter = (fill_bytes + lds_bytes_iter) as f64 / dev.smem_bytes_per_clock;

        // --- Per-iteration compute ---
        let ffma_iter = (ms * ns * ws) as u64;
        let comp_cycles_iter = ffma_iter as f64 / dev.fma_per_clock_per_sm();

        // --- Resources ---
        let colinfo_smem = if plan.packing {
            2 * ks * if b.double_buffer { 2 } else { 1 }
        } else {
            0
        };
        let resources = BlockResources {
            threads: p.threads(),
            regs_per_thread: b.regs_per_thread,
            smem_bytes: b.smem_bytes + colinfo_smem,
        };

        let (gy, gx) = plan.grid;
        let split = plan.split_k.max(1);
        let blocks = (gy * gx * split) as u64;
        let iters_per_slice = plan.iters.div_ceil(split);
        let iters = (iters_per_slice * split) as u64; // padded slices
                                                      // Partial-tile write plus the epilogue reduction's read+write,
                                                      // amortized per block.
        let stg_bytes_block = if split > 1 {
            (ms * ns * 4 * 3) as u64
        } else {
            (ms * ns * 4) as u64
        };
        let barriers_per_iter = match self.version.pipeline() {
            PipelineMode::Serial => 2,
            PipelineMode::DoubleBuffered => 1,
        };

        let profile = KernelProfile {
            name: format!("NM-SpMM {} [{}x{}]", self.version.name(), ms, ns),
            grid: (gy, gx * split),
            resources,
            iters_per_block: iters_per_slice,
            comp_cycles_per_iter: comp_cycles_iter,
            lds_cycles_per_iter: lds_cycles_iter,
            g2s_per_iter: BlockTraffic {
                a_bytes: a_bytes as f64,
                bcol_bytes: (b_bytes + d_bytes + colinfo_bytes) as f64,
                private_bytes: 0.0,
            },
            dependent_load_chains: if plan.packing { 1.0 } else { 0.0 },
            pipeline: self.version.pipeline(),
            inner_double_buffer: self.version.inner_double_buffer(),
            stg_bytes_per_block: stg_bytes_block as f64,
            useful_flops: 2.0 * m as f64 * n as f64 * plan.w as f64,
        };

        let tile_trips = (gy * gx) as u64 * iters; // total main-loop trips
        let stats = KernelStats {
            ffma: tile_trips * ffma_iter,
            ldg_bytes_a: tile_trips * a_bytes,
            ldg_bytes_b: tile_trips * b_bytes,
            ldg_bytes_d: tile_trips * d_bytes,
            ldg_bytes_colinfo: tile_trips * colinfo_bytes,
            stg_bytes: blocks * stg_bytes_block,
            // A is k-major: each tile column is an ms-long contiguous run;
            // B'/D rows are contiguous.
            ldg_sectors: tile_trips
                * (sectors_runs(a_cols, ms * 4)
                    + sectors_runs(ws, ns * 4)
                    + sectors_contig(ws * qs)
                    + sectors_contig(colinfo_bytes as usize)),
            lds_requests: tile_trips * (lds_bytes_iter + fill_bytes) / 128,
            lds_replays: 0, // padded tiles + broadcast fragments: conflict-free
            sts_requests: tile_trips * fill_bytes / 128,
            lds_bytes: tile_trips * lds_bytes_iter,
            sts_bytes: tile_trips * fill_bytes,
            barriers: tile_trips * barriers_per_iter,
            blocks,
            main_loop_iters: (gy * gx) as u64 * iters,
        };
        (profile, stats)
    }
}

/// Functionally execute one thread block: stage tiles the way the CUDA
/// kernel does (packed or direct), gather through the index matrix, and
/// accumulate the `ms × ns` output tile.
#[allow(clippy::too_many_arguments)]
fn compute_block(
    a: &MatrixF32,
    sb: &NmSparseMatrix,
    plan: &NmPlan,
    layout: Option<&PackedLayout>,
    bi: usize,
    bj: usize,
    it_lo: usize,
    it_hi: usize,
) -> Vec<f32> {
    let cfg = sb.cfg();
    let b = &plan.blocking;
    let (ms, ns, ks, ws, qs) = (b.params.ms, b.params.ns, b.ks, b.ws, b.qs);
    let (m, k) = a.shape();
    let n = sb.cols();
    let (w, q) = (sb.w(), sb.q());

    let row0 = bi * ms;
    let col0 = bj * ns;
    let rows_eff = ms.min(m - row0);
    let cols_eff = ns.min(n - col0);
    let values = sb.values();
    let d = sb.indices();

    let mut cs = vec![0f32; ms * ns];
    // Emulated shared memory for the As tile, k-major: column c at
    // as_t[c*ms ..][..ms]. Sized for the larger of packed/unpacked paths.
    let mut as_t = vec![0f32; ks * ms];

    for it in it_lo..it_hi {
        let u_lo = it * ws;
        let kbase = it * ks;

        // --- LoadTile / LoadTileByColInfo ---
        if let Some(layout) = layout {
            let cols_list = layout.col_info.block(it, bj);
            for (pos, &cloc) in cols_list.iter().enumerate() {
                let kk = kbase + cloc as usize;
                let dst = &mut as_t[pos * ms..pos * ms + ms];
                if kk < k {
                    for (i, v) in dst[..rows_eff].iter_mut().enumerate() {
                        *v = a.get(row0 + i, kk);
                    }
                    dst[rows_eff..].fill(0.0);
                } else {
                    dst.fill(0.0);
                }
            }
        } else {
            for c in 0..ks {
                let kk = kbase + c;
                let dst = &mut as_t[c * ms..c * ms + ms];
                if kk < k {
                    for (i, v) in dst[..rows_eff].iter_mut().enumerate() {
                        *v = a.get(row0 + i, kk);
                    }
                    dst[rows_eff..].fill(0.0);
                } else {
                    dst.fill(0.0);
                }
            }
        }

        // --- SMBlock: gather + outer products ---
        for pp in 0..ws {
            let u = u_lo + pp;
            if u >= w {
                break;
            }
            let b_row = values.row(u);
            for jw in 0..qs {
                let jq = bj * qs + jw;
                if jq >= q {
                    break;
                }
                let col_pos = if let Some(layout) = layout {
                    layout.packed_index(u, jq) as usize
                } else {
                    (pp / cfg.n) * cfg.m + d.get(u, jq) as usize
                };
                let a_col = &as_t[col_pos * ms..col_pos * ms + ms];
                let j_lo = jw * cfg.l;
                if j_lo >= cols_eff {
                    break;
                }
                let j_hi = ((jw + 1) * cfg.l).min(cols_eff);
                let b_seg = &b_row[col0 + j_lo..col0 + j_hi];
                for i in 0..rows_eff {
                    let av = a_col[i];
                    if av == 0.0 {
                        continue;
                    }
                    let c_seg = &mut cs[i * ns + j_lo..i * ns + j_hi];
                    for (cv, bv) in c_seg.iter_mut().zip(b_seg) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }
    cs
}

fn sim_to_nm(e: SimError) -> NmError {
    NmError::InvalidBlocking {
        reason: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::a100_80g;
    use nm_core::prune::PrunePolicy;
    use nm_core::spmm::spmm_reference;

    fn problem(
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
        policy: PrunePolicy,
    ) -> (MatrixF32, NmSparseMatrix) {
        let a = MatrixF32::random(m, k, 11);
        let bd = MatrixF32::random(k, n, 22);
        (a, NmSparseMatrix::prune(&bd, cfg, policy).unwrap())
    }

    fn check_version(version: NmVersion, cfg: NmConfig, m: usize, n: usize, k: usize) {
        let dev = a100_80g();
        let (a, sb) = problem(m, n, k, cfg, PrunePolicy::Random { seed: 5 });
        let kern = NmSpmmKernel::auto(version, m, n);
        let run = kern.run(&dev, &a, &sb).unwrap();
        let expect = spmm_reference(&a, &sb);
        assert!(
            run.c.allclose(&expect, 1e-3, 1e-4),
            "{:?} {cfg}: max diff {}",
            version,
            run.c.max_abs_diff(&expect)
        );
    }

    #[test]
    fn v1_matches_reference_moderate() {
        check_version(
            NmVersion::V1,
            NmConfig::new(8, 16, 32).unwrap(),
            128,
            128,
            256,
        );
    }

    #[test]
    fn v2_matches_reference_high_sparsity_packed() {
        // 87.5%: V2 takes the packing path.
        check_version(
            NmVersion::V2,
            NmConfig::new(2, 16, 32).unwrap(),
            128,
            128,
            512,
        );
    }

    #[test]
    fn v3_matches_reference_all_levels() {
        for cfg in [
            NmConfig::new(8, 16, 32).unwrap(),
            NmConfig::new(6, 16, 32).unwrap(),
            NmConfig::new(4, 16, 32).unwrap(),
            NmConfig::new(2, 16, 32).unwrap(),
            NmConfig::new(32, 32, 32).unwrap(), // 0% control
        ] {
            check_version(NmVersion::V3, cfg, 96, 160, 256);
        }
    }

    #[test]
    fn ragged_problem_dimensions() {
        // m, n, k none of which are multiples of the tile sizes.
        check_version(
            NmVersion::V3,
            NmConfig::new(4, 16, 32).unwrap(),
            100,
            200,
            300,
        );
        check_version(
            NmVersion::V1,
            NmConfig::new(8, 16, 32).unwrap(),
            70,
            90,
            130,
        );
    }

    #[test]
    fn packing_decision_follows_strategy() {
        let dev = a100_80g();
        let kern = NmSpmmKernel::new(NmVersion::V3, BlockingParams::large());
        let moderate = kern
            .plan(&dev, 1024, 1024, 1024, NmConfig::new(8, 16, 32).unwrap())
            .unwrap();
        assert!(!moderate.packing);
        let high = kern
            .plan(&dev, 1024, 1024, 1024, NmConfig::new(2, 16, 32).unwrap())
            .unwrap();
        assert!(high.packing);
        // V1 never packs.
        let v1 = NmSpmmKernel::new(NmVersion::V1, BlockingParams::large());
        assert!(
            !v1.plan(&dev, 1024, 1024, 1024, NmConfig::new(2, 16, 32).unwrap())
                .unwrap()
                .packing
        );
    }

    #[test]
    fn estimate_matches_run_report() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 16, 32).unwrap();
        let (a, sb) = problem(128, 256, 512, cfg, PrunePolicy::Random { seed: 9 });
        let kern = NmSpmmKernel::new(NmVersion::V3, BlockingParams::small());
        let run = kern.run(&dev, &a, &sb).unwrap();
        // Estimate with the measured packing ratio must equal the run report.
        let layout = preprocess(
            &sb,
            kern.plan(&dev, 128, 256, 512, cfg).unwrap().blocking.ks,
            32,
        )
        .unwrap();
        let est = kern
            .estimate(
                &dev,
                128,
                256,
                512,
                cfg,
                Some(layout.col_info.mean_packing_ratio()),
            )
            .unwrap();
        assert!((est.seconds - run.report.seconds).abs() / run.report.seconds < 1e-9);
    }

    #[test]
    fn versions_get_faster_at_high_sparsity() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 16, 32).unwrap(); // 87.5%
        let mut last = f64::INFINITY;
        for v in [NmVersion::V1, NmVersion::V2, NmVersion::V3] {
            let t = NmSpmmKernel::new(v, BlockingParams::large())
                .estimate(&dev, 4096, 4096, 4096, cfg, None)
                .unwrap()
                .seconds;
            assert!(
                t <= last * 1.001,
                "{} must not be slower than its predecessor: {t} vs {last}",
                v.name()
            );
            last = t;
        }
    }

    #[test]
    fn split_k_engages_on_skinny_problems() {
        let dev = a100_80g();
        let cfg = NmConfig::new(4, 16, 32).unwrap();
        // 64x128 output with the small kernel: a 2x4 = 8-block grid on a
        // 108-SM device -> split-K must engage.
        let kern = NmSpmmKernel::new(NmVersion::V3, BlockingParams::small());
        let plan = kern.plan(&dev, 64, 128, 4096, cfg).unwrap();
        assert!(plan.split_k > 1, "expected split-K, got {}", plan.split_k);
        // And a full-size problem must not split.
        let plan_big = kern.plan(&dev, 4096, 4096, 4096, cfg).unwrap();
        assert_eq!(plan_big.split_k, 1);
    }

    #[test]
    fn split_k_is_numerically_exact() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 16, 32).unwrap();
        let (a, sb) = problem(64, 96, 2048, cfg, PrunePolicy::Random { seed: 77 });
        let kern = NmSpmmKernel::new(NmVersion::V3, BlockingParams::small());
        let plan = kern.plan(&dev, 64, 96, 2048, cfg).unwrap();
        assert!(plan.split_k > 1, "test requires an engaged split-K");
        let run = kern.run(&dev, &a, &sb).unwrap();
        let expect = spmm_reference(&a, &sb);
        assert!(
            run.c.allclose(&expect, 1e-3, 1e-4),
            "split-K result differs: max diff {}",
            run.c.max_abs_diff(&expect)
        );
    }

    #[test]
    fn split_k_improves_skinny_problem_throughput() {
        let dev = a100_80g();
        let cfg = NmConfig::new(4, 16, 32).unwrap();
        let kern = NmSpmmKernel::new(NmVersion::V3, BlockingParams::small());
        let with_split = kern.estimate(&dev, 64, 128, 8192, cfg, None).unwrap();
        // Emulate no-split by comparing against a single-slice profile on a
        // device with few SMs (so split never engages) scaled... instead:
        // check utilization: the split plan must use many more blocks.
        let plan = kern.plan(&dev, 64, 128, 8192, cfg).unwrap();
        assert!(plan.split_k >= 8);
        assert!(
            with_split.efficiency > 0.10,
            "split-K should lift a skinny problem above trivial efficiency, got {}",
            with_split.efficiency
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let dev = a100_80g();
        let a = MatrixF32::random(32, 64, 1);
        let bd = MatrixF32::random(128, 32, 2);
        let sb = NmSparseMatrix::prune_magnitude(&bd, NmConfig::new(2, 4, 4).unwrap()).unwrap();
        let kern = NmSpmmKernel::auto(NmVersion::V3, 32, 32);
        assert!(kern.run(&dev, &a, &sb).is_err());
    }

    #[test]
    fn stats_scale_with_grid() {
        let dev = a100_80g();
        let cfg = NmConfig::new(8, 16, 32).unwrap();
        let kern = NmSpmmKernel::new(NmVersion::V1, BlockingParams::small());
        let (a1, sb1) = problem(32, 32, 128, cfg, PrunePolicy::Magnitude);
        let (a2, sb2) = problem(64, 64, 128, cfg, PrunePolicy::Magnitude);
        let s1 = kern.run(&dev, &a1, &sb1).unwrap().stats;
        let s2 = kern.run(&dev, &a2, &sb2).unwrap().stats;
        assert_eq!(s2.blocks, 4 * s1.blocks);
        assert_eq!(s2.ffma, 4 * s1.ffma);
        assert_eq!(s2.ldg_bytes_a, 4 * s1.ldg_bytes_a);
    }

    #[test]
    fn packed_traffic_is_smaller_than_unpacked() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 16, 32).unwrap();
        let (a, sb) = problem(128, 128, 512, cfg, PrunePolicy::Random { seed: 13 });
        let v1 = NmSpmmKernel::new(NmVersion::V1, BlockingParams::small())
            .run(&dev, &a, &sb)
            .unwrap();
        let v2 = NmSpmmKernel::new(NmVersion::V2, BlockingParams::small())
            .run(&dev, &a, &sb)
            .unwrap();
        assert!(
            v2.stats.ldg_bytes_a < v1.stats.ldg_bytes_a,
            "packing must cut A traffic: {} !< {}",
            v2.stats.ldg_bytes_a,
            v1.stats.ldg_bytes_a
        );
        assert!(v2.stats.ldg_bytes_colinfo > 0);
        assert_eq!(v1.stats.ldg_bytes_colinfo, 0);
    }
}
