//! Auto-tuning: search the blocking-parameter space with the timing model.
//!
//! Table I gives three hand-picked configurations; this module searches the
//! full valid space (power-of-two tiles, 32-lane warp grids, the Eq. 4/5
//! shared-memory equation, the Eq. 6 register budget) and returns the
//! fastest plan for a concrete `(device, m, n, k, N:M)` instance. The
//! search space is small (a couple hundred candidates) and each candidate
//! costs one analytic estimate (~0.3 µs), so exhaustive search is cheap —
//! the same offline-tuning workflow real kernel libraries use.
//!
//! [`candidates`] guarantees a **duplicate-free** list: the enumeration
//! walks warp lane grids `(ly, lx)`, but a [`BlockingParams`] only stores
//! the derived `(mr, nr) = (ly·mt, lx·nt)`, so two lane grids that map to
//! the same tuple would otherwise be counted (and evaluated, and ranked)
//! twice — inflating [`TuneResult::evaluated`] and the leaderboard. A set
//! keyed on the full parameter tuple filters them at the source.
//!
//! Callers rarely use this module directly: [`crate::plan::Planner`] runs
//! the search once per `(device, shape-class, N:M)` key and memoizes the
//! winner in a [`crate::plan::PlanCache`] (optionally persisted to JSON by
//! [`crate::engine::Engine`]), so repeated sweeps over the same shapes are
//! O(1) lookups instead of re-searches.

use crate::nm::{NmSpmmKernel, NmVersion};
use crate::params::BlockingParams;
use gpu_sim::device::DeviceConfig;
use gpu_sim::timing::LaunchReport;
use nm_core::error::{NmError, Result};
use nm_core::pattern::NmConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Result of an auto-tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneResult {
    /// The winning parameters.
    pub params: BlockingParams,
    /// Its timing report.
    pub report: LaunchReport,
    /// Number of valid candidates evaluated.
    pub evaluated: usize,
    /// Runner-up configurations (params, seconds), best first, for
    /// diagnostics.
    pub leaderboard: Vec<(BlockingParams, f64)>,
}

/// Enumerate every structurally valid candidate for the given `L`
/// (`ns` must be a multiple of the vector length).
///
/// The returned list is sorted and **contains no duplicates**: distinct
/// `(ly, lx)` lane grids that collapse to the same
/// `(ms, ns, mr, nr, mt, nt)` tuple are emitted once (a `BlockingParams`
/// cannot tell them apart, so evaluating both would only double-count).
pub fn candidates(l: usize) -> Vec<BlockingParams> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for ms in [32usize, 64, 128] {
        for ns in [32usize, 64, 128, 256] {
            // ns must be a multiple of L for the window blocking.
            if ns % l != 0 {
                continue;
            }
            for mt in [4usize, 8, 16] {
                for nt in [4usize, 8, 16] {
                    // Warp lane grids that give 32 lanes and divide the tile.
                    for (ly, lx) in [(4usize, 8usize), (8, 4), (2, 16), (16, 2)] {
                        let (mr, nr) = (ly * mt, lx * nt);
                        let p = BlockingParams {
                            ms,
                            ns,
                            mr,
                            nr,
                            mt,
                            nt,
                        };
                        if p.validate().is_ok()
                            && p.threads() >= 32
                            && p.threads() <= 1024
                            && seen.insert((ms, ns, mr, nr, mt, nt))
                        {
                            out.push(p);
                        }
                    }
                }
            }
        }
    }
    out.sort_by_key(|p| (p.ms, p.ns, p.mt, p.nt, p.mr, p.nr));
    out
}

/// Exhaustively tune the V3 kernel for one problem instance.
pub fn tune(dev: &DeviceConfig, m: usize, n: usize, k: usize, cfg: NmConfig) -> Result<TuneResult> {
    let mut board: Vec<(BlockingParams, f64, Option<LaunchReport>)> = Vec::new();
    let mut evaluated = 0usize;
    for p in candidates(cfg.l) {
        let kern = NmSpmmKernel::new(NmVersion::V3, p);
        match kern.estimate(dev, m, n, k, cfg, None) {
            Ok(rep) => {
                evaluated += 1;
                board.push((p, rep.seconds, Some(rep)));
            }
            Err(_) => continue, // unlaunchable on this device — skip
        }
    }
    if board.is_empty() {
        return Err(NmError::InvalidBlocking {
            reason: format!(
                "no valid blocking for m={m}, n={n}, k={k}, {cfg} on {}",
                dev.name
            ),
        });
    }
    board.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (params, _, report) = board.remove(0);
    Ok(TuneResult {
        params,
        report: report.expect("winner has a report"),
        evaluated,
        leaderboard: board.into_iter().take(8).map(|(p, s, _)| (p, s)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::{a100_80g, rtx4090};

    #[test]
    fn candidate_space_is_nonempty_and_valid() {
        let cands = candidates(32);
        assert!(cands.len() >= 20, "got {}", cands.len());
        for p in &cands {
            p.validate().unwrap();
            assert_eq!(p.ns % 32, 0);
        }
        // Table I's large config must be in the space.
        assert!(cands.contains(&BlockingParams::large()));
        assert!(cands.contains(&BlockingParams::small()));
    }

    #[test]
    fn tuned_never_loses_to_table_i() {
        let dev = a100_80g();
        for (m, n, k) in [(512usize, 512usize, 512usize), (4096, 4096, 4096)] {
            let cfg = NmConfig::new(4, 16, 32).unwrap();
            let tuned = tune(&dev, m, n, k, cfg).unwrap();
            let preset = NmSpmmKernel::auto(NmVersion::V3, m, n)
                .estimate(&dev, m, n, k, cfg, None)
                .unwrap();
            assert!(
                tuned.report.seconds <= preset.seconds * 1.0001,
                "{m}x{n}x{k}: tuned {} must not lose to preset {}",
                tuned.report.seconds,
                preset.seconds
            );
        }
    }

    #[test]
    fn small_problems_prefer_small_tiles() {
        let dev = a100_80g();
        let cfg = NmConfig::new(8, 16, 32).unwrap();
        let t = tune(&dev, 256, 256, 512, cfg).unwrap();
        assert!(
            t.params.ms * t.params.ns <= 64 * 128,
            "a 256x256 problem should not pick a giant tile: {:?}",
            t.params
        );
    }

    #[test]
    fn leaderboard_is_sorted() {
        let dev = rtx4090();
        let cfg = NmConfig::new(2, 16, 32).unwrap();
        let t = tune(&dev, 1024, 1024, 1024, cfg).unwrap();
        assert!(!t.leaderboard.is_empty());
        for w in t.leaderboard.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!(t.report.seconds <= t.leaderboard[0].1);
        assert!(t.evaluated > t.leaderboard.len());
    }

    #[test]
    fn respects_vector_length_constraint() {
        let cands = candidates(128);
        assert!(cands.iter().all(|p| p.ns % 128 == 0));
        assert!(!cands.is_empty());
    }

    #[test]
    fn candidates_are_unique() {
        // Regression guard for the duplicate-candidate bug: two lane grids
        // mapping onto one (ms, ns, mr, nr, mt, nt) tuple must yield ONE
        // candidate, or `evaluated` and the leaderboard double-count it.
        for l in [8usize, 16, 32, 64, 128] {
            let cands = candidates(l);
            let unique: HashSet<(usize, usize, usize, usize, usize, usize)> = cands
                .iter()
                .map(|p| (p.ms, p.ns, p.mr, p.nr, p.mt, p.nt))
                .collect();
            assert_eq!(
                unique.len(),
                cands.len(),
                "L={l}: candidate list contains duplicates"
            );
        }
    }

    #[test]
    fn evaluated_is_bounded_by_unique_candidates() {
        // `evaluated` counts only launchable candidates, each exactly once.
        let dev = a100_80g();
        let cfg = NmConfig::new(4, 16, 32).unwrap();
        let t = tune(&dev, 2048, 2048, 2048, cfg).unwrap();
        let cands = candidates(cfg.l);
        assert!(
            t.evaluated <= cands.len(),
            "evaluated {} exceeds the {} unique candidates",
            t.evaluated,
            cands.len()
        );
        // The leaderboard (winner excluded) can never exceed evaluated − 1.
        assert!(t.leaderboard.len() < t.evaluated);
    }
}
