//! The Sputnik baseline — unstructured sparse×dense SpMM (Gale et al.).
//!
//! Sputnik ignores the N:M structure entirely: the pruned `B` is handed
//! over as a generic CSR matrix (transposed, so output columns become CSR
//! rows) and a row-split kernel assigns one warp per output row. Per
//! nonzero it streams an `m`-wide row of the dense operand — traffic that
//! scales with `nnz × m` instead of NM-SpMM's blocked working set, so the
//! kernel is deeply memory bound at every sparsity level ("poorer
//! performance due to its direct handling of unstructured sparse patterns",
//! §IV-D). The gathers mostly hit L2 (the dense operand is small relative
//! to the gathered volume), which the bespoke timing model below accounts
//! for explicitly; unlike the blocked kernels it does not share the
//! `KernelProfile` iteration structure.

use crate::common::grid_dims;
use crate::SimRun;
use gpu_sim::device::DeviceConfig;
use gpu_sim::l2::TrafficSplit;
use gpu_sim::stats::KernelStats;
use gpu_sim::timing::{Bound, LaunchReport, RoundBreakdown};
use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::sparse::NmSparseMatrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Output rows handled per thread block (4 warps, one CSR row each).
const ROWS_PER_BLOCK: usize = 4;
/// Load-imbalance allowance: N:M-pruned inputs are perfectly balanced, but
/// Sputnik's wavefront still pays scheduling skew on ragged row tails.
const IMBALANCE: f64 = 1.08;

/// The Sputnik unstructured-SpMM baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SputnikKernel;

impl SputnikKernel {
    /// Analytic estimate without data.
    pub fn estimate(
        &self,
        dev: &DeviceConfig,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
    ) -> LaunchReport {
        let w = cfg.compressed_rows(k);
        let nnz = (w * n) as f64; // every output column has exactly w nonzeros
        let useful_flops = 2.0 * m as f64 * n as f64 * w as f64;

        // --- Compute ---
        let comp_cycles = (nnz * m as f64) / (dev.fma_per_clock_per_sm() * dev.sm_count as f64);

        // --- Memory ---
        // Raw gather volume: an m-row of A per nonzero, plus CSR metadata.
        let gather_raw = nnz * m as f64 * 4.0;
        let csr_bytes = nnz * 8.0; // 4B value + 4B column index
        let c_bytes = (m * n * 4) as f64;
        // Sputnik is oblivious to the N:M structure, but the cache is not:
        // all L output columns of one pruning window carry identical
        // k-indices, so consecutive CSR rows re-gather the same A rows and
        // ~ (L−1)/L of the volume hits in cache; the L2 pipe still has to
        // serve every byte.
        let share = cfg.l.max(1) as f64;
        let unique_a = (m * k * 4) as f64;
        let dram_gather = (gather_raw / share).max(unique_a.min(gather_raw));
        let l2_hit_bytes = gather_raw - dram_gather;
        let dram_bytes = dram_gather + csr_bytes + c_bytes;
        let mem_cycles =
            dram_bytes / dev.dram_bytes_per_clock() + l2_hit_bytes / dev.l2_bytes_per_clock();

        // --- Assemble ---
        let cycles = comp_cycles.max(mem_cycles) * IMBALANCE / dev.sustained_efficiency;
        let seconds = cycles / dev.clock_hz();
        let tflops = useful_flops / seconds / 1e12;
        let grid = grid_dims(n, 1, ROWS_PER_BLOCK, 1);
        LaunchReport {
            name: "Sputnik SpMM".into(),
            cycles,
            seconds,
            tflops,
            efficiency: tflops / dev.peak_fp32_tflops(),
            bound: if mem_cycles >= comp_cycles {
                Bound::Memory
            } else {
                Bound::Compute
            },
            waves: (grid.0).div_ceil(dev.sm_count * 8).max(1),
            blocks_per_sm: 8,
            traffic: TrafficSplit {
                dram_bytes,
                l2_hit_bytes,
                miss_fraction: dram_bytes / (dram_bytes + l2_hit_bytes),
            },
            round: RoundBreakdown {
                compute: comp_cycles,
                shared: 0.0,
                memory: mem_cycles,
                critical_path: 0.0,
            },
        }
    }

    /// Functional run: CSR row-split evaluation.
    pub fn run(&self, dev: &DeviceConfig, a: &MatrixF32, sb: &NmSparseMatrix) -> Result<SimRun> {
        let (m, k) = a.shape();
        if k != sb.k() {
            return Err(NmError::DimensionMismatch {
                expected: format!("A with k = {}", sb.k()),
                found: format!("A with k = {k}"),
            });
        }
        let n = sb.cols();
        let cfg = sb.cfg();
        let report = self.estimate(dev, m, n, k, cfg);

        // Build the CSR view of Bᵀ: row j holds (k_row, value) pairs.
        let (w, _q) = (sb.w(), sb.q());
        let values = sb.values();
        let d = sb.indices();
        let csr: Vec<Vec<(u32, f32)>> = (0..n)
            .map(|j| {
                let jq = j / cfg.l;
                (0..w)
                    .filter_map(|u| {
                        let row = u / cfg.n * cfg.m + d.get(u, jq) as usize;
                        let v = values.get(u, j);
                        (row < k).then_some((row as u32, v))
                    })
                    .collect()
            })
            .collect();

        // Row-split execution: one "warp" per output column.
        let mut ct = vec![0f32; n * m]; // Cᵀ, row j = output column j
        ct.par_chunks_mut(m).enumerate().for_each(|(j, out)| {
            for &(row, v) in &csr[j] {
                if v == 0.0 {
                    continue;
                }
                let a_col_base = row as usize;
                for (i, o) in out.iter_mut().enumerate() {
                    *o += v * a.get(i, a_col_base);
                }
            }
        });
        let mut c = MatrixF32::zeros(m, n);
        for j in 0..n {
            for i in 0..m {
                c.set(i, j, ct[j * m + i]);
            }
        }

        let nnz: u64 = csr.iter().map(|r| r.len() as u64).sum();
        let stats = KernelStats {
            ffma: nnz * m as u64,
            ldg_bytes_a: nnz * m as u64 * 4,
            ldg_bytes_b: nnz * 8,
            stg_bytes: (m * n * 4) as u64,
            ldg_sectors: nnz * m.div_ceil(8) as u64 + nnz / 4 + 1,
            blocks: n.div_ceil(ROWS_PER_BLOCK) as u64,
            main_loop_iters: nnz.div_ceil(32),
            ..Default::default()
        };
        Ok(SimRun { c, stats, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseGemmKernel;
    use crate::params::BlockingParams;
    use gpu_sim::device::a100_80g;
    use nm_core::prune::PrunePolicy;
    use nm_core::spmm::spmm_reference;

    #[test]
    fn functional_matches_reference() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 16, 8).unwrap();
        let a = MatrixF32::random(60, 128, 1);
        let bd = MatrixF32::random(128, 96, 2);
        let sb = NmSparseMatrix::prune(&bd, cfg, PrunePolicy::Random { seed: 3 }).unwrap();
        let run = SputnikKernel.run(&dev, &a, &sb).unwrap();
        let expect = spmm_reference(&a, &sb);
        assert!(
            run.c.allclose(&expect, 1e-3, 1e-4),
            "max diff {}",
            run.c.max_abs_diff(&expect)
        );
    }

    #[test]
    fn memory_bound_and_slow_at_moderate_sparsity() {
        // Fig. 9: Sputnik sits below the cuBLAS line at 50%.
        let dev = a100_80g();
        let cfg = NmConfig::new(8, 16, 32).unwrap();
        let sputnik = SputnikKernel.estimate(&dev, 4096, 4096, 4096, cfg);
        let dense = DenseGemmKernel::new(BlockingParams::large())
            .estimate(&dev, 4096, 4096, 4096)
            .unwrap();
        assert_eq!(sputnik.bound, Bound::Memory);
        assert!(
            sputnik.seconds > dense.seconds,
            "Sputnik {} must lose to cuBLAS {} at 50%",
            sputnik.seconds,
            dense.seconds
        );
    }

    #[test]
    fn gains_ground_at_extreme_sparsity() {
        // Its traffic scales with nnz, so 87.5% is ~4x faster than 50%.
        let dev = a100_80g();
        let t50 = SputnikKernel
            .estimate(&dev, 4096, 4096, 4096, NmConfig::new(8, 16, 32).unwrap())
            .seconds;
        let t875 = SputnikKernel
            .estimate(&dev, 4096, 4096, 4096, NmConfig::new(2, 16, 32).unwrap())
            .seconds;
        assert!(
            t875 < t50 / 2.5,
            "87.5% ({t875}) should be ≫ faster than 50% ({t50})"
        );
    }

    #[test]
    fn nnz_matches_structure() {
        let dev = a100_80g();
        let cfg = NmConfig::new(4, 16, 4).unwrap();
        let a = MatrixF32::random(16, 64, 5);
        let bd = MatrixF32::random(64, 32, 6);
        let sb = NmSparseMatrix::prune_magnitude(&bd, cfg).unwrap();
        let run = SputnikKernel.run(&dev, &a, &sb).unwrap();
        // nnz = w * n = 16 * 32; FMA = nnz * m.
        assert_eq!(run.stats.ffma, 16 * 32 * 16);
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let dev = a100_80g();
        let a = MatrixF32::random(8, 8, 1);
        let bd = MatrixF32::random(16, 16, 2);
        let sb = NmSparseMatrix::prune_magnitude(&bd, NmConfig::new(2, 4, 4).unwrap()).unwrap();
        assert!(SputnikKernel.run(&dev, &a, &sb).is_err());
    }
}
