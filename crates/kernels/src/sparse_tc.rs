//! Sparse Tensor Core 2:4 stand-in (cuSPARSELt-style).
//!
//! The paper's related work (§II-B) contrasts NM-SpMM with NVIDIA's
//! hardware path: Ampere/Ada Sparse Tensor Cores double the *Tensor Core*
//! math throughput for the fixed element-wise 2:4 pattern (Mishra et al.).
//! NM-SpMM's pitch is generality (any N:M, any vector length, CUDA cores,
//! no fine-tuning lock-in); this module quantifies what that generality
//! costs against the specialized hardware when — and only when — the
//! pattern happens to be 2:4.
//!
//! Model: a TF32/FP32-in-TF32-out tensor-core GEMM at the device's TC
//! throughput, doubled by the sparsity feature, bound by the same DRAM/L2
//! model as everything else. Analytic only — there is nothing functional to
//! validate beyond what the dense kernel already covers (the math is the
//! same masked GEMM, executed by fixed-function hardware).

use crate::common::grid_dims;
use gpu_sim::device::DeviceConfig;
use gpu_sim::l2::{split_traffic, BlockTraffic, TrafficSplit};
use gpu_sim::timing::{Bound, LaunchReport, RoundBreakdown, SimError};
use nm_core::pattern::NmConfig;
use serde::{Deserialize, Serialize};

/// TF32 tensor-core throughput relative to the FP32 CUDA-core peak
/// (A100: 156 vs 19.5 TFLOPS = 8×; consumer Ampere/Ada: ~4× without the
/// datacenter TC width). We use the conservative consumer ratio so the
/// comparison is not A100-flattering.
const TC_DENSE_RATIO: f64 = 4.0;
/// Sparse Tensor Cores double math throughput for 2:4 operands.
const TC_SPARSE_BONUS: f64 = 2.0;

/// The fixed-pattern hardware baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SparseTensorCoreKernel;

impl SparseTensorCoreKernel {
    /// `true` iff the hardware path supports this configuration at all.
    pub fn supports(cfg: NmConfig) -> bool {
        cfg.n == 2 && cfg.m == 4
    }

    /// Analytic estimate. Returns `Err` for any pattern other than 2:4 —
    /// the whole point of the comparison.
    pub fn estimate(
        &self,
        dev: &DeviceConfig,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
    ) -> Result<LaunchReport, SimError> {
        if !Self::supports(cfg) {
            return Err(SimError::Unlaunchable {
                reason: format!(
                    "sparse tensor cores support only 2:4 element-wise sparsity, not {cfg}"
                ),
            });
        }
        let (ms, ns, ks) = (128usize, 128usize, 32usize);
        let grid = grid_dims(m, n, ms, ns);
        let useful_flops = 2.0 * m as f64 * n as f64 * (k as f64 / 2.0);

        let math_flops_per_sec =
            dev.peak_fp32_flops() * TC_DENSE_RATIO * TC_SPARSE_BONUS * dev.sustained_efficiency;
        let comp_cycles = useful_flops / math_flops_per_sec * dev.clock_hz();

        // Traffic: A read per column block, compressed B (half) + metadata.
        let iters = k.div_ceil(ks).max(1);
        let traffic = BlockTraffic {
            a_bytes: (ms * ks * 4) as f64,
            bcol_bytes: (ks / 2 * ns * 4) as f64 * 1.0625, // values + 2-bit metadata
            private_bytes: 0.0,
        };
        let wave = (grid.0 * grid.1).min(dev.sm_count);
        let split = split_traffic(dev, grid.0, grid.1, wave, &traffic, iters);
        let total_blocks = (grid.0 * grid.1) as f64;
        let bytes_total = total_blocks * iters as f64 * traffic.total() + (m * n * 4) as f64;
        let mem_cycles = bytes_total * split.miss_fraction / dev.dram_bytes_per_clock()
            + bytes_total * (1.0 - split.miss_fraction) / dev.l2_bytes_per_clock();

        let cycles = comp_cycles.max(mem_cycles);
        let seconds = cycles / dev.clock_hz();
        let tflops = useful_flops / seconds / 1e12;
        Ok(LaunchReport {
            name: "sparse tensor core 2:4".into(),
            cycles,
            seconds,
            tflops,
            // Efficiency against the *CUDA core* peak, like every other
            // report — values above 1.0 are the hardware advantage.
            efficiency: tflops / dev.peak_fp32_tflops(),
            bound: if mem_cycles > comp_cycles {
                Bound::Memory
            } else {
                Bound::Compute
            },
            waves: (grid.0 * grid.1).div_ceil(dev.sm_count).max(1),
            blocks_per_sm: 1,
            traffic: TrafficSplit {
                dram_bytes: bytes_total * split.miss_fraction,
                l2_hit_bytes: bytes_total * (1.0 - split.miss_fraction),
                miss_fraction: split.miss_fraction,
            },
            round: RoundBreakdown {
                compute: comp_cycles,
                shared: 0.0,
                memory: mem_cycles,
                critical_path: 0.0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BlockingParams;
    use crate::{NmSpmmKernel, NmVersion};
    use gpu_sim::device::a100_80g;

    #[test]
    fn rejects_everything_but_2_4() {
        let dev = a100_80g();
        for cfg in [
            NmConfig::new(2, 16, 32).unwrap(),
            NmConfig::new(4, 8, 4).unwrap(),
            NmConfig::new(1, 4, 4).unwrap(),
        ] {
            assert!(SparseTensorCoreKernel
                .estimate(&dev, 512, 512, 512, cfg)
                .is_err());
        }
        assert!(SparseTensorCoreKernel
            .estimate(&dev, 512, 512, 512, NmConfig::new(2, 4, 1).unwrap())
            .is_ok());
    }

    #[test]
    fn hardware_path_beats_cuda_cores_at_2_4() {
        // The expected result: for the one pattern it supports, fixed
        // hardware wins big — that is exactly why NM-SpMM's pitch is
        // flexibility, not raw 2:4 speed.
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 4, 32).unwrap();
        let tc = SparseTensorCoreKernel
            .estimate(&dev, 4096, 4096, 4096, cfg)
            .unwrap();
        let ours = NmSpmmKernel::new(NmVersion::V3, BlockingParams::large())
            .estimate(&dev, 4096, 4096, 4096, cfg, None)
            .unwrap();
        assert!(
            tc.seconds < ours.seconds,
            "sparse TC {} must beat the CUDA-core kernel {}",
            tc.seconds,
            ours.seconds
        );
        assert!(
            tc.efficiency > 1.0,
            "TC throughput exceeds the CUDA-core peak"
        );
    }

    #[test]
    fn small_problems_are_memory_bound_on_tc() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 4, 32).unwrap();
        let rep = SparseTensorCoreKernel
            .estimate(&dev, 256, 256, 16384, cfg)
            .unwrap();
        assert_eq!(
            rep.bound,
            Bound::Memory,
            "skinny shapes cannot feed the TCs"
        );
    }
}
