//! The `codegen` execution backend: plans lowered to WGSL through
//! `nm-gpu`, executed by its deterministic shader interpreter.
//!
//! This is the third [`ExecBackend`]: where
//! [`SimBackend`](crate::backend::SimBackend) models a launch and
//! [`CpuBackend`](crate::backend::CpuBackend) runs the ladder natively,
//! this backend *generates the GPU kernel* — a complete WGSL compute
//! shader lowered from the plan's blocking, the N:M config and the
//! staged storage format — validates it, and executes its tile walk on
//! the host, workgroup by workgroup.
//!
//! ## The twin-preparation contract
//!
//! A [`CodegenPrepared`] wraps an ordinary V3 [`CpuPrepared`] twin and
//! derives every shader binding from the *same clamped geometry and the
//! same fast/general classification* the CPU kernel uses:
//!
//! * the gather table holds the pre-resolved absolute dense-k indices
//!   (`u/N·M + D[u][jw]`) — the sliced staging's trick, applied
//!   uniformly;
//! * column groups mirror the staging's grid-x decomposition: one group
//!   per column block (row-major) or per SELL-C-σ slice (sliced, spans
//!   in permuted order with original-column write-back);
//! * the per-`(span, k-block)` fast flags replicate the CPU panel
//!   classification bit for bit (the sliced twin's op-flavor map is
//!   reused verbatim), so the interpreter chooses FMA vs
//!   zero-skipping mul-add exactly where the CPU kernel does.
//!
//! That is what makes the parity guarantee *trace-level*: the
//! interpreter's output is bit-identical to `cpu_v3`, and its phase
//! structure (workgroups folded into waves by the simulator's own
//! occupancy model) matches the [`gpu_sim::ExecutionTrace`] of the
//! equivalent simulated launch.

use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_core::sparse::NmSparseMatrix;

use crate::backend::{BackendKind, ExecBackend, ExecRun, PreparedState};
use crate::cpu::{CpuPrepared, CpuTiling};
use crate::nm::NmVersion;
use crate::plan::{KernelChoice, Plan};
use crate::simd::{Isa, MicroKernel, NW};
use gpu_sim::device::DeviceConfig;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::timing::{estimate, KernelProfile, PipelineMode};
use gpu_sim::{ExecutionTrace, KernelStats, LaunchReport, PhaseCounts};
use nm_gpu::{
    emit_wgsl, interpret, lower, validate_wgsl, ColumnGroup, InterpTrace, KernelBindings,
    KernelFamily, KernelIr, KernelSpec, ValidateOptions, WindowSpan,
};
use std::any::Any;
use std::time::Instant;

/// Registers the timing model charges each generated-kernel thread —
/// the register budget of the paper's hand-written kernels; the emitted
/// WGSL has the same live-value footprint (accumulator lane + staged
/// operands).
const REGS_PER_THREAD: usize = 64;

fn foreign_state_error() -> NmError {
    NmError::InvalidConfig {
        reason: "prepared state was not produced by the codegen backend \
                 (prepare and run_prepared must use the same backend)"
            .into(),
    }
}

/// The kernel family a plan lowers to: the plan's ladder choice, except
/// that decode-class shapes take the skinny-row family (the 1-row rung
/// of the ladder, single-row register tiles).
pub fn family_for_plan(plan: &Plan) -> KernelFamily {
    if plan.key.shape.is_decode() {
        KernelFamily::SkinnyDecode
    } else {
        match plan.choice.nm_version().unwrap_or(NmVersion::V3) {
            NmVersion::V1 => KernelFamily::V1,
            NmVersion::V2 => KernelFamily::V2,
            NmVersion::V3 => KernelFamily::V3,
        }
    }
}

/// The offline product of the codegen backend: the V3 twin preparation,
/// the lowered IR, the emitted-and-validated WGSL, and the interpreter's
/// binding tables — everything derived from the weights alone.
pub struct CodegenPrepared {
    twin: CpuPrepared,
    ir: KernelIr,
    wgsl: String,
    b: Vec<f32>,
    gather: Vec<u32>,
    groups: Vec<ColumnGroup>,
    fast: Vec<bool>,
    q: usize,
}

impl CodegenPrepared {
    /// Lower, emit and validate the kernel for `(plan, sb)` on top of an
    /// already-staged V3 twin preparation.
    fn build(plan: &Plan, sb: &NmSparseMatrix, twin: CpuPrepared) -> Result<Self> {
        let cfg = sb.cfg();
        let (w, n, k, q) = (sb.w(), sb.cols(), sb.k(), sb.q());
        let tiling = twin.tiling();
        let family = family_for_plan(plan);

        // Binding tables shared by every family and storage format.
        let b = sb.values().as_slice().to_vec();
        let d = sb.indices();
        let mut gather = Vec::with_capacity(w * q);
        for u in 0..w {
            let base = u / cfg.n * cfg.m;
            for jw in 0..q {
                gather.push((base + d.get(u, jw) as usize) as u32);
            }
        }

        // Grid decomposition + fast flags, per storage format.
        let (groups, fast, group_count, staged_kblocks) =
            if let Some((sm, flags, _ub, kblocks)) = twin.sliced_parts() {
                let mut groups = Vec::with_capacity(sm.slices());
                for s in 0..sm.slices() {
                    let mut spans = Vec::new();
                    let mut col_off = 0u32;
                    for pos in sm.slice_windows(s) {
                        let (col, lw) = sm.span(pos);
                        spans.push(WindowSpan {
                            window: sm.perm().perm[pos] as u32,
                            col: col as u32,
                            width: lw as u32,
                            strip_off: col_off,
                        });
                        col_off += lw as u32;
                    }
                    groups.push(ColumnGroup { spans });
                }
                let count = groups.len();
                // The twin's op-flavor map is already keyed by permuted
                // position — exactly this span order.
                (groups, flags.to_vec(), count, kblocks)
            } else {
                let (nb, ub, jblocks, kblocks) = twin
                    .rowmajor_geometry()
                    .expect("a preparation is either sliced or row-major");
                let mut groups = Vec::with_capacity(jblocks);
                for jbi in 0..jblocks {
                    let jb = jbi * nb;
                    let jb_hi = (jb + nb).min(n);
                    let j_lo = jb / cfg.l;
                    let j_hi = jb_hi.div_ceil(cfg.l).min(q);
                    let spans = (j_lo..j_hi)
                        .map(|j| {
                            let col = j * cfg.l;
                            WindowSpan {
                                window: j as u32,
                                col: col as u32,
                                width: ((col + cfg.l).min(n) - col) as u32,
                                strip_off: (col - jb) as u32,
                            }
                        })
                        .collect();
                    groups.push(ColumnGroup { spans });
                }
                let fast = rowmajor_fast_flags(sb, nb, ub, kblocks, twin.is_packed());
                (groups, fast, jblocks, kblocks)
            };

        let spec = KernelSpec {
            family,
            storage: twin.format(),
            cfg,
            n,
            k,
            w,
            mb: tiling.mb,
            nb: tiling.nb,
            kb: tiling.kb,
            groups: group_count,
            packed: twin.is_packed(),
            fma: twin.isa() != Isa::Scalar,
        };
        let ir = lower(&spec)?;
        debug_assert_eq!(
            ir.spec.kblocks(),
            staged_kblocks,
            "IR k-block count must equal the staged geometry's"
        );
        let wgsl = emit_wgsl(&ir);
        // The emission gate: a malformed shader is a structured error at
        // preparation time, never something a runtime would discover.
        validate_wgsl(&wgsl, &ValidateOptions::default()).map_err(|e| NmError::InvalidConfig {
            reason: format!("generated WGSL failed validation: {e}"),
        })?;
        Ok(Self {
            twin,
            ir,
            wgsl,
            b,
            gather,
            groups,
            fast,
            q,
        })
    }

    /// The lowered kernel IR.
    pub fn ir(&self) -> &KernelIr {
        &self.ir
    }

    /// The generated (and validated) WGSL source.
    pub fn wgsl(&self) -> &str {
        &self.wgsl
    }

    /// The kernel spec this preparation lowered.
    pub fn spec(&self) -> &KernelSpec {
        &self.ir.spec
    }

    /// The interpreter's view of the binding tables.
    pub fn bindings(&self) -> KernelBindings<'_> {
        KernelBindings {
            b: &self.b,
            gather: &self.gather,
            groups: &self.groups,
            fast: &self.fast,
            q: self.q,
        }
    }

    /// The micro-kernel ISA the twin preparation dispatched to.
    pub fn isa(&self) -> Isa {
        self.twin.isa()
    }

    /// Execute the generated kernel over `a` through the shader
    /// interpreter, after the same operand validation the CPU path runs.
    ///
    /// # Errors
    /// [`NmError::DimensionMismatch`] when `a.cols() != sb.k()` or when
    /// `sb` is not the operand this preparation was staged from.
    pub fn execute(&self, a: &MatrixF32, sb: &NmSparseMatrix) -> Result<(MatrixF32, InterpTrace)> {
        let (m, k) = a.shape();
        if k != sb.k() {
            return Err(NmError::DimensionMismatch {
                expected: format!("A with k = {}", sb.k()),
                found: format!("A is {m} x {k}"),
            });
        }
        self.twin.validate_operand(sb)?;
        let (c, trace) = interpret(&self.ir, &self.bindings(), a.as_slice(), m)?;
        Ok((MatrixF32::from_vec(m, self.ir.spec.n, c), trace))
    }

    /// The block-resource shape of the generated kernel — what the
    /// occupancy model folds workgroups into waves with.
    pub fn resources(&self) -> BlockResources {
        BlockResources {
            threads: self.ir.threads() as usize,
            regs_per_thread: REGS_PER_THREAD,
            smem_bytes: self.ir.shared_bytes(),
        }
    }

    /// The timing-model profile of one launch over `m` activation rows.
    pub fn profile(&self, m: usize) -> KernelProfile {
        let spec = &self.ir.spec;
        let row_tiles = m.div_ceil(spec.mb).max(1);
        let threads = self.ir.threads().max(1) as f64;
        let ub = spec.ub();
        // One FMA per thread-cycle; shared traffic at the micro-tile's
        // reuse ratio. Coarse, but derived from the same geometry the
        // interpreter walks, so grid/iteration structure is exact.
        let macs_per_iter = (spec.mb * spec.nb * ub) as f64;
        KernelProfile {
            name: spec.name(),
            grid: (self.groups.len(), row_tiles),
            resources: self.resources(),
            iters_per_block: spec.kblocks(),
            comp_cycles_per_iter: macs_per_iter / threads,
            lds_cycles_per_iter: macs_per_iter / threads / 4.0,
            g2s_per_iter: gpu_sim::l2::BlockTraffic {
                a_bytes: (spec.mb * spec.kb * 4) as f64,
                bcol_bytes: (ub * spec.nb * 4) as f64,
                private_bytes: 0.0,
            },
            dependent_load_chains: 1.0,
            pipeline: if self.ir.buffers == 2 {
                PipelineMode::DoubleBuffered
            } else {
                PipelineMode::Serial
            },
            inner_double_buffer: self.ir.buffers == 2,
            stg_bytes_per_block: (spec.mb * spec.nb * 4) as f64,
            useful_flops: 2.0 * m as f64 * spec.n as f64 * spec.w as f64,
        }
    }

    /// The simulated launch report + timeline for an `m`-row launch.
    ///
    /// # Errors
    /// Propagates the timing model's structured error for a degenerate
    /// profile.
    pub fn simulate(&self, dev: &DeviceConfig, m: usize) -> Result<(LaunchReport, ExecutionTrace)> {
        let prof = self.profile(m);
        let report = estimate(dev, &prof).map_err(|e| NmError::InvalidConfig {
            reason: format!("timing model rejected the generated kernel's profile: {e}"),
        })?;
        let trace = ExecutionTrace::from_launch(dev, &prof, &report);
        Ok((report, trace))
    }

    /// Trace-level parity check for an `m`-row launch: the interpreter's
    /// phase structure and the simulator's, computed independently —
    /// the interpreter folds the workgroups it actually walked through
    /// the occupancy model; the simulator derives its timeline from the
    /// profile. Equality is the acceptance criterion.
    ///
    /// # Errors
    /// As [`CodegenPrepared::simulate`].
    pub fn phase_parity(
        &self,
        dev: &DeviceConfig,
        trace: &InterpTrace,
        m: usize,
    ) -> Result<(PhaseCounts, PhaseCounts)> {
        let (_, sim_trace) = self.simulate(dev, m)?;
        Ok((
            trace.phase_counts(dev, &self.resources()),
            sim_trace.phase_counts(),
        ))
    }

    /// Event counts attributed from what the interpreter observed.
    fn stats(&self, trace: &InterpTrace) -> KernelStats {
        let shared_floats = self.ir.shared_floats as u64;
        KernelStats {
            ffma: trace.flops as u64 / 2,
            ldg_bytes_a: trace.gather_loads as u64 * 4,
            ldg_bytes_b: trace.gather_loads as u64 * 4,
            ldg_bytes_d: self.gather.len() as u64 * 4,
            ldg_bytes_colinfo: 0,
            stg_bytes: trace.writebacks as u64 * 4,
            ldg_sectors: (trace.gather_loads as u64 * 4).div_ceil(32),
            lds_requests: trace.flops as u64 / 2 / 32,
            lds_replays: 0,
            sts_requests: trace.shared_stages as u64,
            lds_bytes: trace.flops as u64 / 2 * 4,
            sts_bytes: trace.shared_stages as u64 * shared_floats * 4,
            barriers: (trace.shared_stages + trace.epilogues) as u64,
            blocks: trace.workgroups as u64,
            main_loop_iters: (trace.workgroups * trace.main_iters_per_workgroup) as u64,
        }
    }
}

/// Replicate the row-major panel classification per `(window, k-block)`:
/// vectorized micro-tile versus general mul-add-with-zero-skip — the
/// same predicate `run_panel` evaluates per block, flattened to windows
/// (`fast[j * kblocks + bk]`).
fn rowmajor_fast_flags(
    sb: &NmSparseMatrix,
    nb: usize,
    ub: usize,
    kblocks: usize,
    packed: bool,
) -> Vec<bool> {
    let cfg = sb.cfg();
    let (w, n, q, k) = (sb.w(), sb.cols(), sb.q(), sb.k());
    let kb = ub * cfg.m / cfg.n;
    let jblocks = n.div_ceil(nb);
    let d = sb.indices();
    let mut fast = vec![false; q * kblocks];
    if !cfg.l.is_multiple_of(NW) {
        return fast;
    }
    for jbi in 0..jblocks {
        let jb = jbi * nb;
        let jb_hi = (jb + nb).min(n);
        if !(jb_hi - jb).is_multiple_of(cfg.l) {
            continue;
        }
        let j_lo = jb / cfg.l;
        let j_hi = jb_hi.div_ceil(cfg.l).min(q);
        for bk in 0..kblocks {
            let u_lo = bk * ub;
            let u_hi = ((bk + 1) * ub).min(w);
            let in_bounds = packed
                || (bk + 1) * kb <= k
                || (j_lo..j_hi)
                    .all(|j| (u_lo..u_hi).all(|u| u / cfg.n * cfg.m + (d.get(u, j) as usize) < k));
            if in_bounds {
                for j in j_lo..j_hi {
                    fast[j * kblocks + bk] = true;
                }
            }
        }
    }
    fast
}

impl PreparedState for CodegenPrepared {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn isa(&self) -> Option<Isa> {
        Some(self.twin.isa())
    }

    fn storage(&self) -> Option<nm_core::sliced::StorageFormat> {
        Some(self.twin.format())
    }
}

/// The WGSL code-generation backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct CodegenBackend {
    /// Explicit micro-kernel pin for the twin preparation, mirroring
    /// [`CpuBackend::with_kernel`](crate::backend::CpuBackend::with_kernel).
    kernel: Option<MicroKernel>,
}

impl CodegenBackend {
    /// Backend with runtime ISA dispatch for the twin preparation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Backend pinned to an explicit micro-kernel (the ALU-mode pin:
    /// scalar → twice-rounded mul/add, vector → FMA).
    pub fn with_kernel(kernel: MicroKernel) -> Self {
        Self {
            kernel: Some(kernel),
        }
    }
}

impl ExecBackend for CodegenBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Codegen
    }

    /// The offline step: resolve tiles and storage exactly as the V3 CPU
    /// backend would (measured evidence for V3 wins, cost-model
    /// derivation otherwise), stage the twin preparation, then lower,
    /// emit and validate the WGSL kernel.
    fn prepare(
        &self,
        _dev: &DeviceConfig,
        plan: &Plan,
        sb: &NmSparseMatrix,
    ) -> Result<Box<dyn PreparedState>> {
        let cfg = sb.cfg();
        let measured = plan
            .measured
            .as_ref()
            .filter(|m| m.ladder_version == NmVersion::V3);
        let measured_tiling = measured
            .map(|m| m.cpu_tiling)
            .filter(|t| t.nb.is_multiple_of(cfg.l) && t.kb.is_multiple_of(cfg.m));
        let tiling = match measured_tiling {
            Some(t) => t,
            None => CpuTiling::derive(plan.params, cfg, sb.k())?,
        };
        let format = measured.map(|m| m.storage).unwrap_or(plan.key.storage);
        let twin = match self.kernel {
            Some(k) => CpuPrepared::with_format(NmVersion::V3, sb, tiling, k, format)?,
            None => CpuPrepared::new_with_format(NmVersion::V3, sb, tiling, format)?,
        };
        Ok(Box::new(CodegenPrepared::build(plan, sb, twin)?))
    }

    /// The online step: interpret the generated kernel, then attach the
    /// simulated report and event counts for the same launch — this
    /// backend reports both real numerics *and* the model's opinion of
    /// the kernel it generated.
    fn run_prepared(
        &self,
        dev: &DeviceConfig,
        plan: &Plan,
        state: &dyn PreparedState,
        a: &MatrixF32,
        sb: &NmSparseMatrix,
    ) -> Result<ExecRun> {
        let Some(prep) = state.as_any().downcast_ref::<CodegenPrepared>() else {
            return Err(foreign_state_error());
        };
        let t0 = Instant::now();
        let (c, trace) = prep.execute(a, sb)?;
        let wall_seconds = t0.elapsed().as_secs_f64();
        let (report, _) = prep.simulate(dev, a.rows().max(1))?;
        let estimate_family = match prep.ir.spec.family {
            KernelFamily::V1 => KernelChoice::NmV1,
            KernelFamily::V2 => KernelChoice::NmV2,
            KernelFamily::V3 | KernelFamily::SkinnyDecode => KernelChoice::NmV3,
        };
        Ok(ExecRun {
            c,
            backend: BackendKind::Codegen,
            wall_seconds,
            estimate: plan.estimates.get(estimate_family),
            isa: Some(prep.twin.isa()),
            stats: Some(prep.stats(&trace)),
            report: Some(report),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CpuBackend;
    use crate::plan::{Planner, ShapeClass};
    use gpu_sim::device::a100_80g;
    use nm_core::pattern::NmConfig;
    use nm_core::sliced::{SlicedLayout, StorageFormat};
    use nm_core::spmm::spmm_reference;

    fn operand(cfg: NmConfig, k: usize, n: usize, seed: u64) -> NmSparseMatrix {
        let b = MatrixF32::random(k, n, seed);
        NmSparseMatrix::prune_magnitude(&b, cfg).unwrap()
    }

    #[test]
    fn codegen_backend_is_bit_identical_to_cpu_v3() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(dev.clone()).plan(33, 144, 200, cfg).unwrap();
        let sb = operand(cfg, 200, 144, 7);
        let a = MatrixF32::random(33, 200, 8);

        let cpu = CpuBackend::new(NmVersion::V3)
            .run(&dev, &plan, &a, &sb)
            .unwrap();
        let gen = CodegenBackend::new().run(&dev, &plan, &a, &sb).unwrap();
        assert_eq!(
            cpu.c.as_slice(),
            gen.c.as_slice(),
            "interpreter must reproduce cpu_v3 bit for bit"
        );
        assert!(gen.c.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
        assert!(gen.stats.is_some() && gen.report.is_some());
        assert_eq!(gen.backend, BackendKind::Codegen);
    }

    #[test]
    fn sliced_pin_generates_a_sliced_kernel_with_identical_numerics() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 16).unwrap();
        let pin = StorageFormat::Sliced(SlicedLayout::DEFAULT);
        let plan = Planner::new(dev.clone())
            .plan_stored(ShapeClass::Prefill, pin, 13, 112, 72, cfg)
            .unwrap();
        let sb = operand(cfg, 72, 112, 9);
        let a = MatrixF32::random(13, 72, 10);

        let backend = CodegenBackend::new();
        let state = backend.prepare(&dev, &plan, &sb).unwrap();
        let prep = state.as_any().downcast_ref::<CodegenPrepared>().unwrap();
        assert_eq!(prep.spec().storage, pin);
        assert!(prep.wgsl().contains("sliced"));
        let run = backend.run_prepared(&dev, &plan, &*state, &a, &sb).unwrap();
        let cpu = CpuBackend::new(NmVersion::V3)
            .run(&dev, &plan, &a, &sb)
            .unwrap();
        assert_eq!(cpu.c.as_slice(), run.c.as_slice());
    }

    #[test]
    fn decode_plans_lower_to_the_skinny_family() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(dev.clone())
            .plan_as(ShapeClass::Decode(1), 1, 128, 128, cfg)
            .unwrap();
        assert_eq!(family_for_plan(&plan), KernelFamily::SkinnyDecode);
        let sb = operand(cfg, 128, 128, 11);
        let a = MatrixF32::random(1, 128, 12);
        let run = CodegenBackend::new().run(&dev, &plan, &a, &sb).unwrap();
        let cpu = CpuBackend::new(NmVersion::V3)
            .run(&dev, &plan, &a, &sb)
            .unwrap();
        assert_eq!(cpu.c.as_slice(), run.c.as_slice());
    }

    #[test]
    fn phase_structure_matches_the_simulated_trace() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(dev.clone()).plan(96, 256, 192, cfg).unwrap();
        let sb = operand(cfg, 192, 256, 13);
        let a = MatrixF32::random(96, 192, 14);
        let backend = CodegenBackend::new();
        let state = backend.prepare(&dev, &plan, &sb).unwrap();
        let prep = state.as_any().downcast_ref::<CodegenPrepared>().unwrap();
        let (_, trace) = prep.execute(&a, &sb).unwrap();
        let (ours, sim) = prep.phase_parity(&dev, &trace, 96).unwrap();
        assert!(ours.matches(&sim), "interpreter {ours} vs simulator {sim}");
    }

    #[test]
    fn foreign_operand_is_rejected() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(dev.clone()).plan(8, 64, 64, cfg).unwrap();
        let sb = operand(cfg, 64, 64, 15);
        let other = operand(cfg, 64, 64, 16);
        let a = MatrixF32::random(8, 64, 17);
        let backend = CodegenBackend::new();
        let state = backend.prepare(&dev, &plan, &sb).unwrap();
        let err = backend
            .run_prepared(&dev, &plan, &*state, &a, &other)
            .unwrap_err();
        assert!(matches!(err, NmError::DimensionMismatch { .. }), "{err}");
    }
}
