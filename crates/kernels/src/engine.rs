//! The planning engine: a [`Planner`] with file-backed persistence.
//!
//! [`Engine`] owns the *planning* half of the pipeline: it plans through
//! the shared [`PlanCache`], optionally hydrates that cache from a JSON
//! file at startup and writes it back on [`Engine::save`]. Repeated
//! sweeps over the same shapes become O(1) lookups; [`Engine::stats`]
//! reports the hit/miss/entry counts so a sweep can prove its cache
//! behaved.
//!
//! *Execution* lives one layer up: a [`Session`](crate::session::Session)
//! wraps an engine and turns plans into prepared, reusable layer handles
//! ([`PreparedLayer`](crate::session::PreparedLayer)). The engine itself
//! no longer executes anything — estimate-only consumers (the figure
//! bins, analysis tooling) use it directly; everything that runs numerics
//! goes through the session API.

use crate::plan::{Plan, PlanCache, Planner};
use gpu_sim::device::DeviceConfig;
use nm_core::error::Result;
use nm_core::pattern::NmConfig;
use std::path::{Path, PathBuf};

/// Cache-effectiveness counters for one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Plans currently memoized.
    pub entries: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a full strategy + autotune run.
    pub misses: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} plans cached, {} hits / {} misses",
            self.entries, self.hits, self.misses
        )
    }
}

/// Planner + persistence for one device (execution lives in
/// [`Session`](crate::session::Session)).
#[derive(Debug, Clone)]
pub struct Engine {
    planner: Planner,
    cache_path: Option<PathBuf>,
}

impl Engine {
    /// Engine with an empty in-memory cache and no backing file.
    pub fn new(dev: DeviceConfig) -> Self {
        Self {
            planner: Planner::new(dev),
            cache_path: None,
        }
    }

    /// Engine backed by a JSON cache file: hydrated from `path` when the
    /// file exists (a malformed file is an error, not silently ignored),
    /// and written back by [`Engine::save`].
    pub fn with_cache_file(dev: DeviceConfig, path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let cache = if path.exists() {
            PlanCache::load(&path)?
        } else {
            PlanCache::new()
        };
        Ok(Self {
            planner: Planner::with_cache(dev, cache),
            cache_path: Some(path),
        })
    }

    /// The device this engine plans for.
    pub fn device(&self) -> &DeviceConfig {
        self.planner.device()
    }

    /// Plan a problem (cached).
    pub fn plan(&mut self, m: usize, n: usize, k: usize, cfg: NmConfig) -> Result<Plan> {
        self.planner.plan(m, n, k, cfg)
    }

    /// Plan under an explicit shape class (cached) — see
    /// [`Planner::plan_as`].
    pub fn plan_as(
        &mut self,
        class: crate::plan::ShapeClass,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
    ) -> Result<Plan> {
        self.planner.plan_as(class, m, n, k, cfg)
    }

    /// Plan under an explicit shape class **and** storage-format lane
    /// (cached) — see [`Planner::plan_stored`].
    pub fn plan_stored(
        &mut self,
        class: crate::plan::ShapeClass,
        storage: nm_core::sliced::StorageFormat,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
    ) -> Result<Plan> {
        self.planner.plan_stored(class, storage, m, n, k, cfg)
    }

    /// Counted lookup under an arbitrary key — the session layer's path to
    /// measured (host-scoped) entries. Bumps the hit or miss counter.
    pub fn lookup(&mut self, key: &crate::plan::PlanKey) -> Option<Plan> {
        self.planner.lookup(key)
    }

    /// Store an externally resolved plan (e.g. measured evidence) in the
    /// cache under its own key. Persist with [`Engine::save`].
    pub fn insert(&mut self, plan: Plan) {
        self.planner.insert(plan);
    }

    /// Current cache counters.
    pub fn stats(&self) -> CacheStats {
        let c = self.planner.cache();
        CacheStats {
            entries: c.len(),
            hits: c.hits(),
            misses: c.misses(),
        }
    }

    /// Read access to the underlying cache.
    pub fn cache(&self) -> &PlanCache {
        self.planner.cache()
    }

    /// Write the cache back to its backing file. Returns `false` (and
    /// writes nothing) when the engine has no backing file.
    pub fn save(&self) -> Result<bool> {
        match &self.cache_path {
            Some(path) => {
                self.planner.cache().save(path)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::a100_80g;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nm-spmm-engine-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn engine_plans_and_counts() {
        let mut eng = Engine::new(a100_80g());
        let cfg = NmConfig::new(4, 16, 32).unwrap();
        eng.plan(1024, 1024, 1024, cfg).unwrap();
        eng.plan(1024, 1024, 1024, cfg).unwrap();
        let s = eng.stats();
        assert_eq!((s.entries, s.hits, s.misses), (1, 1, 1));
        assert!(s.to_string().contains("1 hits"));
    }

    #[test]
    fn repeated_plans_across_levels_count_hits_per_shape_class() {
        let mut eng = Engine::new(a100_80g());
        for cfg in [
            NmConfig::new(8, 16, 32).unwrap(),
            NmConfig::new(2, 16, 32).unwrap(),
            NmConfig::new(8, 16, 32).unwrap(), // repeat: planned from cache
        ] {
            let plan = eng.plan(96, 256, 128, cfg).unwrap();
            assert_eq!(plan.key.cfg().unwrap(), cfg);
        }
        let s = eng.stats();
        assert_eq!((s.entries, s.hits, s.misses), (2, 1, 2));
    }

    #[test]
    fn save_and_reload_through_backing_file() {
        let path = tmp_path("roundtrip.json");
        let _ = std::fs::remove_file(&path);
        let cfg = NmConfig::new(2, 16, 32).unwrap();

        let mut eng = Engine::with_cache_file(a100_80g(), &path).unwrap();
        let plan = eng.plan(512, 512, 512, cfg).unwrap();
        assert_eq!(eng.stats().misses, 1);
        assert!(eng.save().unwrap());

        let mut warm = Engine::with_cache_file(a100_80g(), &path).unwrap();
        let replay = warm.plan(512, 512, 512, cfg).unwrap();
        let s = warm.stats();
        assert_eq!(
            (s.hits, s.misses),
            (1, 0),
            "reloaded engine must serve the plan from disk"
        );
        assert_eq!(plan, replay);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unbacked_engine_save_is_a_noop() {
        let eng = Engine::new(a100_80g());
        assert!(!eng.save().unwrap());
    }

    #[test]
    fn malformed_backing_file_is_an_error() {
        let path = tmp_path("malformed.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(Engine::with_cache_file(a100_80g(), &path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
