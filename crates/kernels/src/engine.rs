//! The execution engine: a [`Planner`] with file-backed persistence and
//! backend dispatch.
//!
//! [`Engine`] is the one object bench bins, examples and the layer-sweep
//! driver hold: it plans through the shared [`PlanCache`], optionally
//! hydrates that cache from a JSON file at startup and writes it back on
//! [`Engine::save`], and can execute a problem through any
//! [`ExecBackend`](crate::backend::ExecBackend) — the simulated GPU
//! kernels or the native CPU V1→V3 ladder — with the plan's auto-tuned
//! blocking driving both. The CPU backend additionally reports which
//! micro-kernel ISA its runtime dispatch selected
//! ([`ExecRun::isa`](crate::backend::ExecRun::isa)). Repeated sweeps over
//! the same shapes become O(1) lookups; [`Engine::stats`] reports the
//! hit/miss/entry counts so a sweep can prove its cache behaved.

use crate::backend::{BackendKind, ExecRun};
use crate::plan::{Plan, PlanCache, Planner};
use gpu_sim::device::DeviceConfig;
use nm_core::error::Result;
use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::sparse::NmSparseMatrix;
use std::path::{Path, PathBuf};

/// Cache-effectiveness counters for one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Plans currently memoized.
    pub entries: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a full strategy + autotune run.
    pub misses: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} plans cached, {} hits / {} misses",
            self.entries, self.hits, self.misses
        )
    }
}

/// Planner + persistence + functional dispatch for one device.
#[derive(Debug, Clone)]
pub struct Engine {
    planner: Planner,
    cache_path: Option<PathBuf>,
}

impl Engine {
    /// Engine with an empty in-memory cache and no backing file.
    pub fn new(dev: DeviceConfig) -> Self {
        Self {
            planner: Planner::new(dev),
            cache_path: None,
        }
    }

    /// Engine backed by a JSON cache file: hydrated from `path` when the
    /// file exists (a malformed file is an error, not silently ignored),
    /// and written back by [`Engine::save`].
    pub fn with_cache_file(dev: DeviceConfig, path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let cache = if path.exists() {
            PlanCache::load(&path)?
        } else {
            PlanCache::new()
        };
        Ok(Self {
            planner: Planner::with_cache(dev, cache),
            cache_path: Some(path),
        })
    }

    /// The device this engine plans for.
    pub fn device(&self) -> &DeviceConfig {
        self.planner.device()
    }

    /// Plan a problem (cached).
    pub fn plan(&mut self, m: usize, n: usize, k: usize, cfg: NmConfig) -> Result<Plan> {
        self.planner.plan(m, n, k, cfg)
    }

    /// Current cache counters.
    pub fn stats(&self) -> CacheStats {
        let c = self.planner.cache();
        CacheStats {
            entries: c.len(),
            hits: c.hits(),
            misses: c.misses(),
        }
    }

    /// Read access to the underlying cache.
    pub fn cache(&self) -> &PlanCache {
        self.planner.cache()
    }

    /// Write the cache back to its backing file. Returns `false` (and
    /// writes nothing) when the engine has no backing file.
    pub fn save(&self) -> Result<bool> {
        match &self.cache_path {
            Some(path) => {
                self.planner.cache().save(path)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Plan and execute `C = A ⊛ (B′, D)` through an **explicit** backend:
    /// [`BackendKind::Sim`] runs the chosen simulated kernel,
    /// [`BackendKind::Cpu`] runs the native ladder with the plan's blocking
    /// driving the CPU tile sizes. The returned [`ExecRun`] carries the
    /// measured wall-clock time alongside the plan's simulated estimate.
    ///
    /// # Errors
    /// Propagates planning failures, and — for the CPU backend — a
    /// structured [`nm_core::error::NmError::InvalidBlocking`] (never a
    /// panic) when the plan's blocking cannot drive the CPU tiles.
    pub fn execute(
        &mut self,
        a: &MatrixF32,
        sb: &NmSparseMatrix,
        backend: BackendKind,
    ) -> Result<ExecRun> {
        let (m, k) = a.shape();
        let n = sb.cols();
        debug_assert_eq!(k, sb.k(), "caller passes matching operands");
        let plan = self.plan(m, n, k, sb.cfg())?;
        self.run_plan(&plan, a, sb, backend)
    }

    /// Execute an already computed plan on concrete operands through an
    /// explicit backend.
    ///
    /// The operands need not match the plan's shape class — every backend
    /// re-derives its grid/tiling from the actual dimensions — which lets
    /// callers (e.g. the layer-sweep driver) plan at full model size but
    /// execute a scaled-down instance without touching the cache again.
    /// See [`crate::backend::SimBackend`] for the simulator's fallback
    /// rules and [`crate::backend::CpuBackend`] for the CPU tiling
    /// derivation; error behavior matches [`Engine::execute`].
    pub fn run_plan(
        &self,
        plan: &Plan,
        a: &MatrixF32,
        sb: &NmSparseMatrix,
        backend: BackendKind,
    ) -> Result<ExecRun> {
        backend
            .instantiate()
            .run(self.planner.device(), plan, a, sb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::a100_80g;
    use nm_core::prune::PrunePolicy;
    use nm_core::spmm::spmm_reference;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nm-spmm-engine-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn engine_plans_and_counts() {
        let mut eng = Engine::new(a100_80g());
        let cfg = NmConfig::new(4, 16, 32).unwrap();
        eng.plan(1024, 1024, 1024, cfg).unwrap();
        eng.plan(1024, 1024, 1024, cfg).unwrap();
        let s = eng.stats();
        assert_eq!((s.entries, s.hits, s.misses), (1, 1, 1));
        assert!(s.to_string().contains("1 hits"));
    }

    #[test]
    fn execute_matches_reference_through_chosen_kernel() {
        let mut eng = Engine::new(a100_80g());
        for (round, cfg) in [
            NmConfig::new(8, 16, 32).unwrap(),
            NmConfig::new(2, 16, 32).unwrap(),
            NmConfig::new(8, 16, 32).unwrap(), // repeat: planned from cache
        ]
        .into_iter()
        .enumerate()
        {
            let a = MatrixF32::random(96, 256, 3);
            let b = MatrixF32::random(256, 128, 4);
            let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 5 }).unwrap();
            let run = eng.execute(&a, &sb, BackendKind::Sim).unwrap();
            let expect = spmm_reference(&a, &sb);
            assert!(
                run.c.allclose(&expect, 1e-3, 1e-4),
                "round {round} {cfg}: max diff {}",
                run.c.max_abs_diff(&expect)
            );
            assert!(
                run.stats.is_some() && run.report.is_some(),
                "sim backend carries the event counts and timing report"
            );
        }
        let s = eng.stats();
        assert_eq!((s.entries, s.hits, s.misses), (2, 1, 2));
    }

    #[test]
    fn execute_through_every_backend_agrees() {
        let mut eng = Engine::new(a100_80g());
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let a = MatrixF32::random(64, 128, 6);
        let b = MatrixF32::random(128, 96, 7);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 8 }).unwrap();
        let expect = spmm_reference(&a, &sb);
        for backend in BackendKind::all() {
            let run = eng.execute(&a, &sb, backend).unwrap();
            assert!(
                run.c.allclose(&expect, 1e-3, 1e-4),
                "{backend}: max diff {}",
                run.c.max_abs_diff(&expect)
            );
            assert!(run.wall_seconds > 0.0);
            assert_eq!(
                run.isa.is_some(),
                backend != BackendKind::Sim,
                "{backend}: only the native CPU ladder reports a host ISA"
            );
        }
        // One shape class: a single miss, then three cache hits.
        let s = eng.stats();
        assert_eq!((s.entries, s.hits, s.misses), (1, 3, 1));
    }

    #[test]
    fn save_and_reload_through_backing_file() {
        let path = tmp_path("roundtrip.json");
        let _ = std::fs::remove_file(&path);
        let cfg = NmConfig::new(2, 16, 32).unwrap();

        let mut eng = Engine::with_cache_file(a100_80g(), &path).unwrap();
        let plan = eng.plan(512, 512, 512, cfg).unwrap();
        assert_eq!(eng.stats().misses, 1);
        assert!(eng.save().unwrap());

        let mut warm = Engine::with_cache_file(a100_80g(), &path).unwrap();
        let replay = warm.plan(512, 512, 512, cfg).unwrap();
        let s = warm.stats();
        assert_eq!(
            (s.hits, s.misses),
            (1, 0),
            "reloaded engine must serve the plan from disk"
        );
        assert_eq!(plan, replay);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unbacked_engine_save_is_a_noop() {
        let eng = Engine::new(a100_80g());
        assert!(!eng.save().unwrap());
    }

    #[test]
    fn malformed_backing_file_is_an_error() {
        let path = tmp_path("malformed.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(Engine::with_cache_file(a100_80g(), &path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
