//! Hierarchically blocked, double-buffered dense GEMM — the cuBLAS
//! stand-in for every speedup baseline in the paper's figures.
//!
//! Structurally this is the NM-SpMM V3 kernel with the sparsity machinery
//! removed: no index matrix, no gather, `ws == ks`. On the simulator it
//! reaches the ~90-95% of peak a tuned SGEMM reaches on the real parts,
//! which is exactly the role cuBLAS plays as the "1.0×" line of Fig. 9.

use crate::common::{grid_dims, scatter_tile, sectors_runs};
use crate::params::BlockingParams;
use crate::SimRun;
use gpu_sim::device::DeviceConfig;
use gpu_sim::l2::BlockTraffic;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::stats::KernelStats;
use gpu_sim::timing::{estimate as sim_estimate, KernelProfile, LaunchReport, PipelineMode};
use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Dense-GEMM plan: blocking depth and grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DensePlan {
    /// Table I parameters.
    pub params: BlockingParams,
    /// k-depth per main-loop iteration.
    pub ks: usize,
    /// Grid shape.
    pub grid: (usize, usize),
    /// Main-loop trip count.
    pub iters: usize,
    /// Shared-memory bytes (double-buffered tiles).
    pub smem_bytes: usize,
    /// Registers per thread.
    pub regs_per_thread: usize,
}

/// The dense GEMM kernel (cuBLAS stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseGemmKernel {
    /// Table I blocking parameters.
    pub params: BlockingParams,
}

impl DenseGemmKernel {
    /// Kernel with explicit parameters.
    pub fn new(params: BlockingParams) -> Self {
        Self { params }
    }

    /// Kernel with `Para_Init_Table`-selected parameters.
    pub fn auto(m: usize, n: usize) -> Self {
        Self {
            params: BlockingParams::para_init_table(m, n),
        }
    }

    /// Resolve blocking for a problem.
    ///
    /// Like the cuBLAS heuristics it stands in for, the planner considers
    /// both the deepest `ks` the Eq. 4 budget admits (one resident block)
    /// and the half-depth variant (two resident blocks, better inter-block
    /// L2 reuse) and keeps whichever the timing model prefers.
    pub fn plan(&self, dev: &DeviceConfig, m: usize, n: usize, k: usize) -> Result<DensePlan> {
        self.params.validate()?;
        let p = self.params;
        let budget = dev.max_shared_per_sm / 2;
        // Eq. 4 with ws = ks (dense): 4·ks·(ms + ns) ≤ budget.
        let ks_cap = budget / (4 * (p.ms + p.ns));
        let k_padded = k.div_ceil(32) * 32;
        let ks_full = (ks_cap / 32 * 32).clamp(32, k_padded.max(32));

        let make = |ks: usize| DensePlan {
            params: p,
            ks,
            grid: grid_dims(m, n, p.ms, p.ns),
            iters: k.div_ceil(ks).max(1),
            smem_bytes: 2 * 4 * ks * (p.ms + p.ns), // double buffered
            regs_per_thread: (p.mt * p.nt + 2 * (p.mt + p.nt) + 26)
                .min(dev.max_registers_per_thread),
        };
        let mut best = make(ks_full);
        let ks_half = (ks_full / 2 / 32 * 32).max(32);
        if ks_half != ks_full {
            let alt = make(ks_half);
            let score = |plan: &DensePlan| {
                let (profile, _) = self.build_profile(dev, plan, m, n, k);
                sim_estimate(dev, &profile)
                    .map(|r| r.seconds)
                    .unwrap_or(f64::INFINITY)
            };
            if score(&alt) < score(&best) {
                best = alt;
            }
        }
        Ok(best)
    }

    /// Analytic estimate without data.
    pub fn estimate(
        &self,
        dev: &DeviceConfig,
        m: usize,
        n: usize,
        k: usize,
    ) -> Result<LaunchReport> {
        let plan = self.plan(dev, m, n, k)?;
        let (profile, _) = self.build_profile(dev, &plan, m, n, k);
        sim_estimate(dev, &profile).map_err(|e| NmError::InvalidBlocking {
            reason: e.to_string(),
        })
    }

    /// Functional run.
    pub fn run(&self, dev: &DeviceConfig, a: &MatrixF32, b: &MatrixF32) -> Result<SimRun> {
        let (m, k) = a.shape();
        let (kb, n) = b.shape();
        if k != kb {
            return Err(NmError::DimensionMismatch {
                expected: format!("B with k = {k}"),
                found: format!("B with k = {kb}"),
            });
        }
        let plan = self.plan(dev, m, n, k)?;
        let (profile, stats) = self.build_profile(dev, &plan, m, n, k);
        let report = sim_estimate(dev, &profile).map_err(|e| NmError::InvalidBlocking {
            reason: e.to_string(),
        })?;

        let (gy, gx) = plan.grid;
        let (ms, ns) = (plan.params.ms, plan.params.ns);
        let tiles: Vec<(usize, usize, Vec<f32>)> = (0..gy * gx)
            .into_par_iter()
            .map(|idx| {
                let (bi, bj) = (idx / gx, idx % gx);
                (bi, bj, compute_block(a, b, &plan, bi, bj))
            })
            .collect();

        let mut c = MatrixF32::zeros(m, n);
        let cbuf = c.as_mut_slice();
        for (bi, bj, tile) in tiles {
            let row0 = bi * ms;
            let col0 = bj * ns;
            scatter_tile(
                cbuf,
                n,
                &tile,
                ns,
                row0,
                col0,
                ms.min(m - row0),
                ns.min(n - col0),
            );
        }
        Ok(SimRun { c, stats, report })
    }

    fn build_profile(
        &self,
        dev: &DeviceConfig,
        plan: &DensePlan,
        m: usize,
        n: usize,
        k: usize,
    ) -> (KernelProfile, KernelStats) {
        let p = plan.params;
        let (ms, ns, ks) = (p.ms, p.ns, plan.ks);
        let warps = p.warps();

        let a_bytes = (ks * ms * 4) as u64;
        let b_bytes = (ks * ns * 4) as u64;
        let fill_bytes = a_bytes + b_bytes;
        let inner_bytes = (ks * warps * (p.mr + p.nr) * 4) as u64;
        let lds_cycles = (fill_bytes + inner_bytes) as f64 / dev.smem_bytes_per_clock;

        let ffma_iter = (ms * ns * ks) as u64;
        let resources = BlockResources {
            threads: p.threads(),
            regs_per_thread: plan.regs_per_thread,
            smem_bytes: plan.smem_bytes,
        };
        let (gy, gx) = plan.grid;
        let blocks = (gy * gx) as u64;
        let iters = plan.iters as u64;
        let stg = (ms * ns * 4) as u64;

        let profile = KernelProfile {
            name: format!("dense GEMM [{ms}x{ns}]"),
            grid: plan.grid,
            resources,
            iters_per_block: plan.iters,
            comp_cycles_per_iter: ffma_iter as f64 / dev.fma_per_clock_per_sm(),
            lds_cycles_per_iter: lds_cycles,
            g2s_per_iter: BlockTraffic {
                a_bytes: a_bytes as f64,
                bcol_bytes: b_bytes as f64,
                private_bytes: 0.0,
            },
            dependent_load_chains: 0.0,
            pipeline: PipelineMode::DoubleBuffered,
            inner_double_buffer: true,
            stg_bytes_per_block: stg as f64,
            useful_flops: 2.0 * m as f64 * n as f64 * k as f64,
        };
        let stats = KernelStats {
            ffma: blocks * iters * ffma_iter,
            ldg_bytes_a: blocks * iters * a_bytes,
            ldg_bytes_b: blocks * iters * b_bytes,
            stg_bytes: blocks * stg,
            ldg_sectors: blocks * iters * (sectors_runs(ks, ms * 4) + sectors_runs(ks, ns * 4)),
            lds_requests: blocks * iters * (fill_bytes + inner_bytes) / 128,
            lds_replays: 0,
            sts_requests: blocks * iters * fill_bytes / 128,
            lds_bytes: blocks * iters * inner_bytes,
            sts_bytes: blocks * iters * fill_bytes,
            barriers: blocks * iters,
            blocks,
            main_loop_iters: blocks * iters,
            ..Default::default()
        };
        (profile, stats)
    }
}

fn compute_block(a: &MatrixF32, b: &MatrixF32, plan: &DensePlan, bi: usize, bj: usize) -> Vec<f32> {
    let (ms, ns) = (plan.params.ms, plan.params.ns);
    let ks = plan.ks;
    let (m, k) = a.shape();
    let n = b.cols();
    let row0 = bi * ms;
    let col0 = bj * ns;
    let rows_eff = ms.min(m - row0);
    let cols_eff = ns.min(n - col0);

    let mut cs = vec![0f32; ms * ns];
    for it in 0..plan.iters {
        let kbase = it * ks;
        let kend = (kbase + ks).min(k);
        for p in kbase..kend {
            let b_row = &b.row(p)[col0..col0 + cols_eff];
            for i in 0..rows_eff {
                let av = a.get(row0 + i, p);
                if av == 0.0 {
                    continue;
                }
                let c_seg = &mut cs[i * ns..i * ns + cols_eff];
                for (cv, bv) in c_seg.iter_mut().zip(b_row) {
                    *cv += av * bv;
                }
            }
        }
    }
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::{a100_80g, rtx3090, rtx4090};
    use gpu_sim::timing::Bound;
    use nm_core::spmm::gemm_reference;

    #[test]
    fn functional_matches_reference() {
        let dev = a100_80g();
        let a = MatrixF32::random(100, 130, 1);
        let b = MatrixF32::random(130, 90, 2);
        let run = DenseGemmKernel::auto(100, 90).run(&dev, &a, &b).unwrap();
        let expect = gemm_reference(&a, &b);
        assert!(
            run.c.allclose(&expect, 1e-3, 1e-4),
            "max diff {}",
            run.c.max_abs_diff(&expect)
        );
    }

    #[test]
    fn big_square_gemm_is_efficient_on_all_devices() {
        // The cuBLAS role: ≥85% of peak at 4096^3 (paper Fig. 7: cuBLAS bar).
        for dev in [a100_80g(), rtx3090(), rtx4090()] {
            let rep = DenseGemmKernel::new(BlockingParams::large())
                .estimate(&dev, 4096, 4096, 4096)
                .unwrap();
            // Real cuBLAS SGEMM: ~93-96% on A100, ~85-90% on 3090, and only
            // ~73-85% on the bandwidth-starved 4090.
            assert!(
                rep.efficiency > 0.72,
                "{}: dense efficiency {} too low",
                dev.name,
                rep.efficiency
            );
        }
        let a100_eff = DenseGemmKernel::new(BlockingParams::large())
            .estimate(&a100_80g(), 4096, 4096, 4096)
            .unwrap()
            .efficiency;
        assert!(a100_eff > 0.88, "A100 dense {a100_eff} must be near peak");
        // The A100's balanced compute/bandwidth keeps dense GEMM firmly
        // compute bound; the 4090 straddles the ridge at this tile size —
        // the paper's "floating-point performance significantly outpaces
        // memory bandwidth" remark about the consumer parts.
        let a100 = DenseGemmKernel::new(BlockingParams::large())
            .estimate(&a100_80g(), 4096, 4096, 4096)
            .unwrap();
        assert_eq!(a100.bound, Bound::Compute);
    }

    #[test]
    fn small_gemm_is_less_efficient() {
        let dev = a100_80g();
        let small = DenseGemmKernel::new(BlockingParams::small())
            .estimate(&dev, 512, 512, 512)
            .unwrap();
        let large = DenseGemmKernel::new(BlockingParams::large())
            .estimate(&dev, 4096, 4096, 4096)
            .unwrap();
        assert!(small.efficiency < large.efficiency);
    }

    #[test]
    fn kernel_size_matching_matters() {
        // Table II A (512^3) runs better with the small kernel than large —
        // the Fig. 8 observation.
        let dev = a100_80g();
        let small = DenseGemmKernel::new(BlockingParams::small())
            .estimate(&dev, 512, 512, 512)
            .unwrap();
        let large = DenseGemmKernel::new(BlockingParams::large())
            .estimate(&dev, 512, 512, 512)
            .unwrap();
        assert!(
            small.seconds < large.seconds,
            "small kernel {} must beat large {} on a 512^3 problem",
            small.seconds,
            large.seconds
        );
    }

    #[test]
    fn estimate_equals_run_report() {
        let dev = rtx3090();
        let a = MatrixF32::random(256, 256, 3);
        let b = MatrixF32::random(256, 256, 4);
        let kern = DenseGemmKernel::new(BlockingParams::medium());
        let run = kern.run(&dev, &a, &b).unwrap();
        let est = kern.estimate(&dev, 256, 256, 256).unwrap();
        assert_eq!(run.report.cycles, est.cycles);
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let dev = a100_80g();
        let a = MatrixF32::random(32, 64, 1);
        let b = MatrixF32::random(32, 64, 2);
        assert!(DenseGemmKernel::auto(32, 64).run(&dev, &a, &b).is_err());
    }

    #[test]
    fn stats_account_all_traffic() {
        let dev = a100_80g();
        let a = MatrixF32::random(64, 128, 5);
        let b = MatrixF32::random(128, 128, 6);
        let run = DenseGemmKernel::new(BlockingParams::small())
            .run(&dev, &a, &b)
            .unwrap();
        assert!(run.stats.ffma >= (64 * 128 * 128) as u64);
        assert!(run.stats.ldg_bytes_a > 0 && run.stats.ldg_bytes_b > 0);
        assert_eq!(run.stats.ldg_bytes_d, 0, "dense GEMM reads no indices");
        assert_eq!(run.stats.stg_bytes, run.stats.blocks * 32 * 32 * 4);
    }
}
