//! # nm-kernels — simulated GPU kernels
//!
//! The paper's kernels (Listings 1–4) and its comparison baselines, written
//! against the `gpu-sim` substrate. Every kernel has two faces:
//!
//! * a **functional** face (`run`) that computes the real FP32 result
//!   through the same data path the CUDA kernel takes — tile fills into
//!   emulated shared memory, index-directed gathers, packed loads through
//!   `col_info` — so numerics and index plumbing are tested end to end, and
//! * an **analytic** face (`estimate`) that derives the identical event
//!   counts from geometry alone (no data), fast enough to sweep the
//!   100-point Llama dataset across devices; both faces share the same
//!   profile code so they cannot drift apart.
//!
//! Kernels:
//!
//! * [`dense::DenseGemmKernel`] — hierarchically blocked, double-buffered
//!   dense GEMM; the cuBLAS stand-in,
//! * [`nm::NmSpmmKernel`] with [`nm::NmVersion`] `V1`/`V2`/`V3` — the
//!   paper's step-wise optimization ladder (hierarchical blocking →
//!   sparsity-aware packing → pipelined double buffering),
//! * [`nmsparse::NmSparseKernel`] — the nmSPARSE VW baseline (per-window
//!   depth, no packing, no double buffering),
//! * [`sputnik::SputnikKernel`] — the Sputnik unstructured-SpMM baseline
//!   (CSR row-split with uncoalesced gathers).
//!
//! The five families are unified behind the [`plan::Planner`] /
//! [`engine::Engine`] subsystem: `Planner::plan` runs the §III-A strategy
//! decision plus the exhaustive autotune once per
//! `(device, shape class, N:M)` key and memoizes the winning [`plan::Plan`]
//! in a JSON-serializable [`plan::PlanCache`]; `Engine` adds file-backed
//! persistence.
//!
//! ## The session API — the public execution surface
//!
//! Execution goes through [`session`]: a [`session::Session`] (built by
//! [`session::SessionBuilder`]) turns weights into
//! [`session::PreparedLayer`] handles that plan, stage and dispatch
//! **once**, then amortize that offline work across every
//! `forward`/`forward_batch` call — the paper's offline/online split as
//! an object. Examples, bench bins and the `nm-workloads` layer-sweep
//! driver all execute through sessions; nothing outside this crate drives
//! a backend or a `CpuPrepared` by hand.
//!
//! ## Execution backends
//!
//! A resolved plan can run through more than one substrate
//! ([`backend::ExecBackend`]):
//!
//! * [`backend::SimBackend`] — the functional face of the simulated
//!   kernels above (numerics + event counts + timing model), and
//! * [`backend::CpuBackend`] — [`cpu`], a **native** host implementation
//!   of the same V1→V3 ladder (cache blocking → `col_info` packing →
//!   double-buffered staging + rayon row panels) whose tile sizes are
//!   derived from the plan's auto-tuned blocking. This is the measured-
//!   performance path the `bench_measured` harness sweeps.
//! * [`codegen::CodegenBackend`] — the plan lowered to a **generated
//!   WGSL compute shader** through the `nm-gpu` crate (typed shader IR →
//!   validated WGSL → deterministic host interpretation), bit-identical
//!   to the V3 CPU ladder and phase-matched against the simulator's
//!   launch timeline.
//!
//! Plans record their [`plan::Provenance`]: the analytic cost model, or
//! **measurement** — [`measure`](mod@measure) is a short-run harness that times the
//! CPU ladder in place, and a session built with
//! [`session::SessionBuilder::autotune`] consults/persists the
//! measured-best choice through the same plan cache (keyed by host ISA
//! and thread count, so evidence never travels between machines).
//!
//! ## Data layout note
//!
//! As in the reference CUDA implementation, the activation matrix `A` is
//! assumed **k-major (column-major)** in global memory, so both the dense
//! tile load and the packed per-column gather are fully coalesced; the
//! functional face uses the row-major [`nm_core::MatrixF32`] for
//! convenience (results are identical), while the traffic model accounts
//! sectors for the k-major layout.

#![warn(missing_docs)]

pub mod autotune;
pub mod backend;
pub mod codegen;
pub mod common;
pub mod cpu;
pub mod dense;
pub mod engine;
pub mod measure;
pub mod nm;
pub mod nmsparse;
pub mod params;
pub mod plan;
pub mod session;
pub mod simd;
pub mod sparse_tc;
pub mod sputnik;

pub use autotune::{tune, TuneResult};
pub use backend::{BackendKind, CpuBackend, ExecBackend, ExecRun, SimBackend, BACKEND_ENV};
pub use codegen::{CodegenBackend, CodegenPrepared};
pub use cpu::{spmm_cpu, spmm_cpu_prepared, spmv_cpu_prepared, CpuPrepared, CpuTiling};
pub use dense::DenseGemmKernel;
pub use engine::{CacheStats, Engine};
pub use measure::{
    measure, measurement_passes, AutotuneMode, MeasureOutcome, MeasureSpec, MeasuredSample,
};
pub use nm::{NmSpmmKernel, NmVersion};
pub use nmsparse::NmSparseKernel;
pub use params::{Blocking, BlockingParams};
pub use plan::{
    KernelChoice, MeasuredChoice, Plan, PlanCache, PlanHost, PlanKey, Planner, Provenance,
    ShapeClass, DECODE_MAX_ROWS,
};
pub use session::{
    BatchRouting, BatchRun, LoadSpec, PreparedLayer, PreparedModel, Session, SessionBuilder,
};
pub use simd::{Isa, MicroKernel};
pub use sparse_tc::SparseTensorCoreKernel;
pub use sputnik::SputnikKernel;

/// Result of a simulated kernel launch: the computed matrix, the event
/// counts, and the timing-model report.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// The functional result `C[m][n]`.
    pub c: nm_core::MatrixF32,
    /// Aggregated event counts.
    pub stats: gpu_sim::KernelStats,
    /// Timing-model output.
    pub report: gpu_sim::LaunchReport,
}
