//! Measured autotuning: a criterion-style short-run harness for the
//! native CPU ladder.
//!
//! The analytic planner ([`crate::plan::Planner`]) picks kernels from the
//! *GPU* cost model; on the native CPU backend that model is frequently
//! wrong about the V1→V3 ladder (the staged, double-buffered V3 pays for
//! bandwidth the host caches don't charge — `BENCH_pr.json` shows V1
//! beating V3 by ~2× on 512³ shapes). This module supplies the missing
//! evidence: it benchmarks candidate [`CpuTiling`]s × ladder versions
//! **in-place** on the executing host and returns the measured-best as a
//! [`MeasuredChoice`] the plan cache can persist.
//!
//! ## What is (and is not) inside the timed window
//!
//! Per the paper's accounting, everything derived from the weights alone
//! is offline: each candidate's [`CpuPrepared`] (B′ staging, `col_info`
//! packing, ISA dispatch) is built **before** its clock starts, and one
//! prepared state serves warmup and every timed iteration. The per-`A`
//! activation-panel packing of the packed path stays inside the window —
//! it recurs per call in production too. Timing follows criterion's
//! shape: a warmup run, then a **fixed** number of timed iterations
//! (fixed so two runs of the harness do identical work — the enumeration,
//! activation contents and sample counts are fully deterministic; only
//! the clock readings vary), scored by the minimum per-iteration time.
//!
//! ## Modes
//!
//! [`AutotuneMode`] scales the search: `Quick` times the three ladder
//! versions at the plan-derived tiling; `Full` adds tile-geometry
//! variants around it. `Off` disables measurement entirely (the
//! cost-model default). The `NM_SPMM_AUTOTUNE` environment variable
//! selects a mode process-wide and is validated strictly — an
//! unrecognized value is a structured error, never a silent `Off`.

use crate::cpu::{spmm_cpu_prepared, CpuPrepared, CpuTiling};
use crate::nm::NmVersion;
use crate::plan::{MeasuredChoice, Plan};
use crate::simd::MicroKernel;
use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_core::sliced::{SlicedLayout, StorageFormat};
use nm_core::sparse::NmSparseMatrix;
use std::time::Instant;

/// Environment variable selecting a process-wide [`AutotuneMode`].
pub const AUTOTUNE_ENV: &str = "NM_SPMM_AUTOTUNE";

/// Seed for the synthetic activation the harness multiplies by — fixed so
/// repeated measurements of one layer do bit-identical arithmetic.
const MEASURE_SEED: u64 = 0x6d65_6173;

/// How much measured autotuning a session performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AutotuneMode {
    /// No measurement: plans come from the analytic cost model only.
    #[default]
    Off,
    /// Time the V1–V3 ladder at the plan-derived tiling (a handful of
    /// short runs; the mode CI uses).
    Quick,
    /// `Quick` plus tile-geometry variants around the plan-derived
    /// tiling.
    Full,
}

impl AutotuneMode {
    /// Stable identifier (`off`, `quick`, `full`).
    pub fn name(&self) -> &'static str {
        match self {
            AutotuneMode::Off => "off",
            AutotuneMode::Quick => "quick",
            AutotuneMode::Full => "full",
        }
    }

    /// Inverse of [`AutotuneMode::name`] (ASCII case-insensitive).
    ///
    /// # Errors
    /// [`NmError::Unsupported`] for anything else — like `NM_SPMM_ISA`,
    /// a typo must surface, never degrade to [`AutotuneMode::Off`].
    pub fn from_name(name: &str) -> Result<Self> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "off" => Ok(AutotuneMode::Off),
            "quick" => Ok(AutotuneMode::Quick),
            "full" => Ok(AutotuneMode::Full),
            other => Err(NmError::Unsupported {
                reason: format!(
                    "{AUTOTUNE_ENV}=`{other}` is not a recognized autotune mode \
                     (use `off`, `quick` or `full`)"
                ),
            }),
        }
    }

    /// The mode requested through the `NM_SPMM_AUTOTUNE` environment
    /// variable: `None` when unset or empty, the parsed mode otherwise.
    ///
    /// # Errors
    /// [`NmError::Unsupported`] when the variable holds an unrecognized
    /// value — validated up front, exactly like `NM_SPMM_ISA`, so a typo
    /// can never silently run without measurement.
    pub fn from_env() -> Result<Option<Self>> {
        match std::env::var(AUTOTUNE_ENV) {
            Ok(v) if v.is_empty() => Ok(None),
            Ok(v) => Self::from_name(&v).map(Some),
            Err(_) => Ok(None),
        }
    }
}

impl std::fmt::Display for AutotuneMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The fixed-work timing recipe one measurement run follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureSpec {
    /// Un-timed iterations run first to warm caches and the packed-path
    /// panel buffers.
    pub warmup_iters: usize,
    /// Timed iterations per candidate; **fixed**, so two runs of the same
    /// spec do identical work (the determinism the cache contract needs).
    pub timed_iters: usize,
    /// Whether to search tile-geometry variants beyond the plan-derived
    /// tiling.
    pub tiling_variants: bool,
}

impl MeasureSpec {
    /// The recipe a mode implies; `None` for [`AutotuneMode::Off`].
    pub fn for_mode(mode: AutotuneMode) -> Option<Self> {
        match mode {
            AutotuneMode::Off => None,
            AutotuneMode::Quick => Some(Self {
                warmup_iters: 1,
                timed_iters: 3,
                tiling_variants: false,
            }),
            AutotuneMode::Full => Some(Self {
                warmup_iters: 2,
                timed_iters: 5,
                tiling_variants: true,
            }),
        }
    }
}

/// One candidate's timing evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredSample {
    /// The ladder step timed.
    pub version: NmVersion,
    /// The (effective, clamped) tile geometry it ran with.
    pub tiling: CpuTiling,
    /// The `B′` storage format it staged.
    pub storage: StorageFormat,
    /// Best (minimum) per-iteration wall time, seconds.
    pub seconds: f64,
    /// Useful throughput at `seconds`, GFLOP/s.
    pub gflops: f64,
}

/// The harness result: the winner plus every sample behind it, in
/// deterministic enumeration order (ladder order, then tiling order).
#[derive(Debug, Clone)]
pub struct MeasureOutcome {
    /// The measured-best choice, ready for
    /// [`Plan::with_measured`](crate::plan::Plan::with_measured).
    pub best: MeasuredChoice,
    /// Every candidate timed, enumeration order.
    pub samples: Vec<MeasuredSample>,
}

thread_local! {
    /// See [`measurement_passes`].
    static MEASUREMENT_PASSES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Measurement-cost probe: how many harness runs ([`measure`] calls) the
/// **current thread** has performed since it started.
///
/// The cache contract says a layer's measurement happens once and then
/// replays from the [`PlanCache`](crate::plan::PlanCache); this counter
/// lets tests *prove* a second `Session::load` of the same shape
/// re-measured nothing, the same way
/// [`offline_staging_passes`](crate::cpu::offline_staging_passes) proves
/// the prepare-once contract.
pub fn measurement_passes() -> u64 {
    MEASUREMENT_PASSES.with(|c| c.get())
}

/// Deterministic candidate tile geometries for one plan: the plan-derived
/// tiling first, then (when `variants` is set) power-of-two `mb`/`nb`
/// neighbors around it. Duplicate-free; every candidate keeps `nb` a
/// multiple of `L`, so none is structurally rejectable.
///
/// Decode-class plans ([`ShapeClass::Decode`](crate::plan::ShapeClass))
/// additionally enumerate **skinny** geometries in every mode: a row
/// panel sized to the activation (the SpMV geometry at one row, running
/// the 1/2-row rungs of the register-tile ladder) and wider column blocks
/// for the bandwidth-bound `B′` stream. The GEMM-vs-SpMV call for skinny
/// shapes is therefore made from this measured evidence, never from the
/// GEMM cost model.
pub fn tiling_candidates(plan: &Plan, sb: &NmSparseMatrix, variants: bool) -> Vec<CpuTiling> {
    let cfg = sb.cfg();
    let base = CpuTiling::derive(plan.params, cfg, sb.k())
        .or_else(|_| CpuTiling::auto(cfg, plan.key.m, sb.cols(), sb.k()));
    let Ok(base) = base else {
        return Vec::new();
    };
    let mut out = vec![base];
    let push = |out: &mut Vec<CpuTiling>, t: CpuTiling| {
        if t.mb >= t.mt && t.nb >= cfg.l && !out.contains(&t) {
            out.push(t);
        }
    };
    if let Some(rows) = plan.key.shape.decode_rows() {
        let mt = base.mt.min(rows).max(1);
        push(
            &mut out,
            CpuTiling {
                mb: rows,
                mt,
                ..base
            },
        );
        for nb in [base.nb * 2, base.nb * 4] {
            if nb.is_multiple_of(cfg.l) {
                push(
                    &mut out,
                    CpuTiling {
                        mb: rows,
                        mt,
                        nb,
                        ..base
                    },
                );
            }
        }
    }
    if variants {
        for mb in [base.mb / 2, base.mb * 2] {
            if mb >= 1 {
                push(&mut out, CpuTiling { mb, ..base });
            }
        }
        for nb in [base.nb / 2, base.nb * 2] {
            if nb >= 1 && nb.is_multiple_of(cfg.l) {
                push(&mut out, CpuTiling { nb, ..base });
            }
        }
    }
    out
}

/// Deterministic candidate storage formats for one plan.
///
/// A plan pinned to a specific format (its
/// [`PlanKey::storage`](crate::plan::PlanKey) is not the row-major auto
/// lane) measures that format only — the pin is the user's call, the
/// harness merely finds the best tiling × version for it. On the auto lane,
/// decode-class keys compare row-major against the SELL-C-σ sliced grid
/// (`C ∈ {4, 8, 32}`, `σ ∈ {1, C, 4·C}`); prefill-class keys stay
/// row-major by default (the prefill staging path is already column-panel
/// contiguous, so slicing rarely has anything to sell there) **unless**
/// `NM_SPMM_STORAGE` pins a sliced layout, in which case that one layout
/// joins the prefill grid so the harness can measure it against row-major
/// instead of trusting the pin blindly. Row-major enumerates first so
/// timing ties keep the simpler format.
pub fn format_candidates(plan: &Plan) -> Vec<StorageFormat> {
    // The env value was already strictly validated when the session was
    // built; a malformed value here (direct harness use) simply means no
    // extra prefill candidate.
    format_candidates_with(plan, StorageFormat::from_env().ok().flatten())
}

/// [`format_candidates`] with the environment pin passed explicitly —
/// the testable core.
pub(crate) fn format_candidates_with(
    plan: &Plan,
    env_pin: Option<StorageFormat>,
) -> Vec<StorageFormat> {
    if plan.key.storage.is_sliced() {
        return vec![plan.key.storage];
    }
    let mut out = vec![StorageFormat::RowMajor];
    if plan.key.shape.is_decode() {
        for c in [4usize, 8, 32] {
            for sigma in [1usize, c, 4 * c] {
                let f = StorageFormat::Sliced(SlicedLayout::new(c, sigma).unwrap());
                if !out.contains(&f) {
                    out.push(f);
                }
            }
        }
    } else if let Some(f) = env_pin.filter(|f| f.is_sliced()) {
        // Prefill auto lane: admit the env-pinned sliced layout as a
        // measured candidate alongside row-major.
        out.push(f);
    }
    out
}

/// Run the short-run harness: benchmark candidate tilings × storage
/// formats × ladder versions V1–V3 against `sb` for activations of
/// `rows` rows, and return the measured-best together with every sample.
///
/// Each candidate's offline staging ([`CpuPrepared`]) happens **outside**
/// its timed window and is reused across all its iterations; candidates
/// whose geometry cannot prepare are skipped. `kernel` pins the
/// micro-kernel for every candidate (a session's ISA override); `None`
/// uses the standard runtime dispatch.
///
/// # Errors
/// [`NmError::InvalidBlocking`] when no candidate can prepare at all, and
/// [`NmError::Unsupported`] when micro-kernel dispatch fails (e.g. a bad
/// `NM_SPMM_ISA` value).
pub fn measure(
    plan: &Plan,
    sb: &NmSparseMatrix,
    rows: usize,
    kernel: Option<MicroKernel>,
    spec: MeasureSpec,
) -> Result<MeasureOutcome> {
    MEASUREMENT_PASSES.with(|c| c.set(c.get() + 1));
    let kernel = match kernel {
        Some(k) => k,
        None => MicroKernel::select()?,
    };
    let rows = rows.max(1);
    let a = MatrixF32::random(rows, sb.k(), MEASURE_SEED);
    let useful_flops = 2.0 * rows as f64 * sb.cols() as f64 * sb.w() as f64;

    let candidates = tiling_candidates(plan, sb, spec.tiling_variants);
    let formats = format_candidates(plan);
    let mut samples = Vec::new();
    let mut best: Option<MeasuredSample> = None;
    for version in [NmVersion::V1, NmVersion::V2, NmVersion::V3] {
        for &tiling in &candidates {
            for &format in &formats {
                // Offline: staging + packing + dispatch, excluded from
                // the clock exactly as in production (`Session::load`).
                let Ok(prep) = CpuPrepared::with_format(version, sb, tiling, kernel, format) else {
                    continue;
                };
                for _ in 0..spec.warmup_iters {
                    spmm_cpu_prepared(&a, sb, &prep)?;
                }
                let mut seconds = f64::INFINITY;
                for _ in 0..spec.timed_iters.max(1) {
                    let t0 = Instant::now();
                    spmm_cpu_prepared(&a, sb, &prep)?;
                    seconds = seconds.min(t0.elapsed().as_secs_f64());
                }
                let sample = MeasuredSample {
                    version,
                    // The *effective* (clamped) geometry, so replaying
                    // the choice prepares exactly what was measured.
                    tiling: prep.tiling(),
                    storage: format,
                    seconds,
                    gflops: useful_flops / seconds / 1e9,
                };
                samples.push(sample);
                // Strict `<`: ties keep the earlier (simpler) candidate
                // — earlier ladder step, row-major before sliced.
                if best.is_none_or(|b| sample.seconds < b.seconds) {
                    best = Some(sample);
                }
            }
        }
    }
    let Some(winner) = best else {
        return Err(NmError::InvalidBlocking {
            reason: format!(
                "no CPU candidate could prepare for {} (tried {} tilings x {} formats x 3 versions)",
                plan.key,
                candidates.len(),
                formats.len()
            ),
        });
    };
    Ok(MeasureOutcome {
        best: MeasuredChoice {
            ladder_version: winner.version,
            cpu_tiling: winner.tiling,
            storage: winner.storage,
            gflops: winner.gflops,
            samples: spec.timed_iters.max(1),
        },
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Planner, ShapeClass};
    use gpu_sim::device::a100_80g;
    use nm_core::pattern::NmConfig;
    use nm_core::prune::PrunePolicy;

    fn demo() -> (Plan, NmSparseMatrix) {
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(a100_80g()).plan(64, 128, 128, cfg).unwrap();
        let b = MatrixF32::random(128, 128, 9);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 10 }).unwrap();
        (plan, sb)
    }

    #[test]
    fn autotune_mode_names_round_trip_and_reject_garbage() {
        for m in [AutotuneMode::Off, AutotuneMode::Quick, AutotuneMode::Full] {
            assert_eq!(AutotuneMode::from_name(m.name()).unwrap(), m);
            assert_eq!(
                AutotuneMode::from_name(&m.name().to_uppercase()).unwrap(),
                m
            );
            assert!(!m.to_string().is_empty());
        }
        for bad in ["on", "1", "fast", "QUICKLY"] {
            let err = AutotuneMode::from_name(bad).unwrap_err();
            assert!(matches!(err, NmError::Unsupported { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn spec_scales_with_mode() {
        assert!(MeasureSpec::for_mode(AutotuneMode::Off).is_none());
        let quick = MeasureSpec::for_mode(AutotuneMode::Quick).unwrap();
        let full = MeasureSpec::for_mode(AutotuneMode::Full).unwrap();
        assert!(!quick.tiling_variants && full.tiling_variants);
        assert!(full.timed_iters >= quick.timed_iters);
    }

    #[test]
    fn candidates_are_deterministic_valid_and_deduped() {
        let (plan, sb) = demo();
        let quick = tiling_candidates(&plan, &sb, false);
        assert_eq!(quick.len(), 1, "quick mode times the derived tiling only");
        let full = tiling_candidates(&plan, &sb, true);
        assert_eq!(full, tiling_candidates(&plan, &sb, true));
        assert!(full.len() > 1, "full mode adds variants");
        assert_eq!(full[0], quick[0], "derived tiling enumerates first");
        let l = sb.cfg().l;
        for t in &full {
            assert!(t.nb.is_multiple_of(l), "{t:?}");
            assert!(t.mb >= 1 && t.kb >= 1 && t.mt >= 1, "{t:?}");
        }
        let mut dedup = full.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), full.len(), "no duplicate candidates");
    }

    #[test]
    fn measure_does_fixed_deterministic_work() {
        let (plan, sb) = demo();
        let spec = MeasureSpec {
            warmup_iters: 1,
            timed_iters: 2,
            tiling_variants: false,
        };
        let before = measurement_passes();
        let a = measure(&plan, &sb, 32, None, spec).unwrap();
        let b = measure(&plan, &sb, 32, None, spec).unwrap();
        assert_eq!(measurement_passes() - before, 2, "one pass per run");
        // Same candidate enumeration, same sample counts — only the clock
        // readings may differ between the two runs.
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(
                (x.version, x.tiling, x.storage),
                (y.version, y.tiling, y.storage)
            );
            assert!(x.seconds > 0.0 && x.gflops > 0.0);
        }
        assert_eq!(a.best.samples, spec.timed_iters);
        assert_eq!(b.best.samples, spec.timed_iters);
        // The winner is one of the enumerated candidates.
        assert!(a
            .samples
            .iter()
            .any(|s| s.version == a.best.ladder_version && s.tiling == a.best.cpu_tiling));
    }

    #[test]
    fn decode_plans_enumerate_skinny_candidates_in_every_mode() {
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(a100_80g()).plan(1, 128, 128, cfg).unwrap();
        assert!(plan.key.shape.is_decode());
        let b = MatrixF32::random(128, 128, 9);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 10 }).unwrap();
        let quick = tiling_candidates(&plan, &sb, false);
        assert!(
            quick.len() > 1,
            "decode must compare skinny geometries even in quick mode: {quick:?}"
        );
        assert!(
            quick.iter().any(|t| t.mb == 1 && t.mt == 1),
            "the SpMV geometry (one-row panel) must be a candidate: {quick:?}"
        );
        let full = tiling_candidates(&plan, &sb, true);
        assert!(full.len() > quick.len(), "full mode still adds variants");
        let mut dedup = full.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), full.len(), "no duplicate candidates");
        // The harness can actually time the skinny candidates across
        // every storage format.
        let spec = MeasureSpec::for_mode(AutotuneMode::Quick).unwrap();
        let formats = format_candidates(&plan);
        let outcome = measure(&plan, &sb, 1, None, spec).unwrap();
        assert_eq!(
            outcome.samples.len(),
            quick.len() * formats.len() * 3,
            "3 ladder steps x formats"
        );
    }

    #[test]
    fn decode_plans_compare_storage_formats_and_pins_restrict_them() {
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let mut planner = Planner::new(a100_80g());
        let decode = planner
            .plan_as(ShapeClass::Decode(1), 1, 128, 128, cfg)
            .unwrap();
        let formats = format_candidates(&decode);
        assert_eq!(formats[0], StorageFormat::RowMajor, "auto lane leads");
        assert_eq!(
            formats.len(),
            1 + 9,
            "row-major + C in {{4,8,32}} x sigma in {{1,C,4C}}: {formats:?}"
        );
        for c in [4usize, 8, 32] {
            for sigma in [1, c, 4 * c] {
                let f = StorageFormat::Sliced(SlicedLayout::new(c, sigma).unwrap());
                assert!(formats.contains(&f), "missing {f}");
            }
        }
        assert_eq!(formats, format_candidates(&decode), "deterministic");

        // Prefill keys stay row-major only (no env pin in this process).
        let prefill = planner.plan(64, 128, 128, cfg).unwrap();
        assert_eq!(
            format_candidates_with(&prefill, None),
            vec![StorageFormat::RowMajor]
        );
        // A sliced env pin joins the prefill grid behind row-major; a
        // row-major pin adds nothing.
        let pin = StorageFormat::Sliced(SlicedLayout::DEFAULT);
        assert_eq!(
            format_candidates_with(&prefill, Some(pin)),
            vec![StorageFormat::RowMajor, pin],
            "env-pinned sliced layout must be measured on prefill too"
        );
        assert_eq!(
            format_candidates_with(&prefill, Some(StorageFormat::RowMajor)),
            vec![StorageFormat::RowMajor]
        );
        // Decode grids and plan-key pins ignore the env value — the grid
        // already covers sliced layouts, and a key pin is the user's call.
        let decode_with_env = format_candidates_with(&decode, Some(pin));
        assert_eq!(decode_with_env, format_candidates_with(&decode, None));

        // A pinned sliced plan measures exactly its pin.
        let pin = StorageFormat::Sliced(SlicedLayout::DEFAULT);
        let pinned = planner
            .plan_stored(ShapeClass::Decode(1), pin, 1, 128, 128, cfg)
            .unwrap();
        assert_eq!(format_candidates(&pinned), vec![pin]);

        // The measured winner records the storage format it staged.
        let b = MatrixF32::random(128, 128, 9);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 10 }).unwrap();
        let spec = MeasureSpec {
            warmup_iters: 0,
            timed_iters: 1,
            tiling_variants: false,
        };
        let outcome = measure(&pinned, &sb, 1, None, spec).unwrap();
        assert_eq!(outcome.best.storage, pin);
        assert!(outcome.samples.iter().all(|s| s.storage == pin));
    }

    #[test]
    fn measured_winner_attaches_to_the_plan() {
        let (plan, sb) = demo();
        let spec = MeasureSpec::for_mode(AutotuneMode::Quick).unwrap();
        let outcome = measure(&plan, &sb, 16, None, spec).unwrap();
        let host = crate::plan::PlanHost {
            isa: MicroKernel::select().unwrap().isa().name().to_string(),
            threads: rayon::current_num_threads(),
        };
        let measured = plan.with_measured(host, outcome.best).unwrap();
        measured.validate().unwrap();
        assert_eq!(
            measured.measured.unwrap().ladder_version,
            outcome.best.ladder_version
        );
    }
}
