//! The prepared-session API: plan-once / prepare-once layer handles — the
//! single public execution surface of the workspace.
//!
//! ## Why a session
//!
//! The paper's performance accounting hinges on the **offline/online
//! split**: layout transformation (`transformLayout`) and `col_info`
//! packing are one-time offline work, amortized over every inference call
//! that follows. This module is the object that *owns* that amortization:
//!
//! * [`SessionBuilder`] configures the execution context once — device
//!   model, default [`BackendKind`], micro-kernel ISA override, worker
//!   thread cap, persistent plan-cache path.
//! * [`Session::load`] takes a pruned weight matrix and does **all** the
//!   offline work in one place: it plans (strategy decision + exhaustive
//!   autotune, memoized in the engine's [`PlanCache`](crate::plan::PlanCache)),
//!   instantiates the backend, and runs the backend's preparation
//!   ([`ExecBackend::prepare`] — `B′` block staging, `col_info` packing,
//!   micro-kernel dispatch). The result is a [`PreparedLayer`] handle.
//! * [`PreparedLayer::forward`] / [`PreparedLayer::forward_batch`] are the
//!   **online** path: they touch none of the offline work again — every
//!   call reuses the owned plan, backend and prepared state. The
//!   [`cpu::offline_staging_passes`](crate::cpu::offline_staging_passes)
//!   probe lets callers prove that, not just trust it.
//! * [`Session::load_model`] loads a whole stack of layers (a Llama
//!   sweep's five linears, a transformer block's three matmuls) as one
//!   group, reporting how many plans came from the shared cache.
//!
//! ## What lands in `wall_seconds`
//!
//! [`ExecRun::wall_seconds`] measures the **online kernel only**: the
//! clock starts after `load` finished staging. Two costs are deliberately
//! *inside* the timed window because they genuinely recur per call: the
//! per-`A` activation-panel packing of the V2/V3 packed path, and — for
//! the simulator — the functional emulation itself. Everything derived
//! from the weights alone (blocking derivation, `B′` staging, `col_info`,
//! ISA dispatch) is paid once in `load` and never again, mirroring how
//! the paper excludes its pre-processing from kernel time.
//!
//! ## Environment-override precedence
//!
//! Several defaults can be steered from the environment: `NM_SPMM_BACKEND`
//! (default backend), `NM_SPMM_STORAGE` (storage-format pin),
//! `NM_SPMM_AUTOTUNE` (measured autotuning), and — inside the micro-kernel
//! dispatch — `NM_SPMM_ISA` / `NM_SPMM_FORCE_SCALAR`. The rule is uniform:
//! **an explicit builder call always beats the environment variable**, and
//! the variable beats the built-in default. Every variable is strictly
//! validated (an unrecognized value is a structured build error, never a
//! silent fallback). The precedence is pinned by `tests/env_overrides.rs`.
//!
//! ## Concurrency
//!
//! [`PreparedLayer`] is `Send + Sync`: one prepared handle can serve
//! concurrent callers (`forward` takes `&self`), which is the shape a
//! serving front-end needs. [`PreparedLayer::forward_batch`] validates
//! every member's shape up front (a mid-batch mismatch is reported before
//! any work is spent) and keeps parallelism at exactly one level: batch
//! members fan across the rayon pool for the per-call-serial backends
//! (CPU V1/V2), while backends that parallelize inside each call (CPU
//! V3's row panels, the simulated kernels' block fan-out) map their batch
//! serially instead of nesting thread fan-outs.

use crate::backend::{BackendKind, CpuBackend, ExecBackend, ExecRun, PreparedState};
use crate::engine::{CacheStats, Engine};
use crate::measure::{self, AutotuneMode, MeasureSpec};
use crate::nm::NmVersion;
use crate::plan::{Plan, PlanHost, ShapeClass};
use crate::simd::{Isa, MicroKernel};
use gpu_sim::device::DeviceConfig;
use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::sliced::StorageFormat;
use nm_core::sparse::NmSparseMatrix;
use rayon::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Configuration for a [`Session`] — the one-stop execution context.
///
/// ```
/// use nm_kernels::session::SessionBuilder;
/// use nm_kernels::{BackendKind, NmVersion};
/// use gpu_sim::device::a100_80g;
///
/// let session = SessionBuilder::new(a100_80g())
///     .backend(BackendKind::Cpu(NmVersion::V3))
///     .build()
///     .expect("session");
/// assert_eq!(session.backend(), BackendKind::Cpu(NmVersion::V3));
/// ```
#[derive(Debug)]
pub struct SessionBuilder {
    device: DeviceConfig,
    backend: Option<BackendKind>,
    isa: Option<Isa>,
    kernel: Option<MicroKernel>,
    threads: Option<usize>,
    cache_path: Option<PathBuf>,
    autotune: Option<AutotuneMode>,
    storage: Option<StorageFormat>,
}

impl SessionBuilder {
    /// A builder for `device` with the defaults: native CPU V3 backend
    /// (unless `NM_SPMM_BACKEND` says otherwise), runtime micro-kernel
    /// dispatch, uncapped workers, in-memory plan cache, measured
    /// autotuning off (unless `NM_SPMM_AUTOTUNE` says otherwise).
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            device,
            backend: None,
            isa: None,
            kernel: None,
            threads: None,
            cache_path: None,
            autotune: None,
            storage: None,
        }
    }

    /// The default backend layers are loaded on ([`Session::load`]);
    /// [`Session::load_on`] overrides it per layer.
    ///
    /// Precedence: an explicit call here **always beats** the
    /// `NM_SPMM_BACKEND` environment variable, which in turn beats the
    /// built-in default (`cpu_v3`) — the same explicit-beats-environment
    /// rule every `NM_SPMM_*` override follows (see the module docs).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Pin every CPU preparation to one micro-kernel ISA instead of the
    /// per-host runtime dispatch. [`SessionBuilder::build`] fails with
    /// [`NmError::Unsupported`] when this host cannot execute `isa`.
    pub fn isa(mut self, isa: Isa) -> Self {
        self.isa = Some(isa);
        self.kernel = None;
        self
    }

    /// Pin every CPU preparation to an already-resolved micro-kernel
    /// (the harness hook; [`SessionBuilder::isa`] is the usual override).
    pub fn micro_kernel(mut self, kernel: MicroKernel) -> Self {
        self.kernel = Some(kernel);
        self.isa = None;
        self
    }

    /// Cap the rayon worker fan-out (V3 row panels, batched forwards).
    ///
    /// Best-effort: the cap installs through rayon's first-wins global
    /// pool initialization, so if the pool is already configured the
    /// existing setting stays — check [`Session::threads`] for what
    /// actually applies.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Back the plan cache with a JSON file: hydrated at build time when
    /// it exists (a malformed file is a build error, not silently
    /// ignored), written back by [`Session::save`].
    pub fn plan_cache(mut self, path: impl AsRef<Path>) -> Self {
        self.cache_path = Some(path.as_ref().to_path_buf());
        self
    }

    /// How much **measured** autotuning [`Session::load`] performs when
    /// the default backend is the native CPU ladder: `Off` executes the
    /// cost-model plan as-is, `Quick`/`Full` run the
    /// [`measure`](mod@crate::measure) harness on a cache miss and persist
    /// the measured-best ladder version and tiling through the plan
    /// cache, keyed by `(host ISA, thread count, shape class, N:M)`.
    ///
    /// An explicit mode overrides the `NM_SPMM_AUTOTUNE` environment
    /// variable; without either, measurement is off.
    pub fn autotune(mut self, mode: AutotuneMode) -> Self {
        self.autotune = Some(mode);
        self
    }

    /// Pin every layer this session loads to one `B′` storage format
    /// instead of the planned/measured lane: `StorageFormat::RowMajor`
    /// forces the paper's layout, `StorageFormat::Sliced` the SELL-C-σ
    /// panels. [`LoadSpec::storage`] overrides this per layer.
    ///
    /// An explicit pin overrides the `NM_SPMM_STORAGE` environment
    /// variable; without either, the format is planned (and, under
    /// measured autotuning, chosen by evidence).
    pub fn storage(mut self, format: StorageFormat) -> Self {
        self.storage = Some(format);
        self
    }

    /// Build the session.
    ///
    /// # Errors
    /// [`NmError::Unsupported`] when an [`SessionBuilder::isa`] override
    /// names an ISA this host cannot execute, `NM_SPMM_AUTOTUNE` holds
    /// an unrecognized mode, or `NM_SPMM_STORAGE` holds an unrecognized
    /// storage format (both strictly validated, like `NM_SPMM_ISA` —
    /// never a silent fallback), and
    /// [`NmError::Persist`] when `NM_SPMM_BACKEND` names an unknown
    /// backend or the plan-cache file exists but cannot be parsed.
    ///
    /// Environment overrides (`NM_SPMM_BACKEND`, `NM_SPMM_STORAGE`,
    /// `NM_SPMM_AUTOTUNE`) are consulted **only** for settings the
    /// builder was not explicitly given — explicit builder calls always
    /// win (tested in `tests/env_overrides.rs`).
    pub fn build(self) -> Result<Session> {
        let backend = match self.backend {
            Some(b) => b,
            None => BackendKind::from_env()?.unwrap_or(BackendKind::Cpu(NmVersion::V3)),
        };
        let kernel = match (self.kernel, self.isa) {
            (Some(k), _) => Some(k),
            (None, Some(isa)) => Some(MicroKernel::for_isa(isa)?),
            (None, None) => None,
        };
        let autotune = match self.autotune {
            Some(mode) => mode,
            None => AutotuneMode::from_env()?.unwrap_or_default(),
        };
        let storage = match self.storage {
            Some(format) => Some(format),
            None => StorageFormat::from_env()?,
        };
        if let Some(threads) = self.threads {
            // First-wins, like real rayon: a pool configured earlier in
            // the process keeps its setting.
            let _ = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global();
        }
        let engine = match &self.cache_path {
            Some(path) => Engine::with_cache_file(self.device, path)?,
            None => Engine::new(self.device),
        };
        Ok(Session {
            engine,
            backend,
            kernel,
            autotune,
            storage,
        })
    }
}

/// A typed description of **one layer load** — what [`Session::load_with`]
/// consumes, and what the `load`/`load_on`/`load_planned` conveniences
/// build behind the scenes.
///
/// A spec starts from the one piece of information every load needs — the
/// activation row count — and layers optional overrides on top:
///
/// * [`LoadSpec::backend`] — prepare on an explicit backend instead of
///   the session default. An explicit backend also **opts out of the
///   measured-autotune path**: measurement evidence is only gathered and
///   consulted for default-backend loads, exactly as `load` vs `load_on`
///   always behaved.
/// * [`LoadSpec::shape_class`] — plan under an explicit
///   [`ShapeClass`] instead of the one `rows` classifies to: a layer
///   serving autoregressive decode can be planned on the decode band
///   (`ShapeClass::Decode(m)`, `m ≤ DECODE_MAX_ROWS`) even though it was
///   loaded for a prefill row count, and vice versa.
/// * [`LoadSpec::planned`] — the escape hatch: skip planning entirely
///   and prepare against an externally resolved [`Plan`] (cache
///   accounting untouched). Mutually exclusive with `shape_class`; the
///   plan *is* the shape decision.
///
/// ```
/// use nm_kernels::session::LoadSpec;
/// use nm_kernels::{BackendKind, NmVersion, ShapeClass};
///
/// let spec = LoadSpec::rows(64)
///     .backend(BackendKind::Cpu(NmVersion::V3))
///     .shape_class(ShapeClass::Decode(4));
/// assert_eq!(spec.rows_hint(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct LoadSpec {
    rows: usize,
    backend: Option<BackendKind>,
    shape_class: Option<ShapeClass>,
    plan: Option<Plan>,
    storage: Option<StorageFormat>,
}

impl LoadSpec {
    /// A spec for activations of `rows` rows, with every override unset:
    /// session-default backend, shape class derived from `rows`, planning
    /// through the cache.
    pub fn rows(rows: usize) -> Self {
        Self {
            rows,
            backend: None,
            shape_class: None,
            plan: None,
            storage: None,
        }
    }

    /// Prepare on an explicit backend instead of the session default
    /// (also opts out of measured autotuning — see the type docs).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Plan under an explicit shape class instead of the one `rows`
    /// classifies to (validated by the planner; `Decode(m)` must have
    /// `m` in `1..=DECODE_MAX_ROWS`).
    pub fn shape_class(mut self, class: ShapeClass) -> Self {
        self.shape_class = Some(class);
        self
    }

    /// Skip planning and prepare against this externally resolved plan.
    /// Mutually exclusive with [`LoadSpec::shape_class`] and
    /// [`LoadSpec::storage`].
    pub fn planned(mut self, plan: Plan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Pin this layer's `B′` storage format instead of the
    /// planned/measured lane. A sliced pin plans (and caches) on its own
    /// format lane; a row-major pin shares the auto lane's plan but
    /// always stages the paper's layout. Overrides the session-wide
    /// [`SessionBuilder::storage`] pin. Mutually exclusive with
    /// [`LoadSpec::planned`] — the plan already fixes the lane.
    pub fn storage(mut self, format: StorageFormat) -> Self {
        self.storage = Some(format);
        self
    }

    /// The activation row count this spec was built for.
    pub fn rows_hint(&self) -> usize {
        self.rows
    }

    /// The backend override, when one is set.
    pub fn backend_hint(&self) -> Option<BackendKind> {
        self.backend
    }

    /// The shape-class override, when one is set.
    pub fn shape_class_hint(&self) -> Option<ShapeClass> {
        self.shape_class
    }

    /// The storage-format pin, when one is set.
    pub fn storage_hint(&self) -> Option<StorageFormat> {
        self.storage
    }

    /// Whether this spec carries a pre-resolved plan.
    pub fn is_planned(&self) -> bool {
        self.plan.is_some()
    }
}

/// An execution context: planner + plan cache + backend configuration.
///
/// Sessions hand out [`PreparedLayer`] handles via [`Session::load_with`]
/// (and the `load`/`load_on`/`load_planned` conveniences built on it);
/// estimate-only consumers can also call [`Session::plan`] directly.
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    backend: BackendKind,
    kernel: Option<MicroKernel>,
    autotune: AutotuneMode,
    storage: Option<StorageFormat>,
}

impl Session {
    /// Shorthand for [`SessionBuilder::new`].
    pub fn builder(device: DeviceConfig) -> SessionBuilder {
        SessionBuilder::new(device)
    }

    /// The device this session plans for.
    pub fn device(&self) -> &DeviceConfig {
        self.engine.device()
    }

    /// The default backend layers are loaded on.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The worker threads parallel execution fans out to at most.
    pub fn threads(&self) -> usize {
        rayon::current_num_threads()
    }

    /// The measured-autotuning mode [`Session::load`] applies.
    pub fn autotune(&self) -> AutotuneMode {
        self.autotune
    }

    /// The session-wide storage-format pin, when one is set
    /// ([`SessionBuilder::storage`] or `NM_SPMM_STORAGE`).
    pub fn storage(&self) -> Option<StorageFormat> {
        self.storage
    }

    /// Plan a problem through the shared cache (strategy decision +
    /// exhaustive autotune on a miss, O(1) on a hit). The estimate-only
    /// entry point; [`Session::load`] calls it internally. A session-wide
    /// storage pin routes the plan onto that format's cache lane, exactly
    /// as the load paths would.
    pub fn plan(&mut self, m: usize, n: usize, k: usize, cfg: NmConfig) -> Result<Plan> {
        match self.storage {
            Some(f) => self
                .engine
                .plan_stored(ShapeClass::of_rows(m), f, m, n, k, cfg),
            None => self.engine.plan(m, n, k, cfg),
        }
    }

    /// As [`Session::plan`], but under an explicit [`ShapeClass`] —
    /// see [`Planner::plan_as`](crate::plan::Planner::plan_as).
    pub fn plan_as(
        &mut self,
        class: ShapeClass,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
    ) -> Result<Plan> {
        match self.storage {
            Some(f) => self.engine.plan_stored(class, f, m, n, k, cfg),
            None => self.engine.plan_as(class, m, n, k, cfg),
        }
    }

    /// Plan-cache counters — entries, hits, misses.
    pub fn stats(&self) -> CacheStats {
        self.engine.stats()
    }

    /// Write the plan cache back to its backing file; `false` when the
    /// session has none.
    pub fn save(&self) -> Result<bool> {
        self.engine.save()
    }

    /// Do **all** the offline work for one layer, once, as described by a
    /// typed [`LoadSpec`]: plan (or adopt the spec's pre-resolved plan),
    /// instantiate the backend, and run its preparation (staging +
    /// packing + dispatch). The returned handle amortizes every one of
    /// those costs across its `forward` calls.
    ///
    /// This is the **single load entry point**; [`Session::load`],
    /// [`Session::load_on`] and [`Session::load_planned`] are thin
    /// conveniences over it. The spec resolves in this order:
    ///
    /// 1. A [`LoadSpec::planned`] plan is adopted as-is (cache accounting
    ///    untouched) and prepared on the spec's backend, defaulting to
    ///    the session backend.
    /// 2. Otherwise the layer is planned through the shared cache — under
    ///    the [`LoadSpec::shape_class`] override when one is set, else
    ///    under the class `rows` derives.
    /// 3. A load with **no backend override** on a CPU-default session
    ///    with [`SessionBuilder::autotune`] `Quick`/`Full` additionally
    ///    takes the measured-autotune pass: consult the plan cache for a
    ///    measured entry scoped to this host (ISA + thread count); on a
    ///    miss, run the [`measure`](mod@crate::measure) harness, persist
    ///    the winner through the cache's backing file (when one is
    ///    configured), and prepare on the measured-best ladder version
    ///    and tiling. An explicit [`LoadSpec::backend`] never measures —
    ///    the same contract `load` vs `load_on` always had.
    ///
    /// # Errors
    /// [`NmError::InvalidConfig`] when the spec sets both `planned` and
    /// `shape_class` (the plan *is* the shape decision) or names an
    /// out-of-band decode class; planning failures;
    /// [`NmError::InvalidBlocking`] when the tuned blocking cannot drive
    /// the backend; [`NmError::Unsupported`] when an environment ISA
    /// override names an ISA this host cannot execute.
    pub fn load_with(
        &mut self,
        weights: impl Into<Arc<NmSparseMatrix>>,
        spec: LoadSpec,
    ) -> Result<PreparedLayer> {
        let weights = weights.into();
        if spec.plan.is_some() && spec.shape_class.is_some() {
            return Err(NmError::InvalidConfig {
                reason: "LoadSpec::planned and LoadSpec::shape_class are mutually exclusive: \
                         a pre-resolved plan already fixes the shape class"
                    .into(),
            });
        }
        if spec.plan.is_some() && spec.storage.is_some() {
            return Err(NmError::InvalidConfig {
                reason: "LoadSpec::planned and LoadSpec::storage are mutually exclusive: \
                         a pre-resolved plan already fixes the storage lane"
                    .into(),
            });
        }
        if let Some(plan) = spec.plan {
            return self.prepare_layer(plan, weights, spec.backend.unwrap_or(self.backend));
        }
        let pin = spec.storage.or(self.storage);
        if spec.backend.is_none() {
            if let (BackendKind::Cpu(_), Some(mspec)) =
                (self.backend, MeasureSpec::for_mode(self.autotune))
            {
                return self.load_measured(weights, spec.rows, spec.shape_class, pin, mspec);
            }
        }
        let backend = spec.backend.unwrap_or(self.backend);
        let plan = self.plan_spec(spec.shape_class, pin, spec.rows, &weights)?;
        self.prepare_layer(plan, weights, backend)
    }

    /// Plan one layer for `rows`-row activations, honoring the optional
    /// shape-class and storage-format overrides, through the shared
    /// (counted) cache. A pinned format plans on that format's lane
    /// (a sliced pin gets its own cache identity; a row-major pin shares
    /// the auto lane — both spell `StorageFormat` into the key the same
    /// way row-major auto plans do).
    fn plan_spec(
        &mut self,
        class: Option<ShapeClass>,
        pin: Option<StorageFormat>,
        rows: usize,
        weights: &NmSparseMatrix,
    ) -> Result<Plan> {
        let (n, k, cfg) = (weights.cols(), weights.k(), weights.cfg());
        match (pin, class) {
            (Some(f), class) => {
                let class = class.unwrap_or_else(|| ShapeClass::of_rows(rows));
                self.engine.plan_stored(class, f, rows, n, k, cfg)
            }
            (None, Some(c)) => self.engine.plan_as(c, rows, n, k, cfg),
            (None, None) => self.engine.plan(rows, n, k, cfg),
        }
    }

    /// Convenience for the common case: [`Session::load_with`] under a
    /// bare `LoadSpec::rows(rows)` — session-default backend, derived
    /// shape class, measured autotuning when the session enables it.
    pub fn load(
        &mut self,
        weights: impl Into<Arc<NmSparseMatrix>>,
        rows: usize,
    ) -> Result<PreparedLayer> {
        self.load_with(weights, LoadSpec::rows(rows))
    }

    /// The measured path of [`Session::load_with`]: cache consult →
    /// measure on miss → persist → prepare on the measured winner.
    fn load_measured(
        &mut self,
        weights: Arc<NmSparseMatrix>,
        rows: usize,
        class: Option<ShapeClass>,
        pin: Option<StorageFormat>,
        spec: MeasureSpec,
    ) -> Result<PreparedLayer> {
        let base = self.plan_spec(class, pin, rows, &weights)?;
        // Resolve the micro-kernel first: the host ISA is part of the
        // measured cache key, so a cache file moved to a different
        // machine (or a different worker-count run) misses instead of
        // replaying foreign evidence.
        let kernel = match self.kernel {
            Some(k) => k,
            None => MicroKernel::select()?,
        };
        let host = PlanHost {
            isa: kernel.isa().name().to_string(),
            threads: rayon::current_num_threads(),
        };
        let key = base.key.for_host(host.clone());
        let mut plan = match self.engine.lookup(&key) {
            Some(plan) => plan,
            None => {
                let outcome = measure::measure(&base, &weights, rows, Some(kernel), spec)?;
                let plan = base.with_measured(host, outcome.best)?;
                self.engine.insert(plan.clone());
                // Persist the (comparatively expensive) evidence through
                // the same path analytic plans use; no-op when the
                // session has no backing file.
                self.engine.save()?;
                plan
            }
        };
        // A row-major pin shares the auto lane's measured entry (the
        // persisted evidence stays the genuine auto winner), but this
        // load must stage the pinned layout: rewrite the local copy's
        // measured format before preparing. Tile geometry is
        // format-independent, so the measured tiling stays valid. A
        // sliced pin already restricted measurement to its format.
        if let (Some(f), Some(m)) = (pin, plan.measured.as_mut()) {
            m.storage = f;
        }
        let version = plan
            .measured
            .as_ref()
            .map(|m| m.ladder_version)
            .unwrap_or(NmVersion::V3);
        self.prepare_layer(plan, weights, BackendKind::Cpu(version))
    }

    /// Convenience for per-layer backend selection:
    /// [`Session::load_with`] under `LoadSpec::rows(rows).backend(..)`.
    /// An explicit backend never takes the measured-autotune path.
    pub fn load_on(
        &mut self,
        weights: impl Into<Arc<NmSparseMatrix>>,
        rows: usize,
        backend: BackendKind,
    ) -> Result<PreparedLayer> {
        self.load_with(weights, LoadSpec::rows(rows).backend(backend))
    }

    /// Convenience for the plan escape hatch: prepare a layer against an
    /// **explicitly provided** plan, bypassing the planner (and therefore
    /// the cache counters) entirely — `LoadSpec::planned` semantics,
    /// callable on `&self` since nothing is planned.
    ///
    /// The weights need not match the plan's shape class — backends
    /// re-derive their tiling from the actual dimensions — which lets a
    /// sweep plan at full model size but execute a scaled-down instance,
    /// keeping its cache accounting untouched.
    pub fn load_planned(
        &self,
        plan: Plan,
        weights: impl Into<Arc<NmSparseMatrix>>,
        backend: BackendKind,
    ) -> Result<PreparedLayer> {
        self.prepare_layer(plan, weights.into(), backend)
    }

    /// Load a whole model's layers as one group through the shared plan
    /// cache. Layers with the same shape class and sparsity share one
    /// plan (Llama's `mlp.gate`/`mlp.up`, for instance); the returned
    /// [`PreparedModel`] reports the hit/miss split so callers can prove
    /// the sharing happened.
    ///
    /// Loading stops at the first failing layer — nothing is returned in
    /// that case, so there are no half-prepared groups to reason about.
    pub fn load_model<W: Into<Arc<NmSparseMatrix>>>(
        &mut self,
        layers: Vec<W>,
        rows: usize,
    ) -> Result<PreparedModel> {
        let before = self.stats();
        let prepared: Vec<PreparedLayer> = layers
            .into_iter()
            .map(|weights| self.load(weights, rows))
            .collect::<Result<_>>()?;
        let after = self.stats();
        Ok(PreparedModel {
            layers: prepared,
            cache_hits: after.hits - before.hits,
            cache_misses: after.misses - before.misses,
        })
    }

    fn prepare_layer(
        &self,
        plan: Plan,
        weights: Arc<NmSparseMatrix>,
        kind: BackendKind,
    ) -> Result<PreparedLayer> {
        let backend: Box<dyn ExecBackend> = match (kind, self.kernel) {
            (BackendKind::Cpu(v), Some(kernel)) => Box::new(CpuBackend::with_kernel(v, kernel)),
            _ => kind.instantiate(),
        };
        let state = backend.prepare(self.engine.device(), &plan, &weights)?;
        Ok(PreparedLayer {
            device: self.engine.device().clone(),
            plan,
            backend,
            state,
            weights,
        })
    }
}

/// One layer, fully prepared: the plan, the instantiated backend, the
/// backend's offline state, and the (shared, via `Arc`) weights —
/// everything `forward` needs, owned, so nothing is rebuilt per call and
/// loading the same weights onto several backends copies nothing.
///
/// The handle is `Send + Sync`; `forward` takes `&self`, so one prepared
/// layer can serve concurrent callers (e.g. a serving front-end's worker
/// threads) without cloning any staged data.
pub struct PreparedLayer {
    device: DeviceConfig,
    plan: Plan,
    backend: Box<dyn ExecBackend>,
    state: Box<dyn PreparedState>,
    weights: Arc<NmSparseMatrix>,
}

impl PreparedLayer {
    /// The resolved plan this layer executes under.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The backend this layer runs on.
    pub fn backend(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The compressed weights this layer multiplies by.
    pub fn weights(&self) -> &NmSparseMatrix {
        &self.weights
    }

    /// The micro-kernel ISA the preparation dispatched to (CPU backends
    /// only; the simulator has no host ISA).
    pub fn isa(&self) -> Option<Isa> {
        self.state.isa()
    }

    /// The `B′` storage format the preparation actually staged (CPU
    /// backends only; the simulator stages nothing). `forward` results
    /// are bit-identical across formats — this reports which layout the
    /// planned/measured/pinned resolution landed on.
    pub fn storage(&self) -> Option<StorageFormat> {
        self.state.storage()
    }

    /// The online path: multiply one activation batch,
    /// `C[rows][n] = A[rows][k] ⊛ (B′, D)`, reusing every piece of
    /// offline work [`Session::load`] staged. `wall_seconds` on the
    /// returned run covers exactly this call.
    ///
    /// # Errors
    /// [`NmError::DimensionMismatch`] when `a.cols()` disagrees with the
    /// weights' reduction depth — a structured error in every build
    /// profile, never a silent garbage product.
    pub fn forward(&self, a: &MatrixF32) -> Result<ExecRun> {
        if a.cols() != self.weights.k() {
            return Err(NmError::DimensionMismatch {
                expected: format!("A with k = {}", self.weights.k()),
                found: format!("A is {} x {}", a.rows(), a.cols()),
            });
        }
        self.backend
            .run_prepared(&self.device, &self.plan, &*self.state, a, &self.weights)
    }

    /// The decode entry point: multiply one activation **vector**,
    /// `y[n] = x[k] ⊛ (B′, D)` — the prepared SpMV path.
    ///
    /// The exact staged state `forward` uses serves this call (on the CPU
    /// ladder the one-row rung of the vectorized register-tile ladder
    /// streams the same staged `B′`), so a layer prepared once — e.g. for
    /// a prefill shape — serves autoregressive decode with **zero**
    /// additional offline work; only the `1 × k` operand view is built
    /// per call.
    ///
    /// # Errors
    /// [`NmError::DimensionMismatch`] when `x.len()` disagrees with the
    /// weights' reduction depth.
    pub fn forward_vec(&self, x: &[f32]) -> Result<ExecRun> {
        if x.len() != self.weights.k() {
            return Err(NmError::DimensionMismatch {
                expected: format!("x of length k = {}", self.weights.k()),
                found: format!("x of length {}", x.len()),
            });
        }
        let a = MatrixF32::from_vec(1, x.len(), x.to_vec());
        self.forward(&a)
    }

    /// Multiply a whole batch of activation matrices, one [`ExecRun`] per
    /// member, in batch order, returned as one [`BatchRun`] carrying the
    /// aggregate wall time and the routing decision.
    ///
    /// Every member's shape is validated **before any work starts**, so a
    /// mismatched member cannot discard the compute already spent on its
    /// predecessors.
    ///
    /// Parallelism lives at exactly one level: backends that run each
    /// call serially (CPU V1/V2) fan the batch members across the rayon
    /// worker pool ([`BatchRouting::ParallelAcross`]) — that is what
    /// fills the machine for the many-small-batches decode shape this
    /// entry point serves. Backends that already parallelize *inside*
    /// each call — CPU V3's row panels, and the simulated kernels'
    /// per-block fan-out — map their batch serially instead
    /// ([`BatchRouting::SerialWithin`]): nesting both levels would
    /// multiply OS threads (the pool has no shared work-stealing
    /// scheduler) and thrash rather than speed up.
    pub fn forward_batch(&self, batch: &[MatrixF32]) -> Result<BatchRun> {
        for (i, a) in batch.iter().enumerate() {
            if a.cols() != self.weights.k() {
                return Err(NmError::DimensionMismatch {
                    expected: format!("every batch member with k = {}", self.weights.k()),
                    found: format!("batch[{i}] is {} x {}", a.rows(), a.cols()),
                });
            }
        }
        let routing = match self.backend.kind() {
            // The codegen interpreter walks its workgroups on the calling
            // thread, so like CPU V1/V2 it benefits from batch fan-out.
            BackendKind::Cpu(NmVersion::V1)
            | BackendKind::Cpu(NmVersion::V2)
            | BackendKind::Codegen => BatchRouting::ParallelAcross,
            // CPU V3 and the simulated kernels parallelize inside each
            // call; batch-level fan-out on top would nest thread pools.
            _ => BatchRouting::SerialWithin,
        };
        let t0 = std::time::Instant::now();
        let runs: Vec<Result<ExecRun>> = match routing {
            BatchRouting::ParallelAcross => (0..batch.len())
                .into_par_iter()
                .map(|i| self.forward(&batch[i]))
                .collect(),
            BatchRouting::SerialWithin => batch.iter().map(|a| self.forward(a)).collect(),
        };
        let wall_seconds = t0.elapsed().as_secs_f64();
        Ok(BatchRun {
            runs: runs.into_iter().collect::<Result<_>>()?,
            wall_seconds,
            routing,
        })
    }
}

/// How [`PreparedLayer::forward_batch`] mapped batch members onto the
/// machine — recorded on the [`BatchRun`] so callers (a serving batcher,
/// a bench harness) can attribute the aggregate wall time correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchRouting {
    /// Members fanned across the rayon worker pool; each member ran
    /// serially inside its worker (CPU V1/V2).
    ParallelAcross,
    /// Members mapped serially, one after another; each member
    /// parallelized internally (CPU V3's row panels, the simulated
    /// kernels' block fan-out).
    SerialWithin,
}

impl BatchRouting {
    /// Stable identifier (`parallel_across`, `serial_within`) for
    /// artifacts and logs.
    pub fn name(&self) -> &'static str {
        match self {
            BatchRouting::ParallelAcross => "parallel_across",
            BatchRouting::SerialWithin => "serial_within",
        }
    }
}

impl std::fmt::Display for BatchRouting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of one [`PreparedLayer::forward_batch`] call: the
/// per-member [`ExecRun`]s in batch order, plus the two aggregates every
/// caller was previously recomputing — the wall time of the whole batch
/// call and the routing decision that produced it.
///
/// `wall_seconds` is measured around the entire fan-out, so under
/// [`BatchRouting::ParallelAcross`] it is *less* than the sum of the
/// member walls (that overlap is the point of batching); under
/// [`BatchRouting::SerialWithin`] it is their sum plus dispatch overhead.
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Per-member results, in batch order.
    pub runs: Vec<ExecRun>,
    /// Wall-clock seconds of the whole batch call, measured around the
    /// fan-out (not the sum of member walls).
    pub wall_seconds: f64,
    /// How members were mapped onto the machine.
    pub routing: BatchRouting,
}

impl BatchRun {
    /// Number of members in the batch.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Sum of the members' own kernel walls — the serial cost the batch
    /// routing amortized (compare against [`BatchRun::wall_seconds`]).
    pub fn member_seconds(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_seconds).sum()
    }

    /// Consume the batch into its per-member runs.
    pub fn into_runs(self) -> Vec<ExecRun> {
        self.runs
    }
}

impl std::fmt::Debug for PreparedLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedLayer")
            .field("backend", &self.backend.kind())
            .field("plan", &self.plan.key)
            .field("isa", &self.isa())
            .field("k", &self.weights.k())
            .field("n", &self.weights.cols())
            .finish_non_exhaustive()
    }
}

/// A group of prepared layers loaded as one unit by
/// [`Session::load_model`], with the plan-cache accounting for the
/// group's planning pass.
#[derive(Debug)]
pub struct PreparedModel {
    layers: Vec<PreparedLayer>,
    cache_hits: u64,
    cache_misses: u64,
}

impl PreparedModel {
    /// The prepared layers, in load order.
    pub fn layers(&self) -> &[PreparedLayer] {
        &self.layers
    }

    /// One layer by position.
    pub fn layer(&self, i: usize) -> &PreparedLayer {
        &self.layers[i]
    }

    /// Number of layers in the group.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Plans served from the shared cache during this group's planning
    /// pass (layers sharing a shape class and sparsity level hit).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Plans that required a fresh strategy + autotune run.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Consume the group into its layers.
    pub fn into_layers(self) -> Vec<PreparedLayer> {
        self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nm::NmVersion;
    use gpu_sim::device::a100_80g;
    use nm_core::prune::PrunePolicy;
    use nm_core::spmm::spmm_reference;

    fn session() -> Session {
        SessionBuilder::new(a100_80g()).build().unwrap()
    }

    fn weights(k: usize, n: usize, cfg: NmConfig, seed: u64) -> NmSparseMatrix {
        let b = MatrixF32::random(k, n, seed);
        NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: seed ^ 1 }).unwrap()
    }

    #[test]
    fn every_backend_forwards_to_the_reference_result() {
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let sb = weights(128, 96, cfg, 7);
        let a = MatrixF32::random(64, 128, 8);
        let expect = spmm_reference(&a, &sb);
        for backend in BackendKind::all() {
            let layer = s.load_on(sb.clone(), 64, backend).unwrap();
            assert_eq!(layer.backend(), backend);
            let run = layer.forward(&a).unwrap();
            assert!(
                run.c.allclose(&expect, 1e-3, 1e-4),
                "{backend}: max diff {}",
                run.c.max_abs_diff(&expect)
            );
            assert!(run.wall_seconds > 0.0, "{backend} must report wall time");
            assert_eq!(
                run.isa.is_some(),
                backend != BackendKind::Sim,
                "{backend}: only the native CPU ladder reports a host ISA"
            );
            assert_eq!(run.isa, layer.isa());
        }
        // One shape class: a single planning miss, then a cache hit for
        // every further backend.
        let st = s.stats();
        assert_eq!((st.entries, st.hits, st.misses), (1, 4, 1));
    }

    #[test]
    fn forward_rejects_mismatched_operands_in_release_semantics() {
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 8).unwrap();
        let layer = s.load(weights(64, 32, cfg, 1), 16).unwrap();
        let bad = MatrixF32::random(16, 48, 2);
        let err = layer.forward(&bad).unwrap_err();
        assert!(matches!(err, NmError::DimensionMismatch { .. }), "{err}");
    }

    #[test]
    fn forward_vec_is_the_prepared_spmv_path_with_zero_extra_staging() {
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 16).unwrap();
        let sb = weights(96, 64, cfg, 71);
        // Prepared once, for a *prefill* shape — the decode call below
        // must ride on exactly this offline work.
        let layer = s
            .load_on(sb.clone(), 128, BackendKind::Cpu(NmVersion::V3))
            .unwrap();
        let x = MatrixF32::random(1, 96, 72);
        let staged_before = crate::cpu::offline_staging_passes();
        let vec_run = layer.forward_vec(x.row(0)).unwrap();
        let mat_run = layer.forward(&x).unwrap();
        assert_eq!(
            crate::cpu::offline_staging_passes(),
            staged_before,
            "decode must reuse prefill's staged CpuPrepared, not re-stage"
        );
        assert_eq!(vec_run.c.shape(), (1, 64));
        let expect = spmm_reference(&x, &sb);
        assert!(vec_run.c.allclose(&expect, 1e-3, 1e-4));
        assert_eq!(
            vec_run.c.as_slice(),
            mat_run.c.as_slice(),
            "the vector and 1-row matrix entries take the same data path"
        );
        // Length validation is structured, like forward's.
        let err = layer.forward_vec(&x.row(0)[..95]).unwrap_err();
        assert!(matches!(err, NmError::DimensionMismatch { .. }), "{err}");
    }

    #[test]
    fn forward_batch_validates_every_member_before_any_work() {
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 8).unwrap();
        let layer = s.load(weights(64, 32, cfg, 3), 8).unwrap();
        let good = MatrixF32::random(8, 64, 4);
        let bad = MatrixF32::random(8, 48, 5);
        let err = layer
            .forward_batch(&[good.clone(), bad, good.clone()])
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("batch[1]"), "{msg}: must name the bad member");

        let batch_run = layer.forward_batch(&[good.clone(), good.clone()]).unwrap();
        assert_eq!(batch_run.len(), 2);
        assert!(
            batch_run.wall_seconds > 0.0,
            "aggregate wall time must cover the fan-out"
        );
        let expect = spmm_reference(&good, layer.weights());
        for run in &batch_run.runs {
            assert!(run.c.allclose(&expect, 1e-3, 1e-4));
        }
        assert!(batch_run.member_seconds() > 0.0);
        let empty = layer.forward_batch(&[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.into_runs().len(), 0);
    }

    #[test]
    fn forward_batch_agrees_on_both_routing_paths() {
        // V3 maps the batch serially (per-call parallelism), V1 fans it
        // across the pool — both must produce the same per-member matrix.
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 16).unwrap();
        let sb = weights(96, 64, cfg, 41);
        let batch: Vec<MatrixF32> = (0..3).map(|i| MatrixF32::random(8, 96, 50 + i)).collect();
        let v3 = s
            .load_on(sb.clone(), 8, BackendKind::Cpu(NmVersion::V3))
            .unwrap();
        let v1 = s
            .load_on(sb.clone(), 8, BackendKind::Cpu(NmVersion::V1))
            .unwrap();
        let serial = v3.forward_batch(&batch).unwrap();
        let pooled = v1.forward_batch(&batch).unwrap();
        assert_eq!(serial.routing, BatchRouting::SerialWithin);
        assert_eq!(pooled.routing, BatchRouting::ParallelAcross);
        for ((a, sr), pr) in batch.iter().zip(&serial.runs).zip(&pooled.runs) {
            let expect = spmm_reference(a, &sb);
            assert!(sr.c.allclose(&expect, 1e-3, 1e-4));
            assert!(pr.c.allclose(&expect, 1e-3, 1e-4));
        }
    }

    #[test]
    fn storage_pins_route_transparently_and_stay_bit_identical() {
        use nm_core::sliced::SlicedLayout;
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 16).unwrap();
        let sb = Arc::new(weights(96, 64, cfg, 81));
        let x = MatrixF32::random(1, 96, 82);

        let auto = s.load(sb.clone(), 1).unwrap();
        assert_eq!(
            auto.storage(),
            Some(StorageFormat::RowMajor),
            "no pin, no measurement: the auto lane stages the paper layout"
        );

        let pin = StorageFormat::Sliced(SlicedLayout::DEFAULT);
        let sliced = s
            .load_with(sb.clone(), LoadSpec::rows(1).storage(pin))
            .unwrap();
        assert_eq!(sliced.plan().key.storage, pin, "own cache lane");
        assert_eq!(sliced.storage(), Some(pin));

        // The permutation is invisible: same activations, bit-identical
        // output, on both the matrix and the vector entry points.
        let (ra, rs) = (auto.forward(&x).unwrap(), sliced.forward(&x).unwrap());
        assert_eq!(ra.c.as_slice(), rs.c.as_slice());
        let (va, vs) = (
            auto.forward_vec(x.row(0)).unwrap(),
            sliced.forward_vec(x.row(0)).unwrap(),
        );
        assert_eq!(va.c.as_slice(), vs.c.as_slice());

        // A row-major pin shares the auto plan lane.
        let rm = s
            .load_with(
                sb.clone(),
                LoadSpec::rows(1).storage(StorageFormat::RowMajor),
            )
            .unwrap();
        assert_eq!(rm.plan().key, auto.plan().key);
        assert_eq!(rm.storage(), Some(StorageFormat::RowMajor));

        // The simulator stages no format; the pin does not break it.
        let sim = s
            .load_with(sb.clone(), LoadSpec::rows(1).backend(BackendKind::Sim))
            .unwrap();
        assert_eq!(sim.storage(), None);

        // Session-wide pin applies when the spec sets none.
        let mut pinned_session = SessionBuilder::new(a100_80g())
            .storage(pin)
            .build()
            .unwrap();
        assert_eq!(pinned_session.storage(), Some(pin));
        let layer = pinned_session.load(sb.clone(), 1).unwrap();
        assert_eq!(layer.storage(), Some(pin));

        // planned + storage is a contradiction.
        let plan = s.plan(1, 64, 96, cfg).unwrap();
        let err = s
            .load_with(sb.clone(), LoadSpec::rows(1).planned(plan).storage(pin))
            .unwrap_err();
        assert!(matches!(err, NmError::InvalidConfig { .. }), "{err}");
        assert_eq!(LoadSpec::rows(1).storage(pin).storage_hint(), Some(pin));
    }

    #[test]
    fn measured_loads_honor_storage_pins_and_record_the_winner() {
        use nm_core::sliced::SlicedLayout;
        let mut s = SessionBuilder::new(a100_80g())
            .autotune(AutotuneMode::Quick)
            .build()
            .unwrap();
        let cfg = NmConfig::new(2, 8, 16).unwrap();
        let sb = Arc::new(weights(96, 64, cfg, 83));
        let x = MatrixF32::random(1, 96, 84);

        // The auto lane stages whatever the measurement picked.
        let auto = s.load(sb.clone(), 1).unwrap();
        let measured = auto.plan().measured.expect("measured evidence");
        assert_eq!(auto.storage(), Some(measured.storage));

        // A row-major pin reuses the auto lane's evidence (no second
        // measurement) but stages the pinned layout.
        let before = crate::measure::measurement_passes();
        let rm = s
            .load_with(
                sb.clone(),
                LoadSpec::rows(1).storage(StorageFormat::RowMajor),
            )
            .unwrap();
        assert_eq!(crate::measure::measurement_passes(), before, "cache hit");
        assert_eq!(rm.storage(), Some(StorageFormat::RowMajor));
        assert_eq!(
            rm.plan().measured.as_ref().unwrap().cpu_tiling,
            measured.cpu_tiling,
            "the measured tile geometry survives the format rewrite"
        );

        // A sliced pin measures its own lane, restricted to the pin.
        let pin = StorageFormat::Sliced(SlicedLayout::new(4, 4).unwrap());
        let sliced = s
            .load_with(sb.clone(), LoadSpec::rows(1).storage(pin))
            .unwrap();
        assert_eq!(sliced.storage(), Some(pin));
        assert_eq!(sliced.plan().measured.as_ref().unwrap().storage, pin);

        // All three stage differently, multiply identically.
        let want = auto.forward_vec(x.row(0)).unwrap();
        for layer in [&rm, &sliced] {
            let got = layer.forward_vec(x.row(0)).unwrap();
            assert_eq!(want.c.as_slice(), got.c.as_slice());
        }
    }

    #[test]
    fn load_model_groups_layers_and_accounts_cache_sharing() {
        let mut s = session();
        let cfg = NmConfig::new(2, 16, 32).unwrap();
        // Two identical shapes and one distinct: 2 misses, 1 hit.
        let model = s
            .load_model(
                vec![
                    weights(128, 96, cfg, 11),
                    weights(128, 96, cfg, 12),
                    weights(96, 64, cfg, 13),
                ],
                32,
            )
            .unwrap();
        assert_eq!(model.len(), 3);
        assert!(!model.is_empty());
        assert_eq!((model.cache_hits(), model.cache_misses()), (1, 2));
        let a = MatrixF32::random(32, 128, 14);
        let run = model.layer(0).forward(&a).unwrap();
        assert!(run
            .c
            .allclose(&spmm_reference(&a, model.layer(0).weights()), 1e-3, 1e-4));
        assert_eq!(model.into_layers().len(), 3);
    }

    #[test]
    fn load_planned_does_not_touch_cache_accounting() {
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = s.plan(512, 512, 512, cfg).unwrap();
        let before = s.stats();
        // Scaled-down weights executed under the full-size plan.
        let sb = weights(64, 64, cfg, 21);
        let layer = s
            .load_planned(plan, sb, BackendKind::Cpu(NmVersion::V1))
            .unwrap();
        let after = s.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
        let a = MatrixF32::random(16, 64, 22);
        let run = layer.forward(&a).unwrap();
        assert!(run
            .c
            .allclose(&spmm_reference(&a, layer.weights()), 1e-3, 1e-4));
    }

    #[test]
    fn load_with_is_the_wrappers_single_implementation() {
        // load / load_on must be byte-for-byte equivalent to the bare and
        // backend-carrying specs: same plan key, same backend, same math.
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 16).unwrap();
        let sb = Arc::new(weights(96, 64, cfg, 61));
        let a = MatrixF32::random(16, 96, 62);

        let via_load = s.load(sb.clone(), 16).unwrap();
        let via_spec = s.load_with(sb.clone(), LoadSpec::rows(16)).unwrap();
        assert_eq!(via_load.plan().key, via_spec.plan().key);
        assert_eq!(via_load.backend(), via_spec.backend());

        let on = s
            .load_on(sb.clone(), 16, BackendKind::Cpu(NmVersion::V1))
            .unwrap();
        let spec_on = s
            .load_with(
                sb.clone(),
                LoadSpec::rows(16).backend(BackendKind::Cpu(NmVersion::V1)),
            )
            .unwrap();
        assert_eq!(on.plan().key, spec_on.plan().key);
        assert_eq!(spec_on.backend(), BackendKind::Cpu(NmVersion::V1));
        let (r1, r2) = (on.forward(&a).unwrap(), spec_on.forward(&a).unwrap());
        assert_eq!(r1.c.as_slice(), r2.c.as_slice());
    }

    #[test]
    fn shape_class_override_plans_the_decode_band_for_prefill_rows() {
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 16).unwrap();
        let sb = Arc::new(weights(96, 64, cfg, 63));
        // 64 rows classifies as Prefill; the spec forces the decode band.
        let layer = s
            .load_with(
                sb.clone(),
                LoadSpec::rows(64).shape_class(ShapeClass::Decode(4)),
            )
            .unwrap();
        assert_eq!(layer.plan().key.shape, ShapeClass::Decode(4));
        // The staged state still executes the real operand correctly.
        let a = MatrixF32::random(4, 96, 64);
        let run = layer.forward(&a).unwrap();
        assert!(run.c.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));

        // And the reverse: force the GEMM regime onto a skinny shape.
        let wide = s
            .load_with(
                sb.clone(),
                LoadSpec::rows(2).shape_class(ShapeClass::Prefill),
            )
            .unwrap();
        assert_eq!(wide.plan().key.shape, ShapeClass::Prefill);
    }

    #[test]
    fn load_spec_rejects_contradictions_and_out_of_band_decode() {
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 16).unwrap();
        let sb = Arc::new(weights(96, 64, cfg, 65));
        let plan = s.plan(64, 64, 96, cfg).unwrap();

        let err = s
            .load_with(
                sb.clone(),
                LoadSpec::rows(64)
                    .planned(plan)
                    .shape_class(ShapeClass::Prefill),
            )
            .unwrap_err();
        assert!(matches!(err, NmError::InvalidConfig { .. }), "{err}");

        let err = s
            .load_with(
                sb.clone(),
                LoadSpec::rows(64).shape_class(ShapeClass::Decode(99)),
            )
            .unwrap_err();
        assert!(matches!(err, NmError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn planned_spec_bypasses_cache_and_defaults_to_session_backend() {
        let mut s = session();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = s.plan(64, 64, 64, cfg).unwrap();
        let before = s.stats();
        let sb = Arc::new(weights(64, 64, cfg, 66));
        let layer = s.load_with(sb, LoadSpec::rows(64).planned(plan)).unwrap();
        let after = s.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
        assert_eq!(layer.backend(), s.backend());
        let spec = LoadSpec::rows(64);
        assert_eq!(spec.rows_hint(), 64);
        assert!(spec.backend_hint().is_none());
        assert!(spec.shape_class_hint().is_none());
        assert!(!spec.is_planned());
    }

    #[test]
    fn isa_override_pins_every_loaded_layer() {
        let mut s = SessionBuilder::new(a100_80g())
            .isa(Isa::Scalar)
            .build()
            .unwrap();
        let cfg = NmConfig::new(2, 8, 8).unwrap();
        let layer = s.load(weights(64, 32, cfg, 31), 16).unwrap();
        assert_eq!(layer.isa(), Some(Isa::Scalar));
        // The simulator is unaffected by the pin.
        let sim = s
            .load_on(weights(64, 32, cfg, 32), 16, BackendKind::Sim)
            .unwrap();
        assert_eq!(sim.isa(), None);
    }

    #[test]
    fn unsupported_isa_override_fails_at_build_time() {
        // An ISA foreign to this architecture can never be executable
        // here, so the builder must refuse before any layer loads.
        let foreign = if cfg!(target_arch = "x86_64") {
            Isa::Neon
        } else {
            Isa::Avx2
        };
        let err = SessionBuilder::new(a100_80g())
            .isa(foreign)
            .build()
            .unwrap_err();
        assert!(matches!(err, NmError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn plan_cache_file_round_trips_through_sessions() {
        let mut path = std::env::temp_dir();
        path.push(format!("nm-spmm-session-cache-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = NmConfig::new(2, 16, 32).unwrap();

        let mut cold = SessionBuilder::new(a100_80g())
            .plan_cache(&path)
            .build()
            .unwrap();
        cold.plan(512, 512, 512, cfg).unwrap();
        assert_eq!(cold.stats().misses, 1);
        assert!(cold.save().unwrap());

        let mut warm = SessionBuilder::new(a100_80g())
            .plan_cache(&path)
            .build()
            .unwrap();
        warm.plan(512, 512, 512, cfg).unwrap();
        let st = warm.stats();
        assert_eq!(
            (st.hits, st.misses),
            (1, 0),
            "the reloaded session must serve the plan from disk"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn threads_knob_is_best_effort_and_queryable() {
        // `threads(0)` exercises the install path without capping the
        // pool: the global install is first-wins and process-wide, so a
        // real cap here would silently serialize every other test in
        // this binary (the capping semantics themselves are covered by
        // the rayon shim's own test, in its own process).
        let s = SessionBuilder::new(a100_80g()).threads(0).build().unwrap();
        assert!(s.threads() >= 1);
    }
}
