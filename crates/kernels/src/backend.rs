//! Execution backends: one trait, two ways to run a plan.
//!
//! A [`Plan`] records *what* to run — kernel family and
//! auto-tuned blocking. [`ExecBackend`] decides *where*:
//!
//! * [`SimBackend`] — the original path: the functional face of the
//!   simulated GPU kernels (tile fills into emulated shared memory,
//!   index-directed gathers), producing event counts and a timing-model
//!   report alongside the numerics.
//! * [`CpuBackend`] — the native path: the paper's V1→V3 ladder executed
//!   for real on the host ([`crate::cpu`]), with the plan's blocking
//!   parameters driving the CPU tile sizes.
//!
//! ## The offline/online split
//!
//! The trait mirrors the paper's performance accounting: everything that
//! depends only on the *weights* — layout transformation, `col_info`
//! packing, micro-kernel dispatch — is **offline** work done once by
//! [`ExecBackend::prepare`], which returns an opaque [`PreparedState`];
//! the **online** kernel is [`ExecBackend::run_prepared`], which may be
//! called any number of times against the same state without repeating
//! the staging. [`ExecBackend::run`] is the convenience composition for
//! one-shot callers. The handle-based [`Session`](crate::session) API owns
//! this amortization for library users; code outside the crate should go
//! through it rather than drive backends directly.
//!
//! Every backend returns an [`ExecRun`]: the computed matrix, the
//! **measured wall-clock time** of the online execution, and the plan's
//! simulated estimate for the same kernel family, so callers can put model
//! time and real time side by side. [`BackendKind`] is the cheap copyable
//! selector; [`BackendKind::instantiate`] turns it into a boxed backend
//! for dynamic dispatch.

use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_core::sparse::NmSparseMatrix;

use crate::cpu::{spmm_cpu_prepared, CpuPrepared, CpuTiling};
use crate::nm::{NmSpmmKernel, NmVersion};
use crate::nmsparse::NmSparseKernel;
use crate::plan::{EstimateSummary, KernelChoice, Plan};
use crate::simd::{Isa, MicroKernel};
use crate::sputnik::SputnikKernel;
use crate::SimRun;
use gpu_sim::device::DeviceConfig;
use std::any::Any;
use std::time::Instant;

/// Environment variable naming the default execution backend
/// ([`BackendKind::from_env`]): one of the [`BackendKind::name`]
/// identifiers (`sim`, `cpu_v1`, `cpu_v2`, `cpu_v3`, `codegen`). An
/// explicit [`SessionBuilder::backend`](crate::session::SessionBuilder::backend)
/// call always wins over this variable.
pub const BACKEND_ENV: &str = "NM_SPMM_BACKEND";

/// Which execution backend to run a plan through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The simulated GPU kernels (functional face + timing model).
    Sim,
    /// The native CPU ladder at the given optimization step.
    Cpu(NmVersion),
    /// The WGSL code-generation backend: the plan lowered to a validated
    /// compute shader, executed by the deterministic interpreter
    /// ([`crate::codegen::CodegenBackend`]).
    Codegen,
}

impl BackendKind {
    /// Every backend: simulator first, the CPU ladder in step order,
    /// then the codegen path.
    pub fn all() -> [BackendKind; 5] {
        [
            BackendKind::Sim,
            BackendKind::Cpu(NmVersion::V1),
            BackendKind::Cpu(NmVersion::V2),
            BackendKind::Cpu(NmVersion::V3),
            BackendKind::Codegen,
        ]
    }

    /// Stable identifier (`sim`, `cpu_v1`, `cpu_v2`, `cpu_v3`,
    /// `codegen`).
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Cpu(NmVersion::V1) => "cpu_v1",
            BackendKind::Cpu(NmVersion::V2) => "cpu_v2",
            BackendKind::Cpu(NmVersion::V3) => "cpu_v3",
            BackendKind::Codegen => "codegen",
        }
    }

    /// Inverse of [`BackendKind::name`].
    pub fn from_name(name: &str) -> Result<Self> {
        Self::all()
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| NmError::Persist {
                reason: format!("unknown backend `{name}`"),
            })
    }

    /// The backend requested through the [`BACKEND_ENV`] environment
    /// variable: `None` when unset or empty, the parsed kind otherwise.
    ///
    /// # Errors
    /// [`NmError::Persist`] when the variable holds an unrecognized
    /// backend name — validated up front, exactly like `NM_SPMM_ISA` and
    /// `NM_SPMM_STORAGE`, so a typo can never silently run on the wrong
    /// substrate.
    pub fn from_env() -> Result<Option<Self>> {
        match std::env::var(BACKEND_ENV) {
            Ok(v) if v.is_empty() => Ok(None),
            Ok(v) => Self::from_name(&v).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// Box the backend this selector names, with default micro-kernel
    /// dispatch (the CPU ladder selects its ISA per preparation).
    pub fn instantiate(&self) -> Box<dyn ExecBackend> {
        match self {
            BackendKind::Sim => Box::new(SimBackend),
            BackendKind::Cpu(v) => Box::new(CpuBackend::new(*v)),
            BackendKind::Codegen => Box::new(crate::codegen::CodegenBackend::new()),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Sim => "simulated GPU",
            BackendKind::Cpu(NmVersion::V1) => "native CPU V1",
            BackendKind::Cpu(NmVersion::V2) => "native CPU V2",
            BackendKind::Cpu(NmVersion::V3) => "native CPU V3",
            BackendKind::Codegen => "WGSL codegen",
        })
    }
}

/// The result of executing a plan through a backend.
#[derive(Debug, Clone)]
pub struct ExecRun {
    /// The computed matrix `C[m][n]`.
    pub c: MatrixF32,
    /// The backend that produced it.
    pub backend: BackendKind,
    /// Measured wall-clock seconds of the **online** execution only (host
    /// time; for the simulator this is the cost of the functional
    /// emulation, not the modeled GPU latency — that lives in `estimate`).
    ///
    /// The clock starts *after* the offline preparation
    /// ([`ExecBackend::prepare`] — `B′` block staging, `col_info` packing,
    /// ISA dispatch), so repeated calls against one
    /// [`PreparedLayer`](crate::session::PreparedLayer) measure exactly
    /// the amortized per-call cost the paper's accounting describes. The
    /// per-`A` panel packing of the V2/V3 packed path *is* included: it
    /// depends on the activations and is genuinely online work.
    pub wall_seconds: f64,
    /// The plan's simulated estimate for the kernel family this backend
    /// ran (`None` when the plan carries no estimate for it).
    pub estimate: Option<EstimateSummary>,
    /// The instruction set the micro-kernel executed with; only the
    /// [`CpuBackend`] selects one (runtime dispatch, see
    /// [`crate::simd::MicroKernel`]) — the simulator has no host ISA to
    /// report.
    pub isa: Option<Isa>,
    /// Simulated event counts; only the [`SimBackend`] produces them.
    pub stats: Option<gpu_sim::KernelStats>,
    /// The simulated timing-model report; only the [`SimBackend`]
    /// produces one.
    pub report: Option<gpu_sim::LaunchReport>,
}

impl ExecRun {
    /// Measured useful throughput in GFLOP/s, given the problem's useful
    /// flop count (`2·m·n·w`).
    pub fn gflops(&self, useful_flops: f64) -> f64 {
        useful_flops / self.wall_seconds / 1e9
    }
}

/// Opaque product of a backend's offline preparation: everything derived
/// from the *weights* alone, reusable across any number of online runs.
///
/// Each backend downcasts its own state back out via
/// [`PreparedState::as_any`]; handing one backend's state to another is a
/// structured error, never undefined behavior. The `Send + Sync` bound is
/// what lets one [`PreparedLayer`](crate::session::PreparedLayer) serve
/// concurrent callers.
pub trait PreparedState: Send + Sync {
    /// Downcasting hook for the owning backend.
    fn as_any(&self) -> &dyn Any;

    /// The micro-kernel ISA this preparation dispatched to, when the
    /// backend runs on the host (CPU ladder); `None` for the simulator.
    fn isa(&self) -> Option<Isa> {
        None
    }

    /// The `B′` storage format this preparation staged, when the backend
    /// stages one (CPU ladder); `None` for the simulator.
    fn storage(&self) -> Option<nm_core::sliced::StorageFormat> {
        None
    }
}

/// A way to execute a resolved plan on concrete operands.
///
/// Implementations split the work along the paper's offline/online line:
/// [`ExecBackend::prepare`] runs once per weight matrix,
/// [`ExecBackend::run_prepared`] any number of times per activation batch.
pub trait ExecBackend: Send + Sync {
    /// The selector this backend answers to.
    fn kind(&self) -> BackendKind;

    /// Offline step: stage everything derivable from the weights (`B′`
    /// layout transformation, `col_info` packing, micro-kernel dispatch)
    /// under `plan` so [`ExecBackend::run_prepared`] can amortize it.
    ///
    /// Implementations must return structured errors (never panic) when
    /// the plan's blocking cannot drive this backend.
    fn prepare(
        &self,
        dev: &DeviceConfig,
        plan: &Plan,
        sb: &NmSparseMatrix,
    ) -> Result<Box<dyn PreparedState>>;

    /// Online step: execute `C = A ⊛ (B′, D)` against a state this same
    /// backend prepared from this same `sb`. The returned
    /// [`ExecRun::wall_seconds`] covers this call only — no staging cost.
    ///
    /// # Errors
    /// A state prepared by a *different* backend is rejected with a
    /// structured [`NmError::InvalidConfig`]; operand mismatches are
    /// [`NmError::DimensionMismatch`].
    fn run_prepared(
        &self,
        dev: &DeviceConfig,
        plan: &Plan,
        state: &dyn PreparedState,
        a: &MatrixF32,
        sb: &NmSparseMatrix,
    ) -> Result<ExecRun>;

    /// One-shot convenience: prepare, then run once. Callers executing the
    /// same weights repeatedly should hold a
    /// [`PreparedLayer`](crate::session::PreparedLayer) instead.
    fn run(
        &self,
        dev: &DeviceConfig,
        plan: &Plan,
        a: &MatrixF32,
        sb: &NmSparseMatrix,
    ) -> Result<ExecRun> {
        let state = self.prepare(dev, plan, sb)?;
        self.run_prepared(dev, plan, &*state, a, sb)
    }
}

fn foreign_state_error(backend: BackendKind) -> NmError {
    NmError::InvalidConfig {
        reason: format!(
            "prepared state was not produced by the {backend} backend \
             (prepare and run_prepared must use the same backend)"
        ),
    }
}

/// The simulated-GPU backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

/// The simulator's prepared state. The functional emulation re-fills its
/// emulated shared-memory tiles on every launch — exactly like the real
/// GPU kernel — so there is nothing weight-derived to cache; the state
/// only proves the prepare/run pairing was respected.
struct SimPrepared;

impl PreparedState for SimPrepared {
    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl SimBackend {
    /// The family actually executed — kernels without a functional face
    /// fall back to NM-SpMM V3 with the plan's tuned blocking: `Dense`
    /// (needs a dense `B` operand) and `SparseTc` (analytic model only) —
    /// the numerics are identical, only the event counts differ from the
    /// analytic winner.
    fn executed_family(plan: &Plan) -> KernelChoice {
        let has_functional_face =
            matches!(plan.choice, KernelChoice::NmSparse | KernelChoice::Sputnik)
                || plan.choice.nm_version().is_some();
        if has_functional_face {
            plan.choice
        } else {
            KernelChoice::NmV3
        }
    }
}

impl ExecBackend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn prepare(
        &self,
        _dev: &DeviceConfig,
        _plan: &Plan,
        _sb: &NmSparseMatrix,
    ) -> Result<Box<dyn PreparedState>> {
        Ok(Box::new(SimPrepared))
    }

    /// `estimate` must describe the same family the wall clock measured,
    /// so everything dispatches on the executed family (see
    /// `executed_family` above).
    fn run_prepared(
        &self,
        dev: &DeviceConfig,
        plan: &Plan,
        state: &dyn PreparedState,
        a: &MatrixF32,
        sb: &NmSparseMatrix,
    ) -> Result<ExecRun> {
        if state.as_any().downcast_ref::<SimPrepared>().is_none() {
            return Err(foreign_state_error(self.kind()));
        }
        let executed = Self::executed_family(plan);
        let t0 = Instant::now();
        let SimRun { c, stats, report } = match executed {
            KernelChoice::NmSparse => NmSparseKernel.run(dev, a, sb),
            KernelChoice::Sputnik => SputnikKernel.run(dev, a, sb),
            choice => {
                let version = choice.nm_version().unwrap_or(NmVersion::V3);
                NmSpmmKernel::new(version, plan.params).run(dev, a, sb)
            }
        }?;
        let wall_seconds = t0.elapsed().as_secs_f64();
        Ok(ExecRun {
            c,
            backend: BackendKind::Sim,
            wall_seconds,
            estimate: plan.estimates.get(executed),
            isa: None,
            stats: Some(stats),
            report: Some(report),
        })
    }
}

impl PreparedState for CpuPrepared {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn isa(&self) -> Option<Isa> {
        Some(CpuPrepared::isa(self))
    }

    fn storage(&self) -> Option<nm_core::sliced::StorageFormat> {
        Some(CpuPrepared::format(self))
    }
}

/// The native CPU backend at one step of the V1→V3 ladder.
#[derive(Debug, Clone, Copy)]
pub struct CpuBackend {
    version: NmVersion,
    /// Explicit micro-kernel, overriding the per-preparation runtime
    /// dispatch — how a [`Session`](crate::session::Session) pins one ISA
    /// across every layer it loads.
    kernel: Option<MicroKernel>,
}

impl CpuBackend {
    /// Backend for one ladder step with runtime ISA dispatch.
    pub fn new(version: NmVersion) -> Self {
        Self {
            version,
            kernel: None,
        }
    }

    /// Backend for one ladder step pinned to an explicit micro-kernel.
    pub fn with_kernel(version: NmVersion, kernel: MicroKernel) -> Self {
        Self {
            version,
            kernel: Some(kernel),
        }
    }

    /// The ladder step this backend executes.
    pub fn version(&self) -> NmVersion {
        self.version
    }
}

impl ExecBackend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu(self.version)
    }

    /// The offline step: tile sizes derived from the plan's auto-tuned
    /// blocking ([`CpuTiling::derive`]), `B′` staged block-contiguously,
    /// `col_info` packed where the paper's threshold calls for it, and the
    /// micro-kernel selected once ([`crate::simd::MicroKernel::select`],
    /// unless this backend pins one). A blocking that cannot drive the CPU
    /// tiles — e.g. `ns` not a multiple of the operand's vector length
    /// `L` — is a structured [`NmError::InvalidBlocking`].
    ///
    /// A plan carrying **measured** evidence for this ladder step
    /// overrides the cost-model derivation: the preparation stages with
    /// the tile geometry that actually measured fastest on this host
    /// (provided it is window-aligned for these weights — `load_planned`
    /// allows executing a plan against a differently configured operand,
    /// in which case the derivation fallback applies).
    fn prepare(
        &self,
        _dev: &DeviceConfig,
        plan: &Plan,
        sb: &NmSparseMatrix,
    ) -> Result<Box<dyn PreparedState>> {
        let cfg = sb.cfg();
        let measured = plan
            .measured
            .as_ref()
            .filter(|m| m.ladder_version == self.version);
        let measured_tiling = measured
            .map(|m| m.cpu_tiling)
            .filter(|t| t.nb.is_multiple_of(cfg.l) && t.kb.is_multiple_of(cfg.m));
        let tiling = match measured_tiling {
            Some(t) => t,
            None => CpuTiling::derive(plan.params, cfg, sb.k())?,
        };
        // The storage format follows the same evidence rule as the tile
        // geometry: measured evidence for *this* ladder step wins,
        // otherwise the plan key's lane (row-major on the auto lane, the
        // pinned layout on a pinned one).
        let format = measured.map(|m| m.storage).unwrap_or(plan.key.storage);
        let prep = match self.kernel {
            Some(k) => CpuPrepared::with_format(self.version, sb, tiling, k, format)?,
            None => CpuPrepared::new_with_format(self.version, sb, tiling, format)?,
        };
        Ok(Box::new(prep))
    }

    /// The online kernel only — `wall_seconds` excludes every cost
    /// [`CpuBackend::prepare`] already paid, matching the paper's
    /// accounting for its `col_info` pre-processing.
    fn run_prepared(
        &self,
        _dev: &DeviceConfig,
        plan: &Plan,
        state: &dyn PreparedState,
        a: &MatrixF32,
        sb: &NmSparseMatrix,
    ) -> Result<ExecRun> {
        let Some(prep) = state.as_any().downcast_ref::<CpuPrepared>() else {
            return Err(foreign_state_error(self.kind()));
        };
        if prep.version() != self.version {
            return Err(foreign_state_error(self.kind()));
        }
        let estimate = plan.estimates.get(match self.version {
            NmVersion::V1 => KernelChoice::NmV1,
            NmVersion::V2 => KernelChoice::NmV2,
            NmVersion::V3 => KernelChoice::NmV3,
        });
        let t0 = Instant::now();
        let c = spmm_cpu_prepared(a, sb, prep)?;
        let wall_seconds = t0.elapsed().as_secs_f64();
        Ok(ExecRun {
            c,
            backend: BackendKind::Cpu(self.version),
            wall_seconds,
            estimate,
            isa: Some(prep.isa()),
            stats: None,
            report: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use gpu_sim::device::a100_80g;
    use nm_core::pattern::NmConfig;
    use nm_core::prune::PrunePolicy;
    use nm_core::spmm::spmm_reference;

    #[test]
    fn backend_names_round_trip() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::from_name(kind.name()).unwrap(), kind);
            assert_eq!(kind.instantiate().kind(), kind);
            assert!(!kind.to_string().is_empty());
        }
        assert!(BackendKind::from_name("tpu").is_err());
    }

    #[test]
    fn every_backend_matches_the_reference() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(dev.clone()).plan(96, 256, 192, cfg).unwrap();
        let a = MatrixF32::random(96, 192, 11);
        let b = MatrixF32::random(192, 256, 12);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 13 }).unwrap();
        let expect = spmm_reference(&a, &sb);
        for kind in BackendKind::all() {
            let run = kind.instantiate().run(&dev, &plan, &a, &sb).unwrap();
            assert!(
                run.c.allclose(&expect, 1e-3, 1e-4),
                "{kind}: max diff {}",
                run.c.max_abs_diff(&expect)
            );
            assert!(run.wall_seconds > 0.0, "{kind}: wall clock must tick");
            assert_eq!(run.backend, kind);
            // The simulator and the codegen interpreter both account
            // events and produce a timing-model report; the native CPU
            // ladder does neither.
            let accounted = kind == BackendKind::Sim || kind == BackendKind::Codegen;
            assert_eq!(run.stats.is_some(), accounted);
            assert_eq!(run.report.is_some(), accounted);
            // The CPU backend reports which micro-kernel ISA ran; the
            // simulator has none. Whatever was selected must be a
            // host-supported ISA — dispatch can never name an ISA the
            // host cannot execute.
            assert_eq!(run.isa.is_some(), kind != BackendKind::Sim, "{kind}");
            if let Some(isa) = run.isa {
                assert!(isa.supported(), "{kind}: selected ISA must run here");
            }
            assert!(run.estimate.is_some(), "{kind}: NM estimates exist here");
            assert!(run.gflops(2.0 * 96.0 * 256.0 * 48.0) > 0.0);
        }
    }

    #[test]
    fn prepared_state_is_reusable_across_runs() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(dev.clone()).plan(64, 128, 128, cfg).unwrap();
        let b = MatrixF32::random(128, 128, 21);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        for kind in BackendKind::all() {
            let backend = kind.instantiate();
            let state = backend.prepare(&dev, &plan, &sb).unwrap();
            for seed in 0..3u64 {
                let a = MatrixF32::random(64, 128, 30 + seed);
                let run = backend.run_prepared(&dev, &plan, &*state, &a, &sb).unwrap();
                let expect = spmm_reference(&a, &sb);
                assert!(
                    run.c.allclose(&expect, 1e-3, 1e-4),
                    "{kind} seed {seed}: max diff {}",
                    run.c.max_abs_diff(&expect)
                );
            }
            // The state's ISA report matches the backend family.
            assert_eq!(state.isa().is_some(), kind != BackendKind::Sim, "{kind}");
        }
    }

    #[test]
    fn foreign_prepared_state_is_a_structured_error() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(dev.clone()).plan(64, 128, 128, cfg).unwrap();
        let a = MatrixF32::random(64, 128, 1);
        let b = MatrixF32::random(128, 128, 2);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();

        let sim = SimBackend;
        let cpu = CpuBackend::new(NmVersion::V3);
        let sim_state = sim.prepare(&dev, &plan, &sb).unwrap();
        let cpu_state = cpu.prepare(&dev, &plan, &sb).unwrap();

        // Crossing the states over must fail structurally, not compute.
        let err = cpu
            .run_prepared(&dev, &plan, &*sim_state, &a, &sb)
            .unwrap_err();
        assert!(matches!(err, NmError::InvalidConfig { .. }), "{err}");
        let err = sim
            .run_prepared(&dev, &plan, &*cpu_state, &a, &sb)
            .unwrap_err();
        assert!(matches!(err, NmError::InvalidConfig { .. }), "{err}");

        // So must handing a V3 preparation to a V1 backend.
        let err = CpuBackend::new(NmVersion::V1)
            .run_prepared(&dev, &plan, &*cpu_state, &a, &sb)
            .unwrap_err();
        assert!(matches!(err, NmError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn pinned_kernel_drives_every_preparation() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(dev.clone()).plan(32, 64, 64, cfg).unwrap();
        let b = MatrixF32::random(64, 64, 3);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let backend = CpuBackend::with_kernel(NmVersion::V2, MicroKernel::scalar());
        let state = backend.prepare(&dev, &plan, &sb).unwrap();
        assert_eq!(state.isa(), Some(Isa::Scalar));
        let a = MatrixF32::random(32, 64, 4);
        let run = backend.run_prepared(&dev, &plan, &*state, &a, &sb).unwrap();
        assert_eq!(run.isa, Some(Isa::Scalar));
        assert!(run.c.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
    }

    #[test]
    fn plan_storage_lane_drives_the_staged_format() {
        use crate::plan::ShapeClass;
        use nm_core::sliced::{SlicedLayout, StorageFormat};
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let b = MatrixF32::random(128, 128, 5);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let a = MatrixF32::random(1, 128, 6);
        let expect = spmm_reference(&a, &sb);
        let backend = CpuBackend::new(NmVersion::V3);

        // A sliced-pinned plan stages SELL-C-σ.
        let pin = StorageFormat::Sliced(SlicedLayout::DEFAULT);
        let pinned = Planner::new(dev.clone())
            .plan_stored(ShapeClass::Decode(1), pin, 1, 128, 128, cfg)
            .unwrap();
        let state = backend.prepare(&dev, &pinned, &sb).unwrap();
        let prep = state.as_any().downcast_ref::<CpuPrepared>().unwrap();
        assert_eq!(prep.format(), pin);
        let run = backend
            .run_prepared(&dev, &pinned, &*state, &a, &sb)
            .unwrap();
        assert!(run.c.allclose(&expect, 1e-3, 1e-4));

        // Measured evidence for this ladder step carries the format too.
        let auto = Planner::new(dev.clone())
            .plan_as(ShapeClass::Decode(1), 1, 128, 128, cfg)
            .unwrap();
        let spec = crate::measure::MeasureSpec {
            warmup_iters: 0,
            timed_iters: 1,
            tiling_variants: false,
        };
        let outcome = crate::measure::measure(&pinned, &sb, 1, None, spec).unwrap();
        assert_eq!(outcome.best.storage, pin, "pin restricts candidates");
        let host = crate::plan::PlanHost {
            isa: MicroKernel::select().unwrap().isa().name().to_string(),
            threads: rayon::current_num_threads(),
        };
        let mut choice = outcome.best;
        choice.ladder_version = NmVersion::V3;
        let measured = auto.with_measured(host, choice).unwrap();
        let state = backend.prepare(&dev, &measured, &sb).unwrap();
        let prep = state.as_any().downcast_ref::<CpuPrepared>().unwrap();
        assert_eq!(prep.format(), pin, "measured storage wins on the auto lane");
        // A different ladder step ignores the foreign evidence and stays
        // on the key's lane.
        let v1 = CpuBackend::new(NmVersion::V1);
        let state = v1.prepare(&dev, &measured, &sb).unwrap();
        let prep = state.as_any().downcast_ref::<CpuPrepared>().unwrap();
        assert_eq!(prep.format(), StorageFormat::RowMajor);
    }

    #[test]
    fn cpu_backend_rejects_unalignable_blocking_with_structured_error() {
        // L = 48 divides no autotune candidate, so the plan falls back to
        // the Para_Init_Table preset whose ns is not a multiple of L; the
        // CPU backend must refuse with InvalidBlocking, not panic.
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 16, 48).unwrap();
        let plan = Planner::new(dev.clone()).plan(64, 96, 96, cfg).unwrap();
        assert!(!plan.params.ns.is_multiple_of(48), "setup: preset expected");
        let a = MatrixF32::random(64, 96, 1);
        let b = MatrixF32::random(96, 96, 2);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let err = CpuBackend::new(NmVersion::V3)
            .run(&dev, &plan, &a, &sb)
            .unwrap_err();
        assert!(matches!(err, NmError::InvalidBlocking { .. }), "{err}");
    }
}
