//! Execution backends: one trait, two ways to run a plan.
//!
//! A [`Plan`](crate::plan::Plan) records *what* to run — kernel family and
//! auto-tuned blocking. [`ExecBackend`] decides *where*:
//!
//! * [`SimBackend`] — the original path: the functional face of the
//!   simulated GPU kernels (tile fills into emulated shared memory,
//!   index-directed gathers), producing event counts and a timing-model
//!   report alongside the numerics.
//! * [`CpuBackend`] — the native path: the paper's V1→V3 ladder executed
//!   for real on the host ([`crate::cpu`]), with the plan's blocking
//!   parameters driving the CPU tile sizes.
//!
//! Every backend returns an [`ExecRun`]: the computed matrix, the
//! **measured wall-clock time** of the execution, and the plan's simulated
//! estimate for the same kernel family, so callers can put model time and
//! real time side by side. [`BackendKind`] is the cheap copyable selector
//! [`Engine`](crate::engine::Engine) takes; [`BackendKind::instantiate`]
//! turns it into a boxed backend for dynamic dispatch.

use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_core::sparse::NmSparseMatrix;

use crate::cpu::{spmm_cpu_prepared, CpuPrepared, CpuTiling};
use crate::nm::{NmSpmmKernel, NmVersion};
use crate::nmsparse::NmSparseKernel;
use crate::plan::{EstimateSummary, KernelChoice, Plan};
use crate::simd::Isa;
use crate::sputnik::SputnikKernel;
use crate::SimRun;
use gpu_sim::device::DeviceConfig;
use std::time::Instant;

/// Which execution backend to run a plan through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The simulated GPU kernels (functional face + timing model).
    Sim,
    /// The native CPU ladder at the given optimization step.
    Cpu(NmVersion),
}

impl BackendKind {
    /// Every backend, simulator first, then the CPU ladder in step order.
    pub fn all() -> [BackendKind; 4] {
        [
            BackendKind::Sim,
            BackendKind::Cpu(NmVersion::V1),
            BackendKind::Cpu(NmVersion::V2),
            BackendKind::Cpu(NmVersion::V3),
        ]
    }

    /// Stable identifier (`sim`, `cpu_v1`, `cpu_v2`, `cpu_v3`).
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Cpu(NmVersion::V1) => "cpu_v1",
            BackendKind::Cpu(NmVersion::V2) => "cpu_v2",
            BackendKind::Cpu(NmVersion::V3) => "cpu_v3",
        }
    }

    /// Inverse of [`BackendKind::name`].
    pub fn from_name(name: &str) -> Result<Self> {
        Self::all()
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| NmError::Persist {
                reason: format!("unknown backend `{name}`"),
            })
    }

    /// Box the backend this selector names.
    pub fn instantiate(&self) -> Box<dyn ExecBackend> {
        match self {
            BackendKind::Sim => Box::new(SimBackend),
            BackendKind::Cpu(v) => Box::new(CpuBackend::new(*v)),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Sim => "simulated GPU",
            BackendKind::Cpu(NmVersion::V1) => "native CPU V1",
            BackendKind::Cpu(NmVersion::V2) => "native CPU V2",
            BackendKind::Cpu(NmVersion::V3) => "native CPU V3",
        })
    }
}

/// The result of executing a plan through a backend.
#[derive(Debug, Clone)]
pub struct ExecRun {
    /// The computed matrix `C[m][n]`.
    pub c: MatrixF32,
    /// The backend that produced it.
    pub backend: BackendKind,
    /// Measured wall-clock seconds of the execution (host time; for the
    /// simulator this is the cost of the functional emulation, not the
    /// modeled GPU latency — that lives in `estimate`). The CPU backend's
    /// offline preparation ([`crate::cpu::CpuPrepared`]) happens before
    /// the clock starts, so this covers the online kernel only.
    pub wall_seconds: f64,
    /// The plan's simulated estimate for the kernel family this backend
    /// ran (`None` when the plan carries no estimate for it).
    pub estimate: Option<EstimateSummary>,
    /// The instruction set the micro-kernel executed with; only the
    /// [`CpuBackend`] selects one (runtime dispatch, see
    /// [`crate::simd::MicroKernel`]) — the simulator has no host ISA to
    /// report.
    pub isa: Option<Isa>,
    /// Simulated event counts; only the [`SimBackend`] produces them.
    pub stats: Option<gpu_sim::KernelStats>,
    /// The simulated timing-model report; only the [`SimBackend`]
    /// produces one.
    pub report: Option<gpu_sim::LaunchReport>,
}

impl ExecRun {
    /// Measured useful throughput in GFLOP/s, given the problem's useful
    /// flop count (`2·m·n·w`).
    pub fn gflops(&self, useful_flops: f64) -> f64 {
        useful_flops / self.wall_seconds / 1e9
    }
}

/// A way to execute a resolved plan on concrete operands.
pub trait ExecBackend {
    /// The selector this backend answers to.
    fn kind(&self) -> BackendKind;

    /// Execute `C = A ⊛ (B′, D)` under `plan` on `dev`.
    ///
    /// Implementations must return structured errors (never panic) when the
    /// plan's blocking cannot drive this backend.
    fn run(
        &self,
        dev: &DeviceConfig,
        plan: &Plan,
        a: &MatrixF32,
        sb: &NmSparseMatrix,
    ) -> Result<ExecRun>;
}

/// The simulated-GPU backend (the pre-existing `Engine::execute` path).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl ExecBackend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    /// Kernels without a functional face fall back to NM-SpMM V3 with the
    /// plan's tuned blocking: `Dense` (needs a dense `B` operand) and
    /// `SparseTc` (analytic model only) — the numerics are identical, only
    /// the event counts differ from the analytic winner.
    fn run(
        &self,
        dev: &DeviceConfig,
        plan: &Plan,
        a: &MatrixF32,
        sb: &NmSparseMatrix,
    ) -> Result<ExecRun> {
        // The family actually executed — for `Dense`/`SparseTc` plans the
        // fallback runs NM-SpMM V3, and `estimate` must describe the same
        // family the wall clock measured. Everything below dispatches on
        // `executed` only.
        let has_functional_face =
            matches!(plan.choice, KernelChoice::NmSparse | KernelChoice::Sputnik)
                || plan.choice.nm_version().is_some();
        let executed = if has_functional_face {
            plan.choice
        } else {
            KernelChoice::NmV3
        };
        let t0 = Instant::now();
        let SimRun { c, stats, report } = match executed {
            KernelChoice::NmSparse => NmSparseKernel.run(dev, a, sb),
            KernelChoice::Sputnik => SputnikKernel.run(dev, a, sb),
            choice => {
                let version = choice.nm_version().unwrap_or(NmVersion::V3);
                NmSpmmKernel::new(version, plan.params).run(dev, a, sb)
            }
        }?;
        let wall_seconds = t0.elapsed().as_secs_f64();
        Ok(ExecRun {
            c,
            backend: BackendKind::Sim,
            wall_seconds,
            estimate: plan.estimates.get(executed),
            isa: None,
            stats: Some(stats),
            report: Some(report),
        })
    }
}

/// The native CPU backend at one step of the V1→V3 ladder.
#[derive(Debug, Clone, Copy)]
pub struct CpuBackend {
    version: NmVersion,
}

impl CpuBackend {
    /// Backend for one ladder step.
    pub fn new(version: NmVersion) -> Self {
        Self { version }
    }

    /// The ladder step this backend executes.
    pub fn version(&self) -> NmVersion {
        self.version
    }
}

impl ExecBackend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu(self.version)
    }

    /// Executes the ladder natively with tile sizes derived from the plan's
    /// auto-tuned blocking ([`CpuTiling::derive`]) and the micro-kernel
    /// selected once by [`crate::simd::MicroKernel::select`] (the chosen
    /// ISA is reported in [`ExecRun::isa`]). A blocking that cannot
    /// drive the CPU tiles — e.g. `ns` not a multiple of the operand's
    /// vector length `L` — is a structured [`NmError::InvalidBlocking`].
    ///
    /// The offline staging ([`CpuPrepared`]) runs before the wall clock
    /// starts, so `wall_seconds` measures the online kernel only — the
    /// same accounting the paper uses for its `col_info` pre-processing.
    fn run(
        &self,
        _dev: &DeviceConfig,
        plan: &Plan,
        a: &MatrixF32,
        sb: &NmSparseMatrix,
    ) -> Result<ExecRun> {
        let tiling = CpuTiling::derive(plan.params, sb.cfg(), sb.k())?;
        let prep = CpuPrepared::new(self.version, sb, tiling)?;
        let estimate = plan.estimates.get(match self.version {
            NmVersion::V1 => KernelChoice::NmV1,
            NmVersion::V2 => KernelChoice::NmV2,
            NmVersion::V3 => KernelChoice::NmV3,
        });
        let t0 = Instant::now();
        let c = spmm_cpu_prepared(a, sb, &prep)?;
        let wall_seconds = t0.elapsed().as_secs_f64();
        Ok(ExecRun {
            c,
            backend: BackendKind::Cpu(self.version),
            wall_seconds,
            estimate,
            isa: Some(prep.isa()),
            stats: None,
            report: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use gpu_sim::device::a100_80g;
    use nm_core::pattern::NmConfig;
    use nm_core::prune::PrunePolicy;
    use nm_core::spmm::spmm_reference;

    #[test]
    fn backend_names_round_trip() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::from_name(kind.name()).unwrap(), kind);
            assert_eq!(kind.instantiate().kind(), kind);
            assert!(!kind.to_string().is_empty());
        }
        assert!(BackendKind::from_name("tpu").is_err());
    }

    #[test]
    fn every_backend_matches_the_reference() {
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 8, 32).unwrap();
        let plan = Planner::new(dev.clone()).plan(96, 256, 192, cfg).unwrap();
        let a = MatrixF32::random(96, 192, 11);
        let b = MatrixF32::random(192, 256, 12);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 13 }).unwrap();
        let expect = spmm_reference(&a, &sb);
        for kind in BackendKind::all() {
            let run = kind.instantiate().run(&dev, &plan, &a, &sb).unwrap();
            assert!(
                run.c.allclose(&expect, 1e-3, 1e-4),
                "{kind}: max diff {}",
                run.c.max_abs_diff(&expect)
            );
            assert!(run.wall_seconds > 0.0, "{kind}: wall clock must tick");
            assert_eq!(run.backend, kind);
            assert_eq!(run.stats.is_some(), kind == BackendKind::Sim);
            assert_eq!(run.report.is_some(), kind == BackendKind::Sim);
            // The CPU backend reports which micro-kernel ISA ran; the
            // simulator has none. Whatever was selected must be a
            // host-supported ISA — dispatch can never name an ISA the
            // host cannot execute.
            assert_eq!(run.isa.is_some(), kind != BackendKind::Sim, "{kind}");
            if let Some(isa) = run.isa {
                assert!(isa.supported(), "{kind}: selected ISA must run here");
            }
            assert!(run.estimate.is_some(), "{kind}: NM estimates exist here");
            assert!(run.gflops(2.0 * 96.0 * 256.0 * 48.0) > 0.0);
        }
    }

    #[test]
    fn cpu_backend_rejects_unalignable_blocking_with_structured_error() {
        // L = 48 divides no autotune candidate, so the plan falls back to
        // the Para_Init_Table preset whose ns is not a multiple of L; the
        // CPU backend must refuse with InvalidBlocking, not panic.
        let dev = a100_80g();
        let cfg = NmConfig::new(2, 16, 48).unwrap();
        let plan = Planner::new(dev.clone()).plan(64, 96, 96, cfg).unwrap();
        assert!(!plan.params.ns.is_multiple_of(48), "setup: preset expected");
        let a = MatrixF32::random(64, 96, 1);
        let b = MatrixF32::random(96, 96, 2);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let err = CpuBackend::new(NmVersion::V3)
            .run(&dev, &plan, &a, &sb)
            .unwrap_err();
        assert!(matches!(err, NmError::InvalidBlocking { .. }), "{err}");
    }
}
