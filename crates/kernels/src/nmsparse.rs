//! The nmSPARSE baseline (Lin et al., the state of the art the paper
//! compares against).
//!
//! Modeled after nmSPARSE's vector-wise (VW) kernel as the paper describes
//! its shortcomings (§II-B, §IV-E): it supports arbitrary N:M ratios on
//! CUDA cores, but
//!
//! * iterates one pruning window at a time (`ks = M`), so its main loop is
//!   short and latency-exposed and its block-level arithmetic intensity is
//!   far below what the shared-memory budget allows ("does not fully
//!   exploit the locality introduced by N:M sparsity"),
//! * always loads the full `As` working set (no packing) and has no
//!   sparsity-aware path ("lacks … optimization for different sparsity
//!   levels"),
//! * uses scalar (LDS.32) fragment loads without the broadcast layout, so
//!   its inner kernel is shared-memory throughput limited, with 2-way bank
//!   conflicts on the gathered `A` fragments (no padding).
//!
//! The result lands in the 49-73%-of-peak band of the paper's Fig. 10.

use crate::common::{grid_dims, scatter_tile, sectors_runs};
use crate::SimRun;
use gpu_sim::device::DeviceConfig;
use gpu_sim::l2::BlockTraffic;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::stats::KernelStats;
use gpu_sim::timing::{estimate as sim_estimate, KernelProfile, LaunchReport, PipelineMode};
use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_core::pattern::NmConfig;
use nm_core::sparse::NmSparseMatrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Fixed nmSPARSE-style blocking.
const MS: usize = 32;
const NS: usize = 64;
const MT: usize = 4;
const NT: usize = 4;

/// The nmSPARSE VW baseline kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NmSparseKernel;

impl NmSparseKernel {
    /// Analytic estimate without data.
    pub fn estimate(
        &self,
        dev: &DeviceConfig,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
    ) -> Result<LaunchReport> {
        let (profile, _) = self.build_profile(dev, m, n, k, cfg);
        sim_estimate(dev, &profile).map_err(|e| NmError::InvalidBlocking {
            reason: e.to_string(),
        })
    }

    /// Functional run through the window-at-a-time data path.
    pub fn run(&self, dev: &DeviceConfig, a: &MatrixF32, sb: &NmSparseMatrix) -> Result<SimRun> {
        let (m, k) = a.shape();
        if k != sb.k() {
            return Err(NmError::DimensionMismatch {
                expected: format!("A with k = {}", sb.k()),
                found: format!("A with k = {k}"),
            });
        }
        let n = sb.cols();
        let cfg = sb.cfg();
        let (profile, stats) = self.build_profile(dev, m, n, k, cfg);
        let report = sim_estimate(dev, &profile).map_err(|e| NmError::InvalidBlocking {
            reason: e.to_string(),
        })?;

        let (gy, gx) = grid_dims(m, n, MS, NS);
        let tiles: Vec<(usize, usize, Vec<f32>)> = (0..gy * gx)
            .into_par_iter()
            .map(|idx| {
                let (bi, bj) = (idx / gx, idx % gx);
                (bi, bj, compute_block(a, sb, bi, bj))
            })
            .collect();

        let mut c = MatrixF32::zeros(m, n);
        let cbuf = c.as_mut_slice();
        for (bi, bj, tile) in tiles {
            let row0 = bi * MS;
            let col0 = bj * NS;
            scatter_tile(
                cbuf,
                n,
                &tile,
                NS,
                row0,
                col0,
                MS.min(m - row0),
                NS.min(n - col0),
            );
        }
        Ok(SimRun { c, stats, report })
    }

    fn build_profile(
        &self,
        dev: &DeviceConfig,
        m: usize,
        n: usize,
        k: usize,
        cfg: NmConfig,
    ) -> (KernelProfile, KernelStats) {
        let (n_keep, m_win) = (cfg.n, cfg.m);
        let qs = NS.div_ceil(cfg.l).max(1);
        let threads = MS * NS / (MT * NT); // 128
        let warps = threads / 32;
        let w = cfg.compressed_rows(k);
        let iters = k.div_ceil(m_win).max(1); // one pruning window per trip

        // Per-iteration tiles: full A window (no packing), N rows of B'.
        let a_bytes = (m_win * MS * 4) as u64;
        let b_bytes = (n_keep * NS * 4) as u64;
        let d_bytes = (n_keep * qs) as u64;
        let fill_bytes = a_bytes + b_bytes + d_bytes;

        // Inner loop: ws = N steps; scalar loads, no broadcast — every lane's
        // element is a separate word, (mt+nt) words per lane per step.
        let inner_bytes = (n_keep * warps * 32 * (MT + NT) * 4) as u64;
        // 2-way conflicts on the gathered At fragments (~half the traffic
        // replays once).
        let replay_bytes = inner_bytes / 2;
        let lds_cycles =
            (fill_bytes + inner_bytes + replay_bytes) as f64 / dev.smem_bytes_per_clock;

        let ffma_iter = (MS * NS * n_keep) as u64;
        let smem = 4 * (m_win * MS + n_keep * NS) + n_keep * qs; // single buffered
        let resources = BlockResources {
            threads,
            regs_per_thread: MT * NT + MT + NT + 26,
            smem_bytes: smem,
        };

        let grid = grid_dims(m, n, MS, NS);
        let blocks = (grid.0 * grid.1) as u64;
        let stg = (MS * NS * 4) as u64;

        let profile = KernelProfile {
            name: format!("nmSPARSE VW [{MS}x{NS}]"),
            grid,
            resources,
            iters_per_block: iters,
            comp_cycles_per_iter: ffma_iter as f64 / dev.fma_per_clock_per_sm(),
            lds_cycles_per_iter: lds_cycles,
            g2s_per_iter: BlockTraffic {
                a_bytes: a_bytes as f64,
                bcol_bytes: (b_bytes + d_bytes) as f64,
                private_bytes: 0.0,
            },
            dependent_load_chains: 0.0,
            pipeline: PipelineMode::Serial,
            inner_double_buffer: false,
            stg_bytes_per_block: stg as f64,
            useful_flops: 2.0 * m as f64 * n as f64 * w as f64,
        };
        let iters_u = iters as u64;
        let stats = KernelStats {
            ffma: blocks * iters_u * ffma_iter,
            ldg_bytes_a: blocks * iters_u * a_bytes,
            ldg_bytes_b: blocks * iters_u * b_bytes,
            ldg_bytes_d: blocks * iters_u * d_bytes,
            stg_bytes: blocks * stg,
            ldg_sectors: blocks
                * iters_u
                * (sectors_runs(m_win, MS * 4) + sectors_runs(n_keep, NS * 4) + 1),
            lds_requests: blocks * iters_u * (fill_bytes + inner_bytes) / 128,
            lds_replays: blocks * iters_u * replay_bytes / 128,
            sts_requests: blocks * iters_u * fill_bytes / 128,
            lds_bytes: blocks * iters_u * inner_bytes,
            sts_bytes: blocks * iters_u * fill_bytes,
            barriers: blocks * iters_u * 2,
            blocks,
            main_loop_iters: blocks * iters_u,
            ..Default::default()
        };
        (profile, stats)
    }
}

/// Direct per-block evaluation of Eq. (1), window at a time — numerically
/// identical to NM-SpMM, scheduled like nmSPARSE.
fn compute_block(a: &MatrixF32, sb: &NmSparseMatrix, bi: usize, bj: usize) -> Vec<f32> {
    let cfg = sb.cfg();
    let (m, k) = a.shape();
    let n = sb.cols();
    let (w, q) = (sb.w(), sb.q());
    let row0 = bi * MS;
    let col0 = bj * NS;
    let rows_eff = MS.min(m - row0);
    let cols_eff = NS.min(n - col0);
    let values = sb.values();
    let d = sb.indices();
    let qs = NS.div_ceil(cfg.l);

    let mut cs = vec![0f32; MS * NS];
    for u in 0..w {
        let base = u / cfg.n * cfg.m;
        let b_row = values.row(u);
        for jw in 0..qs {
            let jq = bj * qs + jw;
            if jq >= q {
                break;
            }
            let src = base + d.get(u, jq) as usize;
            if src >= k {
                continue;
            }
            let j_lo = jw * cfg.l;
            if j_lo >= cols_eff {
                break;
            }
            let j_hi = ((jw + 1) * cfg.l).min(cols_eff);
            let b_seg = &b_row[col0 + j_lo..col0 + j_hi];
            for i in 0..rows_eff {
                let av = a.get(row0 + i, src);
                if av == 0.0 {
                    continue;
                }
                let c_seg = &mut cs[i * NS + j_lo..i * NS + j_hi];
                for (cv, bv) in c_seg.iter_mut().zip(b_seg) {
                    *cv += av * bv;
                }
            }
        }
    }
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nm::{NmSpmmKernel, NmVersion};
    use crate::params::BlockingParams;
    use gpu_sim::device::a100_80g;
    use nm_core::prune::PrunePolicy;
    use nm_core::spmm::spmm_reference;

    #[test]
    fn functional_matches_reference() {
        let dev = a100_80g();
        let cfg = NmConfig::new(4, 16, 32).unwrap();
        let a = MatrixF32::random(96, 200, 1);
        let bd = MatrixF32::random(200, 160, 2);
        let sb = NmSparseMatrix::prune(&bd, cfg, PrunePolicy::Random { seed: 3 }).unwrap();
        let run = NmSparseKernel.run(&dev, &a, &sb).unwrap();
        let expect = spmm_reference(&a, &sb);
        assert!(
            run.c.allclose(&expect, 1e-3, 1e-4),
            "max diff {}",
            run.c.max_abs_diff(&expect)
        );
    }

    #[test]
    fn slower_than_nm_spmm_v3() {
        // The paper's headline: NM-SpMM is 1.2-1.8x faster than nmSPARSE.
        let dev = a100_80g();
        for cfg in [
            NmConfig::new(8, 16, 32).unwrap(),
            NmConfig::new(2, 16, 32).unwrap(),
        ] {
            let base = NmSparseKernel
                .estimate(&dev, 4096, 4096, 4096, cfg)
                .unwrap();
            let ours = NmSpmmKernel::new(NmVersion::V3, BlockingParams::large())
                .estimate(&dev, 4096, 4096, 4096, cfg, None)
                .unwrap();
            assert!(
                ours.seconds < base.seconds,
                "{cfg}: NM-SpMM {} must beat nmSPARSE {}",
                ours.seconds,
                base.seconds
            );
        }
    }

    #[test]
    fn efficiency_in_the_fig10_band() {
        // nmSPARSE reaches 49-73% of peak on the A100 across the four
        // levels; allow a generous band around it.
        let dev = a100_80g();
        for cfg in [
            NmConfig::new(8, 16, 32).unwrap(),
            NmConfig::new(6, 16, 32).unwrap(),
            NmConfig::new(4, 16, 32).unwrap(),
            NmConfig::new(2, 16, 32).unwrap(),
        ] {
            let rep = NmSparseKernel
                .estimate(&dev, 4096, 4096, 4096, cfg)
                .unwrap();
            assert!(
                (0.3..0.85).contains(&rep.efficiency),
                "{cfg}: nmSPARSE efficiency {} outside the expected band",
                rep.efficiency
            );
        }
    }

    #[test]
    fn has_bank_conflict_replays() {
        let dev = a100_80g();
        let cfg = NmConfig::new(4, 16, 32).unwrap();
        let a = MatrixF32::random(64, 64, 5);
        let bd = MatrixF32::random(64, 64, 6);
        let sb = NmSparseMatrix::prune_magnitude(&bd, cfg).unwrap();
        let run = NmSparseKernel.run(&dev, &a, &sb).unwrap();
        assert!(run.stats.lds_replays > 0, "baseline must model conflicts");
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let dev = a100_80g();
        let a = MatrixF32::random(32, 32, 1);
        let bd = MatrixF32::random(64, 64, 2);
        let sb = NmSparseMatrix::prune_magnitude(&bd, NmConfig::new(2, 4, 4).unwrap()).unwrap();
        assert!(NmSparseKernel.run(&dev, &a, &sb).is_err());
    }
}
