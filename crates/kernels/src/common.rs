//! Small helpers shared by every simulated kernel.

use gpu_sim::mem::SECTOR_BYTES;

/// Grid dimensions `(grid_y, grid_x)` for an `m × n` output with
/// `ms × ns` blocks.
pub fn grid_dims(m: usize, n: usize, ms: usize, ns: usize) -> (usize, usize) {
    (m.div_ceil(ms), n.div_ceil(ns))
}

/// 32-byte sectors touched by a contiguous `bytes`-long access.
pub fn sectors_contig(bytes: usize) -> u64 {
    bytes.div_ceil(SECTOR_BYTES) as u64
}

/// Sectors for `count` separate contiguous runs of `run_bytes` each
/// (e.g. `count` tile columns of a k-major matrix).
pub fn sectors_runs(count: usize, run_bytes: usize) -> u64 {
    count as u64 * sectors_contig(run_bytes)
}

/// Scatter a block's `rows_eff × cols_eff` tile (stored row-major with
/// stride `tile_stride`) into the output buffer.
#[allow(clippy::too_many_arguments)] // mirrors the CUDA epilogue signature
pub fn scatter_tile(
    c: &mut [f32],
    n: usize,
    tile: &[f32],
    tile_stride: usize,
    row0: usize,
    col0: usize,
    rows_eff: usize,
    cols_eff: usize,
) {
    for r in 0..rows_eff {
        let src = &tile[r * tile_stride..r * tile_stride + cols_eff];
        let dst = &mut c[(row0 + r) * n + col0..(row0 + r) * n + col0 + cols_eff];
        dst.copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dims_round_up() {
        assert_eq!(grid_dims(4096, 4096, 64, 128), (64, 32));
        assert_eq!(grid_dims(100, 100, 64, 128), (2, 1));
        assert_eq!(grid_dims(64, 128, 64, 128), (1, 1));
    }

    #[test]
    fn sector_math() {
        assert_eq!(sectors_contig(1), 1);
        assert_eq!(sectors_contig(32), 1);
        assert_eq!(sectors_contig(33), 2);
        assert_eq!(sectors_runs(4, 256), 32);
    }

    #[test]
    fn scatter_places_tile() {
        let mut c = vec![0.0f32; 4 * 4];
        let tile = vec![1.0, 2.0, 9.0, 3.0, 4.0, 9.0]; // stride 3, 2x2 used
        scatter_tile(&mut c, 4, &tile, 3, 1, 2, 2, 2);
        assert_eq!(c[4 + 2], 1.0);
        assert_eq!(c[4 + 3], 2.0);
        assert_eq!(c[2 * 4 + 2], 3.0);
        assert_eq!(c[2 * 4 + 3], 4.0);
        assert_eq!(c[0], 0.0);
    }
}
