//! Pattern inspection: structural statistics of a compressed matrix.
//!
//! Answers the questions the performance model asks of a *specific* pruned
//! matrix (rather than of the random-pattern expectation): how are offsets
//! distributed, how much do neighbouring windows' selections overlap, and
//! what packing ratio will a given blocking actually achieve. Useful for
//! diagnosing why a particular network prunes well or badly.

use crate::colinfo::preprocess;
use crate::sparse::NmSparseMatrix;
use serde::{Deserialize, Serialize};

/// Structural statistics of one compressed matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternStats {
    /// Histogram of selected offsets (length `M`): how often each
    /// within-window position survives pruning.
    pub offset_histogram: Vec<u64>,
    /// Mean Jaccard similarity of the offset sets selected by horizontally
    /// adjacent pruning windows (1.0 = identical patterns — the packing
    /// best case; `N/M`-ish = independent).
    pub adjacent_window_jaccard: f64,
    /// Fraction of windows whose selection equals the row-uniform
    /// (identical-across-columns) pattern of their k-window.
    pub uniform_window_fraction: f64,
    /// Total selections counted.
    pub selections: u64,
}

impl PatternStats {
    /// χ²-style imbalance of the offset histogram: 0 = perfectly uniform.
    pub fn offset_imbalance(&self) -> f64 {
        let total: u64 = self.offset_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let expect = total as f64 / self.offset_histogram.len() as f64;
        self.offset_histogram
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum::<f64>()
            / total as f64
    }
}

/// Compute [`PatternStats`] for a compressed matrix.
pub fn pattern_stats(sb: &NmSparseMatrix) -> PatternStats {
    let cfg = sb.cfg();
    let d = sb.indices();
    let (w, q) = (sb.w(), sb.q());
    let windows_k = w / cfg.n.max(1);

    let mut histogram = vec![0u64; cfg.m];
    let mut jaccard_sum = 0.0f64;
    let mut jaccard_n = 0u64;
    let mut uniform = 0u64;

    for wi in 0..windows_k {
        let set_of =
            |j: usize| -> Vec<u8> { (0..cfg.n).map(|r| d.get(wi * cfg.n + r, j)).collect() };
        let first = set_of(0);
        let mut all_same = true;
        for j in 0..q {
            let s = set_of(j);
            for &off in &s {
                histogram[off as usize] += 1;
            }
            if j > 0 {
                let prev = set_of(j - 1);
                let inter = s.iter().filter(|o| prev.contains(o)).count();
                let union = 2 * cfg.n - inter;
                jaccard_sum += inter as f64 / union as f64;
                jaccard_n += 1;
                if s != first {
                    all_same = false;
                }
            }
        }
        if all_same && q > 0 {
            uniform += 1;
        }
    }

    PatternStats {
        offset_histogram: histogram,
        adjacent_window_jaccard: if jaccard_n > 0 {
            jaccard_sum / jaccard_n as f64
        } else {
            1.0
        },
        uniform_window_fraction: if windows_k > 0 {
            uniform as f64 / windows_k as f64
        } else {
            0.0
        },
        selections: (w * q) as u64,
    }
}

/// Measured packing ratio this matrix achieves under a concrete blocking —
/// the ground truth the expected-union model approximates.
pub fn measured_packing_ratio(sb: &NmSparseMatrix, ks: usize, ns: usize) -> Option<f64> {
    preprocess(sb, ks, ns)
        .ok()
        .map(|l| l.col_info.mean_packing_ratio())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixF32;
    use crate::pattern::NmConfig;
    use crate::prune::PrunePolicy;

    fn sparse(policy: PrunePolicy) -> NmSparseMatrix {
        let cfg = NmConfig::new(2, 16, 8).unwrap();
        let b = MatrixF32::random(64, 64, 5);
        NmSparseMatrix::prune(&b, cfg, policy).unwrap()
    }

    #[test]
    fn histogram_counts_every_selection() {
        let sb = sparse(PrunePolicy::Random { seed: 1 });
        let stats = pattern_stats(&sb);
        let total: u64 = stats.offset_histogram.iter().sum();
        assert_eq!(total, stats.selections);
        assert_eq!(stats.selections, (sb.w() * sb.q()) as u64);
    }

    #[test]
    fn strided_pattern_is_uniform_and_identical() {
        let sb = sparse(PrunePolicy::Strided);
        let stats = pattern_stats(&sb);
        assert_eq!(stats.adjacent_window_jaccard, 1.0);
        assert_eq!(stats.uniform_window_fraction, 1.0);
        // Offsets 0 and 8 are the only ones used.
        assert!(stats.offset_histogram[0] > 0);
        assert!(stats.offset_histogram[8] > 0);
        assert_eq!(stats.offset_histogram[1], 0);
        assert!(
            stats.offset_imbalance() > 1.0,
            "two spikes = very imbalanced"
        );
    }

    #[test]
    fn random_pattern_is_dissimilar_and_balanced() {
        let sb = sparse(PrunePolicy::Random { seed: 7 });
        let stats = pattern_stats(&sb);
        assert!(
            stats.adjacent_window_jaccard < 0.4,
            "independent selections overlap rarely: {}",
            stats.adjacent_window_jaccard
        );
        assert!(stats.uniform_window_fraction < 0.2);
        assert!(stats.offset_imbalance() < 1.0);
    }

    #[test]
    fn measured_ratio_tracks_pattern_structure() {
        let uniform = measured_packing_ratio(&sparse(PrunePolicy::Strided), 32, 32).unwrap();
        let random =
            measured_packing_ratio(&sparse(PrunePolicy::Random { seed: 9 }), 32, 32).unwrap();
        assert!(
            uniform < random,
            "identical windows must pack tighter: {uniform} !< {random}"
        );
        assert!((uniform - 2.0 / 16.0).abs() < 1e-9, "strided packs to N/M");
    }

    #[test]
    fn invalid_blocking_yields_none() {
        let sb = sparse(PrunePolicy::Magnitude);
        assert!(measured_packing_ratio(&sb, 30, 32).is_none(), "ks % M != 0");
    }
}
