//! The confusion matrix `W` of paper Eq. (2).
//!
//! `W[i][j] = |C′[i][j] − C[i][j]| / (m·n)` quantifies, elementwise, how far
//! the N:M-approximated product `C′` strays from the exact dense product
//! `C`. Summing `W` gives the mean absolute error of the approximation —
//! the quantity the algorithm community trades against the `M/N` speedup.

use crate::matrix::MatrixF32;

/// Paper Eq. (2): elementwise `|c_approx − c_exact| / (m·n)`.
///
/// # Panics
/// Panics when shapes differ.
pub fn confusion_matrix(c_approx: &MatrixF32, c_exact: &MatrixF32) -> MatrixF32 {
    assert_eq!(c_approx.shape(), c_exact.shape(), "shape mismatch");
    let (m, n) = c_approx.shape();
    let scale = 1.0 / (m as f32 * n as f32);
    let data = c_approx
        .as_slice()
        .iter()
        .zip(c_exact.as_slice())
        .map(|(a, e)| (a - e).abs() * scale)
        .collect();
    MatrixF32::from_vec(m, n, data)
}

/// Total confusion `Σ_ij W[i][j]` — the mean absolute elementwise error.
pub fn total_confusion(c_approx: &MatrixF32, c_exact: &MatrixF32) -> f64 {
    assert_eq!(c_approx.shape(), c_exact.shape(), "shape mismatch");
    let (m, n) = c_approx.shape();
    let sum: f64 = c_approx
        .as_slice()
        .iter()
        .zip(c_exact.as_slice())
        .map(|(a, e)| ((a - e).abs()) as f64)
        .sum();
    sum / (m as f64 * n as f64)
}

/// Summary of an approximation experiment: error vs. the dense oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproximationReport {
    /// Mean absolute elementwise error (total confusion).
    pub mean_abs_error: f64,
    /// Relative Frobenius error.
    pub rel_frobenius: f64,
    /// Largest single-element deviation.
    pub max_abs_error: f32,
}

/// Build an [`ApproximationReport`] comparing `c_approx` to `c_exact`.
pub fn report(c_approx: &MatrixF32, c_exact: &MatrixF32) -> ApproximationReport {
    ApproximationReport {
        mean_abs_error: total_confusion(c_approx, c_exact),
        rel_frobenius: c_approx.rel_frobenius_error(c_exact),
        max_abs_error: c_approx.max_abs_diff(c_exact),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::NmConfig;
    use crate::sparse::NmSparseMatrix;
    use crate::spmm::{gemm_reference, spmm_reference};

    #[test]
    fn zero_for_identical_matrices() {
        let c = MatrixF32::random(6, 6, 1);
        let w = confusion_matrix(&c, &c);
        assert!(w.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(total_confusion(&c, &c), 0.0);
    }

    #[test]
    fn known_difference() {
        let a = MatrixF32::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = MatrixF32::from_vec(2, 2, vec![1.0, 2.5, 2.0, 4.0]);
        let w = confusion_matrix(&a, &b);
        // |diff| / 4
        assert_eq!(w.as_slice(), &[0.0, 0.125, 0.25, 0.0]);
        assert!((total_confusion(&a, &b) - (0.5 + 1.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn error_grows_with_sparsity() {
        // Higher sparsity prunes more of B, so the approximation to the
        // dense product degrades monotonically (on random data).
        let a = MatrixF32::random(32, 64, 3);
        let b = MatrixF32::random(64, 32, 4);
        let exact = gemm_reference(&a, &b);
        let mut last = -1.0f64;
        for cfg in NmConfig::paper_levels(4) {
            let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
            let approx = spmm_reference(&a, &sb);
            let err = total_confusion(&approx, &exact);
            assert!(
                err > last,
                "error must grow with sparsity: {err} !> {last} at {cfg}"
            );
            last = err;
        }
    }

    #[test]
    fn report_fields_are_consistent() {
        let a = MatrixF32::random(8, 8, 5);
        let b = MatrixF32::random(8, 8, 6);
        let r = report(&a, &b);
        assert!(r.mean_abs_error > 0.0);
        assert!(r.rel_frobenius > 0.0);
        assert!(r.max_abs_error > 0.0);
        assert!(r.mean_abs_error <= r.max_abs_error as f64);
    }

    #[test]
    fn dense_config_has_zero_confusion() {
        let a = MatrixF32::random(16, 16, 7);
        let b = MatrixF32::random(16, 16, 8);
        let cfg = NmConfig::new(4, 4, 4).unwrap();
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let approx = spmm_reference(&a, &sb);
        let exact = gemm_reference(&a, &b);
        // Reduction order differs (window-by-window), allow f32 noise.
        assert!(total_confusion(&approx, &exact) < 1e-6);
    }
}
