//! Layer-wise N:M scheme selection (Sun et al., DominoSearch — the paper's
//! references \[33\]/\[34\]: "a layer-wise N:M scheme for improved precision
//! over uniform sparsity").
//!
//! Given a set of layers with per-layer pruning-error curves and a global
//! compute budget, choose each layer's `N` (at fixed `M`) so total error is
//! minimized. This is the classic discrete allocation problem; the
//! implementation uses the exact greedy-on-marginal-error algorithm, which
//! is optimal when the per-layer error curves are convex in the number of
//! kept slots (pruning error is, for magnitude pruning: each additional
//! kept vector saves at most as much norm as the previous one).

use crate::matrix::MatrixF32;
use serde::{Deserialize, Serialize};

/// One prunable layer in the allocation problem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Identifier for reporting.
    pub name: String,
    /// Reduction depth `k` (rows of `B`).
    pub k: usize,
    /// Output width `n` (columns of `B`).
    pub n: usize,
    /// Cost of keeping one more slot (FLOPs per kept `N` unit):
    /// `2·m·n·k/M` for batch `m` — precomputed by the caller.
    pub flops_per_slot: f64,
    /// `err[i]` = pruning error if `N = i+1` slots are kept (length `M`);
    /// must be non-increasing in `i`.
    pub err_by_n: Vec<f64>,
}

/// The chosen per-layer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Chosen `N` per layer, parallel to the input slice.
    pub n_per_layer: Vec<usize>,
    /// Total error under the chosen allocation.
    pub total_error: f64,
    /// Total FLOPs consumed.
    pub total_flops: f64,
    /// The budget that was honored.
    pub budget_flops: f64,
}

/// Measure a layer's magnitude-pruning error curve: for each `N ∈ 1..=M`,
/// the squared norm of the weights discarded by keeping the top `N`
/// vectors per window (column-window granularity `L`).
pub fn error_curve(b: &MatrixF32, m_window: usize, l: usize) -> Vec<f64> {
    let (k, n) = b.shape();
    let windows_k = k.div_ceil(m_window);
    let q = n.div_ceil(l);
    // Per (window, column-window): sorted per-vector squared norms.
    let mut curve = vec![0.0f64; m_window];
    for wi in 0..windows_k {
        for wj in 0..q {
            let lo = wj * l;
            let hi = ((wj + 1) * l).min(n);
            let mut norms: Vec<f64> = (0..m_window)
                .map(|t| {
                    let row = wi * m_window + t;
                    if row < k {
                        b.row(row)[lo..hi].iter().map(|v| (*v as f64).powi(2)).sum()
                    } else {
                        0.0
                    }
                })
                .collect();
            norms.sort_by(|a, b| b.total_cmp(a));
            // Keeping N vectors discards norms[N..]: accumulate suffix sums.
            let mut suffix = 0.0;
            for nn in (0..m_window).rev() {
                // err for N = nn+1 discards indices nn+1..
                curve[nn] += suffix;
                suffix += norms[nn];
            }
        }
    }
    curve
}

/// Optimal (greedy-on-marginals) allocation of `N` per layer at fixed `M`,
/// under a total FLOP budget expressed as a fraction of the dense cost.
///
/// Every layer starts at `N = 1`; the slot with the largest error reduction
/// per FLOP is granted repeatedly until the budget is exhausted.
///
/// # Panics
/// Panics if any error curve's length differs from `m_window` or increases
/// with `N`.
pub fn allocate(layers: &[LayerSpec], m_window: usize, budget_fraction: f64) -> Allocation {
    for l in layers {
        assert_eq!(l.err_by_n.len(), m_window, "{}: curve length", l.name);
        assert!(
            l.err_by_n.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "{}: error must not increase with N",
            l.name
        );
    }
    let dense_flops: f64 = layers
        .iter()
        .map(|l| l.flops_per_slot * m_window as f64)
        .sum();
    let budget = dense_flops * budget_fraction.clamp(0.0, 1.0);

    let mut n_per_layer = vec![1usize; layers.len()];
    let mut flops: f64 = layers.iter().map(|l| l.flops_per_slot).sum();
    let mut error: f64 = layers.iter().map(|l| l.err_by_n[0]).sum();

    loop {
        // Best marginal: error drop per FLOP for incrementing one layer's N.
        let mut best: Option<(usize, f64)> = None;
        for (i, l) in layers.iter().enumerate() {
            let n = n_per_layer[i];
            if n >= m_window || flops + l.flops_per_slot > budget {
                continue;
            }
            let drop = l.err_by_n[n - 1] - l.err_by_n[n];
            let ratio = drop / l.flops_per_slot;
            if best.map(|(_, r)| ratio > r).unwrap_or(true) {
                best = Some((i, ratio));
            }
        }
        match best {
            Some((i, _)) => {
                let n = n_per_layer[i];
                error -= layers[i].err_by_n[n - 1] - layers[i].err_by_n[n];
                n_per_layer[i] = n + 1;
                flops += layers[i].flops_per_slot;
            }
            None => break,
        }
    }

    Allocation {
        n_per_layer,
        total_error: error,
        total_flops: flops,
        budget_flops: budget,
    }
}

/// Convenience: build a [`LayerSpec`] from a weight matrix.
pub fn spec_from_weights(
    name: &str,
    b: &MatrixF32,
    m_window: usize,
    l: usize,
    batch_m: usize,
) -> LayerSpec {
    let (k, n) = b.shape();
    LayerSpec {
        name: name.to_string(),
        k,
        n,
        flops_per_slot: 2.0 * batch_m as f64 * n as f64 * k as f64 / m_window as f64,
        err_by_n: error_curve(b, m_window, l),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_curve_is_non_increasing_and_ends_at_zero() {
        let b = MatrixF32::random(64, 32, 1);
        let curve = error_curve(&b, 16, 8);
        assert_eq!(curve.len(), 16);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "curve must be non-increasing");
        }
        assert!(
            curve[15].abs() < 1e-9,
            "keeping all M vectors loses nothing"
        );
        assert!(curve[0] > 0.0, "keeping 1 of 16 must lose something");
    }

    #[test]
    fn uniform_layers_get_uniform_allocation() {
        let b = MatrixF32::random(64, 64, 2);
        let layers: Vec<LayerSpec> = (0..3)
            .map(|i| spec_from_weights(&format!("l{i}"), &b, 16, 8, 128))
            .collect();
        let alloc = allocate(&layers, 16, 0.5);
        assert_eq!(
            alloc.n_per_layer,
            vec![8, 8, 8],
            "identical layers split evenly"
        );
        assert!(alloc.total_flops <= alloc.budget_flops + 1e-6);
    }

    #[test]
    fn sensitive_layer_gets_more_slots() {
        // Layer "hot" has much larger weights -> bigger error for pruning it.
        let cold = MatrixF32::random(64, 64, 3);
        let mut hot_data = MatrixF32::random(64, 64, 4);
        for v in hot_data.as_mut_slice() {
            *v *= 10.0;
        }
        let layers = vec![
            spec_from_weights("cold", &cold, 16, 8, 128),
            spec_from_weights("hot", &hot_data, 16, 8, 128),
        ];
        let alloc = allocate(&layers, 16, 0.5);
        assert!(
            alloc.n_per_layer[1] > alloc.n_per_layer[0],
            "the sensitive layer must keep more: {:?}",
            alloc.n_per_layer
        );
    }

    #[test]
    fn budget_is_respected_and_monotone() {
        let b = MatrixF32::random(64, 64, 5);
        let layers: Vec<LayerSpec> = (0..4)
            .map(|i| spec_from_weights(&format!("l{i}"), &b, 16, 8, 64))
            .collect();
        let mut last_err = f64::INFINITY;
        for budget in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let alloc = allocate(&layers, 16, budget);
            assert!(alloc.total_flops <= alloc.budget_flops + 1e-6);
            assert!(
                alloc.total_error <= last_err + 1e-9,
                "more budget cannot hurt: {} !<= {last_err}",
                alloc.total_error
            );
            last_err = alloc.total_error;
        }
    }

    #[test]
    fn full_budget_keeps_everything() {
        let b = MatrixF32::random(32, 32, 6);
        let layers = vec![spec_from_weights("l0", &b, 16, 8, 32)];
        let alloc = allocate(&layers, 16, 1.0);
        assert_eq!(alloc.n_per_layer, vec![16]);
        assert!(alloc.total_error.abs() < 1e-9);
    }

    #[test]
    fn minimal_budget_keeps_one_each() {
        let b = MatrixF32::random(32, 32, 7);
        let layers = vec![
            spec_from_weights("a", &b, 16, 8, 32),
            spec_from_weights("b", &b, 16, 8, 32),
        ];
        let alloc = allocate(&layers, 16, 0.0);
        assert_eq!(alloc.n_per_layer, vec![1, 1], "floor allocation is N=1");
    }

    #[test]
    fn allocation_beats_uniform_at_equal_flops() {
        // Mixed-sensitivity layers: the allocator's error must not exceed
        // the uniform N=M/2 split at the same budget.
        let cold = MatrixF32::random(64, 64, 8);
        let mut hot_data = MatrixF32::random(64, 64, 9);
        for v in hot_data.as_mut_slice() {
            *v *= 5.0;
        }
        let layers = vec![
            spec_from_weights("cold", &cold, 16, 8, 64),
            spec_from_weights("hot", &hot_data, 16, 8, 64),
        ];
        let alloc = allocate(&layers, 16, 0.5);
        let uniform_err: f64 = layers.iter().map(|l| l.err_by_n[7]).sum(); // N=8
        assert!(
            alloc.total_error <= uniform_err + 1e-9,
            "greedy {} must not exceed uniform {}",
            alloc.total_error,
            uniform_err
        );
    }
}
