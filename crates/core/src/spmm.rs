//! Reference matrix-multiplication kernels.
//!
//! These are the correctness oracles for every optimized implementation in
//! the workspace (CPU-parallel and simulated-GPU alike):
//!
//! * [`gemm_reference`] — naive dense `C = A·B` in `f32`,
//! * [`gemm_reference_f64`] — the same with `f64` accumulation, used to
//!   bound rounding error when comparing differently-ordered reductions,
//! * [`spmm_reference`] — Eq. (1) of the paper evaluated directly on the
//!   compressed representation (`scale = 1`),
//! * [`spmm_reference_scaled`] — Eq. (1) including the `M/N` magnitude
//!   compensation factor.
//!
//! Identity tested throughout:
//! `spmm_reference(A, SB) == gemm_reference(A, SB.decompress())`.

use crate::matrix::MatrixF32;
use crate::sparse::NmSparseMatrix;

/// Naive dense `C[m][n] = A[m][k] · B[k][n]`, `f32` accumulation, `ikj` loop
/// order (stream-friendly but otherwise unoptimized).
///
/// # Panics
/// Panics when the inner dimensions disagree.
pub fn gemm_reference(a: &MatrixF32, b: &MatrixF32) -> MatrixF32 {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimension mismatch: A is m x {k}, B is {kb} x n"
    );
    let mut c = MatrixF32::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// Dense GEMM with `f64` accumulation, rounded to `f32` at the end.
/// Used as the high-precision oracle for error budgets.
pub fn gemm_reference_f64(a: &MatrixF32, b: &MatrixF32) -> MatrixF32 {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimension mismatch");
    let mut acc = vec![0f64; m * n];
    for i in 0..m {
        let a_row = a.row(i);
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            let out = &mut acc[i * n..(i + 1) * n];
            for (cv, bv) in out.iter_mut().zip(b_row) {
                *cv += av as f64 * *bv as f64;
            }
        }
    }
    MatrixF32::from_vec(m, n, acc.into_iter().map(|v| v as f32).collect())
}

/// Paper Eq. (1) with unit scale: `C[i][j] = Σ_u A[i][base(u) + D[u][j/L]] · B′[u][j]`,
/// where `base(u) = ⌊u/N⌋·M` is the pruning window's first `k`-row.
///
/// Equivalent to `gemm_reference(a, sb.decompress())` up to the reduction
/// order (the sum skips pruned terms, which are exact zeros).
///
/// # Panics
/// Panics when `a.cols() != sb.k()`.
pub fn spmm_reference(a: &MatrixF32, sb: &NmSparseMatrix) -> MatrixF32 {
    spmm_with_scale(a, sb, 1.0)
}

/// Paper Eq. (1) including the `M/N` magnitude-compensation factor.
pub fn spmm_reference_scaled(a: &MatrixF32, sb: &NmSparseMatrix) -> MatrixF32 {
    let cfg = sb.cfg();
    spmm_with_scale(a, sb, cfg.m as f32 / cfg.n as f32)
}

fn spmm_with_scale(a: &MatrixF32, sb: &NmSparseMatrix, scale: f32) -> MatrixF32 {
    let (m, k) = a.shape();
    assert_eq!(
        k,
        sb.k(),
        "inner dimension mismatch: A is m x {k}, sparse B expects k = {}",
        sb.k()
    );
    let cfg = sb.cfg();
    let n = sb.cols();
    let (w, q) = (sb.w(), sb.q());
    let values = sb.values();
    let d = sb.indices();

    let mut c = MatrixF32::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for u in 0..w {
            let base = u / cfg.n * cfg.m;
            let b_row = values.row(u);
            let c_row = c.row_mut(i);
            for j in 0..q {
                let src = base + d.get(u, j) as usize;
                // Padded k rows read an implicit zero.
                let av = if src < k { a_row[src] } else { 0.0 };
                if av == 0.0 {
                    continue;
                }
                let lo = j * cfg.l;
                let hi = ((j + 1) * cfg.l).min(n);
                for (cv, bv) in c_row[lo..hi].iter_mut().zip(&b_row[lo..hi]) {
                    *cv += av * bv;
                }
            }
        }
    }
    if scale != 1.0 {
        for v in c.as_mut_slice() {
            *v *= scale;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::NmConfig;
    use crate::prune::PrunePolicy;

    fn cfg(n: usize, m: usize, l: usize) -> NmConfig {
        NmConfig::new(n, m, l).unwrap()
    }

    #[test]
    fn gemm_identity() {
        let a = MatrixF32::random(5, 7, 1);
        let i = MatrixF32::eye(7, 7);
        assert!(gemm_reference(&a, &i).allclose(&a, 1e-6, 1e-7));
    }

    #[test]
    fn gemm_small_known_answer() {
        let a = MatrixF32::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = MatrixF32::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = gemm_reference(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn spmm_equals_gemm_on_decompressed() {
        for (seed, c) in [
            (1u64, cfg(2, 4, 4)),
            (2, cfg(4, 16, 8)),
            (3, cfg(6, 16, 2)),
            (4, cfg(1, 8, 1)),
        ] {
            let a = MatrixF32::random(24, 32, seed);
            let b = MatrixF32::random(32, 40, seed + 100);
            let sb = NmSparseMatrix::prune(&b, c, PrunePolicy::Random { seed }).unwrap();
            let via_spmm = spmm_reference(&a, &sb);
            let via_dense = gemm_reference(&a, &sb.decompress());
            assert!(
                via_spmm.allclose(&via_dense, 1e-4, 1e-5),
                "mismatch for cfg {c}: max diff {}",
                via_spmm.max_abs_diff(&via_dense)
            );
        }
    }

    #[test]
    fn spmm_with_padding_matches_dense() {
        // k=19 (pads to 20 with M=4), n=13 (pads with L=4).
        let a = MatrixF32::random(9, 19, 5);
        let b = MatrixF32::random(19, 13, 6);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg(2, 4, 4)).unwrap();
        let via_spmm = spmm_reference(&a, &sb);
        let via_dense = gemm_reference(&a, &sb.decompress());
        assert!(via_spmm.allclose(&via_dense, 1e-4, 1e-5));
    }

    #[test]
    fn scaled_variant_multiplies_by_m_over_n() {
        let a = MatrixF32::random(8, 16, 7);
        let b = MatrixF32::random(16, 8, 8);
        let c = cfg(2, 16, 4);
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        let plain = spmm_reference(&a, &sb);
        let scaled = spmm_reference_scaled(&a, &sb);
        for (p, s) in plain.as_slice().iter().zip(scaled.as_slice()) {
            assert!((s - p * 8.0).abs() <= 1e-4 + 1e-4 * s.abs());
        }
    }

    #[test]
    fn dense_config_recovers_full_gemm() {
        let a = MatrixF32::random(8, 16, 9);
        let b = MatrixF32::random(16, 8, 10);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg(4, 4, 4)).unwrap();
        let via_spmm = spmm_reference(&a, &sb);
        let dense = gemm_reference(&a, &b);
        assert!(via_spmm.allclose(&dense, 1e-4, 1e-5));
    }

    #[test]
    fn f64_reference_agrees_with_f32_on_small_inputs() {
        let a = MatrixF32::random(6, 10, 11);
        let b = MatrixF32::random(10, 6, 12);
        let c32 = gemm_reference(&a, &b);
        let c64 = gemm_reference_f64(&a, &b);
        assert!(c32.allclose(&c64, 1e-5, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_rejects_bad_shapes() {
        let a = MatrixF32::zeros(2, 3);
        let b = MatrixF32::zeros(4, 2);
        let _ = gemm_reference(&a, &b);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn spmm_rejects_bad_shapes() {
        let a = MatrixF32::zeros(2, 3);
        let b = MatrixF32::random(8, 8, 1);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg(2, 4, 4)).unwrap();
        let _ = spmm_reference(&a, &sb);
    }
}
