//! Offline pre-processing for the high-sparsity *packing* path
//! (paper §III-C1, Fig. 4, Listing 3).
//!
//! At high sparsity the working set of `As` (the `A` tile in shared memory)
//! is mostly dead weight: within a `ks`-deep k-block only the columns named
//! by some pruning window are ever read. The paper's offline step computes,
//! per (k-block, column-block) pair:
//!
//! 1. **`col_info`** — the sorted union of `A` columns referenced by any of
//!    the block's `qs` pruning windows (`queryColInfo`),
//! 2. **reordered indices** — `D` entries remapped from window offsets to
//!    positions inside the packed `col_info` list (`reorderingIdx`), so the
//!    inner kernel indexes the packed `As` directly,
//! 3. **layout transform** — `D` rearranged into per-block contiguous panels
//!    to coalesce global loads (`transformLayout`, modeled by
//!    [`crate::index::IndexLayout::Blocked`]).
//!
//! During online computation the kernel loads only the `col_info` columns of
//! `A` ("packing"), shrinking the `As` footprint from `ms×ks` to
//! `ms×len(col_info)` and raising arithmetic intensity (Eq. 3).

use crate::error::{NmError, Result};
use crate::pattern::NmConfig;
use crate::sparse::NmSparseMatrix;
use serde::{Deserialize, Serialize};

/// The per-(k-block, column-block) packed-column table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColInfo {
    /// k-block depth in dense rows (multiple of `M`).
    pub ks: usize,
    /// Column-block width in dense columns (multiple of `L`).
    pub ns: usize,
    /// Compressed rows per k-block: `ws = ks·N/M`.
    pub ws: usize,
    /// Pruning windows per column block: `qs = ns/L`.
    pub qs: usize,
    /// Number of k-blocks (`⌈k/ks⌉` over the padded matrix).
    pub kblocks: usize,
    /// Number of column blocks (`⌈n/ns⌉`).
    pub cblocks: usize,
    /// `cols[bk * cblocks + bj]` — sorted unique k-offsets (within the
    /// block's `0..ks` range) that must be loaded from `A`.
    cols: Vec<Vec<u16>>,
}

impl ColInfo {
    /// Column list for block `(bk, bj)`.
    #[inline]
    pub fn block(&self, bk: usize, bj: usize) -> &[u16] {
        &self.cols[bk * self.cblocks + bj]
    }

    /// Packed length for block `(bk, bj)`.
    #[inline]
    pub fn packed_len(&self, bk: usize, bj: usize) -> usize {
        self.block(bk, bj).len()
    }

    /// Fraction of the `ks` range that must actually be loaded, for one block.
    pub fn packing_ratio(&self, bk: usize, bj: usize) -> f64 {
        self.packed_len(bk, bj) as f64 / self.ks as f64
    }

    /// Mean packing ratio over every block — the global-memory saving on `A`
    /// achieved by the packing path (1.0 = no saving, `N/M` = ideal).
    pub fn mean_packing_ratio(&self) -> f64 {
        if self.cols.is_empty() {
            return 1.0;
        }
        let total: usize = self.cols.iter().map(Vec::len).sum();
        total as f64 / (self.cols.len() * self.ks) as f64
    }

    /// Bytes of auxiliary storage this table adds in GPU memory
    /// (`u16` per entry plus one `u32` length per block) — the "1% to 10%
    /// overhead" the paper reports.
    pub fn storage_bytes(&self) -> usize {
        let entries: usize = self.cols.iter().map(Vec::len).sum();
        entries * std::mem::size_of::<u16>() + self.cols.len() * std::mem::size_of::<u32>()
    }
}

/// The full offline pre-processing product: `col_info` plus the reordered
/// (packed-position) index matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedLayout {
    /// The packed-column table.
    pub col_info: ColInfo,
    /// `packed_idx[u * q + j]` — position of `D[u][j]`'s column inside the
    /// `col_info` list of the block containing `(u, j)`. Replaces `D` in the
    /// packing kernel's inner loop.
    packed_idx: Vec<u16>,
    q: usize,
}

impl PackedLayout {
    /// Reordered index for compressed row `u`, window column `j`.
    #[inline]
    pub fn packed_index(&self, u: usize, j: usize) -> u16 {
        self.packed_idx[u * self.q + j]
    }

    /// Window-column count of the underlying index matrix.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }
}

/// Run the offline pre-processing of paper Listing 3 / Fig. 4.
///
/// `ks` must be a positive multiple of `M` and `ns` a positive multiple of
/// `L`; these are the shared-memory blocking parameters the online kernel
/// will use.
pub fn preprocess(sb: &NmSparseMatrix, ks: usize, ns: usize) -> Result<PackedLayout> {
    let cfg = sb.cfg();
    validate_blocking(cfg, ks, ns)?;

    let ws = ks * cfg.n / cfg.m;
    let qs = ns / cfg.l;
    let (w, q) = (sb.w(), sb.q());
    let kblocks = w.div_ceil(ws);
    let cblocks = q.div_ceil(qs);
    let d = sb.indices();

    let mut cols: Vec<Vec<u16>> = Vec::with_capacity(kblocks * cblocks);
    let mut packed_idx = vec![0u16; w * q];
    // Scratch: position of each dense k-offset within the block's packed list.
    let mut pos_of = vec![u16::MAX; ks];

    for bk in 0..kblocks {
        let u_lo = bk * ws;
        let u_hi = ((bk + 1) * ws).min(w);
        let kbase = bk * ks; // first dense k-row of this block
        for bj in 0..cblocks {
            let j_lo = bj * qs;
            let j_hi = ((bj + 1) * qs).min(q);

            // queryColInfo: union of referenced dense columns, as a bitmap.
            let mut used = vec![false; ks];
            for u in u_lo..u_hi {
                let base = u / cfg.n * cfg.m; // global window base
                for j in j_lo..j_hi {
                    let off = base + d.get(u, j) as usize - kbase;
                    used[off] = true;
                }
            }
            let list: Vec<u16> = (0..ks as u16).filter(|&c| used[c as usize]).collect();

            // reorderingIdx: map dense offsets to packed positions.
            for p in pos_of.iter_mut() {
                *p = u16::MAX;
            }
            for (pos, &c) in list.iter().enumerate() {
                pos_of[c as usize] = pos as u16;
            }
            for u in u_lo..u_hi {
                let base = u / cfg.n * cfg.m;
                for j in j_lo..j_hi {
                    let off = base + d.get(u, j) as usize - kbase;
                    packed_idx[u * q + j] = pos_of[off];
                }
            }
            cols.push(list);
        }
    }

    Ok(PackedLayout {
        col_info: ColInfo {
            ks,
            ns,
            ws,
            qs,
            kblocks,
            cblocks,
            cols,
        },
        packed_idx,
        q,
    })
}

fn validate_blocking(cfg: NmConfig, ks: usize, ns: usize) -> Result<()> {
    if ks == 0 || !ks.is_multiple_of(cfg.m) {
        return Err(NmError::InvalidBlocking {
            reason: format!("ks={ks} must be a positive multiple of M={}", cfg.m),
        });
    }
    if ns == 0 || !ns.is_multiple_of(cfg.l) {
        return Err(NmError::InvalidBlocking {
            reason: format!("ns={ns} must be a positive multiple of L={}", cfg.l),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixF32;
    use crate::prune::PrunePolicy;

    fn sparse(k: usize, n: usize, cfg: NmConfig, policy: PrunePolicy) -> NmSparseMatrix {
        let b = MatrixF32::random(k, n, 42);
        NmSparseMatrix::prune(&b, cfg, policy).unwrap()
    }

    #[test]
    fn rejects_misaligned_blocking() {
        let cfg = NmConfig::new(2, 4, 4).unwrap();
        let sb = sparse(16, 16, cfg, PrunePolicy::Magnitude);
        assert!(preprocess(&sb, 6, 8).is_err(), "ks not multiple of M");
        assert!(preprocess(&sb, 8, 6).is_err(), "ns not multiple of L");
        assert!(preprocess(&sb, 0, 8).is_err());
        assert!(preprocess(&sb, 8, 0).is_err());
    }

    #[test]
    fn identical_patterns_pack_to_n_over_m() {
        // Strided selection repeats the same offsets in every window, so the
        // union per M-window is exactly N columns -> ratio N/M (paper's
        // best case: "the memory access minimize to N/M").
        let cfg = NmConfig::new(2, 16, 4).unwrap();
        let sb = sparse(64, 32, cfg, PrunePolicy::Strided);
        let p = preprocess(&sb, 32, 16).unwrap();
        assert!((p.col_info.mean_packing_ratio() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn random_patterns_pack_between_bounds() {
        let cfg = NmConfig::new(2, 16, 4).unwrap();
        let sb = sparse(128, 64, cfg, PrunePolicy::Random { seed: 9 });
        let ks = 32;
        let ns = 32; // qs = 8 windows per block
        let p = preprocess(&sb, ks, ns).unwrap();
        let qs = ns / cfg.l;
        let lower = cfg.n as f64 / cfg.m as f64;
        let upper = ((qs * cfg.n).min(cfg.m) as f64) / cfg.m as f64;
        let ratio = p.col_info.mean_packing_ratio();
        assert!(
            ratio >= lower - 1e-12 && ratio <= upper + 1e-12,
            "ratio {ratio} outside [{lower}, {upper}]"
        );
        // With 8 independent windows choosing 2 of 16 the union is near the
        // upper bound, comfortably above the lower.
        assert!(ratio > lower + 0.1);
    }

    #[test]
    fn packed_positions_point_back_to_the_same_column() {
        let cfg = NmConfig::new(4, 16, 8).unwrap();
        let sb = sparse(64, 64, cfg, PrunePolicy::Random { seed: 17 });
        let ks = 32;
        let ns = 32;
        let p = preprocess(&sb, ks, ns).unwrap();
        let d = sb.indices();
        let ci = &p.col_info;
        for u in 0..sb.w() {
            let bk = u / ci.ws;
            let base = u / cfg.n * cfg.m;
            for j in 0..sb.q() {
                let bj = j / ci.qs;
                let dense_off = base + d.get(u, j) as usize - bk * ks;
                let pos = p.packed_index(u, j) as usize;
                assert_eq!(
                    ci.block(bk, bj)[pos] as usize,
                    dense_off,
                    "round-trip failed at u={u}, j={j}"
                );
            }
        }
    }

    #[test]
    fn col_lists_are_sorted_unique() {
        let cfg = NmConfig::new(2, 16, 4).unwrap();
        let sb = sparse(64, 48, cfg, PrunePolicy::Random { seed: 23 });
        let p = preprocess(&sb, 32, 16).unwrap();
        for bk in 0..p.col_info.kblocks {
            for bj in 0..p.col_info.cblocks {
                let list = p.col_info.block(bk, bj);
                assert!(list.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
                assert!(list.iter().all(|&c| (c as usize) < p.col_info.ks));
            }
        }
    }

    #[test]
    fn storage_overhead_is_small_fraction_of_values() {
        let cfg = NmConfig::new(2, 16, 4).unwrap();
        let sb = sparse(512, 512, cfg, PrunePolicy::Magnitude);
        let p = preprocess(&sb, 64, 64).unwrap();
        let values_bytes = sb.values().as_slice().len() * 4;
        let overhead = p.col_info.storage_bytes() as f64 / values_bytes as f64;
        assert!(
            overhead < 0.15,
            "col_info overhead {overhead} should stay in the paper's 1-10% band"
        );
    }

    #[test]
    fn single_window_block_packs_exactly_n_per_window() {
        // qs = 1: the union is just that window's N offsets.
        let cfg = NmConfig::new(4, 16, 8).unwrap();
        let sb = sparse(32, 32, cfg, PrunePolicy::Random { seed: 31 });
        let p = preprocess(&sb, 16, 8).unwrap(); // ks=M, one window per block col
        for bk in 0..p.col_info.kblocks {
            for bj in 0..p.col_info.cblocks {
                assert_eq!(p.col_info.packed_len(bk, bj), cfg.n);
            }
        }
        assert!((p.col_info.mean_packing_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn handles_partial_edge_blocks() {
        // w=16, ws=8 fits evenly, but q=6 with qs=4 leaves a ragged block.
        let cfg = NmConfig::new(2, 4, 4).unwrap();
        let sb = sparse(32, 24, cfg, PrunePolicy::Magnitude);
        let p = preprocess(&sb, 8, 16).unwrap();
        assert_eq!(p.col_info.cblocks, 2);
        // Must not panic and every packed index must be valid.
        for u in 0..sb.w() {
            for j in 0..sb.q() {
                let bk = u / p.col_info.ws;
                let bj = j / p.col_info.qs;
                assert!((p.packed_index(u, j) as usize) < p.col_info.packed_len(bk, bj));
            }
        }
    }
}
