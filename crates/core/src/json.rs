//! Minimal JSON reader/writer for on-disk artifacts.
//!
//! The build environment has no registry access, so `serde_json` is not
//! available (the `serde` shim provides marker traits only — see
//! `shims/README.md`). This module covers the small surface the workspace
//! needs for human-readable artifacts such as the kernel-plan cache: a
//! dynamically typed [`JsonValue`], a writer that emits deterministic
//! output (object keys in insertion order), and a strict recursive-descent
//! parser.
//!
//! Numbers are carried as `f64`. Rust's float formatting produces the
//! shortest string that parses back to the identical bit pattern, so
//! `dump → parse` round-trips every finite value exactly; non-finite
//! numbers are rejected at write time (JSON cannot represent them).

use crate::error::{NmError, Result};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2⁵³).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are kept in insertion order for stable output.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`JsonValue::get`] but failing with a [`NmError::Persist`].
    pub fn field(&self, key: &str) -> Result<&JsonValue> {
        self.get(key).ok_or_else(|| NmError::Persist {
            reason: format!("missing field `{key}`"),
        })
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Typed accessors that fail with a [`NmError::Persist`] naming the key.
    pub fn f64_field(&self, key: &str) -> Result<f64> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| type_err(key, "number"))
    }

    /// `usize` field accessor; see [`JsonValue::f64_field`].
    pub fn usize_field(&self, key: &str) -> Result<usize> {
        self.field(key)?
            .as_usize()
            .ok_or_else(|| type_err(key, "non-negative integer"))
    }

    /// String field accessor; see [`JsonValue::f64_field`].
    pub fn str_field(&self, key: &str) -> Result<&str> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| type_err(key, "string"))
    }

    /// Bool field accessor; see [`JsonValue::f64_field`].
    pub fn bool_field(&self, key: &str) -> Result<bool> {
        self.field(key)?
            .as_bool()
            .ok_or_else(|| type_err(key, "bool"))
    }

    /// Serialize to a compact JSON string.
    ///
    /// Fails on non-finite numbers (JSON has no representation for them).
    pub fn dump(&self) -> Result<String> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    fn write(&self, out: &mut String) -> Result<()> {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => {
                if !x.is_finite() {
                    return Err(NmError::Persist {
                        reason: format!("cannot serialize non-finite number {x}"),
                    });
                }
                // Rust float Display is shortest-round-trip and never uses
                // exponent notation, so the output is valid JSON.
                let _ = write!(out, "{x}");
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parse a JSON document. Strict: rejects trailing garbage, trailing
    /// commas, unquoted keys and non-finite numbers.
    pub fn parse(text: &str) -> Result<JsonValue> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Convenience: an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience: a number from any unsigned integer.
    pub fn from_usize(x: usize) -> JsonValue {
        JsonValue::Number(x as f64)
    }

    /// Convenience: a string value.
    pub fn from_str_value(s: &str) -> JsonValue {
        JsonValue::String(s.to_string())
    }
}

fn type_err(key: &str, expected: &str) -> NmError {
    NmError::Persist {
        reason: format!("field `{key}` is not a {expected}"),
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> NmError {
        NmError::Persist {
            reason: format!("JSON parse error at byte {}: {msg}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object_value(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if !seen.insert(key.clone()) {
                return Err(self.err(&format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's artifacts; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let x: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number `{text}`")))?;
        if !x.is_finite() {
            return Err(self.err("number out of f64 range"));
        }
        Ok(JsonValue::Number(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-3.5", "\"hi\""] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.dump().unwrap(), text);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1e-7, 123456.789, f64::MAX, 5e-324, -0.0] {
            let v = JsonValue::Number(x);
            let back = JsonValue::parse(&v.dump().unwrap()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"a":[1,2,{"b":"x"}],"c":{"d":null,"e":true},"f":-2.5}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.dump().unwrap(), text);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn string_escapes() {
        let v = JsonValue::String("a\"b\\c\nd\te\u{1}é—🦀".into());
        let dumped = v.dump().unwrap();
        assert_eq!(JsonValue::parse(&dumped).unwrap(), v);
        // Escaped forms parse too.
        let parsed = JsonValue::parse(r#""A\n\t\"\\""#).unwrap();
        assert_eq!(parsed.as_str(), Some("A\n\t\"\\"));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"x\" } \n").unwrap();
        assert!(v.usize_field("a").is_err(), "`a` is an array, not a usize");
        assert_eq!(v.str_field("b").unwrap(), "x");
    }

    #[test]
    fn malformed_documents_rejected() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{'a':1}",
            "{\"a\":1} extra",
            "nul",
            "\"unterminated",
            "{\"a\":1,\"a\":2}",
            "1e999",
        ] {
            assert!(JsonValue::parse(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn typed_accessors() {
        let v = JsonValue::parse(r#"{"n":3,"f":2.5,"s":"x","b":false}"#).unwrap();
        assert_eq!(v.usize_field("n").unwrap(), 3);
        assert_eq!(v.f64_field("f").unwrap(), 2.5);
        assert_eq!(v.str_field("s").unwrap(), "x");
        assert!(!v.bool_field("b").unwrap());
        assert!(v.usize_field("f").is_err(), "2.5 is not a usize");
        assert!(v.field("missing").is_err());
        assert!(JsonValue::Number(-1.0).as_usize().is_none());
    }

    #[test]
    fn non_finite_numbers_unserializable() {
        assert!(JsonValue::Number(f64::NAN).dump().is_err());
        assert!(JsonValue::Number(f64::INFINITY).dump().is_err());
    }
}
